//! Crash-safe online admission: [`DurableEngine`] wraps
//! [`IncrementalEngine`] with a write-ahead journal so the live partition
//! survives kills, torn writes and corrupted files.
//!
//! ## Protocol
//!
//! Every mutating op (`add`/`remove`/`snapshot`/`rollback`/`repack`) is
//! appended to the journal — one CRC32-framed record, fsynced — **before**
//! it is applied in memory. Record payloads are deterministic: the inner
//! engine runs with [`RepairPolicy::never`], and the divergence-triggered
//! canonical repack is journaled as an explicit `p` record by this layer,
//! so the journal is a complete, gas-independent description of the
//! engine's history. [`recover`] replays it back to the **bit-identical**
//! in-memory engine (same per-machine `f64` loads, same assignment, same
//! id allocator) — the crash-matrix suite in
//! `crates/partition/tests/prop_durable.rs` kills a run at every record
//! boundary and inside records and asserts exactly that.
//!
//! ## Compaction
//!
//! Every [`DurableOptions::compact_every`] ops the journal is rewritten as
//! `[config, state, snapstate?]` into a staged file that replaces the live
//! journal with an atomic rename: a crash during compaction leaves either
//! the full old journal or the compacted new one, never a mix. The rewrite
//! is **incremental**: [`DurableEngine::begin_compaction`] captures the
//! framed image, then each [`DurableEngine::compaction_slice`] copies at
//! most [`DurableOptions::slice_bytes`] of it into the stage, so live ops
//! keep landing (in the live journal *and* mirrored into the staged tail)
//! between slices — compaction never stops the world. `after_op` and the
//! public [`DurableEngine::compaction_tick`] hook each advance one slice;
//! [`DurableEngine::compact`] loops slices to completion for callers that
//! want the old blocking behaviour. State records serialize per-machine
//! resident lists in admission order, so re-folding them with
//! [`crate::engine::IndexableAdmission::fold_state`] (contractually the
//! same left-to-right arithmetic as the admits that built the state)
//! reproduces the identical `f64` machine states.
//!
//! ## Failure handling
//!
//! * Transient IO errors retry with capped exponential backoff charged to
//!   the caller's [`Gas`] ([`hetfeas_robust::journal::with_retries`]);
//! * a torn or corrupt journal tail is truncated at the first bad
//!   checksum during [`recover`] (`recover.truncated_records` /
//!   `recover.truncated_bytes` counters) — never a panic;
//! * structurally unrecoverable journals (missing/garbled config record,
//!   policy mismatch, invalid state record) surface as
//!   [`RecoverError::Corrupt`].

use crate::assignment::Assignment;
use crate::engine::IndexableAdmission;
use crate::incremental::{
    AddOutcome, EngineState, IncrSnapshot, IncrementalEngine, RepackOutcome, RepairPolicy, TaskId,
};
use hetfeas_model::{Augmentation, Machine, Platform, Ratio, Task};
use hetfeas_obs::MetricsSink;
use hetfeas_robust::journal::{crc32, encode_record, scan_records, Journal, JournalError, Storage};
use hetfeas_robust::{metrics as rmetrics, Exhaustion, Gas};

/// First line of every journal's config record; bumping the format bumps
/// this string, making old binaries fail closed with `Corrupt`.
pub const JOURNAL_MAGIC: &str = "hetfeas-journal v1";

/// Durability knobs for a [`DurableEngine`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DurableOptions {
    /// Divergence threshold for the journaled canonical repack (the
    /// [`RepairPolicy::repack_after`] analogue; `0` disables).
    pub repack_after: u32,
    /// Journal records between snapshot compactions (`0` = never compact).
    pub compact_every: u64,
    /// Byte budget per incremental compaction slice (`0` = copy the whole
    /// image in one slice, i.e. the old stop-the-world behaviour). Not
    /// persisted in the journal config: it only shapes how the writer
    /// paces its own IO, never what the journal means.
    pub slice_bytes: u64,
}

impl Default for DurableOptions {
    fn default() -> Self {
        DurableOptions {
            repack_after: RepairPolicy::default().repack_after,
            compact_every: 1024,
            slice_bytes: 64 << 10,
        }
    }
}

/// The self-describing header record every journal starts with — enough to
/// rebuild the platform, augmentation and policies without out-of-band
/// state, and to reject a journal written for a different admission test.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JournalConfig {
    /// CLI key of the admission policy (`edf`, `rms-ll`, `rms-hyp`).
    pub policy: String,
    /// `f64::to_bits` of the augmentation factor (bit-exact round trip).
    pub alpha_bits: u64,
    /// Divergence threshold for journaled repacks.
    pub repack_after: u32,
    /// Records between compactions.
    pub compact_every: u64,
    /// Exact rational speed (numerator, denominator) per machine, in
    /// original platform order.
    pub machines: Vec<(i128, i128)>,
}

impl JournalConfig {
    /// Rebuild the platform the journal was written against.
    pub fn platform(&self) -> Result<Platform, String> {
        let machines = self
            .machines
            .iter()
            .map(|&(n, d)| {
                if d <= 0 {
                    return Err(format!(
                        "machine speed {n}/{d} has non-positive denominator"
                    ));
                }
                Machine::new(Ratio::new(n, d)).map_err(|e| format!("invalid machine speed: {e}"))
            })
            .collect::<Result<Vec<_>, _>>()?;
        Platform::new(machines).map_err(|e| format!("invalid platform: {e}"))
    }

    /// Rebuild the augmentation factor, bit-exactly.
    pub fn alpha(&self) -> Result<Augmentation, String> {
        Augmentation::new(f64::from_bits(self.alpha_bits))
            .map_err(|e| format!("invalid augmentation: {e}"))
    }
}

/// Why a durable operation failed. The op was **not** applied in memory;
/// the journal holds at worst a torn final record, which the next
/// [`recover`] truncates.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DurableError {
    /// An IO error survived the retry budget (or was not retryable).
    Io(String),
    /// The gas budget ran out.
    Exhausted(Exhaustion),
}

impl From<JournalError> for DurableError {
    fn from(e: JournalError) -> Self {
        match e {
            JournalError::Io(m) => DurableError::Io(m),
            JournalError::Exhausted(x) => DurableError::Exhausted(x),
        }
    }
}

impl std::fmt::Display for DurableError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DurableError::Io(m) => write!(f, "journal IO error: {m}"),
            DurableError::Exhausted(x) => write!(f, "budget exhausted ({})", x.as_str()),
        }
    }
}

/// Why a recovery failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RecoverError {
    /// The journal is structurally unrecoverable: no intact config record,
    /// a policy/format mismatch, or an invalid state/op record.
    Corrupt(String),
    /// An IO error survived the retry budget.
    Io(String),
    /// The gas budget ran out mid-replay.
    Exhausted(Exhaustion),
}

impl From<JournalError> for RecoverError {
    fn from(e: JournalError) -> Self {
        match e {
            JournalError::Io(m) => RecoverError::Io(m),
            JournalError::Exhausted(x) => RecoverError::Exhausted(x),
        }
    }
}

impl std::fmt::Display for RecoverError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RecoverError::Corrupt(m) => write!(f, "unrecoverable journal: {m}"),
            RecoverError::Io(m) => write!(f, "recovery IO error: {m}"),
            RecoverError::Exhausted(x) => write!(f, "recovery budget exhausted ({})", x.as_str()),
        }
    }
}

/// What [`recover`] did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Journal records replayed (state imports and ops; the config record
    /// is not counted).
    pub records_replayed: u64,
    /// Damaged tail segments truncated (0 or 1).
    pub truncated_records: u64,
    /// Bytes dropped with the damaged tail.
    pub truncated_bytes: u64,
}

// ---------------------------------------------------------------------
// Record codecs. Payloads are line-oriented UTF-8; the first token
// dispatches: the magic string (config), `state`/`snapstate` (compaction
// images), or a single-letter op code.
// ---------------------------------------------------------------------

fn encode_config(cfg: &JournalConfig) -> Vec<u8> {
    let mut s = String::new();
    s.push_str(JOURNAL_MAGIC);
    s.push('\n');
    s.push_str(&format!("policy {}\n", cfg.policy));
    s.push_str(&format!("alpha {:016x}\n", cfg.alpha_bits));
    s.push_str(&format!("repack-after {}\n", cfg.repack_after));
    s.push_str(&format!("compact-every {}\n", cfg.compact_every));
    for &(n, d) in &cfg.machines {
        s.push_str(&format!("machine {n}/{d}\n"));
    }
    s.into_bytes()
}

fn parse_config(payload: &[u8]) -> Result<JournalConfig, String> {
    let text =
        std::str::from_utf8(payload).map_err(|_| "config record is not UTF-8".to_string())?;
    let mut lines = text.lines();
    match lines.next() {
        Some(JOURNAL_MAGIC) => {}
        Some(other) => return Err(format!("not a hetfeas journal (header '{other}')")),
        None => return Err("empty config record".to_string()),
    }
    let mut policy = None;
    let mut alpha_bits = None;
    let mut repack_after = None;
    let mut compact_every = None;
    let mut machines = Vec::new();
    for line in lines {
        let (key, rest) = line
            .split_once(' ')
            .ok_or_else(|| format!("bad config line '{line}'"))?;
        match key {
            "policy" => policy = Some(rest.to_string()),
            "alpha" => {
                alpha_bits =
                    Some(u64::from_str_radix(rest, 16).map_err(|_| format!("bad alpha '{rest}'"))?)
            }
            "repack-after" => {
                repack_after = Some(
                    rest.parse()
                        .map_err(|_| format!("bad repack-after '{rest}'"))?,
                )
            }
            "compact-every" => {
                compact_every = Some(
                    rest.parse()
                        .map_err(|_| format!("bad compact-every '{rest}'"))?,
                )
            }
            "machine" => {
                let (n, d) = rest
                    .split_once('/')
                    .ok_or_else(|| format!("bad machine speed '{rest}'"))?;
                machines.push((
                    n.parse()
                        .map_err(|_| format!("bad speed numerator '{n}'"))?,
                    d.parse()
                        .map_err(|_| format!("bad speed denominator '{d}'"))?,
                ));
            }
            other => return Err(format!("unknown config key '{other}'")),
        }
    }
    if machines.is_empty() {
        return Err("config lists no machines".to_string());
    }
    Ok(JournalConfig {
        policy: policy.ok_or("config missing policy")?,
        alpha_bits: alpha_bits.ok_or("config missing alpha")?,
        repack_after: repack_after.ok_or("config missing repack-after")?,
        compact_every: compact_every.ok_or("config missing compact-every")?,
        machines,
    })
}

fn encode_state(tag: &str, st: &EngineState) -> Vec<u8> {
    let mut s = String::new();
    s.push_str(tag);
    s.push('\n');
    s.push_str(&format!("next-id {}\n", st.next_id));
    s.push_str(&format!("divergence {}\n", st.divergence));
    s.push_str(&format!("canonical {}\n", u8::from(st.canonical)));
    match st.frontier {
        Some(f) => s.push_str(&format!("frontier {}/{}\n", f.numer(), f.denom())),
        None => s.push_str("frontier -\n"),
    }
    for &(id, t) in &st.entries {
        s.push_str(&format!(
            "task {id} {} {} {}\n",
            t.wcet(),
            t.period(),
            t.deadline()
        ));
    }
    for (mi, residents) in st.on_machine.iter().enumerate() {
        s.push_str(&format!("on {mi}"));
        for id in residents {
            s.push_str(&format!(" {id}"));
        }
        s.push('\n');
    }
    s.into_bytes()
}

fn parse_task(wcet: &str, period: &str, deadline: &str) -> Result<Task, String> {
    let w: u64 = wcet.parse().map_err(|_| format!("bad wcet '{wcet}'"))?;
    let p: u64 = period
        .parse()
        .map_err(|_| format!("bad period '{period}'"))?;
    let d: u64 = deadline
        .parse()
        .map_err(|_| format!("bad deadline '{deadline}'"))?;
    if d == p {
        Task::implicit(w, p).map_err(|e| format!("invalid task: {e}"))
    } else {
        Task::constrained(w, p, d).map_err(|e| format!("invalid task: {e}"))
    }
}

fn parse_state(text: &str, machine_count: usize) -> Result<EngineState, String> {
    let mut lines = text.lines();
    lines.next(); // tag, already dispatched on
    let mut st = EngineState {
        entries: Vec::new(),
        on_machine: vec![Vec::new(); machine_count],
        next_id: 0,
        divergence: 0,
        canonical: false,
        frontier: None,
    };
    for line in lines {
        let mut toks = line.split_whitespace();
        let key = toks.next().ok_or("blank state line")?;
        match key {
            "next-id" => {
                let v = toks.next().ok_or("next-id missing value")?;
                st.next_id = v.parse().map_err(|_| format!("bad next-id '{v}'"))?;
            }
            "divergence" => {
                let v = toks.next().ok_or("divergence missing value")?;
                st.divergence = v.parse().map_err(|_| format!("bad divergence '{v}'"))?;
            }
            "canonical" => {
                st.canonical = match toks.next() {
                    Some("1") => true,
                    Some("0") => false,
                    other => return Err(format!("bad canonical flag {other:?}")),
                };
            }
            "frontier" => match toks.next() {
                Some("-") => st.frontier = None,
                Some(frac) => {
                    let (n, d) = frac
                        .split_once('/')
                        .ok_or_else(|| format!("bad frontier '{frac}'"))?;
                    let n: i128 = n
                        .parse()
                        .map_err(|_| format!("bad frontier numerator '{n}'"))?;
                    let d: i128 = d
                        .parse()
                        .map_err(|_| format!("bad frontier denominator '{d}'"))?;
                    if d <= 0 {
                        return Err(format!("non-positive frontier denominator {d}"));
                    }
                    st.frontier = Some(Ratio::new(n, d));
                }
                None => return Err("frontier missing value".to_string()),
            },
            "task" => {
                let id = toks.next().ok_or("task line missing id")?;
                let id: u64 = id.parse().map_err(|_| format!("bad task id '{id}'"))?;
                let (w, p, d) = (
                    toks.next().ok_or("task line missing wcet")?,
                    toks.next().ok_or("task line missing period")?,
                    toks.next().ok_or("task line missing deadline")?,
                );
                st.entries.push((id, parse_task(w, p, d)?));
            }
            "on" => {
                let mi = toks.next().ok_or("on line missing machine index")?;
                let mi: usize = mi
                    .parse()
                    .map_err(|_| format!("bad machine index '{mi}'"))?;
                if mi >= machine_count {
                    return Err(format!("machine index {mi} out of range"));
                }
                st.on_machine[mi] = toks
                    .map(|t| t.parse().map_err(|_| format!("bad resident id '{t}'")))
                    .collect::<Result<Vec<u64>, _>>()?;
            }
            other => return Err(format!("unknown state key '{other}'")),
        }
    }
    Ok(st)
}

fn encode_add(task: &Task) -> Vec<u8> {
    format!("a {} {} {}", task.wcet(), task.period(), task.deadline()).into_bytes()
}

/// Progress reported by one compaction step ([`DurableEngine::compaction_slice`]
/// / [`DurableEngine::compaction_tick`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CompactionStep {
    /// No compaction is in flight and none was due.
    Idle,
    /// A bounded slice of the staged image was copied; more remain.
    InProgress,
    /// The staged journal atomically replaced the live one.
    Done {
        /// Old journal length minus the staged replacement's (saturating).
        reclaimed: u64,
    },
}

/// An in-flight incremental compaction: the framed `[config, state,
/// snapstate?]` image captured at begin, how much of it has been staged,
/// and the ops journaled since — those must follow the image into the
/// stage before the atomic swap, or acknowledged ops would vanish.
struct CompactionState {
    image: Vec<u8>,
    off: usize,
    tail: Vec<Vec<u8>>,
    tail_off: usize,
}

/// A crash-safe [`IncrementalEngine`]: write-ahead journaling before every
/// op, periodic atomic compaction, gas-budgeted IO retries.
///
/// The public op surface mirrors the inner engine's `_within_with`
/// methods; the single journaled snapshot slot mirrors the op-trace
/// protocol (`snapshot` overwrites, `rollback` restores without
/// consuming).
pub struct DurableEngine<A: IndexableAdmission> {
    inner: IncrementalEngine<A>,
    snap: Option<IncrSnapshot<A>>,
    journal: Journal,
    config: JournalConfig,
    ops_since_compact: u64,
    slice_bytes: u64,
    compaction: Option<CompactionState>,
}

impl<A: IndexableAdmission> DurableEngine<A> {
    /// Start a fresh journaled engine over `store`, replacing any previous
    /// journal contents with a single config record.
    #[allow(clippy::too_many_arguments)]
    pub fn create<S: MetricsSink>(
        admission: A,
        platform: &Platform,
        alpha: Augmentation,
        policy_key: &str,
        opts: DurableOptions,
        store: Box<dyn Storage>,
        gas: &mut Gas,
        sink: &S,
    ) -> Result<Self, DurableError> {
        let config = JournalConfig {
            policy: policy_key.to_string(),
            alpha_bits: alpha.factor().to_bits(),
            repack_after: opts.repack_after,
            compact_every: opts.compact_every,
            machines: platform
                .iter()
                .map(|m| (m.speed().numer(), m.speed().denom()))
                .collect(),
        };
        let journal = Journal::create(store, &[encode_config(&config)], gas, sink)?;
        Ok(DurableEngine {
            inner: IncrementalEngine::with_policy(
                admission,
                platform,
                alpha,
                RepairPolicy::never(),
            ),
            snap: None,
            journal,
            config,
            ops_since_compact: 0,
            slice_bytes: opts.slice_bytes,
            compaction: None,
        })
    }

    /// The wrapped engine (read-only: mutating it directly would desync
    /// the journal).
    pub fn engine(&self) -> &IncrementalEngine<A> {
        &self.inner
    }

    /// The journal's self-describing header.
    pub fn config(&self) -> &JournalConfig {
        &self.config
    }

    /// True when a journaled snapshot is held.
    pub fn has_snapshot(&self) -> bool {
        self.snap.is_some()
    }

    /// CRC32 digest of the full observable state (live set, per-machine
    /// residents in admission order, id allocator, divergence accounting,
    /// held snapshot). Two engines agree on this digest iff recovery was
    /// bit-exact — the crash matrix and `scripts/crash_smoke.sh` compare
    /// it across processes.
    pub fn state_digest(&self) -> u32 {
        live_state_digest(&self.inner, self.snap.as_ref())
    }

    /// True while an incremental compaction has a staged rewrite open.
    pub fn compaction_active(&self) -> bool {
        self.compaction.is_some()
    }

    /// Override the per-slice byte budget (e.g. from a CLI flag) — affects
    /// only future [`Self::compaction_slice`] calls, never journal meaning.
    pub fn set_slice_bytes(&mut self, bytes: u64) {
        self.slice_bytes = bytes;
    }

    /// Append `payload` to the live journal, mirroring it into the staged
    /// compaction tail when a rewrite is in flight: the staged journal
    /// must describe every op acknowledged after its image was captured.
    fn log_append<S: MetricsSink>(
        &mut self,
        payload: &[u8],
        gas: &mut Gas,
        sink: &S,
    ) -> Result<(), DurableError> {
        self.journal.append(payload, gas, sink)?;
        if let Some(c) = &mut self.compaction {
            c.tail.push(payload.to_vec());
        }
        Ok(())
    }

    /// The current assignment over live tasks (see
    /// [`IncrementalEngine::assignment`]).
    pub fn assignment(&self) -> Assignment {
        self.inner.assignment()
    }

    /// Journal-then-apply [`IncrementalEngine::add_within_with`].
    pub fn add<S: MetricsSink>(
        &mut self,
        task: Task,
        gas: &mut Gas,
        sink: &S,
    ) -> Result<AddOutcome, DurableError> {
        gas.tick().map_err(DurableError::Exhausted)?;
        self.log_append(&encode_add(&task), gas, sink)?;
        let out = self
            .inner
            .add_within_with(task, &mut Gas::unlimited(), sink)
            .expect("unlimited gas cannot exhaust");
        self.after_op(gas, sink)?;
        Ok(out)
    }

    /// Journal-then-apply [`IncrementalEngine::remove_within_with`]. A
    /// remove of a dead id is a no-op and is **not** journaled.
    pub fn remove<S: MetricsSink>(
        &mut self,
        id: TaskId,
        gas: &mut Gas,
        sink: &S,
    ) -> Result<Option<Task>, DurableError> {
        gas.tick().map_err(DurableError::Exhausted)?;
        let Some(machine) = self.inner.machine_of(id) else {
            return Ok(None);
        };
        gas.tick_n(self.inner.residents_on(machine) as u64)
            .map_err(DurableError::Exhausted)?;
        self.log_append(format!("r {}", id.raw()).as_bytes(), gas, sink)?;
        let out = self
            .inner
            .remove_within_with(id, &mut Gas::unlimited(), sink)
            .expect("unlimited gas cannot exhaust");
        self.after_op(gas, sink)?;
        Ok(out)
    }

    /// Journal-then-apply snapshot into the engine's single snapshot slot.
    pub fn snapshot<S: MetricsSink>(
        &mut self,
        gas: &mut Gas,
        sink: &S,
    ) -> Result<(), DurableError> {
        gas.tick_n(self.inner.len() as u64 + 1)
            .map_err(DurableError::Exhausted)?;
        self.log_append(b"s", gas, sink)?;
        self.snap = Some(self.inner.snapshot_with(sink));
        self.after_op(gas, sink)
    }

    /// Journal-then-apply rollback to the held snapshot. Returns `false`
    /// (without journaling) when no snapshot is held.
    pub fn rollback<S: MetricsSink>(
        &mut self,
        gas: &mut Gas,
        sink: &S,
    ) -> Result<bool, DurableError> {
        if self.snap.is_none() {
            return Ok(false);
        }
        gas.tick_n(self.inner.len() as u64 + 1)
            .map_err(DurableError::Exhausted)?;
        self.log_append(b"b", gas, sink)?;
        let snap = self.snap.as_ref().expect("checked above");
        self.inner.rollback_with(snap, sink);
        self.after_op(gas, sink)?;
        Ok(true)
    }

    /// Journal-then-apply an explicit canonical repack.
    pub fn repack<S: MetricsSink>(
        &mut self,
        gas: &mut Gas,
        sink: &S,
    ) -> Result<RepackOutcome, DurableError> {
        let out = self.journaled_repack(gas, sink)?;
        self.after_op(gas, sink)?;
        Ok(out)
    }

    /// Rewrite the journal as `[config, state, snapstate?]` through an
    /// atomic replace, blocking until done. Safe at any time; the same
    /// work happens incrementally every [`DurableOptions::compact_every`]
    /// ops via [`Self::compaction_tick`].
    pub fn compact<S: MetricsSink>(&mut self, gas: &mut Gas, sink: &S) -> Result<(), DurableError> {
        self.begin_compaction(gas, sink)?;
        loop {
            match self.compaction_slice(gas, sink)? {
                CompactionStep::InProgress => {}
                CompactionStep::Idle | CompactionStep::Done { .. } => return Ok(()),
            }
        }
    }

    /// Capture the compaction image and open the staged rewrite. Returns
    /// `false` (without touching anything) when a compaction is already in
    /// flight. Live ops may continue between the slices that follow.
    pub fn begin_compaction<S: MetricsSink>(
        &mut self,
        gas: &mut Gas,
        sink: &S,
    ) -> Result<bool, DurableError> {
        if self.compaction.is_some() {
            return Ok(false);
        }
        gas.tick_n(self.inner.len() as u64 + 1)
            .map_err(DurableError::Exhausted)?;
        let mut image = encode_record(&encode_config(&self.config));
        image.extend_from_slice(&encode_record(&encode_state(
            "state",
            &self.inner.export_state(),
        )));
        if let Some(snap) = &self.snap {
            image.extend_from_slice(&encode_record(&encode_state(
                "snapstate",
                &self.inner.export_snapshot_state(snap),
            )));
        }
        self.journal.begin_rewrite(gas, sink)?;
        self.compaction = Some(CompactionState {
            image,
            off: 0,
            tail: Vec::new(),
            tail_off: 0,
        });
        Ok(true)
    }

    /// Advance an in-flight compaction by one bounded slice: copy at most
    /// `slice_bytes` of the captured image into the stage; once the image
    /// is fully staged, flush the mirrored tail of ops that landed during
    /// the slices and atomically swap the staged journal in.
    ///
    /// Gas exhaustion leaves the compaction state intact (resume on the
    /// next call); a hard IO error aborts the staged rewrite — the live
    /// journal is still complete, so nothing is lost.
    pub fn compaction_slice<S: MetricsSink>(
        &mut self,
        gas: &mut Gas,
        sink: &S,
    ) -> Result<CompactionStep, DurableError> {
        if self.compaction.is_none() {
            return Ok(CompactionStep::Idle);
        }
        match self.compaction_slice_inner(gas, sink) {
            Ok(step) => Ok(step),
            Err(e @ DurableError::Exhausted(_)) => Err(e),
            Err(e) => {
                let _ = self.journal.abort_rewrite(&mut Gas::unlimited(), sink);
                self.compaction = None;
                Err(e)
            }
        }
    }

    fn compaction_slice_inner<S: MetricsSink>(
        &mut self,
        gas: &mut Gas,
        sink: &S,
    ) -> Result<CompactionStep, DurableError> {
        gas.tick().map_err(DurableError::Exhausted)?;
        let state = self.compaction.as_mut().expect("checked by caller");
        let budget = if self.slice_bytes == 0 {
            state.image.len().max(1)
        } else {
            self.slice_bytes as usize
        };
        if S::ENABLED {
            sink.counter_add(rmetrics::JOURNAL_COMPACT_SLICES, 1);
        }
        let end = state.image.len().min(state.off.saturating_add(budget));
        if end > state.off {
            self.journal
                .rewrite_chunk(&state.image[state.off..end], gas, sink)?;
            state.off = end;
        }
        if state.off < state.image.len() {
            return Ok(CompactionStep::InProgress);
        }
        while state.tail_off < state.tail.len() {
            let framed = encode_record(&state.tail[state.tail_off]);
            self.journal.rewrite_chunk(&framed, gas, sink)?;
            state.tail_off += 1;
        }
        let replayed_tail = state.tail.len() as u64;
        let reclaimed = self.journal.commit_rewrite(gas, sink)?;
        self.ops_since_compact = replayed_tail;
        self.compaction = None;
        Ok(CompactionStep::Done { reclaimed })
    }

    /// The never-stop-the-world hook: start a staged rewrite when the
    /// compaction cadence is due, advance one slice when one is in flight,
    /// otherwise report [`CompactionStep::Idle`]. Service shard loops and
    /// the streaming replayer call this between batches.
    pub fn compaction_tick<S: MetricsSink>(
        &mut self,
        gas: &mut Gas,
        sink: &S,
    ) -> Result<CompactionStep, DurableError> {
        if self.compaction.is_none() {
            if self.config.compact_every == 0
                || self.ops_since_compact < self.config.compact_every
                || !self.begin_compaction(gas, sink)?
            {
                return Ok(CompactionStep::Idle);
            }
        }
        self.compaction_slice(gas, sink)
    }

    fn journaled_repack<S: MetricsSink>(
        &mut self,
        gas: &mut Gas,
        sink: &S,
    ) -> Result<RepackOutcome, DurableError> {
        gas.tick_n((self.inner.len() + self.inner.platform().len()) as u64 + 1)
            .map_err(DurableError::Exhausted)?;
        self.log_append(b"p", gas, sink)?;
        Ok(self
            .inner
            .repack_within_with(&mut Gas::unlimited(), sink)
            .expect("unlimited gas cannot exhaust"))
    }

    /// Post-op housekeeping: divergence-triggered journaled repack, then
    /// one bounded compaction step (begin at the cadence, else advance an
    /// in-flight slice). Both are best-effort under gas (a latched meter
    /// surfaces on the *next* op, mirroring the inner engine's auto-repack
    /// contract); IO errors propagate.
    fn after_op<S: MetricsSink>(&mut self, gas: &mut Gas, sink: &S) -> Result<(), DurableError> {
        self.ops_since_compact += 1;
        if self.config.repack_after > 0
            && self.inner.divergence() >= u64::from(self.config.repack_after)
        {
            match self.journaled_repack(gas, sink) {
                Ok(_) | Err(DurableError::Exhausted(_)) => {}
                Err(e) => return Err(e),
            }
        }
        match self.compaction_tick(gas, sink) {
            Ok(_) | Err(DurableError::Exhausted(_)) => Ok(()),
            Err(e) => Err(e),
        }
    }

    fn apply_record<S: MetricsSink>(
        &mut self,
        index: usize,
        payload: &[u8],
        gas: &mut Gas,
        sink: &S,
    ) -> Result<(), RecoverError> {
        let corrupt = |m: String| RecoverError::Corrupt(format!("record {index}: {m}"));
        let text = std::str::from_utf8(payload)
            .map_err(|_| corrupt("payload is not UTF-8".to_string()))?;
        let mut toks = text.split_whitespace();
        let m = self.inner.platform().len();
        match toks.next() {
            Some("a") => {
                gas.tick().map_err(RecoverError::Exhausted)?;
                let (w, p, d) = (
                    toks.next()
                        .ok_or_else(|| corrupt("add missing wcet".into()))?,
                    toks.next()
                        .ok_or_else(|| corrupt("add missing period".into()))?,
                    toks.next()
                        .ok_or_else(|| corrupt("add missing deadline".into()))?,
                );
                let task = parse_task(w, p, d).map_err(corrupt)?;
                self.inner
                    .add_within_with(task, &mut Gas::unlimited(), sink)
                    .expect("unlimited gas cannot exhaust");
            }
            Some("r") => {
                let raw = toks
                    .next()
                    .ok_or_else(|| corrupt("remove missing id".into()))?;
                let raw: u64 = raw
                    .parse()
                    .map_err(|_| corrupt(format!("bad remove id '{raw}'")))?;
                let id = TaskId::from_raw(raw);
                let residents = self
                    .inner
                    .machine_of(id)
                    .map_or(0, |mi| self.inner.residents_on(mi));
                gas.tick_n(residents as u64 + 1)
                    .map_err(RecoverError::Exhausted)?;
                self.inner
                    .remove_within_with(id, &mut Gas::unlimited(), sink)
                    .expect("unlimited gas cannot exhaust");
            }
            Some("s") => {
                gas.tick_n(self.inner.len() as u64 + 1)
                    .map_err(RecoverError::Exhausted)?;
                self.snap = Some(self.inner.snapshot_with(sink));
            }
            Some("b") => {
                gas.tick_n(self.inner.len() as u64 + 1)
                    .map_err(RecoverError::Exhausted)?;
                let snap = self
                    .snap
                    .as_ref()
                    .ok_or_else(|| corrupt("rollback with no snapshot on record".into()))?;
                self.inner.rollback_with(snap, sink);
            }
            Some("p") => {
                gas.tick_n((self.inner.len() + m) as u64 + 1)
                    .map_err(RecoverError::Exhausted)?;
                self.inner
                    .repack_within_with(&mut Gas::unlimited(), sink)
                    .expect("unlimited gas cannot exhaust");
            }
            Some("state") => {
                gas.tick_n(self.inner.len() as u64 + 1)
                    .map_err(RecoverError::Exhausted)?;
                let st = parse_state(text, m).map_err(corrupt)?;
                self.inner.import_state(&st).map_err(corrupt)?;
            }
            Some("snapstate") => {
                gas.tick_n(self.inner.len() as u64 + 1)
                    .map_err(RecoverError::Exhausted)?;
                let st = parse_state(text, m).map_err(corrupt)?;
                self.snap = Some(self.inner.snapshot_from_state(&st).map_err(corrupt)?);
            }
            Some(other) => return Err(corrupt(format!("unknown record tag '{other}'"))),
            None => return Err(corrupt("empty record".into())),
        }
        Ok(())
    }
}

/// CRC32 digest of an in-memory engine plus an optional held snapshot —
/// the exact bytes [`DurableEngine::state_digest`] hashes. Journal-free
/// replay paths (e.g. streaming trace replay) use this to prove they
/// reached the same state as a durable run, byte for byte.
pub fn live_state_digest<A: IndexableAdmission>(
    engine: &IncrementalEngine<A>,
    snap: Option<&IncrSnapshot<A>>,
) -> u32 {
    let mut buf = encode_state("state", &engine.export_state());
    if let Some(snap) = snap {
        buf.push(0);
        buf.extend_from_slice(&encode_state(
            "snapstate",
            &engine.export_snapshot_state(snap),
        ));
    }
    crc32(&buf)
}

/// Read the config record of a journal without replaying it — the CLI uses
/// this to pick the admission test before calling [`recover`].
pub fn peek_config(store: &mut dyn Storage) -> Result<JournalConfig, RecoverError> {
    let bytes = store
        .read_all()
        .map_err(|e| RecoverError::Io(e.to_string()))?;
    let scan = scan_records(&bytes);
    let first = scan
        .payloads
        .first()
        .ok_or_else(|| RecoverError::Corrupt("journal holds no intact records".to_string()))?;
    parse_config(first).map_err(RecoverError::Corrupt)
}

/// Recover a [`DurableEngine`] from a (possibly crashed) journal: truncate
/// any torn/corrupt tail, rebuild platform + augmentation from the config
/// record, and replay every surviving record. The result is bit-identical
/// to the engine that wrote the journal, up to the last fully-synced
/// record.
///
/// `expected_policy` guards against replaying a journal with the wrong
/// admission test — the caller dispatches on [`peek_config`] first.
pub fn recover<A, S>(
    admission: A,
    store: Box<dyn Storage>,
    expected_policy: &str,
    gas: &mut Gas,
    sink: &S,
) -> Result<(DurableEngine<A>, RecoveryReport), RecoverError>
where
    A: IndexableAdmission,
    S: MetricsSink,
{
    let (journal, payloads, tail) = Journal::open(store, gas, sink)?;
    let first = payloads
        .first()
        .ok_or_else(|| RecoverError::Corrupt("journal holds no intact records".to_string()))?;
    let config = parse_config(first).map_err(RecoverError::Corrupt)?;
    if config.policy != expected_policy {
        return Err(RecoverError::Corrupt(format!(
            "journal was written for policy '{}', not '{expected_policy}'",
            config.policy
        )));
    }
    let platform = config.platform().map_err(RecoverError::Corrupt)?;
    let alpha = config.alpha().map_err(RecoverError::Corrupt)?;
    let mut eng = DurableEngine {
        inner: IncrementalEngine::with_policy(admission, &platform, alpha, RepairPolicy::never()),
        snap: None,
        journal,
        config,
        ops_since_compact: 0,
        slice_bytes: DurableOptions::default().slice_bytes,
        compaction: None,
    };
    let mut replayed = 0u64;
    for (index, payload) in payloads.iter().enumerate().skip(1) {
        eng.apply_record(index, payload, gas, sink)?;
        replayed += 1;
    }
    if S::ENABLED {
        sink.counter_add(rmetrics::RECOVER_RECORDS_REPLAYED, replayed);
    }
    eng.ops_since_compact = replayed;
    Ok((
        eng,
        RecoveryReport {
            records_replayed: replayed,
            truncated_records: tail.truncated_records,
            truncated_bytes: tail.truncated_bytes,
        },
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::admission::EdfAdmission;
    use hetfeas_robust::journal::MemStorage;

    fn platform() -> Platform {
        Platform::from_int_speeds([1, 2]).expect("valid platform")
    }

    fn fresh(store: &MemStorage) -> DurableEngine<EdfAdmission> {
        DurableEngine::create(
            EdfAdmission,
            &platform(),
            Augmentation::NONE,
            "edf",
            DurableOptions {
                repack_after: 0,
                compact_every: 0,
                ..DurableOptions::default()
            },
            Box::new(store.clone()),
            &mut Gas::unlimited(),
            &(),
        )
        .expect("create")
    }

    #[test]
    fn config_record_round_trips() {
        let cfg = JournalConfig {
            policy: "rms-ll".to_string(),
            alpha_bits: (std::f64::consts::SQRT_2 + 1.0).to_bits(),
            repack_after: 17,
            compact_every: 42,
            machines: vec![(1, 1), (5, 2), (7, 3)],
        };
        let parsed = parse_config(&encode_config(&cfg)).expect("parses");
        assert_eq!(parsed, cfg);
        assert_eq!(
            parsed.alpha().expect("valid").factor().to_bits(),
            cfg.alpha_bits
        );
        assert_eq!(parsed.platform().expect("valid").len(), 3);
    }

    #[test]
    fn state_record_round_trips_through_import() {
        let store = MemStorage::new();
        let mut eng = fresh(&store);
        let mut gas = Gas::unlimited();
        for (w, p) in [(3u64, 10u64), (9, 10), (1, 4), (2, 5)] {
            eng.add(Task::implicit(w, p).expect("valid"), &mut gas, &())
                .expect("add");
        }
        let id = eng.engine().live_ids()[1];
        eng.remove(id, &mut gas, &()).expect("remove");

        let exported = eng.engine().export_state();
        let text = String::from_utf8(encode_state("state", &exported)).expect("UTF-8");
        let parsed = parse_state(&text, 2).expect("parses");
        assert_eq!(parsed, exported);

        let mut other = fresh(&MemStorage::new());
        other.inner.import_state(&parsed).expect("imports");
        assert_eq!(other.state_digest(), eng.state_digest());
        for mi in 0..2 {
            assert_eq!(
                other.engine().load_on(mi).to_bits(),
                eng.engine().load_on(mi).to_bits(),
                "machine {mi} load bit-exact"
            );
        }
    }

    #[test]
    fn recover_reproduces_a_plain_run_bit_exactly() {
        let store = MemStorage::new();
        let mut eng = fresh(&store);
        let mut gas = Gas::unlimited();
        let a = eng
            .add(Task::implicit(9, 10).expect("valid"), &mut gas, &())
            .expect("add");
        eng.add(Task::implicit(4, 10).expect("valid"), &mut gas, &())
            .expect("add");
        eng.snapshot(&mut gas, &()).expect("snapshot");
        eng.add(Task::implicit(1, 2).expect("valid"), &mut gas, &())
            .expect("add");
        eng.rollback(&mut gas, &()).expect("rollback");
        eng.remove(a.id().expect("admitted"), &mut gas, &())
            .expect("remove");
        eng.repack(&mut gas, &()).expect("repack");

        let (rec, report) =
            recover(EdfAdmission, Box::new(store), "edf", &mut gas, &()).expect("recovers");
        assert_eq!(report.truncated_records, 0);
        assert_eq!(report.records_replayed, 7);
        assert_eq!(rec.state_digest(), eng.state_digest());
        assert_eq!(rec.assignment(), eng.assignment());
        assert_eq!(rec.has_snapshot(), eng.has_snapshot());
    }

    #[test]
    fn recovery_survives_compaction() {
        let store = MemStorage::new();
        let mut eng = fresh(&store);
        let mut gas = Gas::unlimited();
        for i in 0..6u64 {
            eng.add(Task::implicit(1 + i % 3, 10).expect("valid"), &mut gas, &())
                .expect("add");
        }
        eng.snapshot(&mut gas, &()).expect("snapshot");
        eng.compact(&mut gas, &()).expect("compact");
        eng.add(Task::implicit(2, 7).expect("valid"), &mut gas, &())
            .expect("add");
        eng.rollback(&mut gas, &()).expect("rollback");

        let (rec, _) =
            recover(EdfAdmission, Box::new(store), "edf", &mut gas, &()).expect("recovers");
        assert_eq!(rec.state_digest(), eng.state_digest());
        assert_eq!(rec.assignment(), eng.assignment());
    }

    #[test]
    fn sliced_compaction_interleaves_live_ops() {
        let store = MemStorage::new();
        let mut eng = fresh(&store);
        let mut gas = Gas::unlimited();
        for i in 0..24u64 {
            eng.add(Task::implicit(1 + i % 3, 40).expect("valid"), &mut gas, &())
                .expect("add");
        }
        eng.snapshot(&mut gas, &()).expect("snapshot");
        // Tiny slices force many InProgress steps with ops in between.
        eng.set_slice_bytes(64);
        assert!(eng.begin_compaction(&mut gas, &()).expect("begin"));
        assert!(eng.compaction_active());
        // Second begin is a no-op while one is in flight.
        assert!(!eng.begin_compaction(&mut gas, &()).expect("no-op"));
        let mut steps = 0u32;
        let mut landed_mid_flight = 0u32;
        loop {
            match eng.compaction_slice(&mut gas, &()).expect("slice") {
                CompactionStep::InProgress => {
                    steps += 1;
                    // Live ops keep landing between slices.
                    eng.add(Task::implicit(1, 50).expect("valid"), &mut gas, &())
                        .expect("add mid-compaction");
                    landed_mid_flight += 1;
                }
                // `add` drives a slice through `after_op` too, so the
                // compaction may finish inside it — then this call is Idle.
                CompactionStep::Done { .. } | CompactionStep::Idle => break,
            }
        }
        assert!(steps > 2, "tiny slices must take several steps ({steps})");
        assert!(landed_mid_flight > 2);
        assert!(!eng.compaction_active());
        // The compacted journal replays to the exact live state, including
        // the ops that landed while slices were being copied.
        let (rec, _) =
            recover(EdfAdmission, Box::new(store), "edf", &mut gas, &()).expect("recovers");
        assert_eq!(rec.state_digest(), eng.state_digest());
        assert_eq!(rec.assignment(), eng.assignment());
        assert_eq!(rec.has_snapshot(), eng.has_snapshot());
    }

    #[test]
    fn compaction_tick_honours_the_cadence() {
        let store = MemStorage::new();
        let mut eng = DurableEngine::create(
            EdfAdmission,
            &platform(),
            Augmentation::NONE,
            "edf",
            DurableOptions {
                repack_after: 0,
                compact_every: 4,
                slice_bytes: 0,
            },
            Box::new(store.clone()),
            &mut Gas::unlimited(),
            &(),
        )
        .expect("create");
        let mut gas = Gas::unlimited();
        assert_eq!(
            eng.compaction_tick(&mut gas, &()).expect("tick"),
            CompactionStep::Idle,
            "cadence not reached yet"
        );
        for i in 0..8u64 {
            eng.add(Task::implicit(1 + i % 2, 30).expect("valid"), &mut gas, &())
                .expect("add");
        }
        // With slice_bytes = 0 the whole image fits one slice, so after_op
        // completed the cadence compaction inline; the journal shrank to
        // [config, state, <ops since>].
        assert!(!eng.compaction_active());
        let (rec, report) =
            recover(EdfAdmission, Box::new(store), "edf", &mut gas, &()).expect("recovers");
        assert!(
            report.records_replayed < 8,
            "compaction replaced op records with a state image ({})",
            report.records_replayed
        );
        assert_eq!(rec.state_digest(), eng.state_digest());
    }

    #[test]
    fn live_state_digest_matches_engine_digest() {
        let store = MemStorage::new();
        let mut eng = fresh(&store);
        let mut gas = Gas::unlimited();
        for (w, p) in [(2u64, 9u64), (3, 11), (1, 5)] {
            eng.add(Task::implicit(w, p).expect("valid"), &mut gas, &())
                .expect("add");
        }
        assert_eq!(live_state_digest(eng.engine(), None), eng.state_digest());
        eng.snapshot(&mut gas, &()).expect("snapshot");
        eng.add(Task::implicit(1, 7).expect("valid"), &mut gas, &())
            .expect("add");
        assert_ne!(
            live_state_digest(eng.engine(), None),
            eng.state_digest(),
            "digest must cover the held snapshot"
        );
    }

    #[test]
    fn wrong_policy_is_unrecoverable() {
        let store = MemStorage::new();
        let mut eng = fresh(&store);
        let mut gas = Gas::unlimited();
        eng.add(Task::implicit(1, 2).expect("valid"), &mut gas, &())
            .expect("add");
        let err = recover(EdfAdmission, Box::new(store), "rms-ll", &mut gas, &())
            .map(|_| ())
            .expect_err("policy mismatch");
        assert!(matches!(err, RecoverError::Corrupt(_)), "{err:?}");
    }

    #[test]
    fn garbage_is_corrupt_not_a_panic() {
        let store = MemStorage::with_bytes(b"not a journal at all".to_vec());
        let mut gas = Gas::unlimited();
        let err = recover(EdfAdmission, Box::new(store.clone()), "edf", &mut gas, &())
            .map(|_| ())
            .expect_err("garbage rejected");
        assert!(matches!(err, RecoverError::Corrupt(_)), "{err:?}");
        let err = peek_config(&mut store.clone()).expect_err("peek rejects too");
        assert!(matches!(err, RecoverError::Corrupt(_)), "{err:?}");
    }
}
