//! Per-machine admission tests plugged into the paper's first-fit.
//!
//! §III of the paper: "The algorithm uses any algorithm A to schedule tasks
//! that are assigned to a machine" — admission onto a machine of augmented
//! speed `αs` holding a set `S` is
//!
//! * EDF:  `Σ_{S∪{τ}} w_i ≤ αs`
//! * RMS:  `Σ_{S∪{τ}} w_i ≤ (|S|+1)(2^{1/(|S|+1)} − 1)·αs`
//!
//! The trait keeps per-machine state so each admission check is O(1)
//! (amortized), preserving the paper's `O(n·m)` total running time. Two
//! extra tests beyond the paper — the hyperbolic bound and exact RTA — back
//! the E8/E9 ablations.

use hetfeas_analysis::{liu_layland_bound, rms_schedulable_kuo_mok, rta_schedulable_f64};
use hetfeas_model::{Task, TaskSet, EPS};

/// The ε-padded right-hand side of [`hetfeas_model::approx_le`]:
/// `approx_le(x, cap) ⟺ x <= admit_rhs(cap)`, by definition of
/// `approx_le`. Hoisting the padding onto the capacity side turns every
/// additive admission predicate into the branchless single comparison
/// `load + u <= rhs` — the form the struct-of-arrays kernel evaluates four
/// lanes at a time — while the scalar [`AdmissionTest::admit`] impls below
/// use the *same* expression, so both paths decide identically bit for bit.
#[inline(always)]
pub fn admit_rhs(cap: f64) -> f64 {
    cap + EPS * cap.abs().max(1.0)
}

/// Branchless 4-lane mask for *additive* admissions (EDF, RMS-LL): bit `k`
/// is set iff `load[k] + u <= rhs[k]`, i.e. iff lane `k` admits a task of
/// utilization `u` under the exact scalar predicate (with `rhs[k]` the
/// [`admit_rhs`]-padded capacity). No branches, no early exit: the four
/// comparisons compile to a single vector compare + movemask on SIMD
/// targets.
#[inline(always)]
pub fn additive_admit_mask4(load: &[f64; 4], rhs: &[f64; 4], u: f64) -> u32 {
    (load[0] + u <= rhs[0]) as u32
        | (((load[1] + u <= rhs[1]) as u32) << 1)
        | (((load[2] + u <= rhs[2]) as u32) << 2)
        | (((load[3] + u <= rhs[3]) as u32) << 3)
}

/// Branchless 4-lane mask for the *multiplicative* hyperbolic admission:
/// bit `k` is set iff `product[k] · (u / speed[k] + 1.0) <= rhs` — the
/// exact scalar predicate with `rhs = admit_rhs(2.0)`. The division is
/// kept per-lane (not strength-reduced to a reciprocal multiply) so the
/// rounding matches the scalar path exactly.
#[inline(always)]
pub fn hyperbolic_admit_mask4(product: &[f64; 4], speed: &[f64; 4], rhs: f64, u: f64) -> u32 {
    (product[0] * (u / speed[0] + 1.0) <= rhs) as u32
        | (((product[1] * (u / speed[1] + 1.0) <= rhs) as u32) << 1)
        | (((product[2] * (u / speed[2] + 1.0) <= rhs) as u32) << 2)
        | (((product[3] * (u / speed[3] + 1.0) <= rhs) as u32) << 3)
}

/// A pluggable single-machine admission test with incremental state.
///
/// `speed` arguments are the *augmented* speed `α·s_j` of the machine under
/// the algorithm's speed augmentation.
pub trait AdmissionTest {
    /// Per-machine incremental state (e.g. the running utilization).
    type State: Clone;

    /// State of an empty machine.
    fn empty_state(&self) -> Self::State;

    /// If `task` can be admitted onto a machine of augmented speed `speed`
    /// currently in `state`, return the successor state; otherwise `None`.
    fn admit(&self, state: &Self::State, task: &Task, speed: f64) -> Option<Self::State>;

    /// Utilization load currently on the machine (used by best-/worst-fit
    /// variants to rank machines and by witnesses for reporting).
    fn load(&self, state: &Self::State) -> f64;

    /// Human-readable name for tables and logs.
    fn name(&self) -> &'static str;
}

/// EDF admission (Theorem II.2): utilization must fit the machine speed.
#[derive(Debug, Clone, Copy, Default)]
pub struct EdfAdmission;

impl AdmissionTest for EdfAdmission {
    type State = f64;

    fn empty_state(&self) -> f64 {
        0.0
    }

    fn admit(&self, state: &f64, task: &Task, speed: f64) -> Option<f64> {
        // approx_le(next, speed), in the lane-op form the kernel vectorizes.
        let next = state + task.utilization();
        (next <= admit_rhs(speed)).then_some(next)
    }

    fn load(&self, state: &f64) -> f64 {
        *state
    }

    fn name(&self) -> &'static str {
        "EDF"
    }
}

/// State for [`RmsLlAdmission`]: running utilization and task count.
#[derive(Debug, Clone, Copy, Default)]
pub struct RmsLlState {
    /// Sum of utilizations of the tasks assigned to the machine.
    pub load: f64,
    /// Number of tasks assigned to the machine.
    pub count: usize,
}

/// RMS admission via the Liu–Layland bound (Theorem II.3) — the test the
/// paper's Theorems I.2/I.4 analyze.
#[derive(Debug, Clone, Copy, Default)]
pub struct RmsLlAdmission;

impl AdmissionTest for RmsLlAdmission {
    type State = RmsLlState;

    fn empty_state(&self) -> RmsLlState {
        RmsLlState::default()
    }

    fn admit(&self, state: &RmsLlState, task: &Task, speed: f64) -> Option<RmsLlState> {
        // approx_le(next_load, bound·speed), in the kernel's lane-op form.
        let next_load = state.load + task.utilization();
        let next_count = state.count + 1;
        (next_load <= admit_rhs(liu_layland_bound(next_count) * speed)).then_some(RmsLlState {
            load: next_load,
            count: next_count,
        })
    }

    fn load(&self, state: &RmsLlState) -> f64 {
        state.load
    }

    fn name(&self) -> &'static str {
        "RMS-LL"
    }
}

/// State for [`RmsHyperbolicAdmission`]: running `Π (w_i/s + 1)` plus the
/// load for reporting.
#[derive(Debug, Clone, Copy)]
pub struct HyperbolicState {
    /// Running product `Π (w_i/speed + 1)`.
    pub product: f64,
    /// Sum of utilizations (reporting only).
    pub load: f64,
}

/// RMS admission via the hyperbolic bound `Π (w_i/s + 1) ≤ 2` (Bini &
/// Buttazzo) — strictly dominates Liu–Layland; the E9 ablation.
#[derive(Debug, Clone, Copy, Default)]
pub struct RmsHyperbolicAdmission;

impl AdmissionTest for RmsHyperbolicAdmission {
    type State = HyperbolicState;

    fn empty_state(&self) -> HyperbolicState {
        HyperbolicState {
            product: 1.0,
            load: 0.0,
        }
    }

    fn admit(&self, state: &HyperbolicState, task: &Task, speed: f64) -> Option<HyperbolicState> {
        // rms_hyperbolic_product_ok(next) ⟺ approx_le(next, 2), in the
        // kernel's lane-op form.
        let next = state.product * (task.utilization() / speed + 1.0);
        (next <= admit_rhs(2.0)).then_some(HyperbolicState {
            product: next,
            load: state.load + task.utilization(),
        })
    }

    fn load(&self, state: &HyperbolicState) -> f64 {
        state.load
    }

    fn name(&self) -> &'static str {
        "RMS-hyperbolic"
    }
}

/// RMS admission via the Kuo–Mok harmonic-chain bound:
/// `Σ w ≤ k(2^{1/k} − 1)·s` with `k` the number of harmonic period
/// chains. Dominates Liu–Layland; shines on rate-grouped workloads
/// (avionics). O(n) per admission (chain count recomputed).
#[derive(Debug, Clone, Copy, Default)]
pub struct RmsKuoMokAdmission;

impl AdmissionTest for RmsKuoMokAdmission {
    type State = TaskSet;

    fn empty_state(&self) -> TaskSet {
        TaskSet::empty()
    }

    fn admit(&self, state: &TaskSet, task: &Task, speed: f64) -> Option<TaskSet> {
        let mut candidate = state.clone();
        candidate.push(*task);
        rms_schedulable_kuo_mok(&candidate, speed).then_some(candidate)
    }

    fn load(&self, state: &TaskSet) -> f64 {
        state.total_utilization()
    }

    fn name(&self) -> &'static str {
        "RMS-KuoMok"
    }
}

/// Exact fixed-priority admission: re-runs response-time analysis on the
/// machine's accumulated task set for every attempt. O(set²·periods) per
/// admission — *not* O(1); this deliberately trades the paper's O(nm) bound
/// for exactness (experiment E9 quantifies the acceptance gain).
#[derive(Debug, Clone, Copy, Default)]
pub struct RmsRtaAdmission;

impl AdmissionTest for RmsRtaAdmission {
    type State = TaskSet;

    fn empty_state(&self) -> TaskSet {
        TaskSet::empty()
    }

    fn admit(&self, state: &TaskSet, task: &Task, speed: f64) -> Option<TaskSet> {
        let mut candidate = state.clone();
        candidate.push(*task);
        rta_schedulable_f64(&candidate, speed).then_some(candidate)
    }

    fn load(&self, state: &TaskSet) -> f64 {
        state.total_utilization()
    }

    fn name(&self) -> &'static str {
        "RMS-RTA"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetfeas_model::Task;

    fn t(c: u64, p: u64) -> Task {
        Task::implicit(c, p).unwrap()
    }

    #[test]
    fn edf_admission_accumulates() {
        let a = EdfAdmission;
        let s0 = a.empty_state();
        let s1 = a.admit(&s0, &t(1, 2), 1.0).expect("0.5 fits");
        assert_eq!(a.load(&s1), 0.5);
        let s2 = a.admit(&s1, &t(1, 2), 1.0).expect("1.0 fits exactly");
        assert_eq!(a.load(&s2), 1.0);
        assert!(a.admit(&s2, &t(1, 100), 1.0).is_none());
    }

    #[test]
    fn edf_admission_respects_speed() {
        let a = EdfAdmission;
        let s0 = a.empty_state();
        assert!(a.admit(&s0, &t(3, 2), 1.0).is_none()); // util 1.5 > 1
        assert!(a.admit(&s0, &t(3, 2), 1.5).is_some());
    }

    #[test]
    fn rms_ll_admission_uses_count_dependent_bound() {
        let a = RmsLlAdmission;
        let s0 = a.empty_state();
        // First task may use the whole machine (bound(1) = 1).
        let s1 = a.admit(&s0, &t(82, 100), 1.0).unwrap();
        assert_eq!(s1.count, 1);
        // Second pushes count to 2: bound ≈ 0.8284; 0.82 + 0.01 = 0.83 > bound.
        assert!(a.admit(&s1, &t(1, 100), 1.0).is_none());
        // A lighter pair fits: 0.41 + 0.41 = 0.82 ≤ 0.8284.
        let s1 = a.admit(&s0, &t(41, 100), 1.0).unwrap();
        assert!(a.admit(&s1, &t(41, 100), 1.0).is_some());
    }

    #[test]
    fn hyperbolic_admits_more_than_ll() {
        let ll = RmsLlAdmission;
        let hy = RmsHyperbolicAdmission;
        // utils 0.5 then 0.33: LL rejects the pair, hyperbolic accepts.
        let l1 = ll.admit(&ll.empty_state(), &t(1, 2), 1.0).unwrap();
        assert!(ll.admit(&l1, &t(33, 100), 1.0).is_none());
        let h1 = hy.admit(&hy.empty_state(), &t(1, 2), 1.0).unwrap();
        assert!(hy.admit(&h1, &t(33, 100), 1.0).is_some());
    }

    #[test]
    fn rta_admission_exact_on_harmonic_sets() {
        let a = RmsRtaAdmission;
        let mut st = a.empty_state();
        // Harmonic set reaching utilization 1.0 — LL would refuse, RTA admits.
        for task in [t(1, 2), t(1, 4), t(2, 8)] {
            st = a
                .admit(&st, &task, 1.0)
                .expect("harmonic set is RM-schedulable");
        }
        assert!((a.load(&st) - 1.0).abs() < 1e-12);
        assert!(a.admit(&st, &t(1, 1000), 1.0).is_none());
    }

    #[test]
    fn kuo_mok_admits_harmonic_chains_to_full_load() {
        let a = RmsKuoMokAdmission;
        let mut st = a.empty_state();
        for task in [t(1, 2), t(1, 4), t(2, 8)] {
            st = a.admit(&st, &task, 1.0).expect("harmonic chain, k = 1");
        }
        assert!((a.load(&st) - 1.0).abs() < 1e-12);
        // A non-harmonic intruder pushes k to 2 → bound 0.828 < 1 + w.
        assert!(a.admit(&st, &t(1, 3), 1.0).is_none());
    }

    #[test]
    fn admit_rhs_is_exactly_the_approx_le_padding() {
        use hetfeas_model::approx_le;
        for x in [0.0, 0.3, 1.0, 2.0, 17.5, 1e9, 1e-9] {
            // approx_le(a, b) ⟺ a <= admit_rhs(b): probe both sides of the
            // padded boundary.
            let rhs = admit_rhs(x);
            assert!(approx_le(rhs, x));
            assert!(!approx_le(rhs + rhs.abs().max(1.0) * 1e-8, x));
        }
    }

    #[test]
    fn lane_masks_agree_with_scalar_admits() {
        let edf = EdfAdmission;
        let hyp = RmsHyperbolicAdmission;
        // Deterministic xorshift sweep over 4-lane states around the
        // admission boundary.
        let mut s = 0xa076_1d64_78bd_642fu64;
        let mut next = move || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            s
        };
        for _ in 0..500 {
            let task = t(1 + next() % 60, 10 + next() % 90);
            let u = task.utilization();
            let mut load = [0.0f64; 4];
            let mut rhs = [0.0f64; 4];
            let mut product = [0.0f64; 4];
            let mut speed = [0.0f64; 4];
            for k in 0..4 {
                speed[k] = 1.0 + (next() % 50) as f64 / 10.0;
                load[k] = (next() % 100) as f64 / 37.0;
                rhs[k] = admit_rhs(speed[k]);
                product[k] = 1.0 + (next() % 100) as f64 / 80.0;
            }
            let add_mask = additive_admit_mask4(&load, &rhs, u);
            let hyp_mask = hyperbolic_admit_mask4(&product, &speed, admit_rhs(2.0), u);
            for k in 0..4 {
                assert_eq!(
                    add_mask >> k & 1 == 1,
                    edf.admit(&load[k], &task, speed[k]).is_some(),
                    "EDF lane {k}: load {} speed {} u {u}",
                    load[k],
                    speed[k]
                );
                let st = HyperbolicState {
                    product: product[k],
                    load: 0.0,
                };
                assert_eq!(
                    hyp_mask >> k & 1 == 1,
                    hyp.admit(&st, &task, speed[k]).is_some(),
                    "hyperbolic lane {k}: product {} speed {} u {u}",
                    product[k],
                    speed[k]
                );
            }
        }
    }

    #[test]
    fn names() {
        assert_eq!(EdfAdmission.name(), "EDF");
        assert_eq!(RmsLlAdmission.name(), "RMS-LL");
        assert_eq!(RmsHyperbolicAdmission.name(), "RMS-hyperbolic");
        assert_eq!(RmsKuoMokAdmission.name(), "RMS-KuoMok");
        assert_eq!(RmsRtaAdmission.name(), "RMS-RTA");
    }
}
