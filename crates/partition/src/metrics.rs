//! Metric names emitted by this crate's instrumented paths.
//!
//! Names live in a dotted namespace, grouped by emitter:
//!
//! * `ff.*` — the §III first-fit scan, in *reference-scan units*: one
//!   admission check per machine slot visited. The indexed engine emits
//!   the **same** `ff.*` numbers (derived from its byte-identical
//!   placement sequence: a task placed at scan slot `s` costs `s + 1`
//!   reference checks, a failing task costs `m`), so reports are
//!   comparable across the two paths and the differential tests in
//!   `tests/prop_engine.rs` can assert exact equality.
//! * `engine.*` — the indexed engine's *actual* work: segment-tree
//!   descents, exact admission re-checks, and re-verification misses
//!   (candidates the relaxed hint admitted but the exact predicate
//!   rejected).
//! * `kernel.*` — the struct-of-arrays kernel's actual work: 4-lane mask
//!   evaluations, blocks scanned/pruned via the per-block max residual
//!   hints, and block misses (a pruning false positive). The kernel also
//!   emits scan-equivalent `ff.*` numbers like the engine does.
//! * `bnb.*` — the branch-and-bound exact solver: nodes expanded, prunes
//!   by LP bound / dominance / visited-state, bloom front effectiveness
//!   (hits and false positives), incumbent short-circuits, frontier size
//!   and worker count.
//! * `alpha.*` — α-search probe counts for the cold bisection
//!   ([`crate::min_feasible_alpha`]), the engine's warm-started
//!   bracket + bisection search, and the kernel's batched ladder search
//!   (`alpha.ladder_*`).
//!
//! All counters are cheap to emit: the hot loops accumulate into locals
//! and flush once per run, guarded on [`MetricsSink::ENABLED`] so the
//! no-op sink costs nothing.
//!
//! [`MetricsSink::ENABLED`]: hetfeas_obs::MetricsSink::ENABLED

/// Admission-test invocations in reference-scan units (counter).
pub const FF_ADMISSION_CHECKS: &str = "ff.admission_checks";
/// Tasks placed successfully (counter).
pub const FF_PLACED: &str = "ff.placed";
/// Machine slots visited; equals [`FF_ADMISSION_CHECKS`] for first-fit
/// (counter, kept separate for future strategies).
pub const FF_MACHINES_VISITED: &str = "ff.machines_visited";
/// Reference-scan checks needed per task (log2 histogram).
pub const FF_CHECKS_PER_TASK: &str = "ff.checks_per_task";
/// Workspace buffers that had to (re)allocate during a run (counter).
/// Steady-state reuse — e.g. the probes of an α-search over one reusable
/// workspace — must keep this at zero after the first probe, which
/// `first_fit::tests` asserts.
pub const FF_WORKSPACE_ALLOCS: &str = "ff.workspace_allocs";

/// Segment-tree descend-left queries issued by the engine (counter).
pub const ENGINE_TREE_DESCENTS: &str = "engine.tree_descents";
/// Exact admission re-checks of tree candidates (counter).
pub const ENGINE_EXACT_CHECKS: &str = "engine.exact_checks";
/// Candidates the relaxed hint offered but the exact predicate rejected
/// (counter; should stay near zero — each miss is one wasted re-check).
pub const ENGINE_REVERIFY_MISSES: &str = "engine.reverify_misses";

/// Tasks admitted by the incremental engine (counter).
pub const INCR_ADDS: &str = "incr.adds";
/// Add operations rejected — no machine admits the task (counter).
pub const INCR_ADD_REJECTS: &str = "incr.add_rejects";
/// Tasks removed from the live partition (counter).
pub const INCR_REMOVES: &str = "incr.removes";
/// Remove operations naming an unknown/already-removed id (counter).
pub const INCR_REMOVE_MISSES: &str = "incr.remove_misses";
/// Segment-tree descend-left queries issued by incremental adds (counter).
pub const INCR_TREE_DESCENTS: &str = "incr.tree_descents";
/// Exact admission re-checks of incremental tree candidates (counter).
pub const INCR_EXACT_CHECKS: &str = "incr.exact_checks";
/// Incremental candidates the hint offered but the exact predicate
/// rejected (counter; should stay near zero).
pub const INCR_REVERIFY_MISSES: &str = "incr.reverify_misses";
/// Local repairs after removals — one per machine-state re-fold (counter).
pub const INCR_LOCAL_REPAIRS: &str = "incr.local_repairs";
/// Tasks re-folded across all local repairs (counter; the O(k) part).
pub const INCR_REPAIR_REFOLDS: &str = "incr.repair_refolds";
/// Full canonical repacks — forced or divergence-triggered (counter).
pub const INCR_REPACKS: &str = "incr.repacks";
/// Repacks whose from-scratch FFD came back infeasible, keeping the
/// current (still valid) assignment instead (counter).
pub const INCR_REPACK_INFEASIBLE: &str = "incr.repack_infeasible";
/// Snapshots taken for speculative admission (counter).
pub const INCR_SNAPSHOTS: &str = "incr.snapshots";
/// Rollbacks to a snapshot (counter).
pub const INCR_ROLLBACKS: &str = "incr.rollbacks";

/// First-fit probes issued by an α-search, all phases (counter).
pub const ALPHA_PROBES: &str = "alpha.probes";
/// Probes spent bracketing α* in the engine's galloping phase (counter).
pub const ALPHA_BRACKET_PROBES: &str = "alpha.bracket_probes";
/// Bisection iterations after the bracket (counter).
pub const ALPHA_BISECT_ITERS: &str = "alpha.bisect_iters";
/// Ladder passes by the batched α-search — one pass over the sorted task
/// stream testing K candidate αs at once (counter).
pub const ALPHA_LADDER_PASSES: &str = "alpha.ladder_passes";
/// Candidate αs (rungs) tested across all ladder passes (counter).
pub const ALPHA_LADDER_RUNGS: &str = "alpha.ladder_rungs";

/// Branch nodes expanded by the B&B exact solver, all workers plus the
/// frontier expansion (counter).
pub const BNB_NODES: &str = "bnb.nodes";
/// Subtrees cut because the level-algorithm LP relaxation refuted the
/// remaining tasks against the residual capacities (counter).
pub const BNB_PRUNE_BOUND: &str = "bnb.prune_bound";
/// Branches skipped because an earlier equal-speed machine had an
/// identical state (counter).
pub const BNB_PRUNE_DOMINANCE: &str = "bnb.prune_dominance";
/// Nodes cut because their canonical state was already refuted — visited
/// filter hits plus frontier-expansion dedup (counter).
pub const BNB_PRUNE_VISITED: &str = "bnb.prune_visited";
/// Visited-filter queries the bloom front answered *maybe* (counter).
pub const BNB_BLOOM_HITS: &str = "bnb.bloom_hits";
/// Bloom *maybes* the exact backing rejected — wasted lookups; the FP
/// rate is this over [`BNB_BLOOM_HITS`]' complement (counter).
pub const BNB_BLOOM_FP: &str = "bnb.bloom_fp";
/// Refuted canonical keys stored across all per-worker filters (counter).
pub const BNB_VISITED_INSERTS: &str = "bnb.visited_inserts";
/// Insertions dropped because a worker's filter hit its cap (counter).
pub const BNB_VISITED_SATURATED: &str = "bnb.visited_saturated";
/// Runs settled by the first-fit incumbent without any search (counter).
pub const BNB_FF_INCUMBENT: &str = "bnb.ff_incumbent";
/// Runs ending Unknown on node/gas budget exhaustion (counter).
pub const BNB_EXHAUSTED: &str = "bnb.exhausted";
/// Frontier subtrees handed to the parallel phase (counter).
pub const BNB_FRONTIER: &str = "bnb.frontier";
/// Worker threads configured for the run (counter).
pub const BNB_WORKERS: &str = "bnb.workers";

/// 4-lane admission-mask evaluations by the SoA kernel (counter).
pub const KERNEL_MASK_OPS: &str = "kernel.mask_ops";
/// Machine blocks entered for an exact lane scan (counter).
pub const KERNEL_BLOCKS_SCANNED: &str = "kernel.blocks_scanned";
/// Machine blocks skipped because their max residual hint ruled every
/// lane out (counter).
pub const KERNEL_BLOCKS_PRUNED: &str = "kernel.blocks_pruned";
/// Blocks whose over-approximate max hint passed but whose exact lane
/// masks all rejected (counter; each costs one wasted block scan).
pub const KERNEL_BLOCK_MISSES: &str = "kernel.block_misses";
