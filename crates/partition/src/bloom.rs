//! Visited-state filtering for the branch-and-bound exact solver: a bloom
//! front over an exact hash-set backing.
//!
//! The B&B search re-derives the same machine-state vector along many
//! different assignment paths (identical tasks commute, identical machines
//! are interchangeable even after canonicalization prunes most of it). A
//! state whose subtree was already *fully refuted* never needs exploring
//! again, so refuted canonical keys go into [`VisitedFilter`] and every
//! node checks membership on entry.
//!
//! Correctness splits cleanly across the two layers:
//!
//! * The **exact backing** is a `HashSet<Box<[u64]>>` over the full
//!   canonical key — never a hash of it. A 64-bit fingerprint collision
//!   would prune a *different* (possibly feasible) state, which is an
//!   unsound wrong-answer bug, not a perf bug; storing the whole key rules
//!   it out. The set is therefore the only layer consulted for a positive
//!   "seen" verdict.
//! * The **bloom front** only accelerates the common negative case: a
//!   clear bloom probe proves the key was never inserted, skipping the
//!   hash-set lookup entirely. Bloom false positives cost one extra exact
//!   lookup and are counted ([`VisitedFilter::bloom_false_positives`]);
//!   false negatives are impossible by construction (every insert sets the
//!   key's bits), which the property tests assert against a reference set.
//!
//! At the default sizing of [`BITS_PER_ENTRY`] = 16 with `K` = 2 probes
//! the false-positive rate is `(1 − e^(−2/16))² ≈ 1.4 %`, comfortably
//! under the 5 % the tests gate. At capacity saturation the filter simply
//! stops inserting (counted, never wrong): membership answers stay exact
//! for everything inserted before the cap, and the search just loses
//! dedup coverage for later states — a pure optimization, so soundness is
//! unaffected.

use std::collections::HashSet;

/// Bloom bits reserved per expected entry (the default sizing).
pub const BITS_PER_ENTRY: usize = 16;

/// Number of bloom probes per key.
const K: u32 = 2;

/// 64-bit finalizer from splitmix64 — turns sequential/structured inputs
/// into well-distributed probe indices.
#[inline]
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Hash a canonical key (a word slice) to the 64-bit value the bloom
/// front probes with.
#[inline]
pub fn key_hash(key: &[u64]) -> u64 {
    let mut h = 0x51_7c_c1_b7_27_22_0a_95u64 ^ (key.len() as u64);
    for &w in key {
        h = splitmix64(h ^ w);
    }
    h
}

/// A plain bloom filter over pre-hashed 64-bit keys: power-of-two bit
/// count, [`K`] probe positions derived from the two halves of a
/// splitmix64 remix.
#[derive(Debug, Clone)]
pub struct BloomFilter {
    bits: Vec<u64>,
    /// `bits.len() * 64 - 1`; bit count is a power of two.
    mask: u64,
}

impl BloomFilter {
    /// Sized for `entries` expected insertions at [`BITS_PER_ENTRY`] bits
    /// each (rounded up to a power of two, at least 1024 bits).
    pub fn with_capacity(entries: usize) -> Self {
        let bits = (entries.saturating_mul(BITS_PER_ENTRY))
            .max(1024)
            .next_power_of_two();
        BloomFilter {
            bits: vec![0u64; bits / 64],
            mask: bits as u64 - 1,
        }
    }

    #[inline]
    fn probes(&self, hash: u64) -> [u64; K as usize] {
        let h2 = splitmix64(hash);
        [hash & self.mask, (hash >> 32 ^ h2) & self.mask]
    }

    /// Set the key's probe bits.
    #[inline]
    pub fn insert(&mut self, hash: u64) {
        for p in self.probes(hash) {
            self.bits[(p / 64) as usize] |= 1u64 << (p % 64);
        }
    }

    /// `false` proves the key was never inserted; `true` means *maybe*.
    #[inline]
    pub fn might_contain(&self, hash: u64) -> bool {
        self.probes(hash)
            .into_iter()
            .all(|p| self.bits[(p / 64) as usize] >> (p % 64) & 1 == 1)
    }
}

/// The two-layer visited filter: bloom front + exact `HashSet` backing,
/// with a hard entry cap and the counters the `bnb.*` metrics report.
#[derive(Debug)]
pub struct VisitedFilter {
    bloom: BloomFilter,
    exact: HashSet<Box<[u64]>>,
    cap: usize,
    /// Queries answered "seen" by the exact backing.
    pub hits: u64,
    /// Queries where the bloom front said *maybe* but the exact backing
    /// said new — one wasted hash-set lookup each.
    pub bloom_false_positives: u64,
    /// Queries the bloom front settled negatively without an exact lookup.
    pub bloom_negatives: u64,
    /// Insertions dropped because the filter was at capacity.
    pub saturated_skips: u64,
}

impl VisitedFilter {
    /// A filter capped at `cap` entries, bloom-sized for that capacity.
    pub fn new(cap: usize) -> Self {
        VisitedFilter {
            bloom: BloomFilter::with_capacity(cap),
            exact: HashSet::new(),
            cap,
            hits: 0,
            bloom_false_positives: 0,
            bloom_negatives: 0,
            saturated_skips: 0,
        }
    }

    /// Exact membership: `true` iff `key` was actually inserted. Updates
    /// the hit/false-positive counters.
    pub fn contains(&mut self, key: &[u64]) -> bool {
        if !self.bloom.might_contain(key_hash(key)) {
            self.bloom_negatives += 1;
            return false;
        }
        if self.exact.contains(key) {
            self.hits += 1;
            true
        } else {
            self.bloom_false_positives += 1;
            false
        }
    }

    /// Record a (refuted) key. Silently dropped at capacity — the filter
    /// is an optimization, so losing coverage is sound.
    pub fn insert(&mut self, key: &[u64]) {
        if self.exact.len() >= self.cap {
            self.saturated_skips += 1;
            return;
        }
        if self.exact.insert(key.into()) {
            self.bloom.insert(key_hash(key));
        }
    }

    /// Number of keys stored exactly.
    pub fn len(&self) -> usize {
        self.exact.len()
    }

    /// True when nothing has been inserted.
    pub fn is_empty(&self) -> bool {
        self.exact.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// xorshift64* — deterministic key material.
    struct Rng(u64);
    impl Rng {
        fn next(&mut self) -> u64 {
            self.0 ^= self.0 << 13;
            self.0 ^= self.0 >> 7;
            self.0 ^= self.0 << 17;
            self.0.wrapping_mul(0x2545_f491_4f6c_dd1d)
        }
        fn key(&mut self, len: usize) -> Vec<u64> {
            (0..len).map(|_| self.next()).collect()
        }
    }

    #[test]
    fn inserted_keys_are_always_contained() {
        // No false negatives, ever: checked against a reference HashSet.
        let mut rng = Rng(0xdead_beef);
        let mut filter = VisitedFilter::new(4096);
        let mut reference: HashSet<Vec<u64>> = HashSet::new();
        for i in 0..2000 {
            let key = rng.key(1 + i % 7);
            filter.insert(&key);
            reference.insert(key);
        }
        for key in &reference {
            assert!(filter.contains(key), "false negative for {key:?}");
        }
        assert_eq!(filter.len(), reference.len());
    }

    #[test]
    fn contains_agrees_with_reference_on_unseen_keys() {
        let mut rng = Rng(42);
        let mut filter = VisitedFilter::new(4096);
        let mut reference: HashSet<Vec<u64>> = HashSet::new();
        for _ in 0..1000 {
            let key = rng.key(3);
            filter.insert(&key);
            reference.insert(key);
        }
        for _ in 0..5000 {
            let key = rng.key(3);
            assert_eq!(filter.contains(&key), reference.contains(&key));
        }
    }

    #[test]
    fn bloom_false_positive_rate_under_five_percent_at_default_sizing() {
        let mut rng = Rng(7);
        let entries = 1 << 14;
        let mut filter = VisitedFilter::new(entries);
        for _ in 0..entries {
            filter.insert(&rng.key(2));
        }
        // Query fresh keys: every "maybe" from the bloom front on these is
        // a false positive (they were never inserted, up to negligible
        // random collision probability on 128-bit key material).
        let queries = 100_000u64;
        for _ in 0..queries {
            let key = rng.key(2);
            filter.contains(&key);
        }
        let fp_rate = filter.bloom_false_positives as f64 / queries as f64;
        assert!(
            fp_rate < 0.05,
            "bloom FP rate {fp_rate:.4} ≥ 5% at default sizing"
        );
        // And the default sizing should be doing real work: the vast
        // majority of negative queries never touch the hash set.
        assert!(filter.bloom_negatives > queries * 9 / 10);
    }

    #[test]
    fn saturation_stops_inserting_but_stays_exact() {
        let mut rng = Rng(99);
        let mut filter = VisitedFilter::new(16);
        let kept: Vec<Vec<u64>> = (0..16).map(|_| rng.key(2)).collect();
        for key in &kept {
            filter.insert(key);
        }
        assert_eq!(filter.len(), 16);
        assert_eq!(filter.saturated_skips, 0);
        // Over-capacity inserts are dropped and counted ...
        let dropped: Vec<Vec<u64>> = (0..8).map(|_| rng.key(2)).collect();
        for key in &dropped {
            filter.insert(key);
        }
        assert_eq!(filter.len(), 16);
        assert_eq!(filter.saturated_skips, 8);
        // ... membership stays exact: kept keys in, dropped keys out.
        for key in &kept {
            assert!(filter.contains(key));
        }
        for key in &dropped {
            assert!(!filter.contains(key));
        }
    }

    #[test]
    fn duplicate_inserts_do_not_consume_capacity() {
        let mut filter = VisitedFilter::new(4);
        let key = [1u64, 2, 3];
        for _ in 0..10 {
            filter.insert(&key);
        }
        assert_eq!(filter.len(), 1);
        assert_eq!(filter.saturated_skips, 0);
    }

    #[test]
    fn key_hash_distinguishes_length_and_order() {
        assert_ne!(key_hash(&[]), key_hash(&[0]));
        assert_ne!(key_hash(&[0]), key_hash(&[0, 0]));
        assert_ne!(key_hash(&[1, 2]), key_hash(&[2, 1]));
    }

    #[test]
    fn bloom_filter_minimum_sizing() {
        // Tiny capacities still get a usable filter.
        let mut b = BloomFilter::with_capacity(0);
        b.insert(12345);
        assert!(b.might_contain(12345));
        assert!(!b.might_contain(54321));
    }
}
