//! Incremental online admission: the §III first-fit test as a *serving*
//! data structure.
//!
//! [`crate::FirstFitEngine`] answers one-shot questions; a deployed
//! admission controller instead sees a *stream* — tasks arrive, run for a
//! while and leave. Re-packing from scratch per request costs
//! `O(n log n + (n+m) log m)` each; [`IncrementalEngine`] maintains the
//! live partition across the stream so that
//!
//! * [`IncrementalEngine::add`] is one descend-left query on the same
//!   max-segment-tree the batch engine uses — `O(log m)` amortized;
//! * [`IncrementalEngine::remove`] credits capacity back with a *local
//!   repair*: the leaver's machine state is re-folded from its remaining
//!   residents (`O(k)` for a machine holding `k` tasks) rather than
//!   subtracted, so float drift can never corrupt a residual;
//! * [`IncrementalEngine::snapshot`] / [`IncrementalEngine::rollback`]
//!   support speculative admission ("would this batch fit?") with exact
//!   state restoration, including id allocation;
//! * every path threads a [`hetfeas_obs::MetricsSink`] (`incr.*` family,
//!   see [`crate::metrics`]) and a [`hetfeas_robust::Gas`] meter.
//!
//! ## Divergence accounting and the canonical repack
//!
//! The paper's α-guarantees (Theorems I.1/I.2) are stated for first-fit
//! over tasks in **decreasing-utilization order** (FFD). An online stream
//! does not arrive in that order, so the live assignment can *diverge*
//! from what the canonical batch test would produce — it stays a valid
//! partition (every machine passes its admission test) but loses the
//! paper's approximation pedigree and, empirically, acceptance quality.
//!
//! The engine therefore tracks a divergence counter:
//!
//! * an add whose utilization is ≤ every live task's (compared as exact
//!   rationals, matching the batch sort's tie-breaking) *appends* to the
//!   canonical order — FFD would place it last and see exactly the
//!   current machine states, so the assignment stays canonical for free;
//! * any other add, and every remove, bumps the counter;
//! * when the counter exceeds [`RepairPolicy::repack_after`], the engine
//!   falls back to a counted full repack: from-scratch FFD (via the batch
//!   [`crate::FirstFitEngine`]) over the survivors. After a repack the
//!   assignment is **byte-identical** to [`crate::first_fit_ordered`] on
//!   the survivor set — `tests/prop_incremental.rs` asserts this — so the
//!   paper's guarantee is restored with bounded staleness.
//!
//! A repack can come back infeasible even though the live assignment is
//! valid (first-fit is order-sensitive and non-optimal). The engine then
//! keeps the current assignment, counts `incr.repack_infeasible`, and
//! resets the divergence clock.

use crate::assignment::{Assignment, Outcome};
use crate::engine::{FirstFitEngine, IndexableAdmission, MaxTree};
use crate::metrics;
use hetfeas_model::{Augmentation, Platform, Ratio, Task, TaskSet};
use hetfeas_obs::MetricsSink;
use hetfeas_robust::{Exhaustion, Gas};
use std::collections::HashMap;

/// Opaque handle to a live task inside an [`IncrementalEngine`]. Ids are
/// allocated sequentially per engine and never reused — except across a
/// [`IncrementalEngine::rollback`], which restores the allocator along
/// with the rest of the observable state.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TaskId(u64);

impl TaskId {
    /// The raw id value (stable within one engine lifetime).
    pub fn raw(self) -> u64 {
        self.0
    }

    /// Reconstruct a handle from a raw id, e.g. when replaying a journal
    /// or an op trace that recorded [`TaskId::raw`] values. The caller is
    /// responsible for pairing it with the engine that allocated it.
    pub fn from_raw(raw: u64) -> TaskId {
        TaskId(raw)
    }
}

/// When the incremental engine falls back to a full canonical repack.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RepairPolicy {
    /// Trigger a full repack once this many potentially canonical-breaking
    /// operations (out-of-order adds, removals) accumulate since the last
    /// repack. `0` disables automatic repacks — only
    /// [`IncrementalEngine::force_repack`] re-canonicalizes.
    pub repack_after: u32,
}

impl Default for RepairPolicy {
    fn default() -> Self {
        // Amortizes the O(n log n) repack over enough O(log m) ops that
        // churn stays cheap, while bounding how stale the paper's FFD
        // guarantee can get.
        RepairPolicy { repack_after: 256 }
    }
}

impl RepairPolicy {
    /// Never repack automatically.
    pub fn never() -> Self {
        RepairPolicy { repack_after: 0 }
    }
}

/// Result of an [`IncrementalEngine::add`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AddOutcome {
    /// The task was admitted.
    Admitted {
        /// Handle for later removal / queries.
        id: TaskId,
        /// Original platform index of the admitting machine (the machine
        /// the task landed on *at admission time*; an automatic repack may
        /// migrate it — consult [`IncrementalEngine::machine_of`]).
        machine: usize,
    },
    /// No machine admits the task at the engine's augmentation; the live
    /// partition is unchanged.
    Rejected,
}

impl AddOutcome {
    /// The admitted id, if any.
    pub fn id(&self) -> Option<TaskId> {
        match self {
            AddOutcome::Admitted { id, .. } => Some(*id),
            AddOutcome::Rejected => None,
        }
    }

    /// True when the task was admitted.
    pub fn is_admitted(&self) -> bool {
        matches!(self, AddOutcome::Admitted { .. })
    }
}

/// Result of a full repack attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RepackOutcome {
    /// The survivors were re-packed canonically; the assignment now equals
    /// from-scratch FFD ([`crate::first_fit_ordered`]) on the live set.
    Repacked,
    /// From-scratch FFD rejects the survivor set (first-fit is
    /// order-sensitive); the current — still valid — assignment is kept.
    Infeasible,
}

/// Where a live task sits: its slot in the insertion log and its machine
/// slot in scan order.
#[derive(Debug, Clone, Copy)]
struct Entry {
    live_idx: usize,
    slot: usize,
}

/// The cloneable part of the engine — everything [`IncrementalEngine::
/// snapshot`] must capture to make rollback exact.
struct Core<A: IndexableAdmission> {
    /// Insertion log of live tasks; `None` marks a removed (tombstoned)
    /// entry. Order = canonical tie-breaking order for the batch sort.
    live: Vec<Option<(TaskId, Task)>>,
    /// id → position in `live` + machine slot.
    index: HashMap<u64, Entry>,
    /// Ids resident on each machine slot, in admission order.
    on_slot: Vec<Vec<u64>>,
    /// Per-slot admission states.
    states: Vec<A::State>,
    /// Max-tree over per-slot residual hints.
    tree: MaxTree,
    live_count: usize,
    next_id: u64,
    /// Canonical-breaking ops since the last repack (attempt).
    divergence: u64,
    /// True while the assignment provably equals from-scratch FFD.
    canonical: bool,
    /// Utilization (exact rational) of the canonical order's last task —
    /// the append threshold. `None` when the live set is empty.
    frontier: Option<Ratio>,
}

impl<A: IndexableAdmission> Clone for Core<A> {
    fn clone(&self) -> Self {
        Core {
            live: self.live.clone(),
            index: self.index.clone(),
            on_slot: self.on_slot.clone(),
            states: self.states.clone(),
            tree: self.tree.clone(),
            live_count: self.live_count,
            next_id: self.next_id,
            divergence: self.divergence,
            canonical: self.canonical,
            frontier: self.frontier,
        }
    }
}

/// A point-in-time capture of an engine's observable state. Only valid
/// for the engine that produced it (same platform, α, admission test);
/// rolling back a snapshot from a different engine is a logic error
/// (caught in debug builds by shape assertions).
pub struct IncrSnapshot<A: IndexableAdmission> {
    core: Core<A>,
}

/// Portable image of an engine's observable state, sufficient to rebuild
/// the engine **bit-exactly**: per-machine resident lists are kept in
/// admission order, so re-folding them with
/// [`IndexableAdmission::fold_state`] (defined as the same left-to-right
/// arithmetic as repeated admits) reproduces the identical `f64` machine
/// states. Produced by [`IncrementalEngine::export_state`], consumed by
/// [`IncrementalEngine::import_state`] — this is what the durability
/// layer's snapshot records serialize.
#[derive(Debug, Clone, PartialEq)]
pub struct EngineState {
    /// Live `(raw id, task)` pairs in insertion order (the canonical
    /// tie-breaking order). Tombstones are not represented — an imported
    /// engine starts with a compacted insertion log, which is observably
    /// identical.
    pub entries: Vec<(u64, Task)>,
    /// Resident raw ids per **original** platform machine index, in
    /// admission order.
    pub on_machine: Vec<Vec<u64>>,
    /// Next id the allocator would hand out.
    pub next_id: u64,
    /// Canonical-breaking ops since the last repack (attempt).
    pub divergence: u64,
    /// Whether the assignment provably equals from-scratch FFD.
    pub canonical: bool,
    /// The canonical order's append threshold (exact rational), if any.
    pub frontier: Option<Ratio>,
}

/// Online first-fit admission over a fixed platform and augmentation.
///
/// ```
/// use hetfeas_model::{Augmentation, Platform, Task};
/// use hetfeas_partition::{AddOutcome, EdfAdmission, IncrementalEngine};
///
/// let platform = Platform::from_int_speeds([1, 2]).unwrap();
/// let mut eng = IncrementalEngine::new(EdfAdmission, &platform, Augmentation::NONE);
/// let a = eng.add(Task::implicit(9, 10).unwrap());
/// assert!(a.is_admitted());
/// let b = eng.add(Task::implicit(4, 10).unwrap()).id().unwrap();
/// eng.remove(b);
/// assert_eq!(eng.len(), 1);
/// ```
pub struct IncrementalEngine<A: IndexableAdmission> {
    platform: Platform,
    alpha: Augmentation,
    /// Machine indices in scan order (increasing speed).
    machine_order: Vec<usize>,
    /// Inverse of `machine_order`: original machine index → scan slot.
    slot_of_machine: Vec<usize>,
    /// α-augmented speeds in scan order.
    speeds: Vec<f64>,
    policy: RepairPolicy,
    /// Batch engine reused for repacks (owns the admission test).
    ff: FirstFitEngine<A>,
    core: Core<A>,
    /// Scratch for tree rebuilds.
    hints: Vec<f64>,
}

impl<A: IndexableAdmission> IncrementalEngine<A> {
    /// A fresh, empty engine over `platform` at augmentation `alpha` with
    /// the default [`RepairPolicy`].
    pub fn new(admission: A, platform: &Platform, alpha: Augmentation) -> Self {
        Self::with_policy(admission, platform, alpha, RepairPolicy::default())
    }

    /// [`Self::new`] with an explicit repack policy.
    pub fn with_policy(
        admission: A,
        platform: &Platform,
        alpha: Augmentation,
        policy: RepairPolicy,
    ) -> Self {
        let machine_order = platform.order_by_increasing_speed();
        let m = platform.len();
        let mut slot_of_machine = vec![0usize; m];
        for (slot, &mi) in machine_order.iter().enumerate() {
            slot_of_machine[mi] = slot;
        }
        let speeds: Vec<f64> = machine_order
            .iter()
            .map(|&mi| alpha.factor() * platform.speed_f64(mi))
            .collect();
        let states: Vec<A::State> = (0..m).map(|_| admission.empty_state()).collect();
        let hints: Vec<f64> = states
            .iter()
            .zip(&speeds)
            .map(|(st, &sp)| admission.residual_hint(st, sp))
            .collect();
        let mut tree = MaxTree::default();
        tree.rebuild(&hints);
        IncrementalEngine {
            platform: platform.clone(),
            alpha,
            machine_order,
            slot_of_machine,
            speeds,
            policy,
            ff: FirstFitEngine::new(admission),
            core: Core {
                live: Vec::new(),
                index: HashMap::new(),
                on_slot: vec![Vec::new(); m],
                states,
                tree,
                live_count: 0,
                next_id: 0,
                divergence: 0,
                canonical: true,
                frontier: None,
            },
            hints,
        }
    }

    /// The admission test in use.
    pub fn admission(&self) -> &A {
        self.ff.admission()
    }

    /// The platform the engine packs onto.
    pub fn platform(&self) -> &Platform {
        &self.platform
    }

    /// The speed augmentation applied to every machine.
    pub fn alpha(&self) -> Augmentation {
        self.alpha
    }

    /// Number of live tasks.
    pub fn len(&self) -> usize {
        self.core.live_count
    }

    /// True when no task is live.
    pub fn is_empty(&self) -> bool {
        self.core.live_count == 0
    }

    /// Canonical-breaking ops since the last repack (attempt).
    pub fn divergence(&self) -> u64 {
        self.core.divergence
    }

    /// True while the assignment provably equals from-scratch FFD on the
    /// live set.
    pub fn is_canonical(&self) -> bool {
        self.core.canonical
    }

    /// True when `id` is live.
    pub fn contains(&self, id: TaskId) -> bool {
        self.core.index.contains_key(&id.0)
    }

    /// Original platform index of the machine currently hosting `id`.
    pub fn machine_of(&self, id: TaskId) -> Option<usize> {
        self.core
            .index
            .get(&id.0)
            .map(|e| self.machine_order[e.slot])
    }

    /// The live task behind `id`.
    pub fn task(&self, id: TaskId) -> Option<&Task> {
        self.core.index.get(&id.0).map(|e| {
            &self.core.live[e.live_idx]
                .as_ref()
                .expect("indexed entry is live")
                .1
        })
    }

    /// Live tasks in insertion order (the canonical tie-breaking order).
    pub fn live_tasks(&self) -> TaskSet {
        self.core
            .live
            .iter()
            .filter_map(|e| e.as_ref().map(|&(_, t)| t))
            .collect()
    }

    /// Ids of live tasks, in insertion order (parallel to
    /// [`Self::live_tasks`]).
    pub fn live_ids(&self) -> Vec<TaskId> {
        self.core
            .live
            .iter()
            .filter_map(|e| e.as_ref().map(|&(id, _)| id))
            .collect()
    }

    /// The current assignment over the live tasks: dense task indices in
    /// insertion order (matching [`Self::live_tasks`]) to original
    /// platform machine indices.
    pub fn assignment(&self) -> Assignment {
        let mut asg = Assignment::new(self.core.live_count, self.platform.len());
        let mut dense = 0usize;
        for entry in &self.core.live {
            if let Some((id, _)) = entry {
                let slot = self.core.index[&id.0].slot;
                asg.assign(dense, self.machine_order[slot]);
                dense += 1;
            }
        }
        asg
    }

    /// Utilization load currently on original machine index `machine`.
    pub fn load_on(&self, machine: usize) -> f64 {
        let slot = self.slot_of_machine[machine];
        self.admission().load(&self.core.states[slot])
    }

    /// Number of tasks resident on original machine index `machine` —
    /// callers that must pre-pay a removal's gas (the local repair re-fold
    /// is `O(k)`) size the charge with this.
    pub fn residents_on(&self, machine: usize) -> usize {
        self.core.on_slot[self.slot_of_machine[machine]].len()
    }

    /// Admit `task` onto the first (slowest) machine that accepts it —
    /// one tree descent plus exact re-checks, `O(log m)` amortized.
    pub fn add(&mut self, task: Task) -> AddOutcome {
        self.add_within_with(task, &mut Gas::unlimited(), &())
            .expect("unlimited gas cannot exhaust")
    }

    /// [`Self::add`] under a budget, with metrics. On `Err` the operation
    /// was **not** applied. An automatic repack triggered by this add is
    /// best-effort: if the remaining gas cannot pay for it, the repack is
    /// skipped (the add itself still succeeded) and — exhaustion being
    /// sticky — the *next* operation surfaces the error.
    pub fn add_within_with<S: MetricsSink>(
        &mut self,
        task: Task,
        gas: &mut Gas,
        sink: &S,
    ) -> Result<AddOutcome, Exhaustion> {
        gas.tick()?;
        let u = task.utilization();
        let mut descents = 0u64;
        let mut exact = 0u64;
        let mut misses = 0u64;
        let mut from = 0usize;
        let placed = loop {
            descents += 1;
            let Some(slot) = self.core.tree.first_at_least(from, u) else {
                break None;
            };
            exact += 1;
            if let Some(next) =
                self.ff
                    .admission()
                    .admit(&self.core.states[slot], &task, self.speeds[slot])
            {
                let hint = self.ff.admission().residual_hint(&next, self.speeds[slot]);
                self.core.states[slot] = next;
                self.core.tree.update(slot, hint);
                break Some(slot);
            }
            misses += 1;
            from = slot + 1;
        };
        if S::ENABLED {
            sink.counter_add(metrics::INCR_TREE_DESCENTS, descents);
            sink.counter_add(metrics::INCR_EXACT_CHECKS, exact);
            sink.counter_add(metrics::INCR_REVERIFY_MISSES, misses);
        }
        let Some(slot) = placed else {
            if S::ENABLED {
                sink.counter_add(metrics::INCR_ADD_REJECTS, 1);
            }
            return Ok(AddOutcome::Rejected);
        };
        let id = TaskId(self.core.next_id);
        self.core.next_id += 1;
        let live_idx = self.core.live.len();
        self.core.live.push(Some((id, task)));
        self.core.index.insert(id.0, Entry { live_idx, slot });
        self.core.on_slot[slot].push(id.0);
        self.core.live_count += 1;
        // Canonical accounting: a task no heavier (exact rational, the
        // batch sort's comparison) than every live task appends to the FFD
        // order — the batch test would place it last, seeing exactly the
        // machine states it was just admitted against.
        let ur = task.utilization_ratio();
        if self.core.canonical && self.core.frontier.is_none_or(|f| ur <= f) {
            self.core.frontier = Some(ur);
        } else {
            self.core.canonical = false;
            self.core.divergence += 1;
        }
        if S::ENABLED {
            sink.counter_add(metrics::INCR_ADDS, 1);
        }
        let machine = self.machine_order[slot];
        self.maybe_auto_repack(gas, sink);
        Ok(AddOutcome::Admitted { id, machine })
    }

    /// Remove a live task, crediting its capacity back via a local repair
    /// of its machine's state. Returns the removed task, or `None` if the
    /// id is unknown or already removed.
    pub fn remove(&mut self, id: TaskId) -> Option<Task> {
        self.remove_within_with(id, &mut Gas::unlimited(), &())
            .expect("unlimited gas cannot exhaust")
    }

    /// [`Self::remove`] under a budget, with metrics. Gas is charged
    /// proportionally to the resident count of the leaver's machine (the
    /// local-repair re-fold). On `Err` the operation was **not** applied;
    /// automatic repacks are best-effort as in [`Self::add_within_with`].
    pub fn remove_within_with<S: MetricsSink>(
        &mut self,
        id: TaskId,
        gas: &mut Gas,
        sink: &S,
    ) -> Result<Option<Task>, Exhaustion> {
        gas.tick()?;
        let Some(&Entry { live_idx, slot }) = self.core.index.get(&id.0) else {
            if S::ENABLED {
                sink.counter_add(metrics::INCR_REMOVE_MISSES, 1);
            }
            return Ok(None);
        };
        gas.tick_n(self.core.on_slot[slot].len() as u64)?;
        self.core.index.remove(&id.0);
        let (_, task) = self.core.live[live_idx]
            .take()
            .expect("indexed entry is live");
        self.core.live_count -= 1;
        let pos = self.core.on_slot[slot]
            .iter()
            .position(|&x| x == id.0)
            .expect("resident list contains every indexed id");
        self.core.on_slot[slot].remove(pos);
        // Local repair: re-fold the machine's state from its remaining
        // residents instead of subtracting the leaver — exact by
        // construction, no acceptance decision involved.
        let refolds = self.core.on_slot[slot].len() as u64;
        let Core {
            live,
            index,
            on_slot,
            states,
            tree,
            ..
        } = &mut self.core;
        let st = self.ff.admission().fold_state(
            on_slot[slot].iter().map(|x| {
                &live[index[x].live_idx]
                    .as_ref()
                    .expect("resident ids are live")
                    .1
            }),
            self.speeds[slot],
        );
        let hint = self.ff.admission().residual_hint(&st, self.speeds[slot]);
        states[slot] = st;
        tree.update(slot, hint);
        self.core.canonical = false;
        self.core.divergence += 1;
        if S::ENABLED {
            sink.counter_add(metrics::INCR_REMOVES, 1);
            sink.counter_add(metrics::INCR_LOCAL_REPAIRS, 1);
            sink.counter_add(metrics::INCR_REPAIR_REFOLDS, refolds);
        }
        // Keep the insertion log from growing without bound under churn:
        // compact once tombstones dominate (repacks also compact).
        if self.core.live.len() - self.core.live_count > self.core.live_count.max(32) {
            self.compact();
        }
        self.maybe_auto_repack(gas, sink);
        Ok(Some(task))
    }

    /// Re-pack the survivors canonically (from-scratch FFD via the batch
    /// engine) regardless of the divergence counter.
    pub fn force_repack(&mut self) -> RepackOutcome {
        self.repack_within_with(&mut Gas::unlimited(), &())
            .expect("unlimited gas cannot exhaust")
    }

    /// [`Self::force_repack`] under a budget, with metrics. Gas is charged
    /// `n + m + 1` up front (a repack is `O((n+m)·log m)` work); on `Err`
    /// the engine state is unchanged.
    pub fn repack_within_with<S: MetricsSink>(
        &mut self,
        gas: &mut Gas,
        sink: &S,
    ) -> Result<RepackOutcome, Exhaustion> {
        gas.tick_n((self.core.live_count + self.platform.len()) as u64 + 1)?;
        let survivors = self.live_tasks();
        let ids = self.live_ids();
        let outcome = self
            .ff
            .run_with(&survivors, &self.platform, self.alpha, sink);
        let asg = match outcome {
            Outcome::Feasible(asg) => asg,
            _ => {
                if S::ENABLED {
                    sink.counter_add(metrics::INCR_REPACK_INFEASIBLE, 1);
                }
                // Keep the valid current assignment; restart the
                // divergence clock so the next trigger waits a full window
                // instead of re-attempting on every op.
                self.core.divergence = 0;
                return Ok(RepackOutcome::Infeasible);
            }
        };
        // Commit: rebuild the whole core from the canonical assignment.
        let order = survivors.order_by_decreasing_utilization();
        let admission = self.ff.admission();
        for slot in 0..self.platform.len() {
            self.core.states[slot] = admission.empty_state();
            self.core.on_slot[slot].clear();
        }
        for &ti in &order {
            let mi = asg.machine_of(ti).expect("feasible assignment is complete");
            let slot = self.slot_of_machine[mi];
            let next = self
                .ff
                .admission()
                .admit(&self.core.states[slot], &survivors[ti], self.speeds[slot])
                .expect("replaying the engine's own placement cannot be rejected");
            self.core.states[slot] = next;
            self.core.on_slot[slot].push(ids[ti].0);
        }
        self.hints.clear();
        let admission = self.ff.admission();
        self.hints.extend(
            self.core
                .states
                .iter()
                .zip(&self.speeds)
                .map(|(st, &sp)| admission.residual_hint(st, sp)),
        );
        self.core.tree.rebuild(&self.hints);
        self.core.live.clear();
        self.core.live.extend(
            ids.iter()
                .zip(survivors.iter())
                .map(|(&id, &t)| Some((id, t))),
        );
        self.core.index.clear();
        for (live_idx, &id) in ids.iter().enumerate() {
            // Dense survivor index == live index after compaction.
            self.core.index.insert(
                id.0,
                Entry {
                    live_idx,
                    slot: self.slot_of_machine
                        [asg.machine_of(live_idx).expect("complete assignment")],
                },
            );
        }
        self.core.frontier = order.last().map(|&ti| survivors[ti].utilization_ratio());
        self.core.canonical = true;
        self.core.divergence = 0;
        if S::ENABLED {
            sink.counter_add(metrics::INCR_REPACKS, 1);
        }
        Ok(RepackOutcome::Repacked)
    }

    /// Capture the engine's observable state for speculative admission.
    pub fn snapshot(&self) -> IncrSnapshot<A> {
        self.snapshot_with(&())
    }

    /// [`Self::snapshot`] with metrics.
    pub fn snapshot_with<S: MetricsSink>(&self, sink: &S) -> IncrSnapshot<A> {
        if S::ENABLED {
            sink.counter_add(metrics::INCR_SNAPSHOTS, 1);
        }
        IncrSnapshot {
            core: self.core.clone(),
        }
    }

    /// Restore the state captured by [`Self::snapshot`] — every observable
    /// (live set, assignment, divergence, id allocation) returns to its
    /// captured value.
    pub fn rollback(&mut self, snap: &IncrSnapshot<A>) {
        self.rollback_with(snap, &())
    }

    /// [`Self::rollback`] with metrics.
    pub fn rollback_with<S: MetricsSink>(&mut self, snap: &IncrSnapshot<A>, sink: &S) {
        debug_assert_eq!(
            snap.core.states.len(),
            self.platform.len(),
            "rollback() with a snapshot from a different engine"
        );
        if S::ENABLED {
            sink.counter_add(metrics::INCR_ROLLBACKS, 1);
        }
        self.core = snap.core.clone();
    }

    /// Export the observable state as a portable [`EngineState`].
    pub fn export_state(&self) -> EngineState {
        self.state_of_core(&self.core)
    }

    /// [`Self::export_state`] for a snapshot taken from this engine.
    pub fn export_snapshot_state(&self, snap: &IncrSnapshot<A>) -> EngineState {
        self.state_of_core(&snap.core)
    }

    /// Replace the engine's state with an imported [`EngineState`] —
    /// validated, then rebuilt with the exact arithmetic of the live
    /// paths, so the result is bit-identical to the exporting engine.
    /// On `Err` the engine is unchanged.
    pub fn import_state(&mut self, state: &EngineState) -> Result<(), String> {
        self.core_from_state(state).map(|core| self.core = core)
    }

    /// Build a rollback target directly from an imported state (the
    /// durability layer restores journaled snapshots this way).
    pub fn snapshot_from_state(&self, state: &EngineState) -> Result<IncrSnapshot<A>, String> {
        self.core_from_state(state)
            .map(|core| IncrSnapshot { core })
    }

    fn state_of_core(&self, core: &Core<A>) -> EngineState {
        EngineState {
            entries: core
                .live
                .iter()
                .filter_map(|e| e.as_ref().map(|&(id, t)| (id.0, t)))
                .collect(),
            on_machine: self.machine_order.iter().enumerate().fold(
                vec![Vec::new(); self.platform.len()],
                |mut acc, (slot, &mi)| {
                    acc[mi] = core.on_slot[slot].clone();
                    acc
                },
            ),
            next_id: core.next_id,
            divergence: core.divergence,
            canonical: core.canonical,
            frontier: core.frontier,
        }
    }

    fn core_from_state(&self, state: &EngineState) -> Result<Core<A>, String> {
        let m = self.platform.len();
        if state.on_machine.len() != m {
            return Err(format!(
                "state has {} machines, engine platform has {m}",
                state.on_machine.len()
            ));
        }
        let mut live = Vec::with_capacity(state.entries.len());
        let mut index = HashMap::with_capacity(state.entries.len());
        for (live_idx, &(id, task)) in state.entries.iter().enumerate() {
            if id >= state.next_id {
                return Err(format!("task id {id} not below next id {}", state.next_id));
            }
            live.push(Some((TaskId(id), task)));
            // `slot` is patched below from the resident lists.
            if index.insert(id, Entry { live_idx, slot: 0 }).is_some() {
                return Err(format!("duplicate task id {id}"));
            }
        }
        let mut on_slot = vec![Vec::new(); m];
        let mut placed = 0usize;
        for (mi, residents) in state.on_machine.iter().enumerate() {
            let slot = self.slot_of_machine[mi];
            for &id in residents {
                let entry = index
                    .get_mut(&id)
                    .ok_or_else(|| format!("machine {mi} lists unknown task id {id}"))?;
                entry.slot = slot;
                placed += 1;
            }
            on_slot[slot] = residents.clone();
        }
        if placed != state.entries.len() {
            return Err(format!(
                "{} tasks in the insertion log but {placed} resident placements",
                state.entries.len()
            ));
        }
        let mut seen = std::collections::HashSet::with_capacity(placed);
        for residents in &on_slot {
            for &id in residents {
                if !seen.insert(id) {
                    return Err(format!("task id {id} resident on two machines"));
                }
            }
        }
        let admission = self.ff.admission();
        let states: Vec<A::State> = on_slot
            .iter()
            .zip(&self.speeds)
            .map(|(residents, &sp)| {
                admission.fold_state(
                    residents.iter().map(|id| {
                        &live[index[id].live_idx]
                            .as_ref()
                            .expect("imported entries are live")
                            .1
                    }),
                    sp,
                )
            })
            .collect();
        let hints: Vec<f64> = states
            .iter()
            .zip(&self.speeds)
            .map(|(st, &sp)| admission.residual_hint(st, sp))
            .collect();
        let mut tree = MaxTree::default();
        tree.rebuild(&hints);
        Ok(Core {
            live_count: state.entries.len(),
            live,
            index,
            on_slot,
            states,
            tree,
            next_id: state.next_id,
            divergence: state.divergence,
            canonical: state.canonical,
            frontier: state.frontier,
        })
    }

    /// Drop tombstoned entries from the insertion log, re-indexing
    /// survivors. Purely internal — observable state is unchanged.
    fn compact(&mut self) {
        let mut new_live = Vec::with_capacity(self.core.live_count);
        for entry in self.core.live.drain(..) {
            if let Some((id, t)) = entry {
                self.core
                    .index
                    .get_mut(&id.0)
                    .expect("live ids are indexed")
                    .live_idx = new_live.len();
                new_live.push(Some((id, t)));
            }
        }
        self.core.live = new_live;
    }

    /// Divergence-triggered repack; best-effort under gas (see
    /// [`Self::add_within_with`]).
    fn maybe_auto_repack<S: MetricsSink>(&mut self, gas: &mut Gas, sink: &S) {
        if self.policy.repack_after > 0
            && self.core.divergence >= u64::from(self.policy.repack_after)
        {
            // A failed up-front gas charge leaves the state untouched and
            // the meter latched; the next operation surfaces the error.
            let _ = self.repack_within_with(gas, sink);
        }
    }
}
