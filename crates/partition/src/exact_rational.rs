//! Fully-rational exact partitioned-EDF oracle.
//!
//! The generic branch-and-bound in [`crate::exact`] runs its admission in
//! `f64` with the workspace epsilon — fine in practice, but the E1/E14
//! ground truth deserves zero tolerance games. This variant decides
//! partitioned-EDF feasibility in *pure integer arithmetic*: task loads
//! become `c_i · (H / p_i)` work-units-per-hyperperiod (exact, since menu
//! periods divide the hyperperiod `H`), and machine `j` of rational speed
//! `num_j/den_j` admits a load set iff
//!
//! ```text
//! (Σ loads) · den_j ≤ num_j · H        (all in u128)
//! ```
//!
//! A property test pins this oracle against the f64 branch-and-bound:
//! they may only disagree within ε of a capacity boundary, where the
//! rational answer is the correct one by definition.

use crate::assignment::Assignment;
use crate::exact::ExactOutcome;
use hetfeas_model::{Platform, TaskSet};
use hetfeas_robust::Gas;

struct RSearch<'a> {
    loads: &'a [u128],       // per task (sorted order applied via `order`)
    order: Vec<usize>,       // task indices, decreasing load
    caps: Vec<(u128, u128)>, // per machine slot: (num·H, den)
    machines: Vec<usize>,    // original machine index per slot
    suffix: Vec<u128>,       // suffix sums of ordered loads
    nodes_left: u64,
    gas: &'a mut Gas,
}

impl RSearch<'_> {
    fn fits(&self, used: u128, load: u128, slot: usize) -> bool {
        let (cap_num_h, den) = self.caps[slot];
        match used.checked_add(load).and_then(|tot| tot.checked_mul(den)) {
            Some(lhs) => lhs <= cap_num_h,
            None => false,
        }
    }

    /// Residual capacity of a slot in load units (floor), for pruning.
    fn residual(&self, used: u128, slot: usize) -> u128 {
        let (cap_num_h, den) = self.caps[slot];
        let cap_units = cap_num_h / den;
        cap_units.saturating_sub(used)
    }

    fn dfs(
        &mut self,
        depth: usize,
        used: &mut Vec<u128>,
        assignment: &mut Assignment,
    ) -> Option<bool> {
        if depth == self.order.len() {
            return Some(true);
        }
        if self.nodes_left == 0 || self.gas.tick().is_err() {
            return None;
        }
        self.nodes_left -= 1;

        // Optimistic residual bound (exact integers — no epsilon).
        let residual: u128 = (0..self.caps.len())
            .map(|s| self.residual(used[s], s))
            .sum();
        if self.suffix[depth] > residual {
            return Some(false);
        }

        let ti = self.order[depth];
        let load = self.loads[ti];
        let mut exhausted = false;
        let mut tried_empty: Vec<(u128, u128)> = Vec::new();
        for slot in 0..self.caps.len() {
            if used[slot] == 0 {
                if tried_empty.contains(&self.caps[slot]) {
                    continue; // identical empty machines are interchangeable
                }
                tried_empty.push(self.caps[slot]);
            }
            if !self.fits(used[slot], load, slot) {
                continue;
            }
            used[slot] += load;
            assignment.assign(ti, self.machines[slot]);
            match self.dfs(depth + 1, used, assignment) {
                Some(true) => return Some(true),
                Some(false) => {}
                // Budget gone — abandon sibling subtrees immediately.
                None => {
                    assignment.unassign(ti);
                    used[slot] -= load;
                    exhausted = true;
                    break;
                }
            }
            assignment.unassign(ti);
            used[slot] -= load;
        }
        if exhausted {
            None
        } else {
            Some(false)
        }
    }
}

/// Exact partitioned-EDF feasibility at speed 1, in pure integer
/// arithmetic. Requires the task set's hyperperiod (and per-task scaled
/// loads) to fit `u128` — guaranteed for the divisor-friendly period menus
/// the workspace uses; returns [`ExactOutcome::Unknown`] otherwise (callers
/// can fall back to the f64 oracle).
pub fn exact_partition_edf_rational(
    tasks: &TaskSet,
    platform: &Platform,
    node_budget: u64,
) -> ExactOutcome {
    exact_partition_edf_rational_within(tasks, platform, node_budget, &mut Gas::unlimited())
}

/// [`exact_partition_edf_rational`] under an execution budget: each branch
/// node ticks `gas`; exhaustion yields [`ExactOutcome::Unknown`].
pub fn exact_partition_edf_rational_within(
    tasks: &TaskSet,
    platform: &Platform,
    node_budget: u64,
    gas: &mut Gas,
) -> ExactOutcome {
    if tasks.is_empty() {
        return ExactOutcome::Feasible(Assignment::new(0, platform.len()));
    }
    let Some((h, loads)) = tasks.scaled_loads() else {
        return ExactOutcome::Unknown; // hyperperiod overflow — cannot scale
    };
    let machine_order = platform.order_by_increasing_speed();
    let mut caps = Vec::with_capacity(platform.len());
    for &m in &machine_order {
        let s = platform.machine(m).speed();
        let num = s.numer() as u128;
        let den = s.denom() as u128;
        let Some(cap) = num.checked_mul(h) else {
            return ExactOutcome::Unknown;
        };
        caps.push((cap, den));
    }
    let mut order: Vec<usize> = (0..tasks.len()).collect();
    order.sort_by(|&a, &b| loads[b].cmp(&loads[a]).then(a.cmp(&b)));
    let mut suffix = vec![0u128; order.len() + 1];
    for d in (0..order.len()).rev() {
        suffix[d] = suffix[d + 1] + loads[order[d]];
    }
    let mut search = RSearch {
        loads: &loads,
        order,
        caps,
        machines: machine_order,
        suffix,
        nodes_left: node_budget,
        gas,
    };
    let mut used = vec![0u128; platform.len()];
    let mut assignment = Assignment::new(tasks.len(), platform.len());
    match search.dfs(0, &mut used, &mut assignment) {
        Some(true) => ExactOutcome::Feasible(assignment),
        Some(false) => ExactOutcome::Infeasible,
        None => ExactOutcome::Unknown,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact::exact_partition_edf;

    #[test]
    fn agrees_with_f64_oracle_on_fixed_cases() {
        let p2 = Platform::identical(2).unwrap();
        let p12 = Platform::from_int_speeds([1, 2]).unwrap();
        let cases: Vec<(Vec<(u64, u64)>, &Platform)> = vec![
            (vec![(6, 10), (6, 10), (4, 10), (4, 10)], &p2),
            (vec![(8, 10), (8, 10), (8, 10)], &p2),
            (
                vec![
                    (46, 100),
                    (46, 100),
                    (30, 100),
                    (30, 100),
                    (24, 100),
                    (24, 100),
                ],
                &p2,
            ),
            (vec![(9, 10), (9, 10), (9, 10)], &p12),
            (vec![(1, 2); 9], &p2),
        ];
        for (pairs, platform) in cases {
            let ts = TaskSet::from_pairs(pairs).unwrap();
            let rational = exact_partition_edf_rational(&ts, platform, 1 << 22);
            let float = exact_partition_edf(&ts, platform, 1 << 22);
            assert_eq!(
                rational.is_feasible(),
                float.is_feasible(),
                "oracles disagree on {ts}"
            );
        }
    }

    #[test]
    fn knife_edge_decides_exactly() {
        // Loads exactly filling both machines: 1/3 + 2/3 = 1 per machine.
        let ts = TaskSet::from_pairs([(1, 3), (2, 3), (1, 3), (2, 3)]).unwrap();
        let p = Platform::identical(2).unwrap();
        assert!(exact_partition_edf_rational(&ts, &p, 1 << 20).is_feasible());
        // One extra unit of work anywhere tips it over — exactly.
        let ts = TaskSet::from_pairs([(1, 3), (2, 3), (1, 3), (2, 3), (1, 300)]).unwrap();
        assert_eq!(
            exact_partition_edf_rational(&ts, &p, 1 << 20),
            ExactOutcome::Infeasible
        );
    }

    #[test]
    fn fractional_speeds_exact() {
        // Machine of speed 3/2: capacity is exactly 1.5 utilization.
        let p = Platform::from_f64_speeds([1.5]).unwrap();
        let fits = TaskSet::from_pairs([(3, 2)]).unwrap(); // 1.5
        assert!(exact_partition_edf_rational(&fits, &p, 1 << 16).is_feasible());
        let over = TaskSet::from_pairs([(3, 2), (1, 1000)]).unwrap();
        assert_eq!(
            exact_partition_edf_rational(&over, &p, 1 << 16),
            ExactOutcome::Infeasible
        );
    }

    #[test]
    fn gas_exhaustion_reports_unknown() {
        use hetfeas_robust::Budget;
        let deep = TaskSet::from_pairs(vec![(5, 10); 12]).unwrap();
        let p6 = Platform::identical(6).unwrap();
        let mut gas = Budget::ops(2).gas();
        assert_eq!(
            exact_partition_edf_rational_within(&deep, &p6, u64::MAX, &mut gas),
            ExactOutcome::Unknown
        );
    }

    #[test]
    fn empty_and_budget_edges() {
        let p = Platform::identical(2).unwrap();
        assert!(exact_partition_edf_rational(&TaskSet::empty(), &p, 1).is_feasible());
        let deep = TaskSet::from_pairs(vec![(5, 10); 12]).unwrap();
        let p6 = Platform::identical(6).unwrap();
        assert_eq!(
            exact_partition_edf_rational(&deep, &p6, 1),
            ExactOutcome::Unknown
        );
    }
}
