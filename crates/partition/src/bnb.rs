//! Parallel branch-and-bound exact partitioned feasibility — the scalable
//! rebuild of [`crate::exact`]'s toy DFS.
//!
//! [`ExactSolver`] decides the same question as the old search (does a
//! partition exist in which every machine passes the admission test?) but
//! adds the four ingredients that make exact answers reachable at n ≥ 50,
//! m ≥ 8 (DESIGN.md §12):
//!
//! * **First-fit incumbent** — the §III heuristic runs first; a feasible
//!   heuristic witness settles the decision problem immediately, so the
//!   tree is only ever searched on instances the heuristic cannot place.
//! * **LP bounding** — every node evaluates the level-algorithm relaxation
//!   ([`hetfeas_lp::level_feasible_sorted_f64`]) over the remaining tasks
//!   and sound per-machine *residual capacity upper bounds*
//!   ([`BnbAdmission::residual_upper`]). If even the migrative relaxation
//!   cannot place the suffix, no integral completion exists and the
//!   subtree is cut. The inputs stay pre-sorted (task order is fixed,
//!   residuals are maintained incrementally through assign/undo), so the
//!   bound costs `O(n − depth + m)` per node with no allocation or sort.
//! * **Dominance + visited-state pruning** — machines with bitwise-equal
//!   augmented speed are interchangeable, so (a) within a node, slots in
//!   the same speed group whose states encode identically are tried once
//!   ([`BnbAdmission::encode_state`]); (b) across nodes, the canonical key
//!   (depth + per-group *sorted* state encodings) of every **fully
//!   refuted** subtree goes into a [`VisitedFilter`] (bloom front + exact
//!   hash-set backing) and re-derived states are cut on entry. Inserting
//!   only refuted states — never states merely *entered* — is what keeps
//!   parallel runs honest: a state abandoned mid-exploration (budget,
//!   supersession) is never mistaken for a refuted one.
//! * **Parallel subtree exploration** — a deterministic, worker-count
//!   independent breadth-first expansion grows a frontier of subtree
//!   roots (default 256); workers claim subtrees in index order from a
//!   [`TakeQueue`] and explore each by DFS. Feasibility uses a min-index
//!   incumbent rule: a worker finding a complete assignment publishes its
//!   subtree index via `fetch_min`; only *higher*-index subtrees abort,
//!   lower ones run to completion. The returned witness is therefore the
//!   solution of the minimum feasible subtree index — a quantity defined
//!   by the (deterministic) frontier alone — so verdict *and witness* are
//!   byte-identical across `--workers 1/2/8` whenever the budget does not
//!   bind. (Per-worker visited filters mean `bnb.nodes` varies with the
//!   worker count; the answer does not.)
//!
//! Budgets thread through unchanged: the caller's [`Gas`] is carved into a
//! [`SharedBudget`] pool, every node ticks, exhaustion latches stickily
//! across all workers, and the outcome degrades to
//! [`ExactOutcome::Unknown`] — never a wrong definite answer.

use crate::admission::{admit_rhs, AdmissionTest};
use crate::admission::{
    EdfAdmission, HyperbolicState, RmsHyperbolicAdmission, RmsKuoMokAdmission, RmsLlAdmission,
    RmsLlState, RmsRtaAdmission,
};
use crate::assignment::{Assignment, Outcome};
use crate::bloom::VisitedFilter;
use crate::exact::ExactOutcome;
use crate::first_fit::first_fit;
use crate::metrics as m;
use hetfeas_analysis::liu_layland_bound;
use hetfeas_lp::level_feasible_sorted_f64;
use hetfeas_model::{Augmentation, Platform, TaskSet};
use hetfeas_obs::MetricsSink;
use hetfeas_par::{run_workers, TakeQueue};
use hetfeas_robust::{Gas, SharedBudget, SharedGas};
use std::collections::{HashSet, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;

/// How many nodes a worker claims from the shared node pool per refill.
const NODE_CHUNK: u64 = 64;

/// An [`AdmissionTest`] the branch-and-bound solver can prune over.
///
/// Both extensions are *correctness-critical*, so their contracts are
/// spelled out:
///
/// * [`encode_state`](BnbAdmission::encode_state) must be injective on
///   reachable states up to behavioral equivalence: two states with equal
///   encodings must admit exactly the same future task sequences at the
///   same speed. Equal encodings license dominance skips and visited-set
///   pruning — an over-coarse encoding would prune live subtrees.
/// * [`residual_upper`](BnbAdmission::residual_upper) must upper-bound the
///   total utilization of *every* task multiset the machine could still
///   accept from this state (in any order). An under-estimate would let
///   the LP bound refute feasible nodes.
pub trait BnbAdmission: AdmissionTest<State: Send + Sync> + Sync {
    /// Append a canonical encoding of `state` to `out`.
    fn encode_state(&self, state: &Self::State, out: &mut Vec<u64>);

    /// Sound upper bound on the additional utilization this machine (at
    /// augmented speed `speed`, in `state`) can still accept.
    fn residual_upper(&self, state: &Self::State, speed: f64) -> f64;
}

impl BnbAdmission for EdfAdmission {
    fn encode_state(&self, state: &f64, out: &mut Vec<u64>) {
        out.push(state.to_bits());
    }

    fn residual_upper(&self, state: &f64, speed: f64) -> f64 {
        // Any accepted sequence ends with load ≤ admit_rhs(speed).
        (admit_rhs(speed) - state).max(0.0)
    }
}

impl BnbAdmission for RmsLlAdmission {
    fn encode_state(&self, state: &RmsLlState, out: &mut Vec<u64>) {
        out.push(state.load.to_bits());
        out.push(state.count as u64);
    }

    fn residual_upper(&self, state: &RmsLlState, speed: f64) -> f64 {
        // Adding k ≥ 1 tasks ends at load ≤ admit_rhs(LL(count+k)·speed)
        // ≤ admit_rhs(LL(count+1)·speed), since LL is non-increasing.
        (admit_rhs(liu_layland_bound(state.count + 1) * speed) - state.load).max(0.0)
    }
}

impl BnbAdmission for RmsHyperbolicAdmission {
    fn encode_state(&self, state: &HyperbolicState, out: &mut Vec<u64>) {
        out.push(state.product.to_bits());
        out.push(state.load.to_bits());
    }

    fn residual_upper(&self, state: &HyperbolicState, speed: f64) -> f64 {
        // Accepted extras u_i satisfy P·Π(u_i/s + 1) ≤ admit_rhs(2), and
        // Π(1 + x_i) ≥ 1 + Σ x_i, so Σ u_i ≤ s·(admit_rhs(2)/P − 1).
        (speed * (admit_rhs(2.0) / state.product - 1.0)).max(0.0)
    }
}

impl BnbAdmission for RmsKuoMokAdmission {
    fn encode_state(&self, state: &TaskSet, out: &mut Vec<u64>) {
        encode_taskset(state, out);
    }

    fn residual_upper(&self, state: &TaskSet, speed: f64) -> f64 {
        // The Kuo–Mok bound k(2^{1/k} − 1) ≤ 1, so any accepted set has
        // total utilization ≤ admit_rhs(speed).
        (admit_rhs(speed) - state.total_utilization()).max(0.0)
    }
}

impl BnbAdmission for RmsRtaAdmission {
    fn encode_state(&self, state: &TaskSet, out: &mut Vec<u64>) {
        encode_taskset(state, out);
    }

    fn residual_upper(&self, state: &TaskSet, speed: f64) -> f64 {
        // RM-schedulability (implicit deadlines) requires U ≤ speed; keep
        // the admit_rhs padding for float headroom.
        (admit_rhs(speed) - state.total_utilization()).max(0.0)
    }
}

/// Tasks accumulate in branch order, which is deterministic given the
/// assigned subset — so the ordered (wcet, period) list is a canonical
/// encoding of a machine's reachable `TaskSet` states.
fn encode_taskset(state: &TaskSet, out: &mut Vec<u64>) {
    out.push(state.len() as u64);
    for t in state.iter() {
        out.push(t.wcet());
        out.push(t.period());
    }
}

/// Tuning knobs for [`ExactSolver`]. The defaults match the old DFS's
/// contract (unlimited nodes, one worker) so drop-in callers behave.
#[derive(Debug, Clone, Copy)]
pub struct BnbConfig {
    /// Cap on branch nodes across *all* workers (expansion included);
    /// exhausting it yields [`ExactOutcome::Unknown`].
    pub node_budget: u64,
    /// Worker threads exploring frontier subtrees (min 1).
    pub workers: usize,
    /// Per-worker visited-filter entry cap; at saturation the filter
    /// stops inserting (sound — it is an optimization only).
    pub visited_cap: usize,
    /// Target frontier size for the deterministic breadth-first
    /// expansion. Worker-count independent by construction: determinism
    /// of the verdict depends on this, never on `workers`.
    pub frontier_target: usize,
}

impl Default for BnbConfig {
    fn default() -> Self {
        BnbConfig {
            node_budget: u64::MAX,
            workers: 1,
            visited_cap: 1 << 20,
            frontier_target: 256,
        }
    }
}

/// The parallel branch-and-bound exact solver. See the module docs for
/// the algorithm; construct with [`ExactSolver::new`], adjust via the
/// builder methods, then call one of the `solve*` entry points.
#[derive(Debug)]
pub struct ExactSolver<'a, A: BnbAdmission> {
    tasks: &'a TaskSet,
    platform: &'a Platform,
    alpha: Augmentation,
    admission: &'a A,
    config: BnbConfig,
}

/// A subtree root produced by the frontier expansion.
struct Node<St> {
    depth: usize,
    /// Slot chosen for each branch depth `0..depth`.
    path: Vec<usize>,
    states: Vec<St>,
}

/// Immutable per-solve search context shared by expansion and workers.
struct Ctx<'a, A: BnbAdmission> {
    tasks: &'a TaskSet,
    admission: &'a A,
    /// Original task index per branch depth (decreasing utilization).
    order: Vec<usize>,
    /// Utilization per branch depth (non-increasing).
    utils_desc: Vec<f64>,
    /// Augmented speed per slot (increasing-speed scan order).
    speeds: Vec<f64>,
    /// Original machine index per slot.
    machines: Vec<usize>,
    /// First slot of each slot's speed group (bitwise-equal speeds are
    /// contiguous after the sort).
    group_start: Vec<usize>,
    visited_cap: usize,
}

/// Reusable per-depth scratch: per-slot state encodings, a sort-index
/// buffer and the canonical key under construction.
#[derive(Default)]
struct DepthScratch {
    enc: Vec<Vec<u64>>,
    idx: Vec<usize>,
    key: Vec<u64>,
}

/// Outcome of exploring one subtree (or one DFS node).
enum Step {
    /// Complete assignment found; the worker recorded its path.
    Solution,
    /// Subtree exhaustively refuted.
    Refuted,
    /// Budget (gas or node pool) ran out — verdict is Unknown.
    Exhausted,
    /// A lower-index subtree already found a solution; abort.
    Superseded,
}

/// Local prune/visit counters, merged into the shared bank per worker.
#[derive(Default)]
struct Tally {
    nodes: u64,
    prune_bound: u64,
    prune_dominance: u64,
    prune_visited: u64,
}

#[derive(Default)]
struct SharedTally {
    nodes: AtomicU64,
    prune_bound: AtomicU64,
    prune_dominance: AtomicU64,
    prune_visited: AtomicU64,
    bloom_hits: AtomicU64,
    bloom_fp: AtomicU64,
    visited_inserts: AtomicU64,
    visited_saturated: AtomicU64,
}

impl SharedTally {
    fn add(&self, t: &Tally, visited: &VisitedFilter) {
        self.nodes.fetch_add(t.nodes, Ordering::Relaxed);
        self.prune_bound.fetch_add(t.prune_bound, Ordering::Relaxed);
        self.prune_dominance
            .fetch_add(t.prune_dominance, Ordering::Relaxed);
        self.prune_visited
            .fetch_add(t.prune_visited, Ordering::Relaxed);
        self.bloom_hits.fetch_add(
            visited.hits + visited.bloom_false_positives,
            Ordering::Relaxed,
        );
        self.bloom_fp
            .fetch_add(visited.bloom_false_positives, Ordering::Relaxed);
        self.visited_inserts
            .fetch_add(visited.len() as u64, Ordering::Relaxed);
        self.visited_saturated
            .fetch_add(visited.saturated_skips, Ordering::Relaxed);
    }
}

impl<A: BnbAdmission> Ctx<'_, A> {
    fn n(&self) -> usize {
        self.order.len()
    }

    fn m(&self) -> usize {
        self.speeds.len()
    }

    fn residual(&self, state: &A::State, slot: usize) -> f64 {
        self.admission
            .residual_upper(state, self.speeds[slot])
            .max(0.0)
    }

    /// Fill `sc.enc` with per-slot encodings and `sc.key` with the
    /// canonical key: depth, then per speed group the member encodings in
    /// lexicographic order (each length-prefixed). Sorting within groups
    /// is the machine-symmetry canonicalization — permuted assignments
    /// over equal-speed machines collapse to one key.
    fn canonical_key(&self, depth: usize, states: &[A::State], sc: &mut DepthScratch) {
        let mcount = self.m();
        sc.enc.resize_with(mcount, Vec::new);
        for slot in 0..mcount {
            sc.enc[slot].clear();
            self.admission
                .encode_state(&states[slot], &mut sc.enc[slot]);
        }
        sc.key.clear();
        sc.key.push(depth as u64);
        let mut slot = 0;
        while slot < mcount {
            let end = (slot + 1..mcount)
                .find(|&s| self.group_start[s] != self.group_start[slot])
                .unwrap_or(mcount);
            sc.idx.clear();
            sc.idx.extend(slot..end);
            sc.idx.sort_by(|&a, &b| sc.enc[a].cmp(&sc.enc[b]));
            for &i in &sc.idx {
                sc.key.push(sc.enc[i].len() as u64);
                sc.key.extend_from_slice(&sc.enc[i]);
            }
            slot = end;
        }
    }

    /// True when an earlier slot in the same speed group has an identical
    /// state encoding — assigning there first covers this branch.
    fn dominated(&self, slot: usize, sc: &DepthScratch) -> bool {
        (self.group_start[slot]..slot).any(|p| sc.enc[p] == sc.enc[slot])
    }

    /// Sorted-descending residual uppers of `states`.
    fn residuals_desc(&self, states: &[A::State]) -> Vec<f64> {
        let mut rd: Vec<f64> = states
            .iter()
            .enumerate()
            .map(|(slot, st)| self.residual(st, slot))
            .collect();
        rd.sort_by(|a, b| b.partial_cmp(a).expect("residuals are finite"));
        rd
    }

    /// Materialize a complete branch path as an [`Assignment`] in original
    /// task/machine indices.
    fn assignment_from_path(&self, path: &[usize]) -> Assignment {
        let mut a = Assignment::new(self.tasks.len(), self.machines.len());
        for (depth, &slot) in path.iter().enumerate() {
            a.assign(self.order[depth], self.machines[slot]);
        }
        a
    }
}

/// Shared node-budget pool: workers claim [`NODE_CHUNK`]-sized chunks; an
/// empty pool latches `dead` for everyone.
struct NodePool {
    pool: AtomicU64,
    capped: bool,
    dead: AtomicBool,
}

impl NodePool {
    fn new(budget: u64) -> Self {
        NodePool {
            pool: AtomicU64::new(budget),
            capped: budget != u64::MAX,
            dead: AtomicBool::new(false),
        }
    }

    /// Claim a chunk; `None` = budget exhausted (latched).
    fn claim(&self) -> Option<u64> {
        if self.dead.load(Ordering::Relaxed) {
            return None;
        }
        let r = self
            .pool
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |avail| {
                if avail == 0 {
                    None
                } else {
                    Some(avail - avail.min(NODE_CHUNK))
                }
            })
            .ok()
            .map(|before| before.min(NODE_CHUNK));
        if r.is_none() {
            self.dead.store(true, Ordering::Relaxed);
        }
        r
    }
}

/// Per-worker DFS state over one frontier subtree.
struct Worker<'c, A: BnbAdmission> {
    ctx: &'c Ctx<'c, A>,
    best: &'c AtomicUsize,
    node_pool: &'c NodePool,
    gas: SharedGas<'c>,
    node_local: u64,
    /// Index of the subtree currently being explored.
    id: usize,
    states: Vec<A::State>,
    path: Vec<usize>,
    /// Residual upper per slot, maintained incrementally.
    res: Vec<f64>,
    /// The same residuals sorted descending (the bound's input).
    res_desc: Vec<f64>,
    scratch: Vec<DepthScratch>,
    visited: VisitedFilter,
    tally: Tally,
    solution: Option<Vec<usize>>,
}

impl<'c, A: BnbAdmission> Worker<'c, A> {
    fn new(
        ctx: &'c Ctx<'c, A>,
        best: &'c AtomicUsize,
        pool: &'c NodePool,
        gas: SharedGas<'c>,
    ) -> Self {
        Worker {
            ctx,
            best,
            node_pool: pool,
            gas,
            node_local: 0,
            id: usize::MAX,
            states: Vec::new(),
            path: Vec::new(),
            res: Vec::new(),
            res_desc: Vec::new(),
            scratch: (0..=ctx.n()).map(|_| DepthScratch::default()).collect(),
            visited: VisitedFilter::new(ctx.visited_cap),
            tally: Tally::default(),
            solution: None,
        }
    }

    /// Consume one node of budget; `false` = exhausted.
    fn claim_node(&mut self) -> bool {
        if !self.node_pool.capped {
            return true;
        }
        if self.node_local == 0 {
            match self.node_pool.claim() {
                Some(chunk) => self.node_local = chunk,
                None => return false,
            }
        }
        self.node_local -= 1;
        true
    }

    /// Explore subtree `id` rooted at `node` to completion (or abort).
    fn explore(&mut self, id: usize, node: &Node<A::State>) -> Step {
        self.id = id;
        self.states.clear();
        self.states.extend(node.states.iter().cloned());
        self.path.clear();
        self.path.extend_from_slice(&node.path);
        self.res.clear();
        self.res.extend(
            self.states
                .iter()
                .enumerate()
                .map(|(slot, st)| self.ctx.residual(st, slot)),
        );
        self.res_desc.clear();
        self.res_desc.extend_from_slice(&self.res);
        self.res_desc
            .sort_by(|a, b| b.partial_cmp(a).expect("residuals are finite"));
        self.dfs(node.depth)
    }

    fn dfs(&mut self, depth: usize) -> Step {
        if depth == self.ctx.n() {
            self.solution = Some(self.path.clone());
            return Step::Solution;
        }
        if !self.claim_node() || self.gas.tick().is_err() {
            return Step::Exhausted;
        }
        self.tally.nodes += 1;
        if self.best.load(Ordering::Relaxed) < self.id {
            return Step::Superseded;
        }
        let mut sc = std::mem::take(&mut self.scratch[depth]);
        let step = self.dfs_body(depth, &mut sc);
        self.scratch[depth] = sc;
        step
    }

    fn dfs_body(&mut self, depth: usize, sc: &mut DepthScratch) -> Step {
        self.ctx.canonical_key(depth, &self.states, sc);
        if self.visited.contains(&sc.key) {
            self.tally.prune_visited += 1;
            return Step::Refuted;
        }
        if !level_feasible_sorted_f64(&self.ctx.utils_desc[depth..], &self.res_desc) {
            self.tally.prune_bound += 1;
            // A bound cut is a complete refutation of this state.
            self.visited.insert(&sc.key);
            return Step::Refuted;
        }
        let task = &self.ctx.tasks[self.ctx.order[depth]];
        for slot in 0..self.ctx.m() {
            if self.ctx.dominated(slot, sc) {
                self.tally.prune_dominance += 1;
                continue;
            }
            let Some(next) =
                self.ctx
                    .admission
                    .admit(&self.states[slot], task, self.ctx.speeds[slot])
            else {
                continue;
            };
            let new_res = self.ctx.residual(&next, slot);
            let old_res = self.res[slot];
            let saved = std::mem::replace(&mut self.states[slot], next);
            self.res[slot] = new_res;
            replace_desc(&mut self.res_desc, old_res, new_res);
            self.path.push(slot);
            match self.dfs(depth + 1) {
                Step::Refuted => {
                    self.path.pop();
                    self.states[slot] = saved;
                    self.res[slot] = old_res;
                    replace_desc(&mut self.res_desc, new_res, old_res);
                }
                // Solution / Exhausted / Superseded: unwind without undo —
                // this subtree's traversal state is abandoned either way.
                other => return other,
            }
        }
        // Every child refuted: the state itself is refuted — only now may
        // it enter the visited filter (insert-on-refute, see module docs).
        self.visited.insert(&sc.key);
        Step::Refuted
    }
}

/// Replace one value in a descending-sorted vector, preserving order.
/// `old` is compared bitwise-exactly (it is the value previously stored),
/// so duplicates are harmless. O(m) memmove, no allocation.
fn replace_desc(v: &mut [f64], old: f64, new: f64) {
    let i = v
        .iter()
        .position(|&x| x == old)
        .expect("old residual present in sorted view");
    // Bubble the hole toward new's sorted position.
    let mut i = i;
    if new <= old {
        while i + 1 < v.len() && v[i + 1] > new {
            v[i] = v[i + 1];
            i += 1;
        }
    } else {
        while i > 0 && v[i - 1] < new {
            v[i] = v[i - 1];
            i -= 1;
        }
    }
    v[i] = new;
}

enum Expansion<St> {
    Decided(ExactOutcome),
    Frontier(Vec<Node<St>>),
}

impl<'a, A: BnbAdmission> ExactSolver<'a, A> {
    /// Solver over `tasks`/`platform` with `admission` at speed
    /// augmentation 1 (override with [`ExactSolver::alpha`]).
    pub fn new(tasks: &'a TaskSet, platform: &'a Platform, admission: &'a A) -> Self {
        ExactSolver {
            tasks,
            platform,
            alpha: Augmentation::NONE,
            admission,
            config: BnbConfig::default(),
        }
    }

    /// Set the speed augmentation factor.
    pub fn alpha(mut self, alpha: Augmentation) -> Self {
        self.alpha = alpha;
        self
    }

    /// Replace the whole tuning config.
    pub fn config(mut self, config: BnbConfig) -> Self {
        self.config = config;
        self
    }

    /// Set the worker-thread count.
    pub fn workers(mut self, workers: usize) -> Self {
        self.config.workers = workers.max(1);
        self
    }

    /// Set the global node budget.
    pub fn node_budget(mut self, nodes: u64) -> Self {
        self.config.node_budget = nodes;
        self
    }

    /// Solve with unlimited gas and no metrics.
    pub fn solve(&self) -> ExactOutcome {
        self.solve_within(&mut Gas::unlimited())
    }

    /// Solve under an execution budget (exhaustion ⇒
    /// [`ExactOutcome::Unknown`], latched stickily into `gas`).
    pub fn solve_within(&self, gas: &mut Gas) -> ExactOutcome {
        self.solve_with(gas, &())
    }

    /// Solve under a budget, emitting `bnb.*` counters into `sink`.
    pub fn solve_with<S: MetricsSink>(&self, gas: &mut Gas, sink: &S) -> ExactOutcome {
        // An already-exhausted (or zero) budget must surface as Unknown
        // before any work happens — the sticky-exhaustion contract the
        // degradation ladders rely on.
        if gas.tick().is_err() {
            if S::ENABLED {
                sink.counter_add(m::BNB_EXHAUSTED, 1);
            }
            return ExactOutcome::Unknown;
        }

        // Phase 0: the first-fit incumbent. A feasible heuristic witness
        // settles the decision problem without any search.
        let ff = first_fit(self.tasks, self.platform, self.alpha, self.admission);
        if let Outcome::Feasible(a) = ff {
            if S::ENABLED {
                sink.counter_add(m::BNB_FF_INCUMBENT, 1);
            }
            return ExactOutcome::Feasible(a);
        }

        let ctx = self.build_ctx();
        let mut tally = Tally::default();

        // Phase 1: root bound.
        let root_states: Vec<A::State> =
            (0..ctx.m()).map(|_| self.admission.empty_state()).collect();
        if !level_feasible_sorted_f64(&ctx.utils_desc, &ctx.residuals_desc(&root_states)) {
            tally.prune_bound += 1;
            self.flush(sink, &tally, None, 0);
            return ExactOutcome::Infeasible;
        }

        let shared = gas.share();
        let pool = NodePool::new(self.config.node_budget);

        // Phase 2: deterministic breadth-first frontier expansion. Runs
        // identically for every worker count — all worker-dependent
        // execution happens strictly after the frontier is fixed.
        let expansion = self.expand(&ctx, root_states, &pool, &shared, &mut tally);
        let frontier = match expansion {
            Expansion::Decided(out) => {
                gas.absorb(&shared);
                self.flush(sink, &tally, None, 0);
                return out;
            }
            Expansion::Frontier(nodes) => nodes,
        };

        // Phase 3: parallel subtree exploration with the min-index
        // incumbent rule.
        let workers = self.config.workers.max(1);
        let queue = TakeQueue::new(&frontier);
        let best = AtomicUsize::new(usize::MAX);
        let solutions: Vec<Mutex<Option<Vec<usize>>>> =
            (0..frontier.len()).map(|_| Mutex::new(None)).collect();
        let bank = SharedTally::default();
        run_workers(workers, |_| {
            let mut w = Worker::new(&ctx, &best, &pool, shared.gas());
            while let Some((id, node)) = queue.take() {
                if best.load(Ordering::Relaxed) < id {
                    continue;
                }
                match w.explore(id, node) {
                    Step::Solution => {
                        best.fetch_min(id, Ordering::Relaxed);
                        *solutions[id].lock().expect("solution slot poisoned") = w.solution.take();
                    }
                    Step::Refuted | Step::Superseded => {}
                    Step::Exhausted => break,
                }
            }
            bank.add(&w.tally, &w.visited);
        });
        gas.absorb(&shared);
        tally.nodes += bank.nodes.load(Ordering::Relaxed);
        tally.prune_bound += bank.prune_bound.load(Ordering::Relaxed);
        tally.prune_dominance += bank.prune_dominance.load(Ordering::Relaxed);
        tally.prune_visited += bank.prune_visited.load(Ordering::Relaxed);
        self.flush(sink, &tally, Some(&bank), frontier.len());

        let best_id = best.load(Ordering::Relaxed);
        if best_id != usize::MAX {
            let path = solutions[best_id]
                .lock()
                .expect("solution slot poisoned")
                .take()
                .expect("winning subtree stored its path");
            return ExactOutcome::Feasible(ctx.assignment_from_path(&path));
        }
        if pool.dead.load(Ordering::Relaxed) || shared.exhausted().is_some() {
            if S::ENABLED {
                sink.counter_add(m::BNB_EXHAUSTED, 1);
            }
            return ExactOutcome::Unknown;
        }
        ExactOutcome::Infeasible
    }

    fn build_ctx(&self) -> Ctx<'a, A> {
        let machines = self.platform.order_by_increasing_speed();
        let speeds: Vec<f64> = machines
            .iter()
            .map(|&mi| self.alpha.factor() * self.platform.speed_f64(mi))
            .collect();
        let mut group_start = vec![0usize; speeds.len()];
        for slot in 1..speeds.len() {
            group_start[slot] = if speeds[slot].to_bits() == speeds[slot - 1].to_bits() {
                group_start[slot - 1]
            } else {
                slot
            };
        }
        let order = self.tasks.order_by_decreasing_utilization();
        let utils_desc: Vec<f64> = order.iter().map(|&t| self.tasks[t].utilization()).collect();
        Ctx {
            tasks: self.tasks,
            admission: self.admission,
            order,
            utils_desc,
            speeds,
            machines,
            group_start,
            visited_cap: self.config.visited_cap,
        }
    }

    /// Level-synchronized breadth-first expansion to ~`frontier_target`
    /// subtree roots. Children are generated in slot order, deduplicated
    /// by canonical key (first occurrence kept — which is also what makes
    /// the min-index witness the deterministic one), bound-pruned on pop,
    /// and metered like any other node.
    fn expand(
        &self,
        ctx: &Ctx<'a, A>,
        root_states: Vec<A::State>,
        pool: &NodePool,
        shared: &SharedBudget,
        tally: &mut Tally,
    ) -> Expansion<A::State> {
        let mut gas = shared.gas();
        let mut nodes_local = 0u64;
        let claim = |nodes_local: &mut u64| -> bool {
            if !pool.capped {
                return true;
            }
            if *nodes_local == 0 {
                match pool.claim() {
                    Some(chunk) => *nodes_local = chunk,
                    None => return false,
                }
            }
            *nodes_local -= 1;
            true
        };

        let mut queue: VecDeque<Node<A::State>> = VecDeque::new();
        queue.push_back(Node {
            depth: 0,
            path: Vec::new(),
            states: root_states,
        });
        let mut seen: HashSet<Vec<u64>> = HashSet::new();
        let mut sc = DepthScratch::default();
        let mut child_sc = DepthScratch::default();

        while queue.len() < self.config.frontier_target.max(1) {
            let Some(node) = queue.pop_front() else {
                // Whole tree refuted during expansion.
                return Expansion::Decided(ExactOutcome::Infeasible);
            };
            if node.depth == ctx.n() {
                return Expansion::Decided(ExactOutcome::Feasible(
                    ctx.assignment_from_path(&node.path),
                ));
            }
            if !claim(&mut nodes_local) || gas.tick().is_err() {
                return Expansion::Decided(ExactOutcome::Unknown);
            }
            tally.nodes += 1;
            ctx.canonical_key(node.depth, &node.states, &mut sc);
            if !level_feasible_sorted_f64(
                &ctx.utils_desc[node.depth..],
                &ctx.residuals_desc(&node.states),
            ) {
                tally.prune_bound += 1;
                continue;
            }
            let task = &ctx.tasks[ctx.order[node.depth]];
            for slot in 0..ctx.m() {
                if ctx.dominated(slot, &sc) {
                    tally.prune_dominance += 1;
                    continue;
                }
                let Some(next) = ctx
                    .admission
                    .admit(&node.states[slot], task, ctx.speeds[slot])
                else {
                    continue;
                };
                let mut states = node.states.clone();
                states[slot] = next;
                let mut path = node.path.clone();
                path.push(slot);
                if node.depth + 1 == ctx.n() {
                    return Expansion::Decided(ExactOutcome::Feasible(
                        ctx.assignment_from_path(&path),
                    ));
                }
                ctx.canonical_key(node.depth + 1, &states, &mut child_sc);
                if seen.insert(child_sc.key.clone()) {
                    queue.push_back(Node {
                        depth: node.depth + 1,
                        path,
                        states,
                    });
                } else {
                    tally.prune_visited += 1;
                }
            }
        }
        Expansion::Frontier(queue.into_iter().collect())
    }

    fn flush<S: MetricsSink>(
        &self,
        sink: &S,
        tally: &Tally,
        bank: Option<&SharedTally>,
        frontier: usize,
    ) {
        if !S::ENABLED {
            return;
        }
        sink.counter_add(m::BNB_NODES, tally.nodes);
        sink.counter_add(m::BNB_PRUNE_BOUND, tally.prune_bound);
        sink.counter_add(m::BNB_PRUNE_DOMINANCE, tally.prune_dominance);
        sink.counter_add(m::BNB_PRUNE_VISITED, tally.prune_visited);
        sink.counter_add(m::BNB_FRONTIER, frontier as u64);
        sink.counter_add(m::BNB_WORKERS, self.config.workers.max(1) as u64);
        if let Some(bank) = bank {
            sink.counter_add(m::BNB_BLOOM_HITS, bank.bloom_hits.load(Ordering::Relaxed));
            sink.counter_add(m::BNB_BLOOM_FP, bank.bloom_fp.load(Ordering::Relaxed));
            sink.counter_add(
                m::BNB_VISITED_INSERTS,
                bank.visited_inserts.load(Ordering::Relaxed),
            );
            sink.counter_add(
                m::BNB_VISITED_SATURATED,
                bank.visited_saturated.load(Ordering::Relaxed),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact::{exact_partition_dfs, exact_partition_dfs_within};
    use hetfeas_obs::MemorySink;
    use hetfeas_robust::Budget;

    fn ts(pairs: &[(u64, u64)]) -> TaskSet {
        TaskSet::from_pairs(pairs.iter().copied()).unwrap()
    }

    /// 17 tasks of util 0.334 (max 2 per unit machine) + 33 light fillers
    /// on 8 identical machines: infeasible (17 heavies need 9 machines),
    /// but the plain utilization check (7.328 < 8) cannot see it and the
    /// old DFS drowns in the 8^17 heavy placements.
    fn gate_infeasible_n50_m8() -> (TaskSet, Platform) {
        let mut pairs = vec![(334u64, 1000u64); 17];
        pairs.extend(vec![(5, 100); 33]);
        (ts(&pairs), Platform::identical(8).unwrap())
    }

    /// 8 × (0.42, 0.30, 0.28) triples on 8 unit machines: Σ = 8.0 exactly,
    /// so only the perfect per-machine {0.42, 0.30, 0.28} packing works.
    /// First-fit(dec) fails (it pairs the 0.42s), so the verdict and the
    /// witness must come out of the search itself.
    fn perfect_triples_n24_m8() -> (TaskSet, Platform) {
        let mut pairs = Vec::new();
        for _ in 0..8 {
            pairs.extend([(42u64, 100u64), (30, 100), (28, 100)]);
        }
        (ts(&pairs), Platform::identical(8).unwrap())
    }

    #[test]
    fn agrees_with_old_dfs_on_exhaustive_small_grid() {
        let p1 = Platform::from_int_speeds([1, 2]).unwrap();
        let p2 = Platform::identical(2).unwrap();
        let menu: [(u64, u64); 3] = [(95, 100), (100, 100), (120, 100)];
        for p in [&p1, &p2] {
            for a in menu {
                for b in menu {
                    for c in menu {
                        let tasks = ts(&[a, b, c]);
                        let dfs = exact_partition_dfs(
                            &tasks,
                            p,
                            Augmentation::NONE,
                            &EdfAdmission,
                            1 << 20,
                        );
                        let bnb = ExactSolver::new(&tasks, p, &EdfAdmission).solve();
                        assert_eq!(
                            dfs.is_feasible(),
                            bnb.is_feasible(),
                            "verdict mismatch on {a:?} {b:?} {c:?}"
                        );
                        if let ExactOutcome::Feasible(w) = &bnb {
                            assert!(w.validate(&tasks, p, 1.0, &EdfAdmission));
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn gate_decides_n50_m8_where_old_dfs_exhausts() {
        let (tasks, p) = gate_infeasible_n50_m8();
        // The old DFS burns its whole 2M-node budget without an answer...
        let dfs = exact_partition_dfs(&tasks, &p, Augmentation::NONE, &EdfAdmission, 2_000_000);
        assert_eq!(dfs, ExactOutcome::Unknown);
        // ...the B&B refutes it well inside the same budget.
        let sink = MemorySink::new();
        let bnb = ExactSolver::new(&tasks, &p, &EdfAdmission)
            .node_budget(2_000_000)
            .solve_with(&mut Gas::unlimited(), &sink);
        assert_eq!(bnb, ExactOutcome::Infeasible);
        assert!(
            sink.counter(m::BNB_NODES) < 200_000,
            "expected collapse via dominance/visited pruning, used {} nodes",
            sink.counter(m::BNB_NODES)
        );
    }

    #[test]
    fn verdict_and_witness_identical_across_worker_counts() {
        let (inf_tasks, inf_p) = gate_infeasible_n50_m8();
        let (fea_tasks, fea_p) = perfect_triples_n24_m8();
        for (tasks, p) in [(&inf_tasks, &inf_p), (&fea_tasks, &fea_p)] {
            let outs: Vec<ExactOutcome> = [1usize, 2, 8]
                .into_iter()
                .map(|w| {
                    ExactSolver::new(tasks, p, &EdfAdmission)
                        .workers(w)
                        .node_budget(4_000_000)
                        .solve()
                })
                .collect();
            assert_eq!(outs[0], outs[1], "workers 1 vs 2");
            assert_eq!(outs[0], outs[2], "workers 1 vs 8");
            assert!(outs[0].is_decided());
            if let ExactOutcome::Feasible(w) = &outs[0] {
                assert!(w.validate(tasks, p, 1.0, &EdfAdmission));
            }
        }
    }

    #[test]
    fn search_finds_packing_first_fit_misses() {
        let (tasks, p) = perfect_triples_n24_m8();
        let ff = first_fit(&tasks, &p, Augmentation::NONE, &EdfAdmission);
        assert!(!ff.is_feasible(), "instance must defeat the incumbent");
        let out = ExactSolver::new(&tasks, &p, &EdfAdmission).solve();
        let ExactOutcome::Feasible(w) = out else {
            panic!("perfect packing exists, got {out:?}");
        };
        assert!(w.validate(&tasks, &p, 1.0, &EdfAdmission));
    }

    #[test]
    fn ff_incumbent_short_circuits_feasible_instances() {
        let mut pairs = vec![(334u64, 1000u64); 16];
        pairs.extend(vec![(5, 100); 34]);
        let tasks = ts(&pairs);
        let p = Platform::identical(8).unwrap();
        let sink = MemorySink::new();
        let out =
            ExactSolver::new(&tasks, &p, &EdfAdmission).solve_with(&mut Gas::unlimited(), &sink);
        assert!(out.is_feasible());
        assert_eq!(sink.counter(m::BNB_FF_INCUMBENT), 1);
        assert_eq!(sink.counter(m::BNB_NODES), 0);
    }

    #[test]
    fn tiny_node_budget_returns_unknown_never_wrong() {
        // FF fails on this infeasible blowup, so the search must run —
        // and a 1-node budget cannot decide anything.
        let tasks = ts(&vec![(334, 1000); 13]);
        let p = Platform::identical(6).unwrap();
        let out = ExactSolver::new(&tasks, &p, &EdfAdmission)
            .node_budget(1)
            .solve();
        assert_eq!(out, ExactOutcome::Unknown);
    }

    #[test]
    fn gas_exhaustion_is_unknown_and_sticky() {
        // Distinct utilizations defeat the dedup collapse, so a tiny ops
        // budget exhausts mid-search.
        let pairs: Vec<(u64, u64)> = (0..21).map(|i| (451 + i, 1000)).collect();
        let tasks = ts(&pairs);
        let p = Platform::identical(10).unwrap();
        let mut gas = Budget::ops(2_000).gas();
        let out = ExactSolver::new(&tasks, &p, &EdfAdmission).solve_within(&mut gas);
        assert_eq!(out, ExactOutcome::Unknown);
        // Sticky: the caller's meter is latched after absorb.
        assert!(gas.tick().is_err());
    }

    #[test]
    fn old_identical_util_blowup_now_decides_fast() {
        // 13 × 0.334 on 6 machines took the old DFS ~4M nodes; state
        // collapse shrinks it to a few hundred.
        let tasks = ts(&vec![(334, 1000); 13]);
        let p = Platform::identical(6).unwrap();
        let sink = MemorySink::new();
        let out = ExactSolver::new(&tasks, &p, &EdfAdmission)
            .node_budget(50_000)
            .solve_with(&mut Gas::unlimited(), &sink);
        assert_eq!(out, ExactOutcome::Infeasible);
        assert!(sink.counter(m::BNB_NODES) < 10_000);
    }

    #[test]
    fn rms_ll_solver_agrees_with_dfs() {
        let p = Platform::identical(2).unwrap();
        let menu: [(u64, u64); 3] = [(41, 100), (50, 100), (30, 100)];
        for a in menu {
            for b in menu {
                for c in menu {
                    for d in menu {
                        let tasks = ts(&[a, b, c, d]);
                        let dfs = exact_partition_dfs(
                            &tasks,
                            &p,
                            Augmentation::NONE,
                            &RmsLlAdmission,
                            1 << 20,
                        );
                        let bnb = ExactSolver::new(&tasks, &p, &RmsLlAdmission).solve();
                        assert_eq!(dfs.is_feasible(), bnb.is_feasible());
                        if let ExactOutcome::Feasible(w) = &bnb {
                            assert!(w.validate(&tasks, &p, 1.0, &RmsLlAdmission));
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn heterogeneous_speeds_group_only_equal_machines() {
        // speeds [1, 1, 2]: the two unit machines form one dominance
        // group, the fast one its own. Feasibility must respect that.
        let tasks = ts(&[(18, 10), (9, 10), (9, 10)]); // 1.8, 0.9, 0.9
        let p = Platform::from_int_speeds([1, 1, 2]).unwrap();
        let out = ExactSolver::new(&tasks, &p, &EdfAdmission).solve();
        assert!(out.is_feasible());
        let tasks = ts(&[(18, 10), (19, 10), (9, 10)]); // 1.8+1.9 need the fast one twice
        let out = ExactSolver::new(&tasks, &p, &EdfAdmission).solve();
        assert_eq!(out, ExactOutcome::Infeasible);
    }

    #[test]
    fn budgeted_dfs_and_bnb_agree_when_both_decide() {
        let mut gas = Gas::unlimited();
        let (tasks, p) = perfect_triples_n24_m8();
        let bnb = ExactSolver::new(&tasks, &p, &EdfAdmission).solve_within(&mut gas);
        let dfs = exact_partition_dfs_within(
            &tasks,
            &p,
            Augmentation::NONE,
            &EdfAdmission,
            1 << 26,
            &mut Gas::unlimited(),
        );
        if dfs.is_decided() {
            assert_eq!(dfs.is_feasible(), bnb.is_feasible());
        }
    }

    #[test]
    fn replace_desc_keeps_order() {
        let mut v = vec![5.0, 4.0, 3.0, 2.0, 1.0];
        replace_desc(&mut v, 3.0, 4.5);
        assert_eq!(v, vec![5.0, 4.5, 4.0, 2.0, 1.0]);
        replace_desc(&mut v, 4.5, 0.5);
        assert_eq!(v, vec![5.0, 4.0, 2.0, 1.0, 0.5]);
        replace_desc(&mut v, 5.0, 5.0);
        assert_eq!(v, vec![5.0, 4.0, 2.0, 1.0, 0.5]);
        // Duplicates: removing either is fine.
        let mut v = vec![2.0, 2.0, 1.0];
        replace_desc(&mut v, 2.0, 0.0);
        assert_eq!(v, vec![2.0, 1.0, 0.0]);
    }

    #[test]
    fn empty_taskset_is_feasible() {
        let tasks = TaskSet::empty();
        let p = Platform::identical(2).unwrap();
        let out = ExactSolver::new(&tasks, &p, &EdfAdmission).solve();
        assert!(out.is_feasible());
    }
}
