//! LP-guided rounding partitioner — a baseline the paper does not study.
//!
//! The paper's analysis lives entirely in the LP; a natural question is
//! whether *using* the LP algorithmically (not just analytically) buys
//! anything over the oblivious first-fit. This heuristic solves the paper's
//! LP on the α-augmented platform and greedily rounds: tasks in
//! non-increasing utilization order go to the admitting machine where the
//! LP placed the largest utilization share. Experiment E11 compares it
//! against first-fit.
//!
//! (There is no approximation guarantee claimed here — rounding the
//! feasibility LP can fail even when first-fit succeeds; it is a baseline,
//! not an improvement.)

use crate::assignment::Assignment;
use hetfeas_lp::solve_paper_lp;
use hetfeas_model::{approx_le, Augmentation, Platform, TaskSet};

/// Partition by greedy rounding of the paper's LP at augmented speeds
/// `alpha·s_j`, with EDF per-machine admission. Returns `None` when the LP
/// is infeasible or the rounding gets stuck.
pub fn lp_rounding_partition(
    tasks: &TaskSet,
    platform: &Platform,
    alpha: Augmentation,
) -> Option<Assignment> {
    let alpha = alpha.factor();
    let aug_speeds: Vec<f64> = (0..platform.len())
        .map(|j| alpha * platform.speed_f64(j))
        .collect();
    let augmented = Platform::from_f64_speeds(aug_speeds.iter().copied()).ok()?;
    let point = solve_paper_lp(tasks, &augmented)?;

    let order = tasks.order_by_decreasing_utilization();
    let mut loads = vec![0.0f64; platform.len()];
    let mut assignment = Assignment::new(tasks.len(), platform.len());
    for ti in order {
        let w = tasks[ti].utilization();
        // Machines ranked by the LP's fractional preference for this task.
        let mut ranked: Vec<usize> = (0..platform.len()).collect();
        ranked.sort_by(|&a, &b| {
            point
                .u(ti, b)
                .partial_cmp(&point.u(ti, a))
                .expect("LP values are finite")
                .then(a.cmp(&b))
        });
        let slot = ranked
            .into_iter()
            .find(|&j| approx_le(loads[j] + w, aug_speeds[j]))?;
        loads[slot] += w;
        assignment.assign(ti, slot);
    }
    Some(assignment)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::admission::EdfAdmission;
    use crate::first_fit::first_fit;

    #[test]
    fn rounds_a_feasible_instance() {
        let tasks = TaskSet::from_pairs([(9, 10), (4, 10), (3, 10), (6, 20)]).unwrap();
        let platform = Platform::from_int_speeds([1, 2]).unwrap();
        let a = lp_rounding_partition(&tasks, &platform, Augmentation::NONE)
            .expect("instance is partitionable");
        assert!(a.is_complete());
        assert!(a.validate(&tasks, &platform, 1.0, &EdfAdmission));
    }

    #[test]
    fn infeasible_lp_returns_none() {
        let tasks = TaskSet::from_pairs([(3, 1)]).unwrap(); // util 3 > max speed
        let platform = Platform::from_int_speeds([1, 2]).unwrap();
        assert!(lp_rounding_partition(&tasks, &platform, Augmentation::NONE).is_none());
    }

    #[test]
    fn augmentation_rescues() {
        let tasks = TaskSet::from_pairs([(8, 10), (8, 10), (8, 10)]).unwrap();
        let platform = Platform::identical(2).unwrap();
        assert!(lp_rounding_partition(&tasks, &platform, Augmentation::NONE).is_none());
        let a = lp_rounding_partition(&tasks, &platform, Augmentation::EDF_VS_PARTITIONED)
            .expect("α = 2 gives plenty of room");
        assert!(a.validate(&tasks, &platform, 2.0, &EdfAdmission));
    }

    #[test]
    fn agreement_rate_with_first_fit_on_small_grid() {
        // Neither strictly dominates; verify both accept clearly-loose
        // instances and both reject clearly-impossible ones.
        let platform = Platform::from_int_speeds([1, 1, 2]).unwrap();
        let loose = TaskSet::from_pairs([(1, 10), (1, 10), (1, 10)]).unwrap();
        assert!(first_fit(&loose, &platform, Augmentation::NONE, &EdfAdmission).is_feasible());
        assert!(lp_rounding_partition(&loose, &platform, Augmentation::NONE).is_some());
        let hopeless = TaskSet::from_pairs(vec![(1, 1); 5]).unwrap(); // 5.0 > 4.0
        assert!(!first_fit(&hopeless, &platform, Augmentation::NONE, &EdfAdmission).is_feasible());
        assert!(lp_rounding_partition(&hopeless, &platform, Augmentation::NONE).is_none());
    }
}
