//! Graceful-degradation ladders: salvage a *sound* (possibly conservative)
//! verdict when an exact computation runs out of budget.
//!
//! The exact partitioned oracle is a branch-and-bound over an NP-hard
//! question; under a wall-clock or ops budget it may come back
//! [`ExactOutcome::Unknown`]. Rather than surface "don't know" directly,
//! the ladder walks down to cheaper tests whose one-sided guarantees still
//! hold:
//!
//! * **exact → first-fit**: a completed first-fit partition at α = 1 is a
//!   constructive witness — `Feasible` stays sound (the paper's §III test
//!   is sufficient for partitioned feasibility).
//! * **first-fit → utilization bound**: total utilization exceeding total
//!   speed certifies `Infeasible` against *every* adversary.
//! * **LP → first-fit constant**: first-fit feasibility at α = 1 implies
//!   LP feasibility (a partition induces an LP point), and first-fit
//!   *in*feasibility at α = 2.98 ([`Augmentation::EDF_VS_ANY`]) refutes the
//!   LP by Theorem I.3's contrapositive.
//!
//! Anything the ladder cannot certify is reported as
//! [`LadderVerdict::Undecided`] — degraded answers are conservative, never
//! wrong. Each downgrade increments `robust.degraded` (and the triggering
//! exhaustion increments `robust.budget_exhausted`) in the supplied
//! [`MetricsSink`], so sweeps can quantify how often the budget bit.

use crate::admission::EdfAdmission;
use crate::assignment::{Assignment, Outcome};
use crate::bnb::ExactSolver;
use crate::exact::ExactOutcome;
use crate::first_fit::first_fit;
use hetfeas_model::{approx_le, Augmentation, Platform, TaskSet};
use hetfeas_obs::MetricsSink;
use hetfeas_robust::metrics as rmetrics;
use hetfeas_robust::Gas;

/// A possibly-degraded verdict. `Feasible`/`Infeasible` are sound whichever
/// rung produced them; `Undecided` means no rung could certify either way
/// within budget.
#[derive(Debug, Clone, PartialEq)]
pub enum LadderVerdict {
    /// A feasible schedule exists; the witness partition is included when
    /// the deciding rung constructed one.
    Feasible {
        /// Witness assignment (exact search or first-fit rungs).
        witness: Option<Assignment>,
    },
    /// Certified infeasible.
    Infeasible,
    /// No rung could decide within budget.
    Undecided,
}

impl LadderVerdict {
    /// True for [`LadderVerdict::Feasible`].
    pub fn is_feasible(&self) -> bool {
        matches!(self, LadderVerdict::Feasible { .. })
    }

    /// True for a definite answer.
    pub fn is_decided(&self) -> bool {
        !matches!(self, LadderVerdict::Undecided)
    }

    /// Stable short name: `feasible` / `infeasible` / `undecided`.
    pub const fn as_str(&self) -> &'static str {
        match self {
            LadderVerdict::Feasible { .. } => "feasible",
            LadderVerdict::Infeasible => "infeasible",
            LadderVerdict::Undecided => "undecided",
        }
    }
}

/// Outcome of a ladder run: the verdict, the rung that produced it, and
/// how many downgrades it took to get there (0 = the exact rung decided).
#[derive(Debug, Clone, PartialEq)]
pub struct LadderReport {
    /// The (sound) verdict.
    pub verdict: LadderVerdict,
    /// Stable name of the deciding rung, e.g. `exact`, `first-fit`,
    /// `utilization-bound`, `lp-simplex`, `first-fit-2.98`.
    pub level: &'static str,
    /// Number of downgrade steps taken before the verdict.
    pub degraded: u32,
}

/// Budgeted exact partitioned-EDF feasibility with graceful degradation:
/// exact branch-and-bound → first-fit witness → utilization bound.
///
/// The exact rung runs against `gas`; the fallback rungs are closed-form
/// `O(n log n)` computations and always terminate. Every downgrade bumps
/// `robust.degraded` in `sink` (pass `&()` to discard the counters).
pub fn exact_partition_edf_degraded<S: MetricsSink>(
    tasks: &TaskSet,
    platform: &Platform,
    node_budget: u64,
    gas: &mut Gas,
    sink: &S,
) -> LadderReport {
    exact_partition_edf_degraded_workers(tasks, platform, node_budget, 1, gas, sink)
}

/// [`exact_partition_edf_degraded`] with the exact rung running the
/// branch-and-bound solver across `workers` threads. The ladder semantics
/// are unchanged — worker count affects only how much of the tree a given
/// budget covers, never the verdict reached when the budget suffices.
pub fn exact_partition_edf_degraded_workers<S: MetricsSink>(
    tasks: &TaskSet,
    platform: &Platform,
    node_budget: u64,
    workers: usize,
    gas: &mut Gas,
    sink: &S,
) -> LadderReport {
    match ExactSolver::new(tasks, platform, &EdfAdmission)
        .node_budget(node_budget)
        .workers(workers)
        .solve_with(gas, sink)
    {
        ExactOutcome::Feasible(a) => {
            return LadderReport {
                verdict: LadderVerdict::Feasible { witness: Some(a) },
                level: "exact",
                degraded: 0,
            }
        }
        ExactOutcome::Infeasible => {
            return LadderReport {
                verdict: LadderVerdict::Infeasible,
                level: "exact",
                degraded: 0,
            }
        }
        ExactOutcome::Unknown => {}
    }
    sink.counter_add(rmetrics::ROBUST_BUDGET_EXHAUSTED, 1);

    // Rung 2: the paper's first-fit test at speed 1 — a constructed
    // partition is a witness of feasibility regardless of the search state.
    sink.counter_add(rmetrics::ROBUST_DEGRADED, 1);
    if let Outcome::Feasible(a) = first_fit(tasks, platform, Augmentation::NONE, &EdfAdmission) {
        return LadderReport {
            verdict: LadderVerdict::Feasible { witness: Some(a) },
            level: "first-fit",
            degraded: 1,
        };
    }

    // Rung 3: total utilization above total speed refutes every schedule.
    sink.counter_add(rmetrics::ROBUST_DEGRADED, 1);
    if !approx_le(tasks.total_utilization(), platform.total_speed()) {
        return LadderReport {
            verdict: LadderVerdict::Infeasible,
            level: "utilization-bound",
            degraded: 2,
        };
    }
    LadderReport {
        verdict: LadderVerdict::Undecided,
        level: "utilization-bound",
        degraded: 2,
    }
}

/// Budgeted LP (migrative-adversary) feasibility with graceful
/// degradation: simplex → first-fit at α = 1 (sufficiency) → first-fit at
/// α = 2.98 (Theorem I.3 refutation).
///
/// The closed-form [`hetfeas_lp::lp_feasible`] decides this exactly and
/// cheaply — this ladder exists for callers that specifically want the
/// simplex point (E3/E4 cross-validation) yet must stay responsive under
/// adversarial inputs.
pub fn lp_feasible_degraded<S: MetricsSink>(
    tasks: &TaskSet,
    platform: &Platform,
    gas: &mut Gas,
    sink: &S,
) -> LadderReport {
    match hetfeas_lp::solve_paper_lp_within(tasks, platform, gas) {
        Ok(Some(_)) => {
            return LadderReport {
                verdict: LadderVerdict::Feasible { witness: None },
                level: "lp-simplex",
                degraded: 0,
            }
        }
        Ok(None) => {
            return LadderReport {
                verdict: LadderVerdict::Infeasible,
                level: "lp-simplex",
                degraded: 0,
            }
        }
        Err(_) => {}
    }
    sink.counter_add(rmetrics::ROBUST_BUDGET_EXHAUSTED, 1);

    // Rung 2: a first-fit partition at speed 1 induces a feasible LP point.
    sink.counter_add(rmetrics::ROBUST_DEGRADED, 1);
    if first_fit(tasks, platform, Augmentation::NONE, &EdfAdmission).is_feasible() {
        return LadderReport {
            verdict: LadderVerdict::Feasible { witness: None },
            level: "first-fit",
            degraded: 1,
        };
    }

    // Rung 3: Theorem I.3 — first-fit at α = 2.98 accepts everything the
    // LP adversary can schedule, so failure at 2.98 refutes the LP.
    sink.counter_add(rmetrics::ROBUST_DEGRADED, 1);
    if !first_fit(tasks, platform, Augmentation::EDF_VS_ANY, &EdfAdmission).is_feasible() {
        return LadderReport {
            verdict: LadderVerdict::Infeasible,
            level: "first-fit-2.98",
            degraded: 2,
        };
    }
    LadderReport {
        verdict: LadderVerdict::Undecided,
        level: "first-fit-2.98",
        degraded: 2,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetfeas_obs::MemorySink;
    use hetfeas_robust::Budget;

    fn blowup_instance() -> (TaskSet, Platform) {
        // 21 tasks with *distinct* utilizations ≈ 0.451..0.471 on 10 unit
        // machines: infeasible (only two fit a machine, and 21 > 20 slots)
        // but utilization 9.68 < 10 defeats the trivial check, distinct
        // utilizations defeat the B&B's dominance/visited collapse, and
        // the LP bound only bites deep in the tree — refutation genuinely
        // costs an exponential search.
        (
            TaskSet::from_pairs((0..21u64).map(|i| (451 + i, 1000))).unwrap(),
            Platform::identical(10).unwrap(),
        )
    }

    #[test]
    fn exact_rung_decides_small_instances_without_degrading() {
        let tasks = TaskSet::from_pairs([(6, 10), (6, 10), (4, 10), (4, 10)]).unwrap();
        let p = Platform::identical(2).unwrap();
        let sink = MemorySink::new();
        let mut gas = Gas::unlimited();
        let r = exact_partition_edf_degraded(&tasks, &p, 1 << 20, &mut gas, &sink);
        assert!(r.verdict.is_feasible());
        assert_eq!((r.level, r.degraded), ("exact", 0));
        assert_eq!(sink.counter(rmetrics::ROBUST_DEGRADED), 0);
    }

    #[test]
    fn starved_exact_falls_back_to_first_fit_witness() {
        // Feasible and first-fit-friendly, but the exact search gets no gas.
        let tasks = TaskSet::from_pairs(vec![(1, 2); 8]).unwrap();
        let p = Platform::identical(4).unwrap();
        let sink = MemorySink::new();
        let mut gas = Budget::ops(0).gas();
        let r = exact_partition_edf_degraded(&tasks, &p, 1 << 20, &mut gas, &sink);
        assert!(r.verdict.is_feasible());
        assert_eq!((r.level, r.degraded), ("first-fit", 1));
        assert_eq!(sink.counter(rmetrics::ROBUST_DEGRADED), 1);
        assert_eq!(sink.counter(rmetrics::ROBUST_BUDGET_EXHAUSTED), 1);
        // The salvaged witness is a genuine partition.
        if let LadderVerdict::Feasible { witness: Some(a) } = &r.verdict {
            assert!(a.validate(&tasks, &p, 1.0, &EdfAdmission));
        } else {
            panic!("expected a witness");
        }
    }

    #[test]
    fn starved_exact_falls_back_to_utilization_refutation() {
        // Wildly overloaded: rung 3 certifies infeasibility.
        let tasks = TaskSet::from_pairs(vec![(9, 10); 10]).unwrap();
        let p = Platform::identical(2).unwrap();
        let sink = MemorySink::new();
        let mut gas = Budget::ops(0).gas();
        let r = exact_partition_edf_degraded(&tasks, &p, 1 << 20, &mut gas, &sink);
        assert_eq!(r.verdict, LadderVerdict::Infeasible);
        assert_eq!((r.level, r.degraded), ("utilization-bound", 2));
        assert_eq!(sink.counter(rmetrics::ROBUST_DEGRADED), 2);
    }

    #[test]
    fn blowup_instance_degrades_to_undecided_not_a_hang() {
        let (tasks, p) = blowup_instance();
        let sink = MemorySink::new();
        let mut gas = Budget::ops(10_000).gas();
        let r = exact_partition_edf_degraded(&tasks, &p, u64::MAX, &mut gas, &sink);
        // First-fit also fails (it is infeasible) and utilization is under
        // total speed — the sound answer within this budget is Undecided.
        assert_eq!(r.verdict, LadderVerdict::Undecided);
        assert!(r.degraded >= 1);
        assert!(sink.counter(rmetrics::ROBUST_DEGRADED) >= 1);
        // Soundness: Undecided, never a wrong "feasible".
        assert!(!r.verdict.is_feasible());
    }

    #[test]
    fn worker_count_does_not_change_the_ladder_verdict() {
        // A refutation the exact rung *can* finish: identical utilizations
        // collapse under the B&B's visited-state dedup.
        let tasks = TaskSet::from_pairs(vec![(334, 1000); 13]).unwrap();
        let p = Platform::identical(6).unwrap();
        for workers in [1usize, 2, 8] {
            let mut gas = Gas::unlimited();
            let r =
                exact_partition_edf_degraded_workers(&tasks, &p, 1 << 20, workers, &mut gas, &());
            assert_eq!(r.verdict, LadderVerdict::Infeasible, "workers={workers}");
            assert_eq!((r.level, r.degraded), ("exact", 0));
        }
    }

    #[test]
    fn verdict_names_are_stable() {
        assert_eq!(
            LadderVerdict::Feasible { witness: None }.as_str(),
            "feasible"
        );
        assert_eq!(LadderVerdict::Infeasible.as_str(), "infeasible");
        assert_eq!(LadderVerdict::Undecided.as_str(), "undecided");
        assert!(!LadderVerdict::Undecided.is_decided());
    }

    #[test]
    fn lp_ladder_agrees_with_closed_form_when_budget_suffices() {
        let cases: [(Vec<(u64, u64)>, Vec<u64>); 3] = [
            (vec![(3, 2), (3, 2)], vec![2, 1, 1]),
            (vec![(19, 10), (19, 10)], vec![2, 1, 1]),
            (vec![(1, 2), (1, 2)], vec![1]),
        ];
        for (pairs, speeds) in cases {
            let tasks = TaskSet::from_pairs(pairs).unwrap();
            let p = Platform::from_int_speeds(speeds).unwrap();
            let mut gas = Gas::unlimited();
            let r = lp_feasible_degraded(&tasks, &p, &mut gas, &());
            assert_eq!(r.degraded, 0);
            assert_eq!(
                r.verdict.is_feasible(),
                hetfeas_lp::lp_feasible(&tasks, &p),
                "ladder vs closed form on {tasks}"
            );
        }
    }

    #[test]
    fn starved_lp_degrades_soundly() {
        let sink = MemorySink::new();
        // Feasible case: first-fit rescues it.
        let tasks = TaskSet::from_pairs([(1, 2), (1, 2)]).unwrap();
        let p = Platform::identical(2).unwrap();
        let mut gas = Budget::ops(0).gas();
        let r = lp_feasible_degraded(&tasks, &p, &mut gas, &sink);
        assert!(r.verdict.is_feasible());
        assert_eq!(r.degraded, 1);
        // Overloaded case: the 2.98 rung refutes it.
        let heavy = TaskSet::from_pairs(vec![(99, 10); 4]).unwrap();
        let mut gas = Budget::ops(0).gas();
        let r = lp_feasible_degraded(&heavy, &p, &mut gas, &sink);
        assert_eq!(r.verdict, LadderVerdict::Infeasible);
        assert_eq!((r.level, r.degraded), ("first-fit-2.98", 2));
        // Both degraded answers agree with the exact closed form.
        assert!(hetfeas_lp::lp_feasible(&tasks, &p));
        assert!(!hetfeas_lp::lp_feasible(&heavy, &p));
    }
}
