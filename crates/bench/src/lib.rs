//! # hetfeas-bench
//!
//! Shared fixtures for the Criterion benchmarks. Each bench target maps to
//! a timing claim in the evaluation (`DESIGN.md` §3):
//!
//! * `ffd_scaling` — E6: the O(n·m) first-fit feasibility test;
//! * `lp_feasibility` — simplex vs closed-form level condition;
//! * `rta` — exact response-time analysis cost;
//! * `simulator` — discrete-event engine throughput;
//! * `workload_gen` — generator throughput;
//! * `alpha_search` — the E1–E4 bisection cost;
//! * `incremental` — online admission churn vs from-scratch re-runs.

use hetfeas_model::TaskSet;
use hetfeas_workload::{Instance, PeriodMenu, PlatformSpec, UtilizationSampler, WorkloadSpec};

/// A reproducible benchmark instance: `n` tasks on an `m`-machine
/// uniform-random platform at the given normalized utilization.
pub fn bench_instance(n: usize, m: usize, u_norm: f64, seed: u64) -> Instance {
    WorkloadSpec {
        n_tasks: n,
        normalized_utilization: u_norm,
        platform: PlatformSpec::UniformRandom { m, lo: 1, hi: 8 },
        sampler: UtilizationSampler::UUniFastCapped,
        periods: PeriodMenu::standard(),
    }
    .generate(seed, 0)
    .expect("benchmark parameters are loose")
}

/// A single-machine task set of `n` tasks at total utilization `u`.
pub fn bench_taskset(n: usize, u: f64, seed: u64) -> TaskSet {
    WorkloadSpec {
        n_tasks: n,
        normalized_utilization: u,
        platform: PlatformSpec::Identical { m: 1 },
        sampler: UtilizationSampler::UUniFastCapped,
        periods: PeriodMenu::standard(),
    }
    .generate(seed, 0)
    .expect("benchmark parameters are loose")
    .tasks
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixtures_are_deterministic() {
        let a = bench_instance(32, 4, 0.8, 1);
        let b = bench_instance(32, 4, 0.8, 1);
        assert_eq!(a.tasks, b.tasks);
        assert_eq!(a.platform, b.platform);
        assert_eq!(a.tasks.len(), 32);
        assert_eq!(a.platform.len(), 4);
    }

    #[test]
    fn taskset_fixture_size() {
        assert_eq!(bench_taskset(16, 0.5, 2).len(), 16);
    }
}
