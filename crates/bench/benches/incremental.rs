//! Online-admission companion: steady-state churn cost on the
//! [`IncrementalEngine`] vs re-running the batch [`FirstFitEngine`] from
//! scratch after every mutation.
//!
//! One "churn op" is a remove of a random live task followed by a
//! re-admission, so the live set size stays stable across iterations. The
//! incremental path should cost O(log m) per admission plus the amortized
//! repack, while the from-scratch baseline pays the full O(n log n + n·m)
//! every time — the gap is the whole point of the engine (`DESIGN.md` §9).
//! `scripts/bench_incr_smoke.rs` is the registry-free mirror of this
//! comparison and feeds the `scripts/ci.sh` gate.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hetfeas_bench::bench_instance;
use hetfeas_model::{Augmentation, Task, TaskSet};
use hetfeas_partition::{EdfAdmission, FirstFitEngine, IncrementalEngine, TaskId};
use std::hint::black_box;

fn bench_churn(c: &mut Criterion) {
    let mut group = c.benchmark_group("incremental_vs_from_scratch_churn");
    group.sample_size(10);
    for (n, m) in [(1024usize, 256usize), (4096, 1024)] {
        let inst = bench_instance(n, m, 0.6, 71);

        group.bench_with_input(
            BenchmarkId::new("incremental", format!("n{n}_m{m}")),
            &inst,
            |b, inst| {
                let mut eng =
                    IncrementalEngine::new(EdfAdmission, &inst.platform, Augmentation::NONE);
                let mut live: Vec<TaskId> = Vec::new();
                for &t in inst.tasks.iter() {
                    if let Some(id) = eng.add(t).id() {
                        live.push(id);
                    }
                }
                let mut x = 0x9E37u64;
                b.iter(|| {
                    x ^= x << 13;
                    x ^= x >> 7;
                    x ^= x << 17;
                    let pos = (x % live.len() as u64) as usize;
                    let victim = live[pos];
                    let task = eng.remove(victim).expect("live id");
                    match eng.add(task).id() {
                        Some(id) => live[pos] = id,
                        None => {
                            live.swap_remove(pos);
                        }
                    }
                    black_box(eng.len())
                })
            },
        );

        group.bench_with_input(
            BenchmarkId::new("from_scratch", format!("n{n}_m{m}")),
            &inst,
            |b, inst| {
                let mut ff = FirstFitEngine::new(EdfAdmission);
                let tasks: Vec<Task> = inst.tasks.iter().copied().collect();
                let mut x = 0xC0FFEEu64;
                b.iter(|| {
                    // One churn op = drop a random task and re-run the
                    // whole batch test, the only option without the engine.
                    x ^= x << 13;
                    x ^= x >> 7;
                    x ^= x << 17;
                    let skip = (x % tasks.len() as u64) as usize;
                    let ts: TaskSet = tasks
                        .iter()
                        .enumerate()
                        .filter(|(i, _)| *i != skip)
                        .map(|(_, t)| *t)
                        .collect();
                    black_box(ff.run(&ts, &inst.platform, Augmentation::NONE))
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_churn);
criterion_main!(benches);
