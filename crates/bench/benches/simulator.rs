//! Discrete-event engine throughput: jobs simulated per second under EDF
//! and RMS, and the cost of the full E7 validation path.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use hetfeas_bench::bench_taskset;
use hetfeas_model::Ratio;
use hetfeas_sim::{simulate_machine, validation_horizon, ReleasePattern, SchedPolicy};
use std::hint::black_box;

fn jobs_in_horizon(ts: &hetfeas_model::TaskSet, horizon: u64) -> u64 {
    ts.iter()
        .map(|t| horizon / t.period() + u64::from(!horizon.is_multiple_of(t.period())))
        .sum()
}

fn bench_engine(c: &mut Criterion) {
    let mut group = c.benchmark_group("sim_engine");
    for n in [5usize, 10, 20, 40] {
        let ts = bench_taskset(n, 0.9, 21);
        let horizon = validation_horizon(&ts).expect("menu periods");
        group.throughput(Throughput::Elements(jobs_in_horizon(&ts, horizon)));
        for (policy, label) in [
            (SchedPolicy::Edf, "edf"),
            (SchedPolicy::RateMonotonic, "rms"),
        ] {
            group.bench_with_input(
                BenchmarkId::new(label, n),
                &(&ts, horizon),
                |b, (ts, horizon)| {
                    b.iter(|| {
                        black_box(
                            simulate_machine(
                                ts,
                                Ratio::ONE,
                                policy,
                                ReleasePattern::Periodic,
                                *horizon,
                            )
                            .expect("simulate"),
                        )
                    })
                },
            );
        }
    }
    group.finish();
}

fn bench_sporadic(c: &mut Criterion) {
    let ts = bench_taskset(10, 0.8, 22);
    let horizon = validation_horizon(&ts).expect("menu periods");
    c.bench_function("sim_sporadic_n10", |b| {
        b.iter(|| {
            black_box(
                simulate_machine(
                    &ts,
                    Ratio::ONE,
                    SchedPolicy::Edf,
                    ReleasePattern::Sporadic {
                        jitter_frac: 0.3,
                        seed: 5,
                    },
                    horizon,
                )
                .expect("simulate"),
            )
        })
    });
}

criterion_group!(benches, bench_engine, bench_sporadic);
criterion_main!(benches);
