//! Overhead of the crossbeam-based parallel map vs sequential iteration,
//! across item costs and block sizes (referenced from
//! `hetfeas_par::scope_map`'s slot-locking design note).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hetfeas_par::{par_map, par_map_with};
use std::hint::black_box;

fn busy(iterations: u64) -> u64 {
    let mut acc = 0u64;
    for i in 0..iterations {
        acc = acc.wrapping_mul(6364136223846793005).wrapping_add(i);
    }
    acc
}

fn bench_vs_sequential(c: &mut Criterion) {
    let items: Vec<u64> = (0..512).collect();
    for cost in [100u64, 10_000] {
        let mut group = c.benchmark_group(format!("par_map_cost{cost}"));
        group.bench_function("sequential", |b| {
            b.iter(|| {
                let out: Vec<u64> = items.iter().map(|&x| busy(cost) ^ x).collect();
                black_box(out)
            })
        });
        group.bench_function("par_map", |b| {
            b.iter(|| black_box(par_map(&items, |&x| busy(cost) ^ x)))
        });
        group.finish();
    }
}

fn bench_block_sizes(c: &mut Criterion) {
    let items: Vec<u64> = (0..4096).collect();
    let mut group = c.benchmark_group("par_map_block_size_cheap_items");
    for block in [1usize, 16, 256] {
        group.bench_with_input(BenchmarkId::from_parameter(block), &block, |b, &block| {
            b.iter(|| black_box(par_map_with(&items, 8, block, |&x| busy(50) ^ x)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_vs_sequential, bench_block_sizes);
criterion_main!(benches);
