//! Generator throughput: UUniFast(-Discard), bounded fixed-sum and full
//! instance generation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use hetfeas_workload::{
    bounded_fixed_sum, uunifast, uunifast_discard, PeriodMenu, PlatformSpec, UtilizationSampler,
    WorkloadSpec,
};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn bench_uunifast(c: &mut Criterion) {
    let mut group = c.benchmark_group("uunifast");
    for n in [16usize, 256, 4096] {
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            let mut rng = StdRng::seed_from_u64(1);
            b.iter(|| black_box(uunifast(&mut rng, n, 4.0)))
        });
    }
    group.finish();
}

fn bench_uunifast_discard(c: &mut Criterion) {
    c.bench_function("uunifast_discard_n64_tight", |b| {
        let mut rng = StdRng::seed_from_u64(2);
        b.iter(|| black_box(uunifast_discard(&mut rng, 64, 8.0, 0.5, 10_000)))
    });
}

fn bench_bounded_fixed_sum(c: &mut Criterion) {
    c.bench_function("bounded_fixed_sum_n64", |b| {
        let mut rng = StdRng::seed_from_u64(3);
        b.iter(|| black_box(bounded_fixed_sum(&mut rng, 64, 8.0, 0.05, 0.5)))
    });
}

fn bench_full_instance(c: &mut Criterion) {
    let spec = WorkloadSpec {
        n_tasks: 64,
        normalized_utilization: 0.8,
        platform: PlatformSpec::BigLittle {
            big: 2,
            little: 6,
            ratio: 4,
        },
        sampler: UtilizationSampler::UUniFastCapped,
        periods: PeriodMenu::standard(),
    };
    c.bench_function("workload_full_instance_n64", |b| {
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            black_box(spec.generate(9, i))
        })
    });
}

criterion_group!(
    benches,
    bench_uunifast,
    bench_uunifast_discard,
    bench_bounded_fixed_sum,
    bench_full_instance
);
criterion_main!(benches);
