//! LP feasibility: the from-scratch simplex vs the closed-form level
//! condition. The level algorithm is the oracle the experiments use; the
//! gap here (orders of magnitude) is why.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hetfeas_bench::bench_instance;
use hetfeas_lp::{level_feasible, lp_feasible_simplex};
use std::hint::black_box;

fn bench_level(c: &mut Criterion) {
    let mut group = c.benchmark_group("lp_level_closed_form");
    for n in [16usize, 64, 256, 1024] {
        let inst = bench_instance(n, 8, 0.9, 7);
        group.bench_with_input(BenchmarkId::from_parameter(n), &inst, |b, inst| {
            b.iter(|| black_box(level_feasible(&inst.tasks, &inst.platform)))
        });
    }
    group.finish();
}

fn bench_simplex(c: &mut Criterion) {
    let mut group = c.benchmark_group("lp_simplex");
    group.sample_size(20);
    for n in [8usize, 16, 32] {
        let inst = bench_instance(n, 6, 0.9, 8);
        group.bench_with_input(BenchmarkId::from_parameter(n), &inst, |b, inst| {
            b.iter(|| black_box(lp_feasible_simplex(&inst.tasks, &inst.platform)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_level, bench_simplex);
criterion_main!(benches);
