//! Exact schedulability-test costs: RTA vs the O(1) Liu–Layland bound
//! (the price of the E9 "exact admission" upgrade), and QPA vs the naive
//! processor-demand criterion (the module-doc speedup claim).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hetfeas_analysis::{
    edf_demand_schedulable, qpa_schedulable, rms_schedulable_ll, rta_schedulable,
};
use hetfeas_bench::bench_taskset;
use hetfeas_model::{Ratio, Task, TaskSet};
use std::hint::black_box;

/// Deterministic constrained-deadline variant of the bench fixture.
fn constrained_taskset(n: usize, u: f64, seed: u64) -> TaskSet {
    bench_taskset(n, u, seed)
        .iter()
        .enumerate()
        .map(|(i, t)| {
            // Deadline between 60% and 100% of the period, varying by index.
            let d = (t.period() * (6 + (i as u64 % 5)) / 10).max(t.wcet());
            Task::constrained(t.wcet(), t.period(), d).unwrap()
        })
        .collect()
}

fn bench_rta(c: &mut Criterion) {
    let mut group = c.benchmark_group("rta_exact");
    for n in [4usize, 8, 16, 32, 64] {
        let ts = bench_taskset(n, 0.7, 11);
        group.bench_with_input(BenchmarkId::from_parameter(n), &ts, |b, ts| {
            b.iter(|| black_box(rta_schedulable(ts, Ratio::ONE)))
        });
    }
    group.finish();
}

fn bench_ll(c: &mut Criterion) {
    let mut group = c.benchmark_group("rms_liu_layland");
    for n in [4usize, 64] {
        let ts = bench_taskset(n, 0.7, 11);
        group.bench_with_input(BenchmarkId::from_parameter(n), &ts, |b, ts| {
            b.iter(|| black_box(rms_schedulable_ll(ts, 1.0)))
        });
    }
    group.finish();
}

fn bench_qpa_vs_naive(c: &mut Criterion) {
    for n in [8usize, 32] {
        let ts = constrained_taskset(n, 0.8, 13);
        let horizon = (ts.hyperperiod().unwrap() as u64).saturating_mul(2);
        let mut group = c.benchmark_group(format!("edf_constrained_n{n}"));
        group.bench_function("qpa", |b| {
            b.iter(|| black_box(qpa_schedulable(&ts, Ratio::ONE)))
        });
        group.bench_function("naive_pdc", |b| {
            b.iter(|| black_box(edf_demand_schedulable(&ts, Ratio::ONE, horizon)))
        });
        group.finish();
    }
}

criterion_group!(benches, bench_rta, bench_ll, bench_qpa_vs_naive);
criterion_main!(benches);
