//! E6 companion: first-fit feasibility test scaling in `n` and `m`.
//!
//! The paper claims `O(n log n + n·m)`. Criterion timings over geometric
//! sweeps let you verify the growth: doubling `n` (at fixed `m`) should
//! roughly double time; same for `m` at fixed `n` in the worst case.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use hetfeas_bench::bench_instance;
use hetfeas_model::Augmentation;
use hetfeas_partition::{first_fit, EdfAdmission, FirstFitEngine, RmsLlAdmission, SoaKernel};
use std::hint::black_box;

fn bench_scale_n(c: &mut Criterion) {
    let mut group = c.benchmark_group("ffd_scale_n_m16");
    for n in [256usize, 1024, 4096, 16384] {
        let inst = bench_instance(n, 16, 0.9, 42);
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::from_parameter(n), &inst, |b, inst| {
            b.iter(|| {
                black_box(first_fit(
                    &inst.tasks,
                    &inst.platform,
                    Augmentation::NONE,
                    &EdfAdmission,
                ))
            })
        });
    }
    group.finish();
}

fn bench_scale_m(c: &mut Criterion) {
    let mut group = c.benchmark_group("ffd_scale_m_n4096");
    for m in [4usize, 16, 64, 256] {
        let inst = bench_instance(4096, m, 0.9, 43);
        group.throughput(Throughput::Elements(m as u64));
        group.bench_with_input(BenchmarkId::from_parameter(m), &inst, |b, inst| {
            b.iter(|| {
                black_box(first_fit(
                    &inst.tasks,
                    &inst.platform,
                    Augmentation::NONE,
                    &EdfAdmission,
                ))
            })
        });
    }
    group.finish();
}

/// The acceptance benchmark: at n = 4096, the linear scan grows linearly
/// in m while the indexed engine's per-placement cost is O(log m) — its
/// m = 1024 time must stay < 2× its m = 64 time. The SoA kernel runs the
/// same instances over flat residual lanes with 4-wide admission masks
/// and keyed sorts, and must beat the indexed engine ≥ 3× at m = 1024.
fn bench_scan_vs_indexed(c: &mut Criterion) {
    let mut group = c.benchmark_group("ffd_scan_vs_indexed_n4096");
    group.sample_size(10);
    for m in [64usize, 256, 1024, 4096] {
        let inst = bench_instance(4096, m, 0.9, 45);
        group.throughput(Throughput::Elements(m as u64));
        group.bench_with_input(BenchmarkId::new("scan", m), &inst, |b, inst| {
            b.iter(|| {
                black_box(first_fit(
                    &inst.tasks,
                    &inst.platform,
                    Augmentation::NONE,
                    &EdfAdmission,
                ))
            })
        });
        group.bench_with_input(BenchmarkId::new("indexed", m), &inst, |b, inst| {
            let mut engine = FirstFitEngine::new(EdfAdmission);
            b.iter(|| black_box(engine.run(&inst.tasks, &inst.platform, Augmentation::NONE)))
        });
        group.bench_with_input(BenchmarkId::new("kernel", m), &inst, |b, inst| {
            let mut kernel = SoaKernel::new(EdfAdmission);
            b.iter(|| black_box(kernel.run(&inst.tasks, &inst.platform, Augmentation::NONE)))
        });
    }
    group.finish();
}

/// The batched ladder α-search vs the engine's warm bisection vs the cold
/// per-probe bisection — the E1–E4 hot path.
fn bench_alpha_search(c: &mut Criterion) {
    let mut group = c.benchmark_group("alpha_search_n1024_m64");
    group.sample_size(10);
    let inst = bench_instance(1024, 64, 0.95, 46);
    group.bench_function("kernel_ladder", |b| {
        let mut kernel = SoaKernel::new(EdfAdmission);
        b.iter(|| black_box(kernel.min_feasible_alpha(&inst.tasks, &inst.platform, 4.0, 1e-4)))
    });
    group.bench_function("engine_bisection", |b| {
        let mut engine = FirstFitEngine::new(EdfAdmission);
        b.iter(|| black_box(engine.min_feasible_alpha(&inst.tasks, &inst.platform, 4.0, 1e-4)))
    });
    group.bench_function("cold_bisection", |b| {
        b.iter(|| {
            black_box(hetfeas_partition::min_feasible_alpha(
                &inst.tasks,
                &inst.platform,
                &EdfAdmission,
                4.0,
                1e-4,
            ))
        })
    });
    group.finish();
}

fn bench_admissions(c: &mut Criterion) {
    let mut group = c.benchmark_group("ffd_admission_kind_n1024_m8");
    let inst = bench_instance(1024, 8, 0.8, 44);
    group.bench_function("edf", |b| {
        b.iter(|| {
            black_box(first_fit(
                &inst.tasks,
                &inst.platform,
                Augmentation::NONE,
                &EdfAdmission,
            ))
        })
    });
    group.bench_function("rms_ll", |b| {
        b.iter(|| {
            black_box(first_fit(
                &inst.tasks,
                &inst.platform,
                Augmentation::NONE,
                &RmsLlAdmission,
            ))
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_scale_n,
    bench_scale_m,
    bench_scan_vs_indexed,
    bench_alpha_search,
    bench_admissions
);
criterion_main!(benches);
