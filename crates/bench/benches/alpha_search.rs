//! Cost of the E1–E4 measurement pipeline: the α* bisection and the exact
//! partitioned branch-and-bound oracle.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hetfeas_bench::bench_instance;
use hetfeas_partition::{exact_partition_edf, min_feasible_alpha, EdfAdmission, FirstFitEngine};
use std::hint::black_box;

fn bench_bisection(c: &mut Criterion) {
    let mut group = c.benchmark_group("alpha_bisection");
    for n in [8usize, 16, 32] {
        let inst = bench_instance(n, 4, 0.95, 31);
        group.bench_with_input(BenchmarkId::new("bisect", n), &inst, |b, inst| {
            b.iter(|| {
                black_box(min_feasible_alpha(
                    &inst.tasks,
                    &inst.platform,
                    &EdfAdmission,
                    4.0,
                    1e-4,
                ))
            })
        });
        // Warm-started engine search: sorts hoisted out of the probe loop,
        // exponential bracketing, indexed O(log m) probes.
        group.bench_with_input(BenchmarkId::new("engine_warm", n), &inst, |b, inst| {
            let mut engine = FirstFitEngine::new(EdfAdmission);
            b.iter(|| black_box(engine.min_feasible_alpha(&inst.tasks, &inst.platform, 4.0, 1e-4)))
        });
    }
    group.finish();
}

fn bench_exact_oracle(c: &mut Criterion) {
    let mut group = c.benchmark_group("exact_partition_edf");
    group.sample_size(20);
    for n in [8usize, 12, 16] {
        let inst = bench_instance(n, 3, 0.9, 32);
        group.bench_with_input(BenchmarkId::from_parameter(n), &inst, |b, inst| {
            b.iter(|| black_box(exact_partition_edf(&inst.tasks, &inst.platform, 4_000_000)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_bisection, bench_exact_oracle);
criterion_main!(benches);
