//! # hetfeas-lp
//!
//! The paper's natural LP (§II, constraints (1)–(4)) — the "arbitrary
//! adversary" its Theorems I.3/I.4 compare against — computed two
//! independent ways:
//!
//! * [`simplex`] — a from-scratch dense two-phase primal simplex solver,
//!   with [`model::build_paper_lp`] constructing the paper's LP verbatim;
//! * [`level`] — the exact closed-form characterization of the same
//!   feasibility region (the level-algorithm prefix conditions), in
//!   rational arithmetic.
//!
//! The experiments use [`lp_feasible`] (closed form; exact and O(n log n))
//! as the oracle, and the property tests assert it coincides with the
//! simplex answer.

#![warn(missing_docs)]

pub mod level;
pub mod model;
pub mod simplex;

pub use level::{
    level_feasible, level_feasible_f64, level_feasible_sorted, level_feasible_sorted_f64,
    level_scaling_factor,
};
pub use model::{
    build_paper_lp, lp_feasible_simplex, solve_paper_lp, solve_paper_lp_within, LpPoint,
};
pub use simplex::{LinearProgram, LpStatus, Relation};

use hetfeas_model::{Platform, TaskSet};

/// Exact feasibility of the paper's LP — the migrative-adversary oracle.
///
/// Delegates to the closed-form level condition, which is provably
/// equivalent to the LP and runs in `O(n log n + m log m)`. Never panics
/// on valid inputs: rational overflow falls back to the `f64` projection
/// (see [`level_feasible`]).
///
/// ```
/// use hetfeas_lp::lp_feasible;
/// use hetfeas_model::{Platform, TaskSet};
///
/// let platform = Platform::from_int_speeds([2, 1, 1]).unwrap();
/// // Two 1.5-utilization tasks: top-2 prefix 3.0 ≤ 2 + 1 — feasible.
/// assert!(lp_feasible(&TaskSet::from_pairs([(3, 2), (3, 2)]).unwrap(), &platform));
/// // Two 1.9s: prefix 3.8 > 3 — no migrative schedule exists.
/// assert!(!lp_feasible(&TaskSet::from_pairs([(19, 10), (19, 10)]).unwrap(), &platform));
/// ```
pub fn lp_feasible(tasks: &TaskSet, platform: &Platform) -> bool {
    level_feasible(tasks, platform)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn facade_delegates_to_level() {
        let t = TaskSet::from_pairs([(1, 2), (1, 2)]).unwrap();
        let p = Platform::identical(1).unwrap();
        assert!(lp_feasible(&t, &p));
        let t2 = TaskSet::from_pairs([(1, 2), (1, 2), (1, 3)]).unwrap();
        assert!(!lp_feasible(&t2, &p));
    }
}
