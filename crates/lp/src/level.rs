//! Closed-form feasibility condition for the paper's LP.
//!
//! The LP of §II (constraints (1)–(4)) is exactly the fractional/migrative
//! feasibility condition for implicit-deadline sporadic tasks on uniform
//! machines. A classical result (Horvath–Lam–Sethi 1977; Funk–Goossens–
//! Baruah 2001 for sporadic tasks; the "level algorithm") characterizes it
//! in closed form: with utilizations sorted `w_1 ≥ … ≥ w_n` and speeds
//! sorted `s_1 ≥ … ≥ s_m`, a feasible migrative schedule (equivalently, a
//! feasible LP point) exists iff
//!
//! ```text
//! Σ_{i ≤ k} w_i ≤ Σ_{j ≤ k} s_j   for all k = 1 … min(n, m)−1,   and
//! Σ_i w_i ≤ Σ_j s_j.
//! ```
//!
//! This gives an `O(n log n + m log m)` *exact* oracle for the paper's
//! "arbitrary adversary" — cross-validated against the simplex solver in
//! this crate's property tests.

use hetfeas_model::{Platform, Ratio, TaskSet};

/// Exact LP feasibility via the level-algorithm prefix conditions, in
/// rational arithmetic.
///
/// Never panics on valid inputs: when the exact rational prefix sums
/// overflow `i128` (pathological near-`u64::MAX` periods), the verdict
/// falls back to the `f64` projection of the same condition.
pub fn level_feasible(tasks: &TaskSet, platform: &Platform) -> bool {
    let mut utils: Vec<Ratio> = tasks.iter().map(|t| t.utilization_ratio()).collect();
    utils.sort_by(|a, b| b.cmp(a));
    let speeds = platform.speeds_decreasing();
    level_feasible_sorted(&utils, &speeds)
}

/// The prefix conditions over pre-sorted (non-increasing) utilizations and
/// speeds. Exposed for callers that already hold sorted views. Falls back
/// to the `f64` projection when the exact sums overflow (see
/// [`level_feasible`]).
pub fn level_feasible_sorted(utils_desc: &[Ratio], speeds_desc: &[Ratio]) -> bool {
    match level_feasible_sorted_exact(utils_desc, speeds_desc) {
        Some(ans) => ans,
        None => {
            let u: Vec<f64> = utils_desc.iter().map(Ratio::to_f64).collect();
            let s: Vec<f64> = speeds_desc.iter().map(Ratio::to_f64).collect();
            level_feasible_f64(&u, &s)
        }
    }
}

/// The exact rational prefix check; `None` when a sum overflows `i128`.
fn level_feasible_sorted_exact(utils_desc: &[Ratio], speeds_desc: &[Ratio]) -> Option<bool> {
    debug_assert!(utils_desc.windows(2).all(|w| w[0] >= w[1]));
    debug_assert!(speeds_desc.windows(2).all(|w| w[0] >= w[1]));
    let n = utils_desc.len();
    let m = speeds_desc.len();
    if n == 0 {
        return Some(true);
    }
    // Prefix checks for k < min(n, m) plus the total check; note that for
    // k ≥ m the speed prefix stops growing, so the total check covers all
    // remaining k at once when n > m, and when n ≤ m the k = n check *is*
    // the total check.
    let mut wsum = Ratio::ZERO;
    let mut ssum = Ratio::ZERO;
    for k in 0..n.min(m) {
        wsum = wsum.checked_add(&utils_desc[k])?;
        ssum = ssum.checked_add(&speeds_desc[k])?;
        if wsum > ssum {
            return Some(false);
        }
    }
    if n > m {
        for w in &utils_desc[m..] {
            wsum = wsum.checked_add(w)?;
        }
        if wsum > ssum {
            return Some(false);
        }
    }
    Some(true)
}

/// `f64` variant of [`level_feasible`] with the workspace tolerance — used
/// where utilizations are only available as floats.
pub fn level_feasible_f64(utils: &[f64], speeds: &[f64]) -> bool {
    let mut u = utils.to_vec();
    u.sort_by(|a, b| b.partial_cmp(a).expect("utilizations must not be NaN"));
    let mut s = speeds.to_vec();
    s.sort_by(|a, b| b.partial_cmp(a).expect("speeds must not be NaN"));
    level_feasible_sorted_f64(&u, &s)
}

/// The prefix conditions over *pre-sorted* (non-increasing) `f64`
/// utilizations and speeds: allocation-free, `O(n + m)`, no branches
/// beyond the checks themselves. This is the incremental re-solve entry
/// point for the branch-and-bound solver, which maintains its suffix
/// utilizations and residual capacities in sorted order and re-evaluates
/// the relaxation at every node.
pub fn level_feasible_sorted_f64(utils_desc: &[f64], speeds_desc: &[f64]) -> bool {
    debug_assert!(utils_desc.windows(2).all(|w| w[0] >= w[1]));
    debug_assert!(speeds_desc.windows(2).all(|w| w[0] >= w[1]));
    let n = utils_desc.len();
    let m = speeds_desc.len();
    let mut wsum = 0.0;
    let mut ssum = 0.0;
    for k in 0..n.min(m) {
        wsum += utils_desc[k];
        ssum += speeds_desc[k];
        if !hetfeas_model::approx_le(wsum, ssum) {
            return false;
        }
    }
    if n > m {
        wsum += utils_desc[m..].iter().sum::<f64>();
        if !hetfeas_model::approx_le(wsum, ssum) {
            return false;
        }
    }
    true
}

/// The minimum uniform speed-scaling factor `β` such that the platform with
/// speeds `β·s_j` is LP-feasible for `tasks` — i.e. the exact "how much
/// faster must the adversary's machines be" quantity. Computed in closed
/// form as the max over the prefix ratios:
///
/// ```text
/// β = max( max_{k<min(n,m)} (Σ_{i≤k} w_i)/(Σ_{j≤k} s_j),  (Σ w)/(Σ s) )
/// ```
pub fn level_scaling_factor(tasks: &TaskSet, platform: &Platform) -> f64 {
    let mut utils: Vec<f64> = tasks.iter().map(|t| t.utilization()).collect();
    utils.sort_by(|a, b| b.partial_cmp(a).expect("no NaN"));
    let mut speeds: Vec<f64> = platform.iter().map(|mc| mc.speed_f64()).collect();
    speeds.sort_by(|a, b| b.partial_cmp(a).expect("no NaN"));
    let n = utils.len();
    let m = speeds.len();
    if n == 0 {
        return 0.0;
    }
    let mut beta: f64 = 0.0;
    let mut wsum = 0.0;
    let mut ssum = 0.0;
    for k in 0..n.min(m) {
        wsum += utils[k];
        ssum += speeds[k];
        beta = beta.max(wsum / ssum);
    }
    if n > m {
        wsum += utils[m..].iter().sum::<f64>();
        beta = beta.max(wsum / ssum);
    }
    beta
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ts(pairs: &[(u64, u64)]) -> TaskSet {
        TaskSet::from_pairs(pairs.iter().copied()).unwrap()
    }

    fn pf(speeds: &[u64]) -> Platform {
        Platform::from_int_speeds(speeds.iter().copied()).unwrap()
    }

    #[test]
    fn single_machine_reduces_to_utilization() {
        let p = pf(&[1]);
        assert!(level_feasible(&ts(&[(1, 2), (1, 2)]), &p)); // util 1.0
        assert!(!level_feasible(&ts(&[(1, 2), (1, 2), (1, 100)]), &p));
    }

    #[test]
    fn heavy_task_needs_fast_machine() {
        // w = 1.5 on speeds [1,1]: total speed 2 suffices in sum, but no
        // single machine can host the heaviest prefix: 1.5 > 1.
        assert!(!level_feasible(&ts(&[(3, 2)]), &pf(&[1, 1])));
        assert!(level_feasible(&ts(&[(3, 2)]), &pf(&[2, 1])));
    }

    #[test]
    fn prefix_condition_bites_in_the_middle() {
        // w = (1.5, 1.5, 0.1), s = (2, 1, 1): k=1: 1.5 ≤ 2 ✓;
        // k=2: 3.0 > 3.0? equal ✓; k=3 total 3.1 > 4? 3.1 ≤ 4 ✓ → feasible.
        assert!(level_feasible(
            &ts(&[(3, 2), (3, 2), (1, 10)]),
            &pf(&[2, 1, 1])
        ));
        // w = (1.9, 1.9), s = (2, 1, 1): k=2: 3.8 > 3 → infeasible.
        assert!(!level_feasible(&ts(&[(19, 10), (19, 10)]), &pf(&[2, 1, 1])));
    }

    #[test]
    fn more_tasks_than_machines_uses_total() {
        // 5 tasks of util 0.5 on speeds [1,1]: prefixes fine, total 2.5 > 2.
        assert!(!level_feasible(&ts(&[(1, 2); 5]), &pf(&[1, 1])));
        assert!(level_feasible(&ts(&[(1, 2); 4]), &pf(&[1, 1])));
    }

    #[test]
    fn empty_taskset_feasible() {
        assert!(level_feasible(&TaskSet::empty(), &pf(&[1])));
    }

    #[test]
    fn f64_variant_agrees() {
        let t = ts(&[(3, 2), (3, 2), (1, 10)]);
        let p = pf(&[2, 1, 1]);
        let utils: Vec<f64> = t.iter().map(|x| x.utilization()).collect();
        let speeds: Vec<f64> = p.iter().map(|m| m.speed_f64()).collect();
        assert_eq!(level_feasible(&t, &p), level_feasible_f64(&utils, &speeds));
    }

    #[test]
    fn sorted_f64_entry_agrees_with_sorting_wrapper() {
        let cases: &[(&[f64], &[f64])] = &[
            (&[1.5, 1.5, 0.1], &[2.0, 1.0, 1.0]),
            (&[1.9, 1.9], &[2.0, 1.0, 1.0]),
            (&[0.5, 0.5, 0.5, 0.5, 0.5], &[1.0, 1.0]),
            (&[], &[1.0]),
            (&[0.9], &[3.0, 2.0, 1.0]),
        ];
        for (u, s) in cases {
            assert_eq!(
                level_feasible_sorted_f64(u, s),
                level_feasible_f64(u, s),
                "u={u:?} s={s:?}"
            );
        }
    }

    #[test]
    fn scaling_factor_is_the_feasibility_threshold() {
        let t = ts(&[(19, 10), (19, 10)]); // prefix-2 violation on [2,1,1]
        let p = pf(&[2, 1, 1]);
        let beta = level_scaling_factor(&t, &p);
        assert!((beta - 3.8 / 3.0).abs() < 1e-12);
        // Scaling speeds by β makes it exactly feasible.
        let scaled = Platform::from_f64_speeds(p.iter().map(|m| m.speed_f64() * beta)).unwrap();
        assert!(level_feasible(&t, &scaled));
        // And by slightly less does not.
        let under =
            Platform::from_f64_speeds(p.iter().map(|m| m.speed_f64() * (beta - 1e-3))).unwrap();
        assert!(!level_feasible(&t, &under));
    }

    #[test]
    fn overflowing_prefix_sums_fall_back_instead_of_panicking() {
        // Near-u64::MAX coprime periods: the exact rational prefix sum
        // overflows i128 on the first addition; the f64 fallback still
        // classifies the (wildly overloaded) set as infeasible.
        let t =
            TaskSet::from_pairs((0..4u64).map(|i| (u64::MAX - 2 - 2 * i, u64::MAX - 1 - 2 * i)))
                .unwrap();
        assert!(!level_feasible(&t, &pf(&[1, 1])));
        // And a platform with enough machines hosts the ~unit-util tasks.
        assert!(level_feasible(&t, &pf(&[2, 2, 2, 2])));
    }

    #[test]
    fn scaling_factor_of_feasible_set_at_most_one() {
        let t = ts(&[(1, 2), (1, 4)]);
        let p = pf(&[1]);
        assert!(level_scaling_factor(&t, &p) <= 1.0);
        assert_eq!(level_scaling_factor(&TaskSet::empty(), &p), 0.0);
    }
}
