//! Builder for the paper's natural LP (§II, constraints (1)–(4)).
//!
//! Variables `u_{i,j}` — the utilization of task `i` assigned to machine
//! `j` — laid out row-major (`var(i, j) = i·m + j`):
//!
//! 1. `Σ_j u_{i,j} = w_i`             (every task fully scheduled)
//! 2. `Σ_j u_{i,j}/s_j ≤ 1`           (a task never runs in parallel with itself)
//! 3. `Σ_i u_{i,j}/s_j ≤ 1`           (machine capacity)
//! 4. `u_{i,j} ≥ 0`                   (implicit: simplex variables are non-negative)

use crate::simplex::{LinearProgram, LpStatus, Relation};
use hetfeas_model::{Platform, TaskSet};
use hetfeas_robust::{Exhaustion, Gas};

/// Index of variable `u_{i,j}` in the flat layout.
#[inline]
pub fn var(i: usize, j: usize, m: usize) -> usize {
    i * m + j
}

/// Build the paper's LP for `tasks` on `platform` (adversary speeds, i.e.
/// *without* the algorithm's augmentation).
pub fn build_paper_lp(tasks: &TaskSet, platform: &Platform) -> LinearProgram {
    let n = tasks.len();
    let m = platform.len();
    let mut lp = LinearProgram::new(n * m);

    // (1) Σ_j u_ij = w_i.
    for i in 0..n {
        let entries: Vec<(usize, f64)> = (0..m).map(|j| (var(i, j, m), 1.0)).collect();
        lp.add_sparse_row(&entries, Relation::Eq, tasks[i].utilization());
    }
    // (2) Σ_j u_ij / s_j ≤ 1.
    for i in 0..n {
        let entries: Vec<(usize, f64)> = (0..m)
            .map(|j| (var(i, j, m), 1.0 / platform.speed_f64(j)))
            .collect();
        lp.add_sparse_row(&entries, Relation::Le, 1.0);
    }
    // (3) Σ_i u_ij / s_j ≤ 1.
    for j in 0..m {
        let inv = 1.0 / platform.speed_f64(j);
        let entries: Vec<(usize, f64)> = (0..n).map(|i| (var(i, j, m), inv)).collect();
        lp.add_sparse_row(&entries, Relation::Le, 1.0);
    }
    lp
}

/// A solved feasible LP point, reshaped for inspection.
#[derive(Debug, Clone)]
pub struct LpPoint {
    n: usize,
    m: usize,
    u: Vec<f64>,
}

impl LpPoint {
    /// `u_{i,j}` — utilization of task `i` on machine `j`.
    #[inline]
    pub fn u(&self, i: usize, j: usize) -> f64 {
        self.u[var(i, j, self.m)]
    }

    /// Number of tasks.
    pub fn n_tasks(&self) -> usize {
        self.n
    }

    /// Number of machines.
    pub fn n_machines(&self) -> usize {
        self.m
    }

    /// Verify the point satisfies constraints (1)–(4) within `tol`.
    pub fn validate(&self, tasks: &TaskSet, platform: &Platform, tol: f64) -> bool {
        for i in 0..self.n {
            let total: f64 = (0..self.m).map(|j| self.u(i, j)).sum();
            if (total - tasks[i].utilization()).abs() > tol {
                return false;
            }
            let frac: f64 = (0..self.m)
                .map(|j| self.u(i, j) / platform.speed_f64(j))
                .sum();
            if frac > 1.0 + tol {
                return false;
            }
        }
        for j in 0..self.m {
            let cap: f64 = (0..self.n)
                .map(|i| self.u(i, j) / platform.speed_f64(j))
                .sum();
            if cap > 1.0 + tol {
                return false;
            }
        }
        self.u.iter().all(|&v| v >= -tol)
    }
}

/// Solve the paper's LP; `Some(point)` when feasible.
pub fn solve_paper_lp(tasks: &TaskSet, platform: &Platform) -> Option<LpPoint> {
    solve_paper_lp_within(tasks, platform, &mut Gas::unlimited())
        .expect("unlimited gas cannot exhaust")
}

/// [`solve_paper_lp`] under an execution budget: the simplex pivots tick
/// `gas`, so an adversarial (degenerate/cycling) instance returns
/// `Err(Exhaustion)` instead of spinning.
pub fn solve_paper_lp_within(
    tasks: &TaskSet,
    platform: &Platform,
    gas: &mut Gas,
) -> Result<Option<LpPoint>, Exhaustion> {
    if tasks.is_empty() {
        return Ok(Some(LpPoint {
            n: 0,
            m: platform.len(),
            u: Vec::new(),
        }));
    }
    Ok(match build_paper_lp(tasks, platform).solve_within(gas)? {
        LpStatus::Optimal { x, .. } => Some(LpPoint {
            n: tasks.len(),
            m: platform.len(),
            u: x,
        }),
        _ => None,
    })
}

/// LP feasibility via the simplex solver (the slow, independent oracle; the
/// closed form in [`crate::level`] is the fast one).
pub fn lp_feasible_simplex(tasks: &TaskSet, platform: &Platform) -> bool {
    solve_paper_lp(tasks, platform).is_some()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::level::level_feasible;

    fn ts(pairs: &[(u64, u64)]) -> TaskSet {
        TaskSet::from_pairs(pairs.iter().copied()).unwrap()
    }

    fn pf(speeds: &[u64]) -> Platform {
        Platform::from_int_speeds(speeds.iter().copied()).unwrap()
    }

    #[test]
    fn variable_layout() {
        assert_eq!(var(0, 0, 3), 0);
        assert_eq!(var(0, 2, 3), 2);
        assert_eq!(var(2, 1, 3), 7);
    }

    #[test]
    fn lp_dimensions() {
        let lp = build_paper_lp(&ts(&[(1, 2), (1, 3)]), &pf(&[1, 2, 3]));
        assert_eq!(lp.n_vars(), 6);
        assert_eq!(lp.n_rows(), 2 + 2 + 3);
    }

    #[test]
    fn feasible_point_validates() {
        let t = ts(&[(3, 2), (3, 2), (1, 10)]); // 1.5, 1.5, 0.1
        let p = pf(&[2, 1, 1]);
        let point = solve_paper_lp(&t, &p).expect("level-feasible instance");
        assert!(point.validate(&t, &p, 1e-6));
        assert_eq!(point.n_tasks(), 3);
        assert_eq!(point.n_machines(), 3);
    }

    #[test]
    fn infeasible_detected() {
        // Heaviest task exceeds the fastest machine.
        assert!(solve_paper_lp(&ts(&[(3, 1)]), &pf(&[2])).is_none());
        // Total utilization exceeds total speed.
        assert!(solve_paper_lp(&ts(&[(1, 2); 5]), &pf(&[1, 1])).is_none());
    }

    #[test]
    fn agrees_with_level_on_small_grid() {
        // Exhaustive-ish cross validation on a small deterministic grid.
        let speeds_options: [&[u64]; 3] = [&[1], &[1, 2], &[1, 1, 4]];
        let pairs_options: [&[(u64, u64)]; 5] = [
            &[(1, 2)],
            &[(3, 2), (1, 2)],
            &[(3, 2), (3, 2), (1, 10)],
            &[(1, 2), (1, 2), (1, 2), (1, 2), (1, 2)],
            &[(5, 2), (1, 4)],
        ];
        for sp in speeds_options {
            for pr in pairs_options {
                let t = ts(pr);
                let p = pf(sp);
                assert_eq!(
                    lp_feasible_simplex(&t, &p),
                    level_feasible(&t, &p),
                    "simplex vs level disagree on {t} / {p}"
                );
            }
        }
    }

    #[test]
    fn empty_taskset_feasible() {
        assert!(lp_feasible_simplex(&TaskSet::empty(), &pf(&[1])));
    }
}
