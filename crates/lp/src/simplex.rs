//! A from-scratch dense two-phase primal simplex solver.
//!
//! The paper's analysis revolves around the natural LP (§II, constraints
//! (1)–(4)). The paper never solves it at runtime — and neither does our
//! feasibility test — but the experiments need LP feasibility as the
//! "arbitrary adversary" ground truth (E3/E4), and we want it computed two
//! independent ways: this general solver, and the closed-form level
//! condition in [`crate::level`]. The two are cross-validated by property
//! tests.
//!
//! Design: textbook tableau simplex over `f64`.
//!
//! * Problems are stated as `minimize c·x` subject to mixed `≤ / ≥ / =`
//!   rows and `x ≥ 0`, then converted to standard form with slack and
//!   artificial variables.
//! * Phase 1 minimizes the sum of artificials; a positive optimum means
//!   infeasible.
//! * Bland's rule guards against cycling; a small tolerance guards
//!   degenerate pivots.
//!
//! Sizes in this workspace stay modest (≲ 200 rows × 1000 columns), so a
//! dense tableau with contiguous row storage is the cache-friendly choice
//! (see the perf-book guidance on flat storage; no per-pivot allocation).

use core::fmt;
use hetfeas_robust::{Exhaustion, Gas};

/// Relation of a constraint row.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Relation {
    /// `Σ a_j x_j ≤ b`
    Le,
    /// `Σ a_j x_j ≥ b`
    Ge,
    /// `Σ a_j x_j = b`
    Eq,
}

/// A linear program `minimize c·x  s.t.  rows, x ≥ 0`.
#[derive(Debug, Clone, Default)]
pub struct LinearProgram {
    n_vars: usize,
    objective: Vec<f64>,
    rows: Vec<(Vec<f64>, Relation, f64)>,
}

/// Solver outcome.
#[derive(Debug, Clone, PartialEq)]
pub enum LpStatus {
    /// Optimal solution found: primal values and objective.
    Optimal {
        /// Values of the original variables.
        x: Vec<f64>,
        /// Objective value `c·x`.
        objective: f64,
    },
    /// No feasible point exists.
    Infeasible,
    /// The objective is unbounded below on the feasible region.
    Unbounded,
}

impl LpStatus {
    /// True when a feasible (optimal) point was found.
    pub fn is_feasible(&self) -> bool {
        matches!(self, LpStatus::Optimal { .. })
    }
}

impl fmt::Display for LpStatus {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LpStatus::Optimal { objective, .. } => write!(f, "optimal({objective})"),
            LpStatus::Infeasible => write!(f, "infeasible"),
            LpStatus::Unbounded => write!(f, "unbounded"),
        }
    }
}

/// Numerical tolerance for pivoting and feasibility decisions.
const TOL: f64 = 1e-9;

impl LinearProgram {
    /// New LP over `n_vars` non-negative variables with zero objective
    /// (a pure feasibility problem until [`set_objective`] is called).
    ///
    /// [`set_objective`]: LinearProgram::set_objective
    pub fn new(n_vars: usize) -> Self {
        LinearProgram {
            n_vars,
            objective: vec![0.0; n_vars],
            rows: Vec::new(),
        }
    }

    /// Number of variables.
    pub fn n_vars(&self) -> usize {
        self.n_vars
    }

    /// Number of constraint rows.
    pub fn n_rows(&self) -> usize {
        self.rows.len()
    }

    /// Set the minimization objective (length must equal `n_vars`).
    pub fn set_objective(&mut self, c: Vec<f64>) {
        assert_eq!(c.len(), self.n_vars, "objective length mismatch");
        self.objective = c;
    }

    /// Add a constraint row given as a dense coefficient vector.
    pub fn add_row(&mut self, coeffs: Vec<f64>, rel: Relation, rhs: f64) {
        assert_eq!(coeffs.len(), self.n_vars, "row length mismatch");
        self.rows.push((coeffs, rel, rhs));
    }

    /// Add a sparse constraint row from `(index, coefficient)` pairs.
    pub fn add_sparse_row(&mut self, entries: &[(usize, f64)], rel: Relation, rhs: f64) {
        let mut coeffs = vec![0.0; self.n_vars];
        for &(j, a) in entries {
            assert!(j < self.n_vars, "variable index out of range");
            coeffs[j] += a;
        }
        self.rows.push((coeffs, rel, rhs));
    }

    /// Solve the LP by two-phase primal simplex.
    pub fn solve(&self) -> LpStatus {
        self.solve_within(&mut Gas::unlimited())
            .expect("unlimited gas cannot exhaust")
    }

    /// [`solve`](LinearProgram::solve) under an execution budget: each
    /// pivot ticks `gas` proportionally to the tableau width, so a
    /// degenerate or cycling instance stops with `Err(Exhaustion)` instead
    /// of spinning until the internal iteration cap.
    pub fn solve_within(&self, gas: &mut Gas) -> Result<LpStatus, Exhaustion> {
        Tableau::build(self).solve(gas)
    }
}

/// Dense simplex tableau in standard form.
struct Tableau {
    m: usize,            // rows
    total: usize,        // structural + slack + artificial columns
    n_structural: usize, // original variables
    n_artificial: usize,
    a: Vec<f64>,       // m × total, row-major
    b: Vec<f64>,       // m
    basis: Vec<usize>, // basic column per row
    cost: Vec<f64>,    // phase-2 cost per column (structural only non-zero)
    artificial_start: usize,
}

impl Tableau {
    fn build(lp: &LinearProgram) -> Tableau {
        let m = lp.rows.len();
        // Count slacks (one per inequality) and artificials (one per row
        // that lacks an obvious basic slack).
        let n_slack = lp
            .rows
            .iter()
            .filter(|(_, rel, _)| *rel != Relation::Eq)
            .count();
        let n = lp.n_vars;
        // Worst case every row needs an artificial.
        let artificial_start = n + n_slack;
        let total_cap = artificial_start + m;

        let mut a = vec![0.0; m * total_cap];
        let mut b = vec![0.0; m];
        let mut basis = vec![usize::MAX; m];
        let mut n_artificial = 0;
        let mut slack_col = n;

        for (i, (coeffs, rel, rhs)) in lp.rows.iter().enumerate() {
            let row = &mut a[i * total_cap..(i + 1) * total_cap];
            row[..n].copy_from_slice(coeffs);
            let mut rhs = *rhs;
            let mut rel = *rel;
            // Normalize to non-negative rhs.
            if rhs < 0.0 {
                for v in row[..n].iter_mut() {
                    *v = -*v;
                }
                rhs = -rhs;
                rel = match rel {
                    Relation::Le => Relation::Ge,
                    Relation::Ge => Relation::Le,
                    Relation::Eq => Relation::Eq,
                };
            }
            b[i] = rhs;
            match rel {
                Relation::Le => {
                    row[slack_col] = 1.0;
                    basis[i] = slack_col; // slack is basic (rhs ≥ 0)
                    slack_col += 1;
                }
                Relation::Ge => {
                    row[slack_col] = -1.0; // surplus
                    slack_col += 1;
                    let art = artificial_start + n_artificial;
                    row[art] = 1.0;
                    basis[i] = art;
                    n_artificial += 1;
                }
                Relation::Eq => {
                    let art = artificial_start + n_artificial;
                    row[art] = 1.0;
                    basis[i] = art;
                    n_artificial += 1;
                }
            }
        }

        let total = artificial_start + n_artificial;
        // Compact rows to the true width.
        let mut compact = vec![0.0; m * total];
        for i in 0..m {
            compact[i * total..(i + 1) * total]
                .copy_from_slice(&a[i * total_cap..i * total_cap + total]);
        }

        let mut cost = vec![0.0; total];
        cost[..n].copy_from_slice(&lp.objective);

        Tableau {
            m,
            total,
            n_structural: n,
            n_artificial,
            a: compact,
            b,
            basis,
            cost,
            artificial_start,
        }
    }

    #[inline]
    fn at(&self, i: usize, j: usize) -> f64 {
        self.a[i * self.total + j]
    }

    /// Reduced costs for the given cost vector: `c_j − c_B · B⁻¹ A_j`,
    /// computed directly from the maintained tableau (which stores
    /// `B⁻¹ A`).
    fn reduced_costs(&self, cost: &[f64], reduced: &mut [f64]) {
        reduced.copy_from_slice(cost);
        for i in 0..self.m {
            let cb = cost[self.basis[i]];
            if cb != 0.0 {
                let row = &self.a[i * self.total..(i + 1) * self.total];
                for (r, &aij) in reduced.iter_mut().zip(row) {
                    *r -= cb * aij;
                }
            }
        }
    }

    /// Run simplex iterations for `cost`, restricted to columns `< limit`.
    /// Returns `Ok(false)` if unbounded.
    fn iterate(&mut self, cost: &[f64], limit: usize, gas: &mut Gas) -> Result<bool, Exhaustion> {
        let mut reduced = vec![0.0; self.total];
        // An iteration cap prevents livelock from numerical noise; Bland's
        // rule makes cycling impossible in exact arithmetic, so hitting the
        // cap indicates tolerance trouble — treat as converged (reduced
        // costs ≈ 0 at that point for our benign instances).
        let max_iter = 50 * (self.m + self.total) + 1000;
        // Each pass recomputes reduced costs (m·total work) and pivots
        // (m·total work), so charge gas proportionally.
        let pass_cost = (self.m as u64 + 1) * self.total as u64 + 1;
        for _ in 0..max_iter {
            gas.tick_n(pass_cost)?;
            self.reduced_costs(cost, &mut reduced);
            // Bland: entering = smallest index with negative reduced cost.
            let Some(enter) = (0..limit).find(|&j| reduced[j] < -TOL) else {
                return Ok(true); // optimal
            };
            // Ratio test, Bland tie-break on smallest basis column.
            let mut leave: Option<(usize, f64)> = None;
            for i in 0..self.m {
                let aij = self.at(i, enter);
                if aij > TOL {
                    let ratio = self.b[i] / aij;
                    match leave {
                        None => leave = Some((i, ratio)),
                        Some((li, lr)) => {
                            if ratio < lr - TOL
                                || (ratio < lr + TOL && self.basis[i] < self.basis[li])
                            {
                                leave = Some((i, ratio));
                            }
                        }
                    }
                }
            }
            let Some((leave, _)) = leave else {
                return Ok(false); // unbounded
            };
            self.pivot(leave, enter);
        }
        Ok(true)
    }

    fn pivot(&mut self, row: usize, col: usize) {
        let total = self.total;
        let piv = self.at(row, col);
        debug_assert!(piv.abs() > TOL);
        // Normalize pivot row.
        let inv = 1.0 / piv;
        for j in 0..total {
            self.a[row * total + j] *= inv;
        }
        self.b[row] *= inv;
        self.a[row * total + col] = 1.0; // exact
                                         // Eliminate the column elsewhere.
        for i in 0..self.m {
            if i == row {
                continue;
            }
            let factor = self.at(i, col);
            if factor.abs() <= TOL {
                self.a[i * total + col] = 0.0;
                continue;
            }
            for j in 0..total {
                let v = self.a[row * total + j];
                self.a[i * total + j] -= factor * v;
            }
            self.a[i * total + col] = 0.0; // exact
            self.b[i] -= factor * self.b[row];
            if self.b[i].abs() < TOL {
                self.b[i] = 0.0;
            }
        }
        self.basis[row] = col;
    }

    fn solve(mut self, gas: &mut Gas) -> Result<LpStatus, Exhaustion> {
        // Phase 1: minimize the sum of artificials.
        if self.n_artificial > 0 {
            let mut phase1 = vec![0.0; self.total];
            for c in phase1[self.artificial_start..].iter_mut() {
                *c = 1.0;
            }
            // Phase 1 is always bounded (objective ≥ 0).
            self.iterate(&phase1.clone(), self.total, gas)?;
            let obj1: f64 = (0..self.m)
                .map(|i| {
                    if self.basis[i] >= self.artificial_start {
                        self.b[i]
                    } else {
                        0.0
                    }
                })
                .sum();
            if obj1 > 1e-7 {
                return Ok(LpStatus::Infeasible);
            }
            // Drive remaining basic artificials out (degenerate rows).
            for i in 0..self.m {
                if self.basis[i] >= self.artificial_start {
                    if let Some(j) = (0..self.artificial_start).find(|&j| self.at(i, j).abs() > TOL)
                    {
                        self.pivot(i, j);
                    }
                    // Otherwise the row is all-zero (redundant) — harmless.
                }
            }
        }
        // Phase 2 over structural + slack columns only.
        let cost = self.cost.clone();
        if !self.iterate(&cost, self.artificial_start, gas)? {
            return Ok(LpStatus::Unbounded);
        }
        // Extract solution.
        let mut x = vec![0.0; self.n_structural];
        for i in 0..self.m {
            if self.basis[i] < self.n_structural {
                x[self.basis[i]] = self.b[i];
            }
        }
        let objective = x
            .iter()
            .zip(&self.cost[..self.n_structural])
            .map(|(xi, ci)| xi * ci)
            .sum();
        Ok(LpStatus::Optimal { x, objective })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_opt(status: &LpStatus, expect: f64) -> Vec<f64> {
        match status {
            LpStatus::Optimal { x, objective } => {
                assert!(
                    (objective - expect).abs() < 1e-6,
                    "objective {objective} != {expect}"
                );
                x.clone()
            }
            other => panic!("expected optimal({expect}), got {other}"),
        }
    }

    #[test]
    fn simple_minimization() {
        // min x+y s.t. x+2y ≥ 4, 3x+y ≥ 6 → optimum at (8/5, 6/5), obj 14/5.
        let mut lp = LinearProgram::new(2);
        lp.set_objective(vec![1.0, 1.0]);
        lp.add_row(vec![1.0, 2.0], Relation::Ge, 4.0);
        lp.add_row(vec![3.0, 1.0], Relation::Ge, 6.0);
        let x = assert_opt(&lp.solve(), 14.0 / 5.0);
        assert!((x[0] - 1.6).abs() < 1e-6);
        assert!((x[1] - 1.2).abs() < 1e-6);
    }

    #[test]
    fn maximization_via_negated_objective() {
        // max 3x+2y s.t. x+y ≤ 4, x ≤ 2, y ≤ 3 → (2,2), value 10.
        let mut lp = LinearProgram::new(2);
        lp.set_objective(vec![-3.0, -2.0]);
        lp.add_row(vec![1.0, 1.0], Relation::Le, 4.0);
        lp.add_row(vec![1.0, 0.0], Relation::Le, 2.0);
        lp.add_row(vec![0.0, 1.0], Relation::Le, 3.0);
        assert_opt(&lp.solve(), -10.0);
    }

    #[test]
    fn equality_constraints() {
        // min 2x+3y s.t. x+y = 10, x−y = 2 → (6,4), obj 24.
        let mut lp = LinearProgram::new(2);
        lp.set_objective(vec![2.0, 3.0]);
        lp.add_row(vec![1.0, 1.0], Relation::Eq, 10.0);
        lp.add_row(vec![1.0, -1.0], Relation::Eq, 2.0);
        let x = assert_opt(&lp.solve(), 24.0);
        assert!((x[0] - 6.0).abs() < 1e-6);
        assert!((x[1] - 4.0).abs() < 1e-6);
    }

    #[test]
    fn detects_infeasible() {
        // x ≤ 1 and x ≥ 2.
        let mut lp = LinearProgram::new(1);
        lp.add_row(vec![1.0], Relation::Le, 1.0);
        lp.add_row(vec![1.0], Relation::Ge, 2.0);
        assert_eq!(lp.solve(), LpStatus::Infeasible);
    }

    #[test]
    fn detects_unbounded() {
        // min −x with x ≥ 0 free upward.
        let mut lp = LinearProgram::new(1);
        lp.set_objective(vec![-1.0]);
        lp.add_row(vec![1.0], Relation::Ge, 0.0);
        assert_eq!(lp.solve(), LpStatus::Unbounded);
    }

    #[test]
    fn pure_feasibility_problem() {
        // Zero objective: any feasible vertex is optimal with objective 0.
        let mut lp = LinearProgram::new(2);
        lp.add_row(vec![1.0, 1.0], Relation::Eq, 1.0);
        lp.add_row(vec![1.0, 0.0], Relation::Le, 0.7);
        let st = lp.solve();
        assert!(st.is_feasible());
        if let LpStatus::Optimal { x, .. } = st {
            assert!((x[0] + x[1] - 1.0).abs() < 1e-7);
            assert!(x[0] <= 0.7 + 1e-7);
            assert!(x.iter().all(|&v| v >= -1e-9));
        }
    }

    #[test]
    fn negative_rhs_normalization() {
        // x − y ≤ −1 with x,y ≥ 0 → y ≥ x+1 feasible.
        let mut lp = LinearProgram::new(2);
        lp.set_objective(vec![0.0, 1.0]);
        lp.add_row(vec![1.0, -1.0], Relation::Le, -1.0);
        let x = assert_opt(&lp.solve(), 1.0);
        assert!((x[1] - 1.0).abs() < 1e-6);
    }

    #[test]
    fn sparse_rows() {
        let mut lp = LinearProgram::new(4);
        lp.set_objective(vec![1.0, 1.0, 1.0, 1.0]);
        lp.add_sparse_row(&[(0, 1.0), (2, 1.0)], Relation::Ge, 2.0);
        lp.add_sparse_row(&[(1, 1.0), (3, 1.0)], Relation::Ge, 3.0);
        assert_opt(&lp.solve(), 5.0);
    }

    #[test]
    fn degenerate_problem_terminates() {
        // Multiple redundant constraints through the same vertex.
        let mut lp = LinearProgram::new(2);
        lp.set_objective(vec![-1.0, -1.0]);
        lp.add_row(vec![1.0, 0.0], Relation::Le, 1.0);
        lp.add_row(vec![1.0, 0.0], Relation::Le, 1.0);
        lp.add_row(vec![0.0, 1.0], Relation::Le, 1.0);
        lp.add_row(vec![1.0, 1.0], Relation::Le, 2.0);
        assert_opt(&lp.solve(), -2.0);
    }

    #[test]
    fn redundant_equalities() {
        // x + y = 1 twice: phase 1 leaves a basic artificial on a zero row.
        let mut lp = LinearProgram::new(2);
        lp.set_objective(vec![1.0, 2.0]);
        lp.add_row(vec![1.0, 1.0], Relation::Eq, 1.0);
        lp.add_row(vec![1.0, 1.0], Relation::Eq, 1.0);
        assert_opt(&lp.solve(), 1.0);
    }

    #[test]
    #[should_panic(expected = "row length mismatch")]
    fn row_length_checked() {
        let mut lp = LinearProgram::new(2);
        lp.add_row(vec![1.0], Relation::Le, 1.0);
    }

    #[test]
    fn budgeted_solve_agrees_when_budget_suffices() {
        use hetfeas_robust::Budget;
        let mut lp = LinearProgram::new(2);
        lp.set_objective(vec![1.0, 1.0]);
        lp.add_row(vec![1.0, 2.0], Relation::Ge, 4.0);
        lp.add_row(vec![3.0, 1.0], Relation::Ge, 6.0);
        let mut gas = Budget::ops(1_000_000).gas();
        assert_eq!(lp.solve_within(&mut gas), Ok(lp.solve()));
    }

    #[test]
    fn budgeted_solve_exhausts_on_starved_budget() {
        use hetfeas_robust::{Budget, Exhaustion};
        // A problem large enough that phase 1 needs many pivots.
        let n = 20;
        let mut lp = LinearProgram::new(n);
        lp.set_objective(vec![1.0; n]);
        for i in 0..n {
            let mut row = vec![1.0; n];
            row[i] = 2.0;
            lp.add_row(row, Relation::Ge, (i + 1) as f64);
        }
        let mut gas = Budget::ops(5).gas();
        assert_eq!(lp.solve_within(&mut gas), Err(Exhaustion::Ops));
    }
}
