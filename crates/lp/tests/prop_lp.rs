//! Cross-validation of the two LP oracles and solver properties.

use hetfeas_lp::{
    build_paper_lp, level_feasible, level_scaling_factor, lp_feasible_simplex, solve_paper_lp,
    LinearProgram, LpStatus, Relation,
};
use hetfeas_model::{Platform, Task, TaskSet};
use proptest::prelude::*;

fn menu_task() -> impl Strategy<Value = Task> {
    (
        1u64..=60,
        prop::sample::select(vec![10u64, 20, 25, 40, 50, 100]),
    )
        .prop_map(|(c, p)| Task::implicit(c, p).unwrap())
}

fn small_set() -> impl Strategy<Value = TaskSet> {
    prop::collection::vec(menu_task(), 1..10).prop_map(TaskSet::new)
}

fn small_platform() -> impl Strategy<Value = Platform> {
    prop::collection::vec(1u64..=6, 1..5).prop_map(|s| Platform::from_int_speeds(s).unwrap())
}

proptest! {
    // The headline invariant: the from-scratch simplex and the closed-form
    // level condition decide the paper's LP identically (away from the
    // numerical boundary).
    #[test]
    fn simplex_matches_level(ts in small_set(), p in small_platform()) {
        let closed = level_feasible(&ts, &p);
        let simplex = lp_feasible_simplex(&ts, &p);
        if closed != simplex {
            // Only tolerable within f64 noise of the feasibility boundary.
            let beta = level_scaling_factor(&ts, &p);
            prop_assert!((beta - 1.0).abs() < 1e-7,
                "oracles disagree at β = {beta}: {} on {}", ts, p);
        }
    }

    // Feasible simplex points satisfy the paper's constraints (1)-(4).
    #[test]
    fn solved_points_validate(ts in small_set(), p in small_platform()) {
        if let Some(point) = solve_paper_lp(&ts, &p) {
            prop_assert!(point.validate(&ts, &p, 1e-6));
        }
    }

    // Monotonicity: adding a machine never breaks feasibility; adding a
    // task never creates it.
    #[test]
    fn lp_monotone(ts in small_set(), p in small_platform(), extra_speed in 1u64..6) {
        let feasible = level_feasible(&ts, &p);
        if feasible {
            let mut speeds: Vec<u64> = Vec::new();
            for m in p.iter() {
                speeds.push(m.speed().numer() as u64);
            }
            speeds.push(extra_speed);
            let bigger = Platform::from_int_speeds(speeds).unwrap();
            prop_assert!(level_feasible(&ts, &bigger));
        } else {
            let mut more = ts.clone();
            more.push(Task::implicit(1, 100).unwrap());
            prop_assert!(!level_feasible(&more, &p));
        }
    }

    // The scaling factor is exactly the feasibility threshold.
    #[test]
    fn scaling_factor_is_threshold(ts in small_set(), p in small_platform()) {
        let beta = level_scaling_factor(&ts, &p);
        prop_assume!(beta > 0.0);
        let above: Vec<f64> = p.iter().map(|m| m.speed_f64() * beta * 1.001).collect();
        let scaled = Platform::from_f64_speeds(above).unwrap();
        prop_assert!(level_feasible(&ts, &scaled), "β·1.001 must be feasible");
        let below: Vec<f64> = p.iter().map(|m| m.speed_f64() * beta * 0.999).collect();
        let scaled = Platform::from_f64_speeds(below).unwrap();
        prop_assert!(!level_feasible(&ts, &scaled), "β·0.999 must be infeasible");
    }

    // β ≤ 1 ⇔ feasible (up to the same tolerance).
    #[test]
    fn scaling_factor_consistent_with_feasibility(ts in small_set(), p in small_platform()) {
        let beta = level_scaling_factor(&ts, &p);
        prop_assume!((beta - 1.0).abs() > 1e-9);
        prop_assert_eq!(level_feasible(&ts, &p), beta < 1.0);
    }

    // Generic simplex sanity on random box-constrained LPs:
    // min Σ c_i x_i  s.t.  x_i ≤ u_i  and  Σ x_i ≥ r with r ≤ Σ u_i is
    // always feasible, and the optimum matches the greedy solution.
    #[test]
    fn simplex_solves_box_problems(
        c in prop::collection::vec(1.0f64..5.0, 2..6),
        u in prop::collection::vec(0.5f64..2.0, 2..6),
        frac in 0.1f64..0.9,
    ) {
        let n = c.len().min(u.len());
        let (c, u) = (&c[..n], &u[..n]);
        let total: f64 = u.iter().sum();
        let r = frac * total;
        let mut lp = LinearProgram::new(n);
        lp.set_objective(c.to_vec());
        for i in 0..n {
            let mut row = vec![0.0; n];
            row[i] = 1.0;
            lp.add_row(row, Relation::Le, u[i]);
        }
        lp.add_row(vec![1.0; n], Relation::Ge, r);
        match lp.solve() {
            LpStatus::Optimal { objective, .. } => {
                // Greedy: fill cheapest coordinates first.
                let mut order: Vec<usize> = (0..n).collect();
                order.sort_by(|&a, &b| c[a].partial_cmp(&c[b]).unwrap());
                let mut need = r;
                let mut best = 0.0;
                for &i in &order {
                    let take = need.min(u[i]);
                    best += take * c[i];
                    need -= take;
                    if need <= 0.0 { break; }
                }
                prop_assert!((objective - best).abs() < 1e-6,
                    "simplex {objective} vs greedy {best}");
            }
            other => prop_assert!(false, "expected optimal, got {other}"),
        }
    }

    // Paper LP dimensions follow (n, m).
    #[test]
    fn paper_lp_dimensions(ts in small_set(), p in small_platform()) {
        let lp = build_paper_lp(&ts, &p);
        prop_assert_eq!(lp.n_vars(), ts.len() * p.len());
        prop_assert_eq!(lp.n_rows(), 2 * ts.len() + p.len());
    }

    // The paper's Lemma II.1, checked numerically on solved LP points.
    // NB the paper's printed premise ("w_i ≤ α·s_{k+1}") is garbled — the
    // derivation from constraint (2) needs the *slow* machines 1..k to be
    // slow relative to the task: α·s_k < w_i. (With the printed premise a
    // one-task instance on [1,1] with w = 0.1 is a counterexample.) That
    // corrected premise is also exactly how the paper *uses* the lemma
    // (its slow group M_s has α·s < w_n). Verified here:
    // α·s_k < w_i  ⇒  w_i ≤ α/(α−1) · Σ_{j>k} u_{i,j}.
    #[test]
    fn lemma_ii1_holds_on_solved_points(
        ts in small_set(),
        p in small_platform(),
        alpha_tenths in 15u32..40,
    ) {
        let Some(point) = solve_paper_lp(&ts, &p) else {
            return Ok(()); // infeasible instance — lemma vacuous
        };
        let alpha = alpha_tenths as f64 / 10.0;
        // Machines sorted by increasing speed, as in the paper.
        let order = p.order_by_increasing_speed();
        let m = p.len();
        for i in 0..ts.len() {
            let w = ts[i].utilization();
            for k in 0..=m {
                // Slow set = the k slowest machines; premise: every slow
                // machine has α·s_j < w (strictly).
                if k > 0 && alpha * p.speed_f64(order[k - 1]) >= w - 1e-12 {
                    continue;
                }
                let fast_share: f64 = order[k..]
                    .iter()
                    .map(|&j| point.u(i, j))
                    .sum();
                prop_assert!(
                    w <= alpha / (alpha - 1.0) * fast_share + 1e-6,
                    "Lemma II.1 violated: w={w}, α={alpha}, share={fast_share} \
                     (task {i}, k={k}, {} on {})",
                    ts, p
                );
            }
        }
    }
}
