//! Sporadic task model.
//!
//! The paper studies *implicit-deadline* sporadic tasks: task `τ_i` releases
//! jobs at least `p_i` ticks apart, each job needs `c_i` work units and must
//! finish `p_i` after release. We additionally carry an explicit relative
//! deadline to support the constrained-deadline extension analysed by
//! `hetfeas-analysis::dbf` (deadline ≤ period); the headline algorithm only
//! ever sees implicit-deadline tasks.
//!
//! WCET is expressed in *work units*: a machine of speed `s` completes `s`
//! work units per tick, so a job of WCET `c` occupies a speed-`s` machine for
//! `c / s` ticks. This keeps all quantities integral on unit-speed machines
//! and exactly rational otherwise.

use crate::error::ModelError;
use crate::ratio::Ratio;
use crate::time::Tick;
use core::fmt;

/// A sporadic task: worst-case execution time (work units), minimum
/// inter-arrival time (period, ticks) and relative deadline (ticks).
///
/// ```
/// use hetfeas_model::Task;
/// let t = Task::implicit(2, 10).unwrap();
/// assert_eq!(t.utilization(), 0.2);
/// assert!(t.is_implicit_deadline());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Task {
    wcet: u64,
    period: Tick,
    deadline: Tick,
}

impl Task {
    /// Create an implicit-deadline task (`deadline == period`).
    pub fn implicit(wcet: u64, period: Tick) -> Result<Self, ModelError> {
        Self::constrained(wcet, period, period)
    }

    /// Create a constrained-deadline task (`deadline ≤ period` is *not*
    /// enforced; arbitrary deadlines are allowed for the DBF extension).
    pub fn constrained(wcet: u64, period: Tick, deadline: Tick) -> Result<Self, ModelError> {
        if period == 0 {
            return Err(ModelError::ZeroPeriod);
        }
        if wcet == 0 {
            return Err(ModelError::ZeroWcet);
        }
        if deadline == 0 {
            return Err(ModelError::ZeroDeadline);
        }
        Ok(Task {
            wcet,
            period,
            deadline,
        })
    }

    /// Worst-case execution time in work units.
    #[inline]
    pub const fn wcet(&self) -> u64 {
        self.wcet
    }

    /// Minimum inter-arrival time (period) in ticks.
    #[inline]
    pub const fn period(&self) -> Tick {
        self.period
    }

    /// Relative deadline in ticks.
    #[inline]
    pub const fn deadline(&self) -> Tick {
        self.deadline
    }

    /// True when `deadline == period` (the paper's model).
    #[inline]
    pub const fn is_implicit_deadline(&self) -> bool {
        self.deadline == self.period
    }

    /// Utilization `w_i = c_i / p_i` as `f64` (the quantity the paper's
    /// admission tests compare against machine speeds).
    #[inline]
    pub fn utilization(&self) -> f64 {
        self.wcet as f64 / self.period as f64
    }

    /// Utilization as an exact rational.
    #[inline]
    pub fn utilization_ratio(&self) -> Ratio {
        Ratio::new(self.wcet as i128, self.period as i128)
    }

    /// Density `c_i / min(d_i, p_i)` — used by constrained-deadline
    /// sufficient tests.
    #[inline]
    pub fn density(&self) -> f64 {
        self.wcet as f64 / self.deadline.min(self.period) as f64
    }

    /// Exact scaled load `c_i · (H / p_i)`: the amount of work the task
    /// demands per hyperperiod `H`, provided `p_i` divides `H`.
    ///
    /// Returns `None` if `p_i` does not divide `H` or on overflow. Used by
    /// the exact partitioned oracle to compare integer loads instead of
    /// floating-point utilizations.
    pub fn scaled_load(&self, h: u128) -> Option<u128> {
        if !h.is_multiple_of(self.period as u128) {
            return None;
        }
        (self.wcet as u128).checked_mul(h / self.period as u128)
    }
}

impl fmt::Display for Task {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_implicit_deadline() {
            write!(f, "τ(c={}, p={})", self.wcet, self.period)
        } else {
            write!(
                f,
                "τ(c={}, p={}, d={})",
                self.wcet, self.period, self.deadline
            )
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn implicit_task_has_deadline_equal_period() {
        let t = Task::implicit(3, 12).unwrap();
        assert_eq!(t.wcet(), 3);
        assert_eq!(t.period(), 12);
        assert_eq!(t.deadline(), 12);
        assert!(t.is_implicit_deadline());
        assert_eq!(t.utilization(), 0.25);
        assert_eq!(t.utilization_ratio(), Ratio::new(1, 4));
    }

    #[test]
    fn constrained_task() {
        let t = Task::constrained(2, 10, 5).unwrap();
        assert!(!t.is_implicit_deadline());
        assert_eq!(t.density(), 0.4);
        assert_eq!(t.utilization(), 0.2);
    }

    #[test]
    fn construction_rejects_zeroes() {
        assert_eq!(Task::implicit(1, 0), Err(ModelError::ZeroPeriod));
        assert_eq!(Task::implicit(0, 5), Err(ModelError::ZeroWcet));
        assert_eq!(Task::constrained(1, 5, 0), Err(ModelError::ZeroDeadline));
    }

    #[test]
    fn utilization_may_exceed_one() {
        // A heavy task that only a fast machine can host.
        let t = Task::implicit(30, 10).unwrap();
        assert_eq!(t.utilization(), 3.0);
        assert_eq!(t.utilization_ratio(), Ratio::from_integer(3));
    }

    #[test]
    fn scaled_load_exact() {
        let t = Task::implicit(3, 10).unwrap();
        assert_eq!(t.scaled_load(100), Some(30));
        assert_eq!(t.scaled_load(10), Some(3));
        assert_eq!(t.scaled_load(25), None); // 10 does not divide 25
        let heavy = Task::implicit(1_000, 10).unwrap();
        assert_eq!(heavy.scaled_load(u128::MAX - (u128::MAX % 10)), None); // overflow
    }

    #[test]
    fn display_renders_both_forms() {
        assert_eq!(Task::implicit(1, 4).unwrap().to_string(), "τ(c=1, p=4)");
        assert_eq!(
            Task::constrained(1, 4, 2).unwrap().to_string(),
            "τ(c=1, p=4, d=2)"
        );
    }
}
