//! Integer time utilities.
//!
//! The simulator and the exact analysis paths work in discrete integer time
//! (see `DESIGN.md` §10). Periods and worst-case execution times are `u64`
//! "ticks"; hyperperiods can exceed `u64` so lcm computations are checked.

/// Discrete time instant / duration, in ticks.
pub type Tick = u64;

/// Greatest common divisor (Euclid) of two `u64` values.
#[inline]
pub fn gcd(mut a: u64, mut b: u64) -> u64 {
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a
}

/// Greatest common divisor of two `u128` values.
#[inline]
pub fn gcd_u128(mut a: u128, mut b: u128) -> u128 {
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a
}

/// Least common multiple, `None` on overflow or if either argument is zero.
#[inline]
pub fn checked_lcm(a: u64, b: u64) -> Option<u64> {
    if a == 0 || b == 0 {
        return None;
    }
    (a / gcd(a, b)).checked_mul(b)
}

/// Least common multiple over `u128`, `None` on overflow / zero argument.
#[inline]
pub fn checked_lcm_u128(a: u128, b: u128) -> Option<u128> {
    if a == 0 || b == 0 {
        return None;
    }
    (a / gcd_u128(a, b)).checked_mul(b)
}

/// Hyperperiod (lcm) of a sequence of periods. Returns `None` if the
/// sequence is empty, contains a zero, or the lcm overflows `u128`.
pub fn hyperperiod<I: IntoIterator<Item = u64>>(periods: I) -> Option<u128> {
    let mut acc: Option<u128> = None;
    for p in periods {
        if p == 0 {
            return None;
        }
        acc = Some(match acc {
            None => p as u128,
            Some(h) => checked_lcm_u128(h, p as u128)?,
        });
    }
    acc
}

/// Ceiling division `a / b` for `u64`, `b > 0`.
#[inline]
pub fn div_ceil(a: u64, b: u64) -> u64 {
    debug_assert!(b > 0);
    a / b + u64::from(!a.is_multiple_of(b))
}

/// Ceiling division for `u128`, `b > 0`.
#[inline]
pub fn div_ceil_u128(a: u128, b: u128) -> u128 {
    debug_assert!(b > 0);
    a / b + u128::from(!a.is_multiple_of(b))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gcd_basics() {
        assert_eq!(gcd(12, 18), 6);
        assert_eq!(gcd(17, 5), 1);
        assert_eq!(gcd(0, 5), 5);
        assert_eq!(gcd(5, 0), 5);
        assert_eq!(gcd_u128(1 << 70, 1 << 65), 1 << 65);
    }

    #[test]
    fn lcm_basics() {
        assert_eq!(checked_lcm(4, 6), Some(12));
        assert_eq!(checked_lcm(7, 7), Some(7));
        assert_eq!(checked_lcm(0, 3), None);
        assert_eq!(checked_lcm(u64::MAX, u64::MAX - 1), None);
    }

    #[test]
    fn hyperperiod_of_typical_menu() {
        let h = hyperperiod([10u64, 20, 25, 50, 100]).unwrap();
        assert_eq!(h, 100);
        let h = hyperperiod([10u64, 15, 12]).unwrap();
        assert_eq!(h, 60);
    }

    #[test]
    fn hyperperiod_edge_cases() {
        assert_eq!(hyperperiod(core::iter::empty::<u64>()), None);
        assert_eq!(hyperperiod([5u64, 0]), None);
        assert_eq!(hyperperiod([42u64]), Some(42));
    }

    #[test]
    fn div_ceil_basics() {
        assert_eq!(div_ceil(10, 3), 4);
        assert_eq!(div_ceil(9, 3), 3);
        assert_eq!(div_ceil(0, 3), 0);
        assert_eq!(div_ceil_u128(10, 4), 3);
    }
}
