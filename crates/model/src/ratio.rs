//! Exact rational arithmetic on `i128`.
//!
//! The feasibility theory in Ahuja–Lu–Moseley is stated over the reals, but
//! several of our oracles (the exact branch-and-bound partitioner, the
//! level-algorithm feasibility condition, the simulator's time scaling) need
//! *exact* comparisons: a task set sitting exactly on a bound must classify
//! deterministically, or the experiment harness would report phantom
//! approximation-ratio violations.
//!
//! [`Ratio`] is a minimal normalized fraction over `i128`. All operations
//! reduce eagerly by the gcd, and arithmetic panics on overflow (the
//! workloads we generate keep numerators far below `i128::MAX`; an overflow
//! indicates a misuse such as summing thousands of incommensurable periods,
//! for which the f64 path should be used instead — see `DESIGN.md` §10).

use core::cmp::Ordering;
use core::fmt;
use core::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};

/// Greatest common divisor of two non-negative `i128` values.
#[inline]
pub fn gcd_i128(mut a: i128, mut b: i128) -> i128 {
    debug_assert!(a >= 0 && b >= 0);
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a
}

/// An exact rational number `num / den`, always normalized so that
/// `den > 0` and `gcd(|num|, den) == 1`.
///
/// ```
/// use hetfeas_model::Ratio;
/// let a = Ratio::new(2, 4);
/// assert_eq!(a, Ratio::new(1, 2));
/// assert_eq!((a + Ratio::new(1, 3)).to_string(), "5/6");
/// assert!(a < Ratio::new(2, 3));
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct Ratio {
    num: i128,
    den: i128,
}

impl Ratio {
    /// Zero.
    pub const ZERO: Ratio = Ratio { num: 0, den: 1 };
    /// One.
    pub const ONE: Ratio = Ratio { num: 1, den: 1 };

    /// Create a new ratio, normalizing the sign and reducing by the gcd.
    ///
    /// # Panics
    /// Panics if `den == 0`.
    #[inline]
    pub fn new(num: i128, den: i128) -> Self {
        assert!(den != 0, "Ratio denominator must be non-zero");
        let sign = if (num < 0) != (den < 0) && num != 0 {
            -1
        } else {
            1
        };
        let (num, den) = (num.unsigned_abs(), den.unsigned_abs());
        let g = gcd_i128(num as i128, den as i128).max(1);
        Ratio {
            num: sign * (num as i128 / g),
            den: den as i128 / g,
        }
    }

    /// Ratio representing the integer `n`.
    #[inline]
    pub const fn from_integer(n: i128) -> Self {
        Ratio { num: n, den: 1 }
    }

    /// Numerator (sign-carrying).
    #[inline]
    pub const fn numer(&self) -> i128 {
        self.num
    }

    /// Denominator (always positive).
    #[inline]
    pub const fn denom(&self) -> i128 {
        self.den
    }

    /// Convert to `f64` (possibly lossy).
    #[inline]
    pub fn to_f64(&self) -> f64 {
        self.num as f64 / self.den as f64
    }

    /// Best-effort conversion from an `f64` using a bounded continued
    /// fraction expansion (Stern–Brocot descent), with denominator capped by
    /// `max_den`. Useful for turning user-facing speed factors like `2.98`
    /// into exact ratios; returns `None` for non-finite inputs.
    pub fn approximate_f64(x: f64, max_den: i128) -> Option<Ratio> {
        if !x.is_finite() {
            return None;
        }
        let neg = x < 0.0;
        let mut x = x.abs();
        // Continued fraction convergents p/q.
        let (mut p0, mut q0, mut p1, mut q1) = (0i128, 1i128, 1i128, 0i128);
        for _ in 0..64 {
            let a = x.floor();
            if a > i128::MAX as f64 {
                return None;
            }
            let a = a as i128;
            let p2 = a.checked_mul(p1)?.checked_add(p0)?;
            let q2 = a.checked_mul(q1)?.checked_add(q0)?;
            if q2 > max_den {
                break;
            }
            p0 = p1;
            q0 = q1;
            p1 = p2;
            q1 = q2;
            let frac = x - a as f64;
            if frac < 1e-15 {
                break;
            }
            x = 1.0 / frac;
        }
        if q1 == 0 {
            return None;
        }
        Some(Ratio::new(if neg { -p1 } else { p1 }, q1))
    }

    /// True if the ratio is an integer.
    #[inline]
    pub fn is_integer(&self) -> bool {
        self.den == 1
    }

    /// True if the value is exactly zero.
    #[inline]
    pub fn is_zero(&self) -> bool {
        self.num == 0
    }

    /// Multiplicative inverse.
    ///
    /// # Panics
    /// Panics if the value is zero.
    #[inline]
    pub fn recip(&self) -> Ratio {
        assert!(self.num != 0, "cannot invert zero Ratio");
        Ratio::new(self.den * self.num.signum(), self.num.abs())
    }

    /// Absolute value.
    #[inline]
    pub fn abs(&self) -> Ratio {
        Ratio {
            num: self.num.abs(),
            den: self.den,
        }
    }

    /// Floor as an integer.
    #[inline]
    pub fn floor(&self) -> i128 {
        self.num.div_euclid(self.den)
    }

    /// Ceiling as an integer.
    #[inline]
    pub fn ceil(&self) -> i128 {
        -((-self.num).div_euclid(self.den))
    }

    /// Checked addition; `None` on overflow.
    pub fn checked_add(&self, rhs: &Ratio) -> Option<Ratio> {
        // a/b + c/d = (a*(l/b) + c*(l/d)) / l  with l = lcm(b, d).
        let g = gcd_i128(self.den, rhs.den);
        let lb = rhs.den / g;
        let ld = self.den / g;
        let l = self.den.checked_mul(lb)?;
        let n = self
            .num
            .checked_mul(lb)?
            .checked_add(rhs.num.checked_mul(ld)?)?;
        Some(Ratio::new(n, l))
    }

    /// Checked multiplication; `None` on overflow.
    pub fn checked_mul(&self, rhs: &Ratio) -> Option<Ratio> {
        // Cross-reduce first to keep intermediates small.
        let g1 = gcd_i128(self.num.abs(), rhs.den).max(1);
        let g2 = gcd_i128(rhs.num.abs(), self.den).max(1);
        let n = (self.num / g1).checked_mul(rhs.num / g2)?;
        let d = (self.den / g2).checked_mul(rhs.den / g1)?;
        Some(Ratio::new(n, d))
    }

    /// Minimum of two ratios.
    #[inline]
    pub fn min(self, other: Ratio) -> Ratio {
        if self <= other {
            self
        } else {
            other
        }
    }

    /// Maximum of two ratios.
    #[inline]
    pub fn max(self, other: Ratio) -> Ratio {
        if self >= other {
            self
        } else {
            other
        }
    }
}

impl Default for Ratio {
    fn default() -> Self {
        Ratio::ZERO
    }
}

impl fmt::Debug for Ratio {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Ratio({}/{})", self.num, self.den)
    }
}

impl fmt::Display for Ratio {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.den == 1 {
            write!(f, "{}", self.num)
        } else {
            write!(f, "{}/{}", self.num, self.den)
        }
    }
}

impl From<i128> for Ratio {
    fn from(n: i128) -> Self {
        Ratio::from_integer(n)
    }
}

impl From<u64> for Ratio {
    fn from(n: u64) -> Self {
        Ratio::from_integer(n as i128)
    }
}

impl From<i64> for Ratio {
    fn from(n: i64) -> Self {
        Ratio::from_integer(n as i128)
    }
}

impl PartialOrd for Ratio {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Ratio {
    fn cmp(&self, other: &Self) -> Ordering {
        // a/b vs c/d  <=>  a*d vs c*b (denominators positive).
        // Cross-reduce to avoid overflow in the common case.
        let g1 = gcd_i128(self.num.abs(), other.num.abs()).max(1);
        let g2 = gcd_i128(self.den, other.den).max(1);
        let lhs = (self.num / g1).checked_mul(other.den / g2);
        let rhs = (other.num / g1).checked_mul(self.den / g2);
        match (lhs, rhs) {
            (Some(l), Some(r)) => l.cmp(&r),
            // Fall back to f64 ordering only on pathological overflow.
            _ => self
                .to_f64()
                .partial_cmp(&other.to_f64())
                .unwrap_or(Ordering::Equal),
        }
    }
}

impl Add for Ratio {
    type Output = Ratio;
    fn add(self, rhs: Ratio) -> Ratio {
        self.checked_add(&rhs).expect("Ratio addition overflow")
    }
}

impl Sub for Ratio {
    type Output = Ratio;
    fn sub(self, rhs: Ratio) -> Ratio {
        self + (-rhs)
    }
}

impl Mul for Ratio {
    type Output = Ratio;
    fn mul(self, rhs: Ratio) -> Ratio {
        self.checked_mul(&rhs)
            .expect("Ratio multiplication overflow")
    }
}

impl Div for Ratio {
    type Output = Ratio;
    #[allow(clippy::suspicious_arithmetic_impl)] // division IS multiplication by the reciprocal
    fn div(self, rhs: Ratio) -> Ratio {
        self * rhs.recip()
    }
}

impl Neg for Ratio {
    type Output = Ratio;
    fn neg(self) -> Ratio {
        Ratio {
            num: -self.num,
            den: self.den,
        }
    }
}

impl AddAssign for Ratio {
    fn add_assign(&mut self, rhs: Ratio) {
        *self = *self + rhs;
    }
}

impl SubAssign for Ratio {
    fn sub_assign(&mut self, rhs: Ratio) {
        *self = *self - rhs;
    }
}

impl MulAssign for Ratio {
    fn mul_assign(&mut self, rhs: Ratio) {
        *self = *self * rhs;
    }
}

impl DivAssign for Ratio {
    fn div_assign(&mut self, rhs: Ratio) {
        *self = *self / rhs;
    }
}

impl core::iter::Sum for Ratio {
    fn sum<I: Iterator<Item = Ratio>>(iter: I) -> Ratio {
        iter.fold(Ratio::ZERO, |a, b| a + b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalization_reduces_and_fixes_sign() {
        assert_eq!(Ratio::new(2, 4), Ratio::new(1, 2));
        assert_eq!(Ratio::new(-2, -4), Ratio::new(1, 2));
        assert_eq!(Ratio::new(2, -4), Ratio::new(-1, 2));
        assert_eq!(Ratio::new(-2, 4), Ratio::new(-1, 2));
        assert_eq!(Ratio::new(0, -7), Ratio::ZERO);
        assert_eq!(Ratio::new(0, 7).denom(), 1);
    }

    #[test]
    fn arithmetic_basics() {
        let half = Ratio::new(1, 2);
        let third = Ratio::new(1, 3);
        assert_eq!(half + third, Ratio::new(5, 6));
        assert_eq!(half - third, Ratio::new(1, 6));
        assert_eq!(half * third, Ratio::new(1, 6));
        assert_eq!(half / third, Ratio::new(3, 2));
        assert_eq!(-half, Ratio::new(-1, 2));
    }

    #[test]
    fn ordering_is_exact() {
        assert!(Ratio::new(1, 3) < Ratio::new(1, 2));
        assert!(Ratio::new(-1, 2) < Ratio::new(-1, 3));
        assert!(Ratio::new(7, 7) == Ratio::ONE);
        let mut v = vec![Ratio::new(3, 4), Ratio::new(2, 3), Ratio::new(5, 6)];
        v.sort();
        assert_eq!(
            v,
            vec![Ratio::new(2, 3), Ratio::new(3, 4), Ratio::new(5, 6)]
        );
    }

    #[test]
    fn floor_and_ceil() {
        assert_eq!(Ratio::new(7, 2).floor(), 3);
        assert_eq!(Ratio::new(7, 2).ceil(), 4);
        assert_eq!(Ratio::new(-7, 2).floor(), -4);
        assert_eq!(Ratio::new(-7, 2).ceil(), -3);
        assert_eq!(Ratio::from_integer(5).floor(), 5);
        assert_eq!(Ratio::from_integer(5).ceil(), 5);
    }

    #[test]
    fn recip_and_abs() {
        assert_eq!(Ratio::new(-2, 3).recip(), Ratio::new(-3, 2));
        assert_eq!(Ratio::new(-2, 3).abs(), Ratio::new(2, 3));
    }

    #[test]
    #[should_panic(expected = "cannot invert zero")]
    fn recip_of_zero_panics() {
        let _ = Ratio::ZERO.recip();
    }

    #[test]
    #[should_panic(expected = "denominator must be non-zero")]
    fn zero_denominator_panics() {
        let _ = Ratio::new(1, 0);
    }

    #[test]
    fn sum_iterator() {
        let s: Ratio = (1..=4).map(|k| Ratio::new(1, k)).sum();
        assert_eq!(s, Ratio::new(25, 12));
    }

    #[test]
    fn approximate_f64_roundtrips_simple_values() {
        assert_eq!(Ratio::approximate_f64(0.5, 1000).unwrap(), Ratio::new(1, 2));
        assert_eq!(
            Ratio::approximate_f64(2.98, 1000).unwrap(),
            Ratio::new(149, 50)
        );
        assert_eq!(
            Ratio::approximate_f64(3.0, 1000).unwrap(),
            Ratio::from_integer(3)
        );
        assert_eq!(
            Ratio::approximate_f64(-0.25, 1000).unwrap(),
            Ratio::new(-1, 4)
        );
        assert!(Ratio::approximate_f64(f64::NAN, 1000).is_none());
        assert!(Ratio::approximate_f64(f64::INFINITY, 1000).is_none());
    }

    #[test]
    fn display_formats() {
        assert_eq!(Ratio::new(3, 6).to_string(), "1/2");
        assert_eq!(Ratio::from_integer(4).to_string(), "4");
        assert_eq!(Ratio::new(-1, 2).to_string(), "-1/2");
    }

    #[test]
    fn to_f64_matches() {
        assert!((Ratio::new(1, 3).to_f64() - 1.0 / 3.0).abs() < 1e-15);
    }

    #[test]
    fn min_max() {
        let a = Ratio::new(1, 3);
        let b = Ratio::new(1, 2);
        assert_eq!(a.min(b), a);
        assert_eq!(a.max(b), b);
    }

    #[test]
    fn checked_ops_catch_overflow() {
        let big = Ratio::new(i128::MAX - 1, 1);
        assert!(big.checked_add(&big).is_none());
        assert!(big.checked_mul(&big).is_none());
        // And a near-limit case that still fits.
        let half = Ratio::new(i128::MAX / 2, 1);
        assert_eq!(half.checked_add(&half), Some(Ratio::new(i128::MAX - 1, 1)));
    }
}
