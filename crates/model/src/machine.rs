//! Machines, platforms and speed augmentation.
//!
//! The paper's *related* (uniform) machine model: machine `m_j` has speed
//! `s_j`, meaning it completes `s_j` work units per tick. Speeds are exact
//! rationals so the simulator and the exact oracles never round.

use crate::error::ModelError;
use crate::ratio::Ratio;
use core::fmt;

/// A single machine with a positive rational speed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Machine {
    speed: Ratio,
}

impl Machine {
    /// Machine with the given rational speed (must be positive).
    pub fn new(speed: Ratio) -> Result<Self, ModelError> {
        if speed <= Ratio::ZERO {
            return Err(ModelError::NonPositiveSpeed);
        }
        Ok(Machine { speed })
    }

    /// Machine with integer speed.
    pub fn from_speed(speed: u64) -> Result<Self, ModelError> {
        Self::new(Ratio::from_integer(speed as i128))
    }

    /// Machine whose speed is the closest rational to `speed` with
    /// denominator at most 1 000 000 (exact for typical inputs like `2.5`).
    pub fn from_f64(speed: f64) -> Result<Self, ModelError> {
        let r = Ratio::approximate_f64(speed, 1_000_000).ok_or(ModelError::NonPositiveSpeed)?;
        Self::new(r)
    }

    /// Speed as an exact rational.
    #[inline]
    pub const fn speed(&self) -> Ratio {
        self.speed
    }

    /// Speed as `f64`.
    #[inline]
    pub fn speed_f64(&self) -> f64 {
        self.speed.to_f64()
    }
}

impl fmt::Display for Machine {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "machine(s={})", self.speed)
    }
}

/// A heterogeneous (related-machine) platform: a non-empty set of machines.
///
/// Machine order is preserved as given; the paper's algorithm works on the
/// *speed-sorted view* from [`Platform::order_by_increasing_speed`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Platform {
    machines: Vec<Machine>,
}

impl Platform {
    /// Create a platform from machines (must be non-empty).
    pub fn new(machines: Vec<Machine>) -> Result<Self, ModelError> {
        if machines.is_empty() {
            return Err(ModelError::EmptyPlatform);
        }
        Ok(Platform { machines })
    }

    /// `m` unit-speed machines (the identical-machine special case).
    pub fn identical(m: usize) -> Result<Self, ModelError> {
        Self::uniform_speed(m, 1)
    }

    /// `m` machines all with integer speed `s`.
    pub fn uniform_speed(m: usize, s: u64) -> Result<Self, ModelError> {
        if m == 0 {
            return Err(ModelError::EmptyPlatform);
        }
        let machine = Machine::from_speed(s)?;
        Ok(Platform {
            machines: vec![machine; m],
        })
    }

    /// Platform from integer speeds.
    pub fn from_int_speeds<I: IntoIterator<Item = u64>>(speeds: I) -> Result<Self, ModelError> {
        let machines = speeds
            .into_iter()
            .map(Machine::from_speed)
            .collect::<Result<Vec<_>, _>>()?;
        Self::new(machines)
    }

    /// Platform from `f64` speeds (rationalized; see [`Machine::from_f64`]).
    pub fn from_f64_speeds<I: IntoIterator<Item = f64>>(speeds: I) -> Result<Self, ModelError> {
        let machines = speeds
            .into_iter()
            .map(Machine::from_f64)
            .collect::<Result<Vec<_>, _>>()?;
        Self::new(machines)
    }

    /// Number of machines.
    #[inline]
    pub fn len(&self) -> usize {
        self.machines.len()
    }

    /// Always false (platforms are non-empty by construction); provided for
    /// clippy-idiomatic pairing with [`Platform::len`].
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.machines.is_empty()
    }

    /// Machine at `index`.
    #[inline]
    pub fn machine(&self, index: usize) -> &Machine {
        &self.machines[index]
    }

    /// Iterate over machines in insertion order.
    pub fn iter(&self) -> core::slice::Iter<'_, Machine> {
        self.machines.iter()
    }

    /// Speed of machine `index` as `f64`.
    #[inline]
    pub fn speed_f64(&self, index: usize) -> f64 {
        self.machines[index].speed_f64()
    }

    /// Sum of all speeds as `f64`.
    pub fn total_speed(&self) -> f64 {
        self.machines.iter().map(Machine::speed_f64).sum()
    }

    /// Sum of all speeds as an exact rational.
    pub fn total_speed_ratio(&self) -> Ratio {
        self.machines.iter().map(|m| m.speed()).sum()
    }

    /// Fastest machine speed as `f64` (platforms are non-empty).
    pub fn max_speed(&self) -> f64 {
        self.machines
            .iter()
            .map(Machine::speed_f64)
            .fold(f64::NEG_INFINITY, f64::max)
    }

    /// Indices of machines ordered by non-decreasing speed, ties broken by
    /// original index. This is the order the paper's first-fit scans.
    pub fn order_by_increasing_speed(&self) -> Vec<usize> {
        let mut idx = Vec::new();
        self.order_by_increasing_speed_into(&mut idx);
        idx
    }

    /// [`Platform::order_by_increasing_speed`] into a caller-owned buffer,
    /// so repeated sorts reuse the allocation. The buffer is cleared first.
    pub fn order_by_increasing_speed_into(&self, idx: &mut Vec<usize>) {
        idx.clear();
        idx.extend(0..self.machines.len());
        idx.sort_by(|&a, &b| {
            self.machines[a]
                .speed()
                .cmp(&self.machines[b].speed())
                .then(a.cmp(&b))
        });
    }

    /// Machine speeds as a contiguous `f64` lane, in insertion order,
    /// written into a caller-owned buffer (cleared first). The
    /// struct-of-arrays view for the vectorized admission kernel:
    /// `out[j] == self.speed_f64(j)` bit-for-bit.
    pub fn speeds_f64_into(&self, out: &mut Vec<f64>) {
        out.clear();
        out.extend(self.machines.iter().map(Machine::speed_f64));
    }

    /// [`Platform::order_by_increasing_speed_into`] computed from cached
    /// speed copies and a cross-multiplication comparator instead of
    /// per-comparison gcd reductions.
    ///
    /// Speeds are positive normalized rationals, so `a/b < c/d ⟺ a·d < c·b`;
    /// the products are taken in `u128` with a checked-overflow fallback to
    /// the full [`Ratio`] comparison. The resulting order is the exact
    /// non-decreasing speed order (ties by original index) and matches
    /// [`Platform::order_by_increasing_speed`] whenever the rational
    /// comparison stays inside `i128`. `keys` is scratch space so repeated
    /// sorts allocate nothing.
    pub fn order_by_increasing_speed_keyed_into(
        &self,
        keys: &mut Vec<(Ratio, usize)>,
        idx: &mut Vec<usize>,
    ) {
        keys.clear();
        keys.extend(
            self.machines
                .iter()
                .enumerate()
                .map(|(i, m)| (m.speed(), i)),
        );
        keys.sort_unstable_by(|&(sa, a), &(sb, b)| {
            cmp_positive_speed_fast(&sa, &sb).then(a.cmp(&b))
        });
        idx.clear();
        idx.extend(keys.iter().map(|&(_, i)| i));
    }

    /// Speeds sorted in non-increasing order (used by the level-algorithm
    /// feasibility condition).
    pub fn speeds_decreasing(&self) -> Vec<Ratio> {
        let mut v: Vec<Ratio> = self.machines.iter().map(|m| m.speed()).collect();
        v.sort_by(|a, b| b.cmp(a));
        v
    }
}

/// Exact comparison of two positive normalized rationals via `u128`
/// cross-multiplication, falling back to [`Ratio`]'s own (gcd-reducing)
/// comparison only if a product overflows `u128`.
#[inline]
fn cmp_positive_speed_fast(a: &Ratio, b: &Ratio) -> core::cmp::Ordering {
    let lhs = (a.numer() as u128).checked_mul(b.denom() as u128);
    let rhs = (b.numer() as u128).checked_mul(a.denom() as u128);
    match (lhs, rhs) {
        (Some(l), Some(r)) => l.cmp(&r),
        _ => a.cmp(b),
    }
}

impl fmt::Display for Platform {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "platform[")?;
        for (i, m) in self.machines.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{}", m.speed())?;
        }
        write!(f, "]")
    }
}

/// Speed-augmentation factor `α ≥ 1` handed to the algorithm: machine `m_j`
/// runs at speed `α·s_j` in the algorithm's schedule while the adversary
/// keeps speed `s_j` (paper §II).
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd)]
pub struct Augmentation(f64);

impl Augmentation {
    /// No augmentation (`α = 1`).
    pub const NONE: Augmentation = Augmentation(1.0);

    /// Theorem I.1: EDF first-fit vs a *partitioned* adversary.
    pub const EDF_VS_PARTITIONED: Augmentation = Augmentation(2.0);
    /// Theorem I.2: RMS first-fit vs a *partitioned* adversary
    /// (`α = 1/(√2−1) = √2+1`).
    pub const RMS_VS_PARTITIONED: Augmentation = Augmentation(std::f64::consts::SQRT_2 + 1.0);
    /// Theorem I.3: EDF first-fit vs an arbitrary (migrative/LP) adversary.
    pub const EDF_VS_ANY: Augmentation = Augmentation(2.98);
    /// Theorem I.4: RMS first-fit vs an arbitrary (migrative/LP) adversary.
    pub const RMS_VS_ANY: Augmentation = Augmentation(3.34);

    /// Create an augmentation factor; must be ≥ 1 and finite.
    pub fn new(alpha: f64) -> Result<Self, ModelError> {
        if !alpha.is_finite() || alpha < 1.0 {
            return Err(ModelError::AugmentationBelowOne);
        }
        Ok(Augmentation(alpha))
    }

    /// The raw factor.
    #[inline]
    pub const fn factor(&self) -> f64 {
        self.0
    }
}

impl fmt::Display for Augmentation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "α={}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn machine_construction() {
        assert_eq!(Machine::from_speed(2).unwrap().speed_f64(), 2.0);
        assert_eq!(Machine::from_f64(2.5).unwrap().speed(), Ratio::new(5, 2));
        assert_eq!(Machine::new(Ratio::ZERO), Err(ModelError::NonPositiveSpeed));
        assert_eq!(
            Machine::new(Ratio::new(-1, 2)),
            Err(ModelError::NonPositiveSpeed)
        );
    }

    #[test]
    fn platform_construction_and_totals() {
        let p = Platform::from_int_speeds([1, 4, 2]).unwrap();
        assert_eq!(p.len(), 3);
        assert_eq!(p.total_speed(), 7.0);
        assert_eq!(p.total_speed_ratio(), Ratio::from_integer(7));
        assert_eq!(p.max_speed(), 4.0);
        assert!(!p.is_empty());
    }

    #[test]
    fn empty_platform_rejected() {
        assert_eq!(Platform::new(vec![]), Err(ModelError::EmptyPlatform));
        assert_eq!(Platform::identical(0), Err(ModelError::EmptyPlatform));
    }

    #[test]
    fn identical_platform() {
        let p = Platform::identical(4).unwrap();
        assert_eq!(p.len(), 4);
        assert!(p.iter().all(|m| m.speed() == Ratio::ONE));
    }

    #[test]
    fn speed_ordering_stable() {
        let p = Platform::from_int_speeds([4, 1, 2, 1]).unwrap();
        assert_eq!(p.order_by_increasing_speed(), vec![1, 3, 2, 0]);
        assert_eq!(
            p.speeds_decreasing(),
            vec![
                Ratio::from_integer(4),
                Ratio::from_integer(2),
                Ratio::ONE,
                Ratio::ONE
            ]
        );
    }

    #[test]
    fn speed_lane_matches_scalar() {
        let p = Platform::from_f64_speeds([2.5, 1.0, 0.125]).unwrap();
        let mut lane = vec![0.0; 1];
        p.speeds_f64_into(&mut lane);
        assert_eq!(lane.len(), 3);
        for j in 0..3 {
            assert_eq!(lane[j].to_bits(), p.speed_f64(j).to_bits());
        }
    }

    #[test]
    fn keyed_speed_ordering_matches_rational_ordering() {
        let mut s = 0x2545f4914f6cdd1du64;
        let mut next = move || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            s
        };
        let mut keys = Vec::new();
        let mut keyed = Vec::new();
        for round in 0..40 {
            let m = 1 + (next() % 48) as usize;
            let p = if round % 2 == 0 {
                Platform::from_int_speeds((0..m).map(|_| 1 + next() % (1 << 40))).unwrap()
            } else {
                // Fractional speeds exercise the den > 1 cross-mult path.
                Platform::from_f64_speeds(
                    (0..m).map(|_| (1 + next() % 10_000) as f64 / (1 + next() % 1_000) as f64),
                )
                .unwrap()
            };
            p.order_by_increasing_speed_keyed_into(&mut keys, &mut keyed);
            assert_eq!(keyed, p.order_by_increasing_speed(), "round {round}");
        }
        // Exact ties (2/1 == 4/2 via f64 2.0) keep original index order.
        let p = Platform::from_int_speeds([4, 1, 2, 1]).unwrap();
        p.order_by_increasing_speed_keyed_into(&mut keys, &mut keyed);
        assert_eq!(keyed, vec![1, 3, 2, 0]);
    }

    #[test]
    fn augmentation_validation_and_constants() {
        assert!(Augmentation::new(0.99).is_err());
        assert!(Augmentation::new(f64::NAN).is_err());
        assert_eq!(Augmentation::new(1.0).unwrap().factor(), 1.0);
        assert_eq!(Augmentation::EDF_VS_PARTITIONED.factor(), 2.0);
        assert!((Augmentation::RMS_VS_PARTITIONED.factor() - 2.414_213_562_373_095).abs() < 1e-12);
        assert_eq!(Augmentation::EDF_VS_ANY.factor(), 2.98);
        assert_eq!(Augmentation::RMS_VS_ANY.factor(), 3.34);
    }

    #[test]
    fn display_forms() {
        let p = Platform::from_int_speeds([1, 2]).unwrap();
        assert_eq!(p.to_string(), "platform[1, 2]");
        assert_eq!(Machine::from_speed(3).unwrap().to_string(), "machine(s=3)");
        assert_eq!(Augmentation::NONE.to_string(), "α=1");
    }
}
