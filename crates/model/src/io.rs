//! Plain-text serialization of task systems.
//!
//! A *system file* describes tasks and machines together, one item per
//! line; `#` starts a comment. The format is deliberately trivial so
//! hand-written fixtures, generator output and the `hetfeas` CLI agree:
//!
//! ```text
//! # my system
//! task 3 10          # wcet=3 work units, period=10 ticks
//! task 2 10 5        # optional third field: constrained deadline
//! machine 1          # speed 1
//! machine 5/2        # rational speed 2.5
//! ```

use crate::error::ModelError;
use crate::machine::{Machine, Platform};
use crate::ratio::Ratio;
use crate::task::Task;
use crate::taskset::TaskSet;
use core::fmt;

/// A parsed system file: tasks plus platform.
#[derive(Debug, Clone, PartialEq)]
pub struct System {
    /// The task set (possibly empty).
    pub tasks: TaskSet,
    /// The platform (must have at least one machine).
    pub platform: Platform,
}

/// Parse errors with line information.
#[derive(Debug, Clone, PartialEq)]
pub enum ParseError {
    /// A line could not be interpreted.
    Syntax {
        /// 1-based line number.
        line: usize,
        /// Explanation.
        message: String,
    },
    /// The described objects were invalid (zero period, no machines, …).
    Model(ModelError),
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseError::Syntax { line, message } => write!(f, "line {line}: {message}"),
            ParseError::Model(e) => write!(f, "invalid system: {e}"),
        }
    }
}

impl std::error::Error for ParseError {}

impl From<ModelError> for ParseError {
    fn from(e: ModelError) -> Self {
        ParseError::Model(e)
    }
}

fn syntax(line: usize, message: impl Into<String>) -> ParseError {
    ParseError::Syntax {
        line,
        message: message.into(),
    }
}

fn parse_speed(token: &str, line: usize) -> Result<Ratio, ParseError> {
    if let Some((num, den)) = token.split_once('/') {
        let num: i128 = num
            .parse()
            .map_err(|_| syntax(line, format!("bad speed numerator {num:?}")))?;
        let den: i128 = den
            .parse()
            .map_err(|_| syntax(line, format!("bad speed denominator {den:?}")))?;
        if den == 0 {
            return Err(syntax(line, "speed denominator is zero"));
        }
        Ok(Ratio::new(num, den))
    } else {
        let v: i128 = token
            .parse()
            .map_err(|_| syntax(line, format!("bad speed {token:?}")))?;
        Ok(Ratio::from_integer(v))
    }
}

/// Parse a system file (see module docs for the format).
pub fn parse_system(input: &str) -> Result<System, ParseError> {
    let mut tasks = TaskSet::empty();
    let mut machines: Vec<Machine> = Vec::new();

    for (idx, raw) in input.lines().enumerate() {
        let line_no = idx + 1;
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let mut fields = line.split_whitespace();
        let kind = fields.next().expect("non-empty line has a first token");
        match kind {
            "task" => {
                let nums: Vec<&str> = fields.collect();
                if nums.len() != 2 && nums.len() != 3 {
                    return Err(syntax(
                        line_no,
                        "task expects: task <wcet> <period> [deadline]",
                    ));
                }
                let parse = |s: &str, what: &str| -> Result<u64, ParseError> {
                    s.parse()
                        .map_err(|_| syntax(line_no, format!("bad {what} {s:?}")))
                };
                let wcet = parse(nums[0], "wcet")?;
                let period = parse(nums[1], "period")?;
                let task = if nums.len() == 3 {
                    Task::constrained(wcet, period, parse(nums[2], "deadline")?)?
                } else {
                    Task::implicit(wcet, period)?
                };
                tasks.push(task);
            }
            "machine" => {
                let speed = fields
                    .next()
                    .ok_or_else(|| syntax(line_no, "machine expects: machine <speed>"))?;
                if fields.next().is_some() {
                    return Err(syntax(line_no, "machine takes exactly one field"));
                }
                machines.push(Machine::new(parse_speed(speed, line_no)?)?);
            }
            other => {
                return Err(syntax(
                    line_no,
                    format!("unknown directive {other:?} (expected task/machine)"),
                ))
            }
        }
    }
    Ok(System {
        tasks,
        platform: Platform::new(machines)?,
    })
}

/// Render a system back to the file format ([`parse_system`] inverse).
pub fn render_system(tasks: &TaskSet, platform: &Platform) -> String {
    let mut out = String::new();
    for t in tasks {
        if t.is_implicit_deadline() {
            out.push_str(&format!("task {} {}\n", t.wcet(), t.period()));
        } else {
            out.push_str(&format!(
                "task {} {} {}\n",
                t.wcet(),
                t.period(),
                t.deadline()
            ));
        }
    }
    for m in platform.iter() {
        let s = m.speed();
        if s.is_integer() {
            out.push_str(&format!("machine {}\n", s.numer()));
        } else {
            out.push_str(&format!("machine {}/{}\n", s.numer(), s.denom()));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = "\
# demo system
task 3 10
task 2 10 5   # constrained
machine 1
machine 5/2
";

    #[test]
    fn parses_sample() {
        let sys = parse_system(SAMPLE).unwrap();
        assert_eq!(sys.tasks.len(), 2);
        assert_eq!(sys.tasks[0], Task::implicit(3, 10).unwrap());
        assert_eq!(sys.tasks[1], Task::constrained(2, 10, 5).unwrap());
        assert_eq!(sys.platform.len(), 2);
        assert_eq!(sys.platform.machine(1).speed(), Ratio::new(5, 2));
    }

    #[test]
    fn roundtrips() {
        let sys = parse_system(SAMPLE).unwrap();
        let rendered = render_system(&sys.tasks, &sys.platform);
        let back = parse_system(&rendered).unwrap();
        assert_eq!(back, sys);
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let sys = parse_system("\n  # nothing\n task 1 2 # tail comment\nmachine 1\n").unwrap();
        assert_eq!(sys.tasks.len(), 1);
    }

    #[test]
    fn syntax_errors_carry_line_numbers() {
        let err = parse_system("task 1 2\nbogus 3\nmachine 1").unwrap_err();
        match err {
            ParseError::Syntax { line, message } => {
                assert_eq!(line, 2);
                assert!(message.contains("bogus"));
            }
            other => panic!("expected syntax error, got {other}"),
        }
        assert!(parse_system("task 1\nmachine 1").is_err()); // arity
        assert!(parse_system("task 1 2\nmachine 1 9").is_err()); // arity
        assert!(parse_system("task x 2\nmachine 1").is_err()); // number
        assert!(parse_system("task 1 2\nmachine 1/0").is_err()); // zero den
    }

    #[test]
    fn model_errors_propagate() {
        assert!(matches!(
            parse_system("task 0 5\nmachine 1"),
            Err(ParseError::Model(ModelError::ZeroWcet))
        ));
        assert!(matches!(
            parse_system("task 1 5"),
            Err(ParseError::Model(ModelError::EmptyPlatform))
        ));
        assert!(matches!(
            parse_system("task 1 5\nmachine -2"),
            Err(ParseError::Model(ModelError::NonPositiveSpeed))
        ));
    }

    #[test]
    fn error_display() {
        let e = parse_system("nope").unwrap_err();
        assert!(e.to_string().starts_with("line 1:"));
        let e = parse_system("task 1 5").unwrap_err();
        assert!(e.to_string().contains("machine"));
    }

    #[test]
    fn empty_taskset_is_fine_with_machines() {
        let sys = parse_system("machine 3\n").unwrap();
        assert!(sys.tasks.is_empty());
        assert_eq!(sys.platform.len(), 1);
    }
}
