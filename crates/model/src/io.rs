//! Plain-text serialization of task systems.
//!
//! A *system file* describes tasks and machines together, one item per
//! line; `#` starts a comment. The format is deliberately trivial so
//! hand-written fixtures, generator output and the `hetfeas` CLI agree:
//!
//! ```text
//! # my system
//! task 3 10          # wcet=3 work units, period=10 ticks
//! task 2 10 5        # optional third field: constrained deadline
//! machine 1          # speed 1
//! machine 5/2        # rational speed 2.5
//! ```
//!
//! The module also defines the *op trace* format consumed by the online
//! admission replay (`hetfeas ops`): streams of add/remove/query/
//! snapshot/rollback/repack operations over independent instances — see
//! [`parse_op_trace`].

pub mod bin;

use crate::error::ModelError;
use crate::machine::{Machine, Platform};
use crate::ratio::Ratio;
use crate::task::Task;
use crate::taskset::TaskSet;
use core::fmt;

/// A parsed system file: tasks plus platform.
#[derive(Debug, Clone, PartialEq)]
pub struct System {
    /// The task set (possibly empty).
    pub tasks: TaskSet,
    /// The platform (must have at least one machine).
    pub platform: Platform,
}

/// Parse errors with line/column information.
#[derive(Debug, Clone, PartialEq)]
pub enum ParseError {
    /// A line could not be interpreted.
    Syntax {
        /// 1-based line number.
        line: usize,
        /// 1-based byte column of the offending token.
        col: usize,
        /// Explanation.
        message: String,
    },
    /// The described objects were invalid (zero period, no machines, …).
    Model(ModelError),
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseError::Syntax { line, col, message } => {
                write!(f, "line {line}, col {col}: {message}")
            }
            ParseError::Model(e) => write!(f, "invalid system: {e}"),
        }
    }
}

impl std::error::Error for ParseError {}

impl From<ModelError> for ParseError {
    fn from(e: ModelError) -> Self {
        ParseError::Model(e)
    }
}

fn syntax(line: usize, col: usize, message: impl Into<String>) -> ParseError {
    ParseError::Syntax {
        line,
        col,
        message: message.into(),
    }
}

/// Split the comment-stripped part of a line into whitespace-separated
/// tokens paired with their 1-based byte column in the original line, so
/// diagnostics can point at the offending token.
fn tokens_with_cols(content: &str) -> Vec<(usize, &str)> {
    let mut out = Vec::new();
    let mut start: Option<usize> = None;
    for (i, ch) in content.char_indices() {
        if ch.is_whitespace() {
            if let Some(s) = start.take() {
                out.push((s + 1, &content[s..i]));
            }
        } else if start.is_none() {
            start = Some(i);
        }
    }
    if let Some(s) = start {
        out.push((s + 1, &content[s..]));
    }
    out
}

fn parse_speed(token: &str, line: usize, col: usize) -> Result<Ratio, ParseError> {
    if let Some((num, den)) = token.split_once('/') {
        let num: i128 = num
            .parse()
            .map_err(|_| syntax(line, col, format!("bad speed numerator {num:?}")))?;
        let den: i128 = den
            .parse()
            .map_err(|_| syntax(line, col, format!("bad speed denominator {den:?}")))?;
        if den == 0 {
            return Err(syntax(line, col, "speed denominator is zero"));
        }
        Ok(Ratio::new(num, den))
    } else {
        let v: i128 = token
            .parse()
            .map_err(|_| syntax(line, col, format!("bad speed {token:?}")))?;
        Ok(Ratio::from_integer(v))
    }
}

/// Parse a system file (see module docs for the format).
///
/// Hardened against hostile input: any malformed text — huge numbers,
/// NUL bytes, truncated lines, pathological whitespace — yields an
/// `Err(ParseError)` carrying the 1-based line and column of the offending
/// token; this function never panics (property-tested in
/// `tests/fuzz_io.rs`).
pub fn parse_system(input: &str) -> Result<System, ParseError> {
    let mut tasks = TaskSet::empty();
    let mut machines: Vec<Machine> = Vec::new();

    for (idx, raw) in input.lines().enumerate() {
        let line_no = idx + 1;
        let content = raw.split('#').next().unwrap_or("");
        let toks = tokens_with_cols(content);
        let Some(&(kind_col, kind)) = toks.first() else {
            continue; // blank or comment-only line
        };
        match kind {
            "task" => {
                let nums = &toks[1..];
                if nums.len() != 2 && nums.len() != 3 {
                    return Err(syntax(
                        line_no,
                        kind_col,
                        "task expects: task <wcet> <period> [deadline]",
                    ));
                }
                let parse = |&(col, s): &(usize, &str), what: &str| -> Result<u64, ParseError> {
                    s.parse()
                        .map_err(|_| syntax(line_no, col, format!("bad {what} {s:?}")))
                };
                let wcet = parse(&nums[0], "wcet")?;
                let period = parse(&nums[1], "period")?;
                let task = if nums.len() == 3 {
                    Task::constrained(wcet, period, parse(&nums[2], "deadline")?)?
                } else {
                    Task::implicit(wcet, period)?
                };
                tasks.push(task);
            }
            "machine" => {
                let &(speed_col, speed) = toks
                    .get(1)
                    .ok_or_else(|| syntax(line_no, kind_col, "machine expects: machine <speed>"))?;
                if let Some(&(extra_col, _)) = toks.get(2) {
                    return Err(syntax(
                        line_no,
                        extra_col,
                        "machine takes exactly one field",
                    ));
                }
                machines.push(Machine::new(parse_speed(speed, line_no, speed_col)?)?);
            }
            other => {
                return Err(syntax(
                    line_no,
                    kind_col,
                    format!("unknown directive {other:?} (expected task/machine)"),
                ))
            }
        }
    }
    Ok(System {
        tasks,
        platform: Platform::new(machines)?,
    })
}

/// One operation in an op trace (see [`parse_op_trace`]).
///
/// `Add`/`Remove`/`Query` reference *trace ids* — arbitrary `u64`s chosen
/// by the trace author, scoped to their instance; the replay driver maps
/// them to engine task ids. `Snapshot`/`Rollback` operate a single
/// snapshot slot (a later `snapshot` overwrites it).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceOp {
    /// Offer `task` for admission under trace id `id`.
    Add {
        /// Trace-scoped id for later `remove`/`query` lines.
        id: u64,
        /// The task to admit.
        task: Task,
    },
    /// Remove the task added under `id`.
    Remove {
        /// Trace id given at its `add`.
        id: u64,
    },
    /// Look up which machine hosts `id`.
    Query {
        /// Trace id given at its `add`.
        id: u64,
    },
    /// Capture the engine state into the instance's snapshot slot.
    Snapshot,
    /// Restore the snapshot slot (parse-rejected before any `snapshot`).
    Rollback,
    /// Force a canonical repack.
    Repack,
}

/// One independent instance of an op trace: a platform plus its operation
/// stream. Instances share nothing — the replay driver shards them across
/// worker threads.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceInstance {
    /// Name from the `begin` line (reporting only).
    pub name: String,
    /// The machines operations run against.
    pub platform: Platform,
    /// Operations in file order.
    pub ops: Vec<TraceOp>,
}

/// A parsed op-trace file: independent instances in file order.
#[derive(Debug, Clone, PartialEq)]
pub struct OpTrace {
    /// The instances (possibly empty).
    pub instances: Vec<TraceInstance>,
}

/// Parse an *op trace* — the input of the `hetfeas ops` subcommand.
///
/// The format extends the system-file conventions (`#` comments, one item
/// per line, whitespace-separated fields). Each instance is bracketed by
/// `begin <name>` / `end`; its `machine` lines must precede its first
/// operation:
///
/// ```text
/// # two independent instances
/// begin web-tier
/// machine 1
/// machine 5/2
/// add 1 3 10          # add <id> <wcet> <period> [deadline]
/// add 2 2 10 5
/// query 1
/// snapshot
/// remove 1
/// rollback            # undo the remove
/// repack
/// end
/// begin batch-tier
/// machine 4
/// add 1 1 8
/// end
/// ```
///
/// Errors carry 1-based line/column like [`parse_system`]; `rollback`
/// before any `snapshot` in the same instance is rejected at parse time.
pub fn parse_op_trace(input: &str) -> Result<OpTrace, ParseError> {
    struct Open {
        name: String,
        machines: Vec<Machine>,
        ops: Vec<TraceOp>,
        has_snapshot: bool,
    }
    let mut instances = Vec::new();
    let mut open: Option<Open> = None;
    let mut last_line = 0usize;

    for (idx, raw) in input.lines().enumerate() {
        let line_no = idx + 1;
        last_line = line_no;
        let content = raw.split('#').next().unwrap_or("");
        let toks = tokens_with_cols(content);
        let Some(&(kind_col, kind)) = toks.first() else {
            continue;
        };
        let parse_id = |&(col, s): &(usize, &str)| -> Result<u64, ParseError> {
            s.parse()
                .map_err(|_| syntax(line_no, col, format!("bad id {s:?}")))
        };
        let arity = |want: usize, usage: &str| -> Result<(), ParseError> {
            if toks.len() != want + 1 {
                return Err(syntax(
                    line_no,
                    kind_col,
                    format!("{kind} expects: {usage}"),
                ));
            }
            Ok(())
        };
        match (kind, &mut open) {
            ("begin", Some(_)) => {
                return Err(syntax(line_no, kind_col, "begin inside an open instance"));
            }
            ("begin", slot @ None) => {
                arity(1, "begin <name>")?;
                *slot = Some(Open {
                    name: toks[1].1.to_string(),
                    machines: Vec::new(),
                    ops: Vec::new(),
                    has_snapshot: false,
                });
            }
            (_, None) => {
                return Err(syntax(
                    line_no,
                    kind_col,
                    format!("{kind:?} outside begin/end"),
                ));
            }
            ("end", slot @ Some(_)) => {
                arity(0, "end")?;
                let inst = slot.take().expect("matched Some");
                instances.push(TraceInstance {
                    name: inst.name,
                    platform: Platform::new(inst.machines)?,
                    ops: inst.ops,
                });
            }
            ("machine", Some(inst)) => {
                if !inst.ops.is_empty() {
                    return Err(syntax(
                        line_no,
                        kind_col,
                        "machine lines must precede the instance's operations",
                    ));
                }
                let &(speed_col, speed) = toks
                    .get(1)
                    .ok_or_else(|| syntax(line_no, kind_col, "machine expects: machine <speed>"))?;
                if let Some(&(extra_col, _)) = toks.get(2) {
                    return Err(syntax(
                        line_no,
                        extra_col,
                        "machine takes exactly one field",
                    ));
                }
                inst.machines
                    .push(Machine::new(parse_speed(speed, line_no, speed_col)?)?);
            }
            ("add", Some(inst)) => {
                let nums = &toks[1..];
                if nums.len() != 3 && nums.len() != 4 {
                    return Err(syntax(
                        line_no,
                        kind_col,
                        "add expects: add <id> <wcet> <period> [deadline]",
                    ));
                }
                let id = parse_id(&nums[0])?;
                let parse = |&(col, s): &(usize, &str), what: &str| -> Result<u64, ParseError> {
                    s.parse()
                        .map_err(|_| syntax(line_no, col, format!("bad {what} {s:?}")))
                };
                let wcet = parse(&nums[1], "wcet")?;
                let period = parse(&nums[2], "period")?;
                let task = if nums.len() == 4 {
                    Task::constrained(wcet, period, parse(&nums[3], "deadline")?)?
                } else {
                    Task::implicit(wcet, period)?
                };
                inst.ops.push(TraceOp::Add { id, task });
            }
            ("remove", Some(inst)) => {
                arity(1, "remove <id>")?;
                inst.ops.push(TraceOp::Remove {
                    id: parse_id(&toks[1])?,
                });
            }
            ("query", Some(inst)) => {
                arity(1, "query <id>")?;
                inst.ops.push(TraceOp::Query {
                    id: parse_id(&toks[1])?,
                });
            }
            ("snapshot", Some(inst)) => {
                arity(0, "snapshot")?;
                inst.has_snapshot = true;
                inst.ops.push(TraceOp::Snapshot);
            }
            ("rollback", Some(inst)) => {
                arity(0, "rollback")?;
                if !inst.has_snapshot {
                    return Err(syntax(
                        line_no,
                        kind_col,
                        "rollback before any snapshot in this instance",
                    ));
                }
                inst.ops.push(TraceOp::Rollback);
            }
            ("repack", Some(inst)) => {
                arity(0, "repack")?;
                inst.ops.push(TraceOp::Repack);
            }
            (other, Some(_)) => {
                return Err(syntax(
                    line_no,
                    kind_col,
                    format!(
                        "unknown directive {other:?} (expected \
                         machine/add/remove/query/snapshot/rollback/repack/end)"
                    ),
                ));
            }
        }
    }
    if open.is_some() {
        return Err(syntax(last_line, 1, "unterminated instance (missing end)"));
    }
    Ok(OpTrace { instances })
}

/// Render an op trace back to the file format ([`parse_op_trace`]
/// inverse).
pub fn render_op_trace(trace: &OpTrace) -> String {
    use core::fmt::Write as _;
    let mut out = String::new();
    for inst in &trace.instances {
        let _ = writeln!(out, "begin {}", inst.name);
        for m in inst.platform.iter() {
            let s = m.speed();
            if s.is_integer() {
                let _ = writeln!(out, "machine {}", s.numer());
            } else {
                let _ = writeln!(out, "machine {}/{}", s.numer(), s.denom());
            }
        }
        for op in &inst.ops {
            match op {
                TraceOp::Add { id, task } => {
                    if task.is_implicit_deadline() {
                        let _ = writeln!(out, "add {id} {} {}", task.wcet(), task.period());
                    } else {
                        let _ = writeln!(
                            out,
                            "add {id} {} {} {}",
                            task.wcet(),
                            task.period(),
                            task.deadline()
                        );
                    }
                }
                TraceOp::Remove { id } => {
                    let _ = writeln!(out, "remove {id}");
                }
                TraceOp::Query { id } => {
                    let _ = writeln!(out, "query {id}");
                }
                TraceOp::Snapshot => out.push_str("snapshot\n"),
                TraceOp::Rollback => out.push_str("rollback\n"),
                TraceOp::Repack => out.push_str("repack\n"),
            }
        }
        out.push_str("end\n");
    }
    out
}

/// Render a system back to the file format ([`parse_system`] inverse).
pub fn render_system(tasks: &TaskSet, platform: &Platform) -> String {
    let mut out = String::new();
    for t in tasks {
        if t.is_implicit_deadline() {
            out.push_str(&format!("task {} {}\n", t.wcet(), t.period()));
        } else {
            out.push_str(&format!(
                "task {} {} {}\n",
                t.wcet(),
                t.period(),
                t.deadline()
            ));
        }
    }
    for m in platform.iter() {
        let s = m.speed();
        if s.is_integer() {
            out.push_str(&format!("machine {}\n", s.numer()));
        } else {
            out.push_str(&format!("machine {}/{}\n", s.numer(), s.denom()));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = "\
# demo system
task 3 10
task 2 10 5   # constrained
machine 1
machine 5/2
";

    #[test]
    fn parses_sample() {
        let sys = parse_system(SAMPLE).unwrap();
        assert_eq!(sys.tasks.len(), 2);
        assert_eq!(sys.tasks[0], Task::implicit(3, 10).unwrap());
        assert_eq!(sys.tasks[1], Task::constrained(2, 10, 5).unwrap());
        assert_eq!(sys.platform.len(), 2);
        assert_eq!(sys.platform.machine(1).speed(), Ratio::new(5, 2));
    }

    #[test]
    fn roundtrips() {
        let sys = parse_system(SAMPLE).unwrap();
        let rendered = render_system(&sys.tasks, &sys.platform);
        let back = parse_system(&rendered).unwrap();
        assert_eq!(back, sys);
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let sys = parse_system("\n  # nothing\n task 1 2 # tail comment\nmachine 1\n").unwrap();
        assert_eq!(sys.tasks.len(), 1);
    }

    #[test]
    fn syntax_errors_carry_line_numbers() {
        let err = parse_system("task 1 2\nbogus 3\nmachine 1").unwrap_err();
        match err {
            ParseError::Syntax { line, col, message } => {
                assert_eq!(line, 2);
                assert_eq!(col, 1);
                assert!(message.contains("bogus"));
            }
            other => panic!("expected syntax error, got {other}"),
        }
        assert!(parse_system("task 1\nmachine 1").is_err()); // arity
        assert!(parse_system("task 1 2\nmachine 1 9").is_err()); // arity
        assert!(parse_system("task x 2\nmachine 1").is_err()); // number
        assert!(parse_system("task 1 2\nmachine 1/0").is_err()); // zero den
    }

    #[test]
    fn columns_point_at_the_offending_token() {
        // "task 1 x" — the bad period starts at byte column 8.
        match parse_system("task 1 x\nmachine 1").unwrap_err() {
            ParseError::Syntax { line, col, .. } => {
                assert_eq!((line, col), (1, 8));
            }
            other => panic!("expected syntax error, got {other}"),
        }
        // Leading whitespace shifts the column.
        match parse_system("   frob\nmachine 1").unwrap_err() {
            ParseError::Syntax { line, col, .. } => {
                assert_eq!((line, col), (1, 4));
            }
            other => panic!("expected syntax error, got {other}"),
        }
        // Extra machine field flagged at its own column.
        match parse_system("machine 1 9").unwrap_err() {
            ParseError::Syntax { col, .. } => assert_eq!(col, 11),
            other => panic!("expected syntax error, got {other}"),
        }
    }

    #[test]
    fn hostile_inputs_error_instead_of_panicking() {
        // Huge numbers that overflow u64/i128.
        assert!(parse_system("task 99999999999999999999999999 5\nmachine 1").is_err());
        assert!(parse_system("machine 170141183460469231731687303715884105728").is_err());
        // NUL bytes and control characters.
        assert!(parse_system("task\u{0} 1 2\nmachine 1").is_err());
        assert!(parse_system("\u{0}\nmachine 1").is_err());
        // Truncated directives.
        assert!(parse_system("task").is_err());
        assert!(parse_system("machine").is_err());
        // Deep whitespace still parses (whitespace is not hostile per se).
        let sys = parse_system("task\t\t1 \t 2\n\n\n   machine\t3\n").unwrap();
        assert_eq!(sys.tasks.len(), 1);
        assert_eq!(sys.platform.len(), 1);
        // Negative task fields are bad numbers, not panics.
        assert!(parse_system("task -1 2\nmachine 1").is_err());
    }

    #[test]
    fn model_errors_propagate() {
        assert!(matches!(
            parse_system("task 0 5\nmachine 1"),
            Err(ParseError::Model(ModelError::ZeroWcet))
        ));
        assert!(matches!(
            parse_system("task 1 5"),
            Err(ParseError::Model(ModelError::EmptyPlatform))
        ));
        assert!(matches!(
            parse_system("task 1 5\nmachine -2"),
            Err(ParseError::Model(ModelError::NonPositiveSpeed))
        ));
    }

    #[test]
    fn error_display() {
        let e = parse_system("nope").unwrap_err();
        assert!(e.to_string().starts_with("line 1, col 1:"));
        let e = parse_system("task 1 5").unwrap_err();
        assert!(e.to_string().contains("machine"));
    }

    #[test]
    fn empty_taskset_is_fine_with_machines() {
        let sys = parse_system("machine 3\n").unwrap();
        assert!(sys.tasks.is_empty());
        assert_eq!(sys.platform.len(), 1);
    }

    const TRACE: &str = "\
# two instances
begin web-tier
machine 1
machine 5/2
add 1 3 10
add 2 2 10 5   # constrained
query 1
snapshot
remove 1
rollback
repack
end

begin batch-tier
machine 4
add 7 1 8
end
";

    #[test]
    fn parses_op_trace() {
        let trace = parse_op_trace(TRACE).unwrap();
        assert_eq!(trace.instances.len(), 2);
        let a = &trace.instances[0];
        assert_eq!(a.name, "web-tier");
        assert_eq!(a.platform.len(), 2);
        assert_eq!(a.ops.len(), 7);
        assert_eq!(
            a.ops[0],
            TraceOp::Add {
                id: 1,
                task: Task::implicit(3, 10).unwrap()
            }
        );
        assert_eq!(
            a.ops[1],
            TraceOp::Add {
                id: 2,
                task: Task::constrained(2, 10, 5).unwrap()
            }
        );
        assert_eq!(a.ops[2], TraceOp::Query { id: 1 });
        assert_eq!(a.ops[3], TraceOp::Snapshot);
        assert_eq!(a.ops[4], TraceOp::Remove { id: 1 });
        assert_eq!(a.ops[5], TraceOp::Rollback);
        assert_eq!(a.ops[6], TraceOp::Repack);
        assert_eq!(trace.instances[1].name, "batch-tier");
        assert_eq!(trace.instances[1].ops.len(), 1);
    }

    #[test]
    fn op_trace_roundtrips() {
        let trace = parse_op_trace(TRACE).unwrap();
        let rendered = render_op_trace(&trace);
        assert_eq!(parse_op_trace(&rendered).unwrap(), trace);
        // Empty trace renders to nothing and parses back.
        let empty = parse_op_trace("").unwrap();
        assert!(empty.instances.is_empty());
        assert_eq!(render_op_trace(&empty), "");
    }

    #[test]
    fn op_trace_structural_errors() {
        // Ops outside begin/end.
        assert!(parse_op_trace("add 1 1 2").is_err());
        // Nested begin.
        assert!(parse_op_trace("begin a\nbegin b\nend").is_err());
        // Missing end.
        match parse_op_trace("begin a\nmachine 1\nadd 1 1 2").unwrap_err() {
            ParseError::Syntax { line, message, .. } => {
                assert_eq!(line, 3);
                assert!(message.contains("unterminated"));
            }
            other => panic!("expected syntax error, got {other}"),
        }
        // end without begin.
        assert!(parse_op_trace("end").is_err());
        // machine after the first op.
        assert!(parse_op_trace("begin a\nmachine 1\nadd 1 1 2\nmachine 2\nend").is_err());
        // rollback before any snapshot.
        assert!(parse_op_trace("begin a\nmachine 1\nrollback\nend").is_err());
        // begin needs exactly one name token.
        assert!(parse_op_trace("begin\nend").is_err());
        assert!(parse_op_trace("begin a b\nend").is_err());
        // No machines.
        assert!(matches!(
            parse_op_trace("begin a\nend"),
            Err(ParseError::Model(ModelError::EmptyPlatform))
        ));
        // Unknown directive inside an instance.
        assert!(parse_op_trace("begin a\nmachine 1\nfrob\nend").is_err());
    }

    #[test]
    fn op_trace_field_errors_carry_positions() {
        let err = parse_op_trace("begin a\nmachine 1\nadd 1 x 10\nend").unwrap_err();
        match err {
            ParseError::Syntax { line, col, message } => {
                assert_eq!((line, col), (3, 7));
                assert!(message.contains("wcet"));
            }
            other => panic!("expected syntax error, got {other}"),
        }
        assert!(parse_op_trace("begin a\nmachine 1\nadd 1 1\nend").is_err()); // arity
        assert!(parse_op_trace("begin a\nmachine 1\nremove\nend").is_err()); // arity
        assert!(parse_op_trace("begin a\nmachine 1\nsnapshot 3\nend").is_err()); // arity
        assert!(parse_op_trace("begin a\nmachine 1\nadd -1 1 2\nend").is_err()); // bad id
        assert!(parse_op_trace("begin a\nmachine 0\nadd 1 1 2\nend").is_err()); // bad speed
    }
}
