//! Plain-text serialization of task systems.
//!
//! A *system file* describes tasks and machines together, one item per
//! line; `#` starts a comment. The format is deliberately trivial so
//! hand-written fixtures, generator output and the `hetfeas` CLI agree:
//!
//! ```text
//! # my system
//! task 3 10          # wcet=3 work units, period=10 ticks
//! task 2 10 5        # optional third field: constrained deadline
//! machine 1          # speed 1
//! machine 5/2        # rational speed 2.5
//! ```

use crate::error::ModelError;
use crate::machine::{Machine, Platform};
use crate::ratio::Ratio;
use crate::task::Task;
use crate::taskset::TaskSet;
use core::fmt;

/// A parsed system file: tasks plus platform.
#[derive(Debug, Clone, PartialEq)]
pub struct System {
    /// The task set (possibly empty).
    pub tasks: TaskSet,
    /// The platform (must have at least one machine).
    pub platform: Platform,
}

/// Parse errors with line/column information.
#[derive(Debug, Clone, PartialEq)]
pub enum ParseError {
    /// A line could not be interpreted.
    Syntax {
        /// 1-based line number.
        line: usize,
        /// 1-based byte column of the offending token.
        col: usize,
        /// Explanation.
        message: String,
    },
    /// The described objects were invalid (zero period, no machines, …).
    Model(ModelError),
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseError::Syntax { line, col, message } => {
                write!(f, "line {line}, col {col}: {message}")
            }
            ParseError::Model(e) => write!(f, "invalid system: {e}"),
        }
    }
}

impl std::error::Error for ParseError {}

impl From<ModelError> for ParseError {
    fn from(e: ModelError) -> Self {
        ParseError::Model(e)
    }
}

fn syntax(line: usize, col: usize, message: impl Into<String>) -> ParseError {
    ParseError::Syntax {
        line,
        col,
        message: message.into(),
    }
}

/// Split the comment-stripped part of a line into whitespace-separated
/// tokens paired with their 1-based byte column in the original line, so
/// diagnostics can point at the offending token.
fn tokens_with_cols(content: &str) -> Vec<(usize, &str)> {
    let mut out = Vec::new();
    let mut start: Option<usize> = None;
    for (i, ch) in content.char_indices() {
        if ch.is_whitespace() {
            if let Some(s) = start.take() {
                out.push((s + 1, &content[s..i]));
            }
        } else if start.is_none() {
            start = Some(i);
        }
    }
    if let Some(s) = start {
        out.push((s + 1, &content[s..]));
    }
    out
}

fn parse_speed(token: &str, line: usize, col: usize) -> Result<Ratio, ParseError> {
    if let Some((num, den)) = token.split_once('/') {
        let num: i128 = num
            .parse()
            .map_err(|_| syntax(line, col, format!("bad speed numerator {num:?}")))?;
        let den: i128 = den
            .parse()
            .map_err(|_| syntax(line, col, format!("bad speed denominator {den:?}")))?;
        if den == 0 {
            return Err(syntax(line, col, "speed denominator is zero"));
        }
        Ok(Ratio::new(num, den))
    } else {
        let v: i128 = token
            .parse()
            .map_err(|_| syntax(line, col, format!("bad speed {token:?}")))?;
        Ok(Ratio::from_integer(v))
    }
}

/// Parse a system file (see module docs for the format).
///
/// Hardened against hostile input: any malformed text — huge numbers,
/// NUL bytes, truncated lines, pathological whitespace — yields an
/// `Err(ParseError)` carrying the 1-based line and column of the offending
/// token; this function never panics (property-tested in
/// `tests/fuzz_io.rs`).
pub fn parse_system(input: &str) -> Result<System, ParseError> {
    let mut tasks = TaskSet::empty();
    let mut machines: Vec<Machine> = Vec::new();

    for (idx, raw) in input.lines().enumerate() {
        let line_no = idx + 1;
        let content = raw.split('#').next().unwrap_or("");
        let toks = tokens_with_cols(content);
        let Some(&(kind_col, kind)) = toks.first() else {
            continue; // blank or comment-only line
        };
        match kind {
            "task" => {
                let nums = &toks[1..];
                if nums.len() != 2 && nums.len() != 3 {
                    return Err(syntax(
                        line_no,
                        kind_col,
                        "task expects: task <wcet> <period> [deadline]",
                    ));
                }
                let parse = |&(col, s): &(usize, &str), what: &str| -> Result<u64, ParseError> {
                    s.parse()
                        .map_err(|_| syntax(line_no, col, format!("bad {what} {s:?}")))
                };
                let wcet = parse(&nums[0], "wcet")?;
                let period = parse(&nums[1], "period")?;
                let task = if nums.len() == 3 {
                    Task::constrained(wcet, period, parse(&nums[2], "deadline")?)?
                } else {
                    Task::implicit(wcet, period)?
                };
                tasks.push(task);
            }
            "machine" => {
                let &(speed_col, speed) = toks
                    .get(1)
                    .ok_or_else(|| syntax(line_no, kind_col, "machine expects: machine <speed>"))?;
                if let Some(&(extra_col, _)) = toks.get(2) {
                    return Err(syntax(
                        line_no,
                        extra_col,
                        "machine takes exactly one field",
                    ));
                }
                machines.push(Machine::new(parse_speed(speed, line_no, speed_col)?)?);
            }
            other => {
                return Err(syntax(
                    line_no,
                    kind_col,
                    format!("unknown directive {other:?} (expected task/machine)"),
                ))
            }
        }
    }
    Ok(System {
        tasks,
        platform: Platform::new(machines)?,
    })
}

/// Render a system back to the file format ([`parse_system`] inverse).
pub fn render_system(tasks: &TaskSet, platform: &Platform) -> String {
    let mut out = String::new();
    for t in tasks {
        if t.is_implicit_deadline() {
            out.push_str(&format!("task {} {}\n", t.wcet(), t.period()));
        } else {
            out.push_str(&format!(
                "task {} {} {}\n",
                t.wcet(),
                t.period(),
                t.deadline()
            ));
        }
    }
    for m in platform.iter() {
        let s = m.speed();
        if s.is_integer() {
            out.push_str(&format!("machine {}\n", s.numer()));
        } else {
            out.push_str(&format!("machine {}/{}\n", s.numer(), s.denom()));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = "\
# demo system
task 3 10
task 2 10 5   # constrained
machine 1
machine 5/2
";

    #[test]
    fn parses_sample() {
        let sys = parse_system(SAMPLE).unwrap();
        assert_eq!(sys.tasks.len(), 2);
        assert_eq!(sys.tasks[0], Task::implicit(3, 10).unwrap());
        assert_eq!(sys.tasks[1], Task::constrained(2, 10, 5).unwrap());
        assert_eq!(sys.platform.len(), 2);
        assert_eq!(sys.platform.machine(1).speed(), Ratio::new(5, 2));
    }

    #[test]
    fn roundtrips() {
        let sys = parse_system(SAMPLE).unwrap();
        let rendered = render_system(&sys.tasks, &sys.platform);
        let back = parse_system(&rendered).unwrap();
        assert_eq!(back, sys);
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let sys = parse_system("\n  # nothing\n task 1 2 # tail comment\nmachine 1\n").unwrap();
        assert_eq!(sys.tasks.len(), 1);
    }

    #[test]
    fn syntax_errors_carry_line_numbers() {
        let err = parse_system("task 1 2\nbogus 3\nmachine 1").unwrap_err();
        match err {
            ParseError::Syntax { line, col, message } => {
                assert_eq!(line, 2);
                assert_eq!(col, 1);
                assert!(message.contains("bogus"));
            }
            other => panic!("expected syntax error, got {other}"),
        }
        assert!(parse_system("task 1\nmachine 1").is_err()); // arity
        assert!(parse_system("task 1 2\nmachine 1 9").is_err()); // arity
        assert!(parse_system("task x 2\nmachine 1").is_err()); // number
        assert!(parse_system("task 1 2\nmachine 1/0").is_err()); // zero den
    }

    #[test]
    fn columns_point_at_the_offending_token() {
        // "task 1 x" — the bad period starts at byte column 8.
        match parse_system("task 1 x\nmachine 1").unwrap_err() {
            ParseError::Syntax { line, col, .. } => {
                assert_eq!((line, col), (1, 8));
            }
            other => panic!("expected syntax error, got {other}"),
        }
        // Leading whitespace shifts the column.
        match parse_system("   frob\nmachine 1").unwrap_err() {
            ParseError::Syntax { line, col, .. } => {
                assert_eq!((line, col), (1, 4));
            }
            other => panic!("expected syntax error, got {other}"),
        }
        // Extra machine field flagged at its own column.
        match parse_system("machine 1 9").unwrap_err() {
            ParseError::Syntax { col, .. } => assert_eq!(col, 11),
            other => panic!("expected syntax error, got {other}"),
        }
    }

    #[test]
    fn hostile_inputs_error_instead_of_panicking() {
        // Huge numbers that overflow u64/i128.
        assert!(parse_system("task 99999999999999999999999999 5\nmachine 1").is_err());
        assert!(parse_system("machine 170141183460469231731687303715884105728").is_err());
        // NUL bytes and control characters.
        assert!(parse_system("task\u{0} 1 2\nmachine 1").is_err());
        assert!(parse_system("\u{0}\nmachine 1").is_err());
        // Truncated directives.
        assert!(parse_system("task").is_err());
        assert!(parse_system("machine").is_err());
        // Deep whitespace still parses (whitespace is not hostile per se).
        let sys = parse_system("task\t\t1 \t 2\n\n\n   machine\t3\n").unwrap();
        assert_eq!(sys.tasks.len(), 1);
        assert_eq!(sys.platform.len(), 1);
        // Negative task fields are bad numbers, not panics.
        assert!(parse_system("task -1 2\nmachine 1").is_err());
    }

    #[test]
    fn model_errors_propagate() {
        assert!(matches!(
            parse_system("task 0 5\nmachine 1"),
            Err(ParseError::Model(ModelError::ZeroWcet))
        ));
        assert!(matches!(
            parse_system("task 1 5"),
            Err(ParseError::Model(ModelError::EmptyPlatform))
        ));
        assert!(matches!(
            parse_system("task 1 5\nmachine -2"),
            Err(ParseError::Model(ModelError::NonPositiveSpeed))
        ));
    }

    #[test]
    fn error_display() {
        let e = parse_system("nope").unwrap_err();
        assert!(e.to_string().starts_with("line 1, col 1:"));
        let e = parse_system("task 1 5").unwrap_err();
        assert!(e.to_string().contains("machine"));
    }

    #[test]
    fn empty_taskset_is_fine_with_machines() {
        let sys = parse_system("machine 3\n").unwrap();
        assert!(sys.tasks.is_empty());
        assert_eq!(sys.platform.len(), 1);
    }
}
