//! # hetfeas-model
//!
//! Shared model substrate for the `hetfeas` workspace: sporadic tasks,
//! related-machine platforms, exact rational arithmetic and integer time
//! utilities.
//!
//! The types here mirror the formal model in Ahuja, Lu & Moseley,
//! *Partitioned Feasibility Tests for Sporadic Tasks on Heterogeneous
//! Machines* (IPPS 2016), §II:
//!
//! * [`Task`] — implicit-deadline sporadic task `τ_i = (c_i, p_i)` with
//!   utilization `w_i = c_i/p_i` (plus an optional constrained deadline for
//!   the DBF extension);
//! * [`TaskSet`] — an ordered set of tasks with the utilization-sorted view
//!   used by the paper's first-fit;
//! * [`Machine`] / [`Platform`] — the related (uniform) machine model with
//!   exact rational speeds;
//! * [`Augmentation`] — the speed-augmentation factor `α`, with the four
//!   theorem constants as associated constants.
//!
//! ## Numerics policy
//!
//! Algorithmic comparisons run in `f64` with the workspace-wide epsilon
//! [`EPS`] via [`approx_le`]/[`approx_ge`]; exact paths (simulator, oracles)
//! use [`Ratio`] and integer scaled loads. See `DESIGN.md` §10.

#![warn(missing_docs)]

mod error;
pub mod io;
mod machine;
mod ratio;
mod task;
mod taskset;
pub mod time;

pub use error::ModelError;
pub use io::bin::{
    is_binary_trace, read_op_trace_bin, write_op_trace_bin, BinTraceError, OpStream, TraceEvent,
    TraceWriter,
};
pub use io::{
    parse_op_trace, parse_system, render_op_trace, render_system, OpTrace, ParseError, System,
    TraceInstance, TraceOp,
};
pub use machine::{Augmentation, Machine, Platform};
pub use ratio::{gcd_i128, Ratio};
pub use task::Task;
pub use taskset::TaskSet;

/// Workspace-wide tolerance for `f64` feasibility comparisons.
///
/// Admission tests accept a task when the load is below the capacity *or
/// within `EPS` of it*, so that instances generated to sit exactly on a bound
/// (e.g. total utilization exactly `α·s`) classify as feasible, matching the
/// non-strict inequalities in the paper (Theorems II.2/II.3).
pub const EPS: f64 = 1e-9;

/// `a ≤ b` up to [`EPS`] absolute-or-relative tolerance.
#[inline]
pub fn approx_le(a: f64, b: f64) -> bool {
    a <= b + EPS * b.abs().max(1.0)
}

/// `a ≥ b` up to [`EPS`] absolute-or-relative tolerance.
#[inline]
pub fn approx_ge(a: f64, b: f64) -> bool {
    approx_le(b, a)
}

/// `a == b` up to [`EPS`] absolute-or-relative tolerance.
#[inline]
pub fn approx_eq(a: f64, b: f64) -> bool {
    (a - b).abs() <= EPS * a.abs().max(b.abs()).max(1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn approx_comparisons() {
        assert!(approx_le(1.0, 1.0));
        assert!(approx_le(1.0 + 1e-12, 1.0));
        assert!(!approx_le(1.0 + 1e-6, 1.0));
        assert!(approx_ge(1.0, 1.0 + 1e-12));
        assert!(approx_eq(0.1 + 0.2, 0.3));
        assert!(!approx_eq(0.3001, 0.3));
    }

    #[test]
    fn approx_scales_with_magnitude() {
        // Relative tolerance must kick in for large magnitudes.
        let big = 1e12;
        assert!(approx_le(big + 1e-3, big));
        assert!(!approx_le(big * (1.0 + 1e-6), big));
    }
}
