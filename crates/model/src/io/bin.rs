//! Compact binary op-trace format (`.hbt`) with streaming readers.
//!
//! The text op-trace format ([`super::parse_op_trace`]) is convenient to
//! write by hand but hopeless at scale: a 10M-op trace is hundreds of
//! megabytes of text and the parser materializes every instance before
//! replay can start. This module defines the binary twin used by
//! `hetfeas trace synth|convert` and `hetfeas ops --trace`:
//!
//! ```text
//! file   := magic version frame*
//! magic  := "HBT1"            (4 bytes)
//! version:= 0x01              (1 byte)
//! frame  := len:u32le crc:u32le payload   (crc32 of payload only)
//! payload:= record+           (records never span frames)
//! record := tag:u8 fields*    (fields are LEB128 varints)
//! ```
//!
//! Record tags:
//!
//! | tag  | record   | fields                                          |
//! |------|----------|--------------------------------------------------|
//! | 0x01 | begin    | name_len, name bytes, m, m × (numer, denom)      |
//! | 0x02 | add      | id, wcet, period, deadline (0 ⇒ implicit)        |
//! | 0x03 | remove   | id                                               |
//! | 0x04 | query    | id                                               |
//! | 0x05 | snapshot | —                                                |
//! | 0x06 | rollback | —                                                |
//! | 0x07 | repack   | —                                                |
//! | 0x08 | end      | —                                                |
//!
//! [`OpStream`] is the pull-based reader: it holds at most one frame in
//! memory (≤ [`MAX_FRAME_LEN`] bytes) regardless of trace length, and it
//! enforces the same structural invariants as the text parser — rollback
//! needs a prior snapshot in the same instance, ops and `end` only inside
//! `begin`/`end`, no nested `begin` — incrementally as records are pulled.
//! Torn or corrupt tails (truncated frame, bad CRC, bogus varint, EOF
//! mid-instance) surface as [`BinTraceError::Corrupt`], never a panic or
//! a silently shortened trace: a trace file is an input, not a journal, so
//! damage is an error rather than a truncation point.

use crate::error::ModelError;
use crate::machine::{Machine, Platform};
use crate::ratio::Ratio;
use crate::task::Task;
use core::fmt;
use std::io::{self, Read, Write};

use super::{OpTrace, TraceInstance, TraceOp};

/// File magic: the first four bytes of every binary trace.
pub const HBT_MAGIC: [u8; 4] = *b"HBT1";
/// Current format version (fifth byte of the header).
pub const HBT_VERSION: u8 = 1;
/// Upper bound on a single frame's payload; readers reject larger frames
/// before allocating, so hostile length prefixes cannot balloon memory.
pub const MAX_FRAME_LEN: usize = 4 << 20;
/// Writers close a frame at the first record boundary past this size.
const FRAME_TARGET: usize = 64 << 10;

const TAG_BEGIN: u8 = 0x01;
const TAG_ADD: u8 = 0x02;
const TAG_REMOVE: u8 = 0x03;
const TAG_QUERY: u8 = 0x04;
const TAG_SNAPSHOT: u8 = 0x05;
const TAG_ROLLBACK: u8 = 0x06;
const TAG_REPACK: u8 = 0x07;
const TAG_END: u8 = 0x08;

/// Errors from reading or writing binary traces.
#[derive(Debug)]
pub enum BinTraceError {
    /// The underlying reader/writer failed.
    Io(io::Error),
    /// The bytes are not a well-formed trace (bad magic, torn frame, CRC
    /// mismatch, bogus varint, structural violation, EOF mid-instance).
    Corrupt {
        /// Absolute byte offset of the frame (or header) being decoded.
        offset: u64,
        /// Explanation.
        message: String,
    },
    /// Decoded values describe invalid model objects (zero period, …).
    Model(ModelError),
}

impl fmt::Display for BinTraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BinTraceError::Io(e) => write!(f, "trace io error: {e}"),
            BinTraceError::Corrupt { offset, message } => {
                write!(f, "corrupt trace at byte {offset}: {message}")
            }
            BinTraceError::Model(e) => write!(f, "invalid trace object: {e}"),
        }
    }
}

impl std::error::Error for BinTraceError {}

impl From<io::Error> for BinTraceError {
    fn from(e: io::Error) -> Self {
        BinTraceError::Io(e)
    }
}

impl From<ModelError> for BinTraceError {
    fn from(e: ModelError) -> Self {
        BinTraceError::Model(e)
    }
}

fn corrupt(offset: u64, message: impl Into<String>) -> BinTraceError {
    BinTraceError::Corrupt {
        offset,
        message: message.into(),
    }
}

// CRC32 (IEEE reflected, poly 0xEDB88320) — the same framing checksum the
// robust journal uses; duplicated here because model sits below robust in
// the crate DAG and must stay dependency-free.
const fn crc_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

const CRC_TABLE: [u32; 256] = crc_table();

/// CRC32 of `data` (IEEE, as used for frame checksums).
pub fn crc32(data: &[u8]) -> u32 {
    let mut c = !0u32;
    for &b in data {
        c = CRC_TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    !c
}

fn put_varint(buf: &mut Vec<u8>, mut v: u128) {
    loop {
        let byte = (v & 0x7F) as u8;
        v >>= 7;
        if v == 0 {
            buf.push(byte);
            return;
        }
        buf.push(byte | 0x80);
    }
}

fn put_varint64(buf: &mut Vec<u8>, v: u64) {
    put_varint(buf, v as u128);
}

/// Decode one LEB128 varint from `buf[*pos..]`, advancing `*pos`.
fn take_varint(buf: &[u8], pos: &mut usize, offset: u64) -> Result<u128, BinTraceError> {
    let mut out: u128 = 0;
    let mut shift = 0u32;
    loop {
        let &byte = buf
            .get(*pos)
            .ok_or_else(|| corrupt(offset, "varint runs past the frame"))?;
        *pos += 1;
        // 19 × 7 = 133 bits: the final byte may only carry the low bits.
        if shift >= 126 && byte > 0x03 {
            return Err(corrupt(offset, "varint overflows u128"));
        }
        out |= u128::from(byte & 0x7F) << shift;
        if byte & 0x80 == 0 {
            return Ok(out);
        }
        shift += 7;
    }
}

fn take_varint64(buf: &[u8], pos: &mut usize, offset: u64) -> Result<u64, BinTraceError> {
    let v = take_varint(buf, pos, offset)?;
    u64::try_from(v).map_err(|_| corrupt(offset, "varint overflows u64"))
}

fn put_ratio(buf: &mut Vec<u8>, r: Ratio) {
    // Machine speeds are strictly positive and normalized, so both parts
    // fit an unsigned varint.
    put_varint(buf, r.numer() as u128);
    put_varint(buf, r.denom() as u128);
}

fn encode_op(buf: &mut Vec<u8>, op: &TraceOp) {
    match op {
        TraceOp::Add { id, task } => {
            buf.push(TAG_ADD);
            put_varint64(buf, *id);
            put_varint64(buf, task.wcet());
            put_varint64(buf, task.period());
            let d = if task.is_implicit_deadline() {
                0
            } else {
                task.deadline()
            };
            put_varint64(buf, d);
        }
        TraceOp::Remove { id } => {
            buf.push(TAG_REMOVE);
            put_varint64(buf, *id);
        }
        TraceOp::Query { id } => {
            buf.push(TAG_QUERY);
            put_varint64(buf, *id);
        }
        TraceOp::Snapshot => buf.push(TAG_SNAPSHOT),
        TraceOp::Rollback => buf.push(TAG_ROLLBACK),
        TraceOp::Repack => buf.push(TAG_REPACK),
    }
}

/// Streaming writer: records are buffered into CRC-framed batches and
/// flushed at record boundaries, so emitting a million-op trace needs
/// O(frame) memory. Call [`TraceWriter::finish`] to flush the final
/// frame — dropping the writer without it loses buffered records.
pub struct TraceWriter<W: Write> {
    out: W,
    buf: Vec<u8>,
    in_instance: bool,
    has_snapshot: bool,
}

impl<W: Write> TraceWriter<W> {
    /// Write the header and return a writer positioned before the first
    /// instance.
    pub fn new(mut out: W) -> io::Result<Self> {
        out.write_all(&HBT_MAGIC)?;
        out.write_all(&[HBT_VERSION])?;
        Ok(TraceWriter {
            out,
            buf: Vec::with_capacity(FRAME_TARGET + 256),
            in_instance: false,
            has_snapshot: false,
        })
    }

    fn flush_frame(&mut self) -> io::Result<()> {
        if self.buf.is_empty() {
            return Ok(());
        }
        let len = u32::try_from(self.buf.len()).expect("frame below MAX_FRAME_LEN");
        let crc = crc32(&self.buf);
        self.out.write_all(&len.to_le_bytes())?;
        self.out.write_all(&crc.to_le_bytes())?;
        self.out.write_all(&self.buf)?;
        self.buf.clear();
        Ok(())
    }

    fn maybe_flush(&mut self) -> io::Result<()> {
        if self.buf.len() >= FRAME_TARGET {
            self.flush_frame()?;
        }
        Ok(())
    }

    /// Open an instance (the binary twin of `begin <name>` + its
    /// `machine` lines).
    ///
    /// # Panics
    /// If an instance is already open — the writer enforces the same
    /// structure the reader checks, so misuse fails loudly at write time.
    pub fn begin_instance(&mut self, name: &str, platform: &Platform) -> io::Result<()> {
        assert!(!self.in_instance, "begin inside an open instance");
        self.in_instance = true;
        self.has_snapshot = false;
        self.buf.push(TAG_BEGIN);
        put_varint(&mut self.buf, name.len() as u128);
        self.buf.extend_from_slice(name.as_bytes());
        put_varint(&mut self.buf, platform.len() as u128);
        for m in platform.iter() {
            put_ratio(&mut self.buf, m.speed());
        }
        self.maybe_flush()
    }

    /// Append one operation to the open instance.
    ///
    /// # Panics
    /// If no instance is open, or on `Rollback` before any `Snapshot` in
    /// this instance (the text parser rejects the same trace).
    pub fn op(&mut self, op: &TraceOp) -> io::Result<()> {
        assert!(self.in_instance, "op outside begin/end");
        match op {
            TraceOp::Snapshot => self.has_snapshot = true,
            TraceOp::Rollback => {
                assert!(self.has_snapshot, "rollback before any snapshot");
            }
            _ => {}
        }
        encode_op(&mut self.buf, op);
        self.maybe_flush()
    }

    /// Close the open instance.
    ///
    /// # Panics
    /// If no instance is open.
    pub fn end_instance(&mut self) -> io::Result<()> {
        assert!(self.in_instance, "end outside an instance");
        self.in_instance = false;
        self.buf.push(TAG_END);
        self.maybe_flush()
    }

    /// Flush the final frame and return the underlying writer.
    ///
    /// # Panics
    /// If an instance is still open (the trace would be torn by
    /// construction).
    pub fn finish(mut self) -> io::Result<W> {
        assert!(!self.in_instance, "finish with an open instance");
        self.flush_frame()?;
        self.out.flush()?;
        Ok(self.out)
    }
}

/// One event pulled from an [`OpStream`].
#[derive(Debug, Clone, PartialEq)]
pub enum TraceEvent {
    /// An instance opened: its name and platform.
    Begin {
        /// Name from the begin record (reporting only).
        name: String,
        /// The machines its operations run against.
        platform: Platform,
    },
    /// One operation inside the open instance.
    Op(TraceOp),
    /// The open instance closed.
    End,
}

/// Pull-based binary trace reader: holds one frame (≤ [`MAX_FRAME_LEN`])
/// plus decode state, independent of trace length. This is the bounded-RSS
/// half of the streaming replay path.
pub struct OpStream<R: Read> {
    src: R,
    /// Current frame payload and the decode cursor into it.
    frame: Vec<u8>,
    pos: usize,
    /// Absolute offset of the current frame's payload (diagnostics).
    frame_offset: u64,
    /// Absolute offset of the next unread byte in `src`.
    offset: u64,
    in_instance: bool,
    has_snapshot: bool,
    /// Set after an error or clean EOF; further pulls return None/Err.
    done: bool,
}

impl<R: Read> OpStream<R> {
    /// Read and validate the file header.
    pub fn new(mut src: R) -> Result<Self, BinTraceError> {
        let mut header = [0u8; 5];
        read_exact_or(&mut src, &mut header, 0, "truncated header")?;
        if header[..4] != HBT_MAGIC {
            return Err(corrupt(0, "bad magic (not an HBT binary trace)"));
        }
        if header[4] != HBT_VERSION {
            return Err(corrupt(
                4,
                format!("unsupported version {} (expected {HBT_VERSION})", header[4]),
            ));
        }
        Ok(OpStream {
            src,
            frame: Vec::new(),
            pos: 0,
            frame_offset: 5,
            offset: 5,
            in_instance: false,
            has_snapshot: false,
            done: false,
        })
    }

    /// Pull the next frame; `Ok(false)` on clean EOF at a frame boundary.
    fn next_frame(&mut self) -> Result<bool, BinTraceError> {
        let mut head = [0u8; 8];
        match read_header(&mut self.src, &mut head) {
            HeaderRead::Eof => return Ok(false),
            HeaderRead::Torn => {
                return Err(corrupt(self.offset, "torn frame header at end of trace"))
            }
            HeaderRead::Err(e) => return Err(e.into()),
            HeaderRead::Full => {}
        }
        let len = u32::from_le_bytes(head[0..4].try_into().expect("4 bytes")) as usize;
        let crc = u32::from_le_bytes(head[4..8].try_into().expect("4 bytes"));
        if len == 0 || len > MAX_FRAME_LEN {
            return Err(corrupt(self.offset, format!("bad frame length {len}")));
        }
        self.frame.resize(len, 0);
        let payload_offset = self.offset + 8;
        read_exact_or(
            &mut self.src,
            &mut self.frame,
            payload_offset,
            "torn frame payload at end of trace",
        )?;
        if crc32(&self.frame) != crc {
            return Err(corrupt(self.offset, "frame CRC mismatch"));
        }
        self.frame_offset = payload_offset;
        self.offset = payload_offset + len as u64;
        self.pos = 0;
        Ok(true)
    }

    /// Decode the next event, or `Ok(None)` at a clean end of trace.
    ///
    /// After any error the stream is poisoned: further calls return the
    /// terminal state (`None`), so a driver loop cannot spin on damage.
    pub fn next_event(&mut self) -> Result<Option<TraceEvent>, BinTraceError> {
        if self.done {
            return Ok(None);
        }
        match self.next_event_inner() {
            Ok(Some(ev)) => Ok(Some(ev)),
            Ok(None) => {
                self.done = true;
                Ok(None)
            }
            Err(e) => {
                self.done = true;
                Err(e)
            }
        }
    }

    fn next_event_inner(&mut self) -> Result<Option<TraceEvent>, BinTraceError> {
        if self.pos >= self.frame.len() && !self.next_frame()? {
            if self.in_instance {
                return Err(corrupt(self.offset, "trace ends inside an instance"));
            }
            return Ok(None);
        }
        let off = self.frame_offset;
        let buf = std::mem::take(&mut self.frame);
        let result = self.decode_record(&buf, off);
        self.frame = buf;
        result.map(Some)
    }

    fn decode_record(&mut self, buf: &[u8], off: u64) -> Result<TraceEvent, BinTraceError> {
        let pos = &mut self.pos;
        let tag = buf[*pos];
        *pos += 1;
        let structural = |want_open: bool, what: &str| -> Result<(), BinTraceError> {
            if self.in_instance != want_open {
                let msg = if want_open {
                    format!("{what} outside begin/end")
                } else {
                    format!("{what} inside an open instance")
                };
                return Err(corrupt(off, msg));
            }
            Ok(())
        };
        match tag {
            TAG_BEGIN => {
                structural(false, "begin")?;
                let name_len = take_varint(buf, pos, off)? as usize;
                if name_len > buf.len().saturating_sub(*pos) {
                    return Err(corrupt(off, "instance name runs past the frame"));
                }
                let name = std::str::from_utf8(&buf[*pos..*pos + name_len])
                    .map_err(|_| corrupt(off, "instance name is not UTF-8"))?
                    .to_string();
                *pos += name_len;
                let m = take_varint(buf, pos, off)? as usize;
                // Each machine costs ≥ 2 bytes, so m is bounded by the
                // remaining frame — reject before reserving.
                if m > buf.len().saturating_sub(*pos) {
                    return Err(corrupt(off, "machine count runs past the frame"));
                }
                let mut machines = Vec::with_capacity(m);
                for _ in 0..m {
                    let numer = take_ratio_part(buf, pos, off, "speed numerator")?;
                    let denom = take_ratio_part(buf, pos, off, "speed denominator")?;
                    if denom == 0 {
                        return Err(corrupt(off, "speed denominator is zero"));
                    }
                    machines.push(Machine::new(Ratio::new(numer, denom))?);
                }
                self.in_instance = true;
                self.has_snapshot = false;
                Ok(TraceEvent::Begin {
                    name,
                    platform: Platform::new(machines)?,
                })
            }
            TAG_ADD => {
                structural(true, "add")?;
                let id = take_varint64(buf, pos, off)?;
                let wcet = take_varint64(buf, pos, off)?;
                let period = take_varint64(buf, pos, off)?;
                let deadline = take_varint64(buf, pos, off)?;
                let task = if deadline == 0 {
                    Task::implicit(wcet, period)?
                } else {
                    Task::constrained(wcet, period, deadline)?
                };
                Ok(TraceEvent::Op(TraceOp::Add { id, task }))
            }
            TAG_REMOVE => {
                structural(true, "remove")?;
                let id = take_varint64(buf, pos, off)?;
                Ok(TraceEvent::Op(TraceOp::Remove { id }))
            }
            TAG_QUERY => {
                structural(true, "query")?;
                let id = take_varint64(buf, pos, off)?;
                Ok(TraceEvent::Op(TraceOp::Query { id }))
            }
            TAG_SNAPSHOT => {
                structural(true, "snapshot")?;
                self.has_snapshot = true;
                Ok(TraceEvent::Op(TraceOp::Snapshot))
            }
            TAG_ROLLBACK => {
                structural(true, "rollback")?;
                if !self.has_snapshot {
                    return Err(corrupt(off, "rollback before any snapshot"));
                }
                Ok(TraceEvent::Op(TraceOp::Rollback))
            }
            TAG_REPACK => {
                structural(true, "repack")?;
                Ok(TraceEvent::Op(TraceOp::Repack))
            }
            TAG_END => {
                structural(true, "end")?;
                self.in_instance = false;
                Ok(TraceEvent::End)
            }
            other => Err(corrupt(off, format!("unknown record tag {other:#04x}"))),
        }
    }
}

fn take_ratio_part(
    buf: &[u8],
    pos: &mut usize,
    off: u64,
    what: &str,
) -> Result<i128, BinTraceError> {
    let v = take_varint(buf, pos, off)?;
    i128::try_from(v).map_err(|_| corrupt(off, format!("{what} overflows i128")))
}

enum HeaderRead {
    Full,
    Eof,
    Torn,
    Err(io::Error),
}

/// Read an 8-byte frame header, distinguishing clean EOF (no bytes) from
/// a torn one (some bytes).
fn read_header<R: Read>(src: &mut R, head: &mut [u8; 8]) -> HeaderRead {
    let mut got = 0;
    while got < head.len() {
        match src.read(&mut head[got..]) {
            Ok(0) => {
                return if got == 0 {
                    HeaderRead::Eof
                } else {
                    HeaderRead::Torn
                }
            }
            Ok(n) => got += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return HeaderRead::Err(e),
        }
    }
    HeaderRead::Full
}

fn read_exact_or<R: Read>(
    src: &mut R,
    buf: &mut [u8],
    offset: u64,
    torn_message: &str,
) -> Result<(), BinTraceError> {
    src.read_exact(buf).map_err(|e| {
        if e.kind() == io::ErrorKind::UnexpectedEof {
            corrupt(offset, torn_message)
        } else {
            BinTraceError::Io(e)
        }
    })
}

/// True if `head` starts with the binary-trace magic — the sniff used by
/// the CLI to pick text vs binary parsing.
pub fn is_binary_trace(head: &[u8]) -> bool {
    head.len() >= 4 && head[..4] == HBT_MAGIC
}

/// Serialize a materialized trace to the binary format.
pub fn write_op_trace_bin<W: Write>(trace: &OpTrace, out: W) -> io::Result<W> {
    let mut w = TraceWriter::new(out)?;
    for inst in &trace.instances {
        w.begin_instance(&inst.name, &inst.platform)?;
        for op in &inst.ops {
            w.op(op)?;
        }
        w.end_instance()?;
    }
    w.finish()
}

/// Materialize a binary trace (the convert path; streaming replay should
/// drive [`OpStream`] directly instead).
pub fn read_op_trace_bin<R: Read>(src: R) -> Result<OpTrace, BinTraceError> {
    let mut stream = OpStream::new(src)?;
    let mut instances = Vec::new();
    let mut open: Option<TraceInstance> = None;
    while let Some(ev) = stream.next_event()? {
        match ev {
            TraceEvent::Begin { name, platform } => {
                open = Some(TraceInstance {
                    name,
                    platform,
                    ops: Vec::new(),
                });
            }
            TraceEvent::Op(op) => {
                open.as_mut()
                    .expect("stream enforces structure")
                    .ops
                    .push(op);
            }
            TraceEvent::End => {
                instances.push(open.take().expect("stream enforces structure"));
            }
        }
    }
    Ok(OpTrace { instances })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::io::parse_op_trace;

    const TRACE: &str = "\
begin web-tier
machine 1
machine 5/2
add 1 3 10
add 2 2 10 5
query 1
snapshot
remove 1
rollback
repack
end
begin batch-tier
machine 4
add 7 1 8
end
";

    fn sample_bytes() -> Vec<u8> {
        let trace = parse_op_trace(TRACE).unwrap();
        write_op_trace_bin(&trace, Vec::new()).unwrap()
    }

    #[test]
    fn roundtrips_through_binary() {
        let trace = parse_op_trace(TRACE).unwrap();
        let bytes = write_op_trace_bin(&trace, Vec::new()).unwrap();
        assert!(is_binary_trace(&bytes));
        let back = read_op_trace_bin(&bytes[..]).unwrap();
        assert_eq!(back, trace);
    }

    #[test]
    fn empty_trace_roundtrips() {
        let bytes = write_op_trace_bin(&OpTrace { instances: vec![] }, Vec::new()).unwrap();
        assert_eq!(bytes.len(), 5); // header only
        let back = read_op_trace_bin(&bytes[..]).unwrap();
        assert!(back.instances.is_empty());
    }

    #[test]
    fn streaming_events_match_materialized_ops() {
        let trace = parse_op_trace(TRACE).unwrap();
        let bytes = sample_bytes();
        let mut stream = OpStream::new(&bytes[..]).unwrap();
        for inst in &trace.instances {
            match stream.next_event().unwrap().unwrap() {
                TraceEvent::Begin { name, platform } => {
                    assert_eq!(name, inst.name);
                    assert_eq!(platform, inst.platform);
                }
                other => panic!("expected begin, got {other:?}"),
            }
            for op in &inst.ops {
                assert_eq!(stream.next_event().unwrap().unwrap(), TraceEvent::Op(*op));
            }
            assert_eq!(stream.next_event().unwrap().unwrap(), TraceEvent::End);
        }
        assert!(stream.next_event().unwrap().is_none());
        // Poisoned-done is sticky.
        assert!(stream.next_event().unwrap().is_none());
    }

    #[test]
    fn bad_magic_and_version_are_corrupt() {
        assert!(matches!(
            OpStream::new(&b"nope"[..]),
            Err(BinTraceError::Corrupt { .. })
        ));
        assert!(matches!(
            OpStream::new(&b"XBT1\x01"[..]),
            Err(BinTraceError::Corrupt { .. })
        ));
        let mut bytes = sample_bytes();
        bytes[4] = 9;
        assert!(matches!(
            OpStream::new(&bytes[..]),
            Err(BinTraceError::Corrupt { offset: 4, .. })
        ));
    }

    fn drain(bytes: &[u8]) -> Result<usize, BinTraceError> {
        let mut stream = OpStream::new(bytes)?;
        let mut n = 0;
        while stream.next_event()?.is_some() {
            n += 1;
        }
        Ok(n)
    }

    #[test]
    fn torn_tails_error_never_truncate() {
        let bytes = sample_bytes();
        // Every strict prefix past the header must fail — a trace is an
        // input file, damage is an error, not a truncation point. (The
        // bare 5-byte header alone is a legitimate empty trace.)
        assert_eq!(drain(&bytes[..5]).unwrap(), 0);
        for cut in 6..bytes.len() {
            assert!(
                drain(&bytes[..cut]).is_err(),
                "prefix of {cut} bytes silently accepted"
            );
        }
        assert_eq!(drain(&bytes).unwrap(), 2 + 7 + 1 + 2);
    }

    #[test]
    fn corrupt_bytes_error_never_panic() {
        let bytes = sample_bytes();
        for i in 0..bytes.len() {
            for bit in [0x01u8, 0x80] {
                let mut dam = bytes.clone();
                dam[i] ^= bit;
                // Any outcome but a panic is acceptable for a flipped
                // payload bit caught by CRC — but damage in the framing
                // or payload must never *extend* the op count.
                if let Ok(n) = drain(&dam) {
                    assert!(n <= 2 + 7 + 1 + 2);
                }
            }
        }
    }

    #[test]
    fn crc_mismatch_is_detected() {
        let mut bytes = sample_bytes();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xFF;
        match drain(&bytes) {
            Err(BinTraceError::Corrupt { message, .. }) => {
                assert!(message.contains("CRC"), "unexpected message {message:?}");
            }
            other => panic!("expected CRC corrupt error, got {other:?}"),
        }
    }

    #[test]
    fn structural_violations_are_corrupt() {
        // Hand-build a frame with a rollback as the first op.
        let mut payload = Vec::new();
        payload.push(TAG_BEGIN);
        put_varint(&mut payload, 1);
        payload.push(b'a');
        put_varint(&mut payload, 1); // one machine
        put_varint(&mut payload, 1); // speed 1/1
        put_varint(&mut payload, 1);
        payload.push(TAG_ROLLBACK);
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&HBT_MAGIC);
        bytes.push(HBT_VERSION);
        bytes.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        bytes.extend_from_slice(&crc32(&payload).to_le_bytes());
        bytes.extend_from_slice(&payload);
        match drain(&bytes) {
            Err(BinTraceError::Corrupt { message, .. }) => {
                assert!(message.contains("rollback"), "got {message:?}");
            }
            other => panic!("expected corrupt, got {other:?}"),
        }
    }

    #[test]
    fn ends_inside_instance_is_corrupt() {
        let mut payload = Vec::new();
        payload.push(TAG_BEGIN);
        put_varint(&mut payload, 1);
        payload.push(b'a');
        put_varint(&mut payload, 1);
        put_varint(&mut payload, 1);
        put_varint(&mut payload, 1);
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&HBT_MAGIC);
        bytes.push(HBT_VERSION);
        bytes.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        bytes.extend_from_slice(&crc32(&payload).to_le_bytes());
        bytes.extend_from_slice(&payload);
        match drain(&bytes) {
            Err(BinTraceError::Corrupt { message, .. }) => {
                assert!(message.contains("inside an instance"), "got {message:?}");
            }
            other => panic!("expected corrupt, got {other:?}"),
        }
    }

    #[test]
    fn writer_splits_large_traces_into_frames() {
        let mut w = TraceWriter::new(Vec::new()).unwrap();
        let platform = Platform::new(vec![Machine::new(Ratio::from_integer(1)).unwrap()]).unwrap();
        w.begin_instance("big", &platform).unwrap();
        let task = Task::implicit(1, 1_000_000).unwrap();
        for id in 0..100_000u64 {
            w.op(&TraceOp::Add { id, task }).unwrap();
            w.op(&TraceOp::Remove { id }).unwrap();
        }
        w.end_instance().unwrap();
        let bytes = w.finish().unwrap();
        // Must have flushed several frames (not one giant buffer).
        assert!(bytes.len() > 2 * FRAME_TARGET);
        let n = drain(&bytes).unwrap();
        assert_eq!(n, 2 + 200_000);
    }

    #[test]
    fn varint_extremes_roundtrip() {
        let mut buf = Vec::new();
        for v in [0u128, 1, 127, 128, u64::MAX as u128, u128::MAX] {
            buf.clear();
            put_varint(&mut buf, v);
            let mut pos = 0;
            assert_eq!(take_varint(&buf, &mut pos, 0).unwrap(), v);
            assert_eq!(pos, buf.len());
        }
        // An unterminated varint errors.
        let mut pos = 0;
        assert!(take_varint(&[0x80, 0x80], &mut pos, 0).is_err());
        // 20-byte varints overflow u128.
        let mut pos = 0;
        let overlong = [0xFFu8; 19]
            .iter()
            .copied()
            .chain([0x04u8])
            .collect::<Vec<_>>();
        assert!(take_varint(&overlong, &mut pos, 0).is_err());
    }
}
