//! Task-set container and orderings.

use crate::error::ModelError;
use crate::ratio::Ratio;
use crate::task::Task;
use crate::time::hyperperiod;
use core::fmt;
use core::ops::Index;

/// An ordered collection of sporadic tasks.
///
/// The container preserves insertion order; the paper's algorithm operates
/// on a *utilization-sorted view* obtained from
/// [`TaskSet::order_by_decreasing_utilization`], leaving the underlying set
/// untouched so callers can correlate results back to their original task
/// indices.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct TaskSet {
    tasks: Vec<Task>,
}

impl TaskSet {
    /// Create a task set from the given tasks (may be empty).
    pub fn new(tasks: Vec<Task>) -> Self {
        TaskSet { tasks }
    }

    /// The empty task set.
    pub fn empty() -> Self {
        TaskSet { tasks: Vec::new() }
    }

    /// Build an implicit-deadline set from `(wcet, period)` pairs.
    pub fn from_pairs<I>(pairs: I) -> Result<Self, ModelError>
    where
        I: IntoIterator<Item = (u64, u64)>,
    {
        let tasks = pairs
            .into_iter()
            .map(|(c, p)| Task::implicit(c, p))
            .collect::<Result<Vec<_>, _>>()?;
        Ok(TaskSet { tasks })
    }

    /// Number of tasks.
    #[inline]
    pub fn len(&self) -> usize {
        self.tasks.len()
    }

    /// True if there are no tasks.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.tasks.is_empty()
    }

    /// Append a task.
    pub fn push(&mut self, task: Task) {
        self.tasks.push(task);
    }

    /// Task at `index`, if any.
    #[inline]
    pub fn get(&self, index: usize) -> Option<&Task> {
        self.tasks.get(index)
    }

    /// Iterate over tasks in insertion order.
    pub fn iter(&self) -> core::slice::Iter<'_, Task> {
        self.tasks.iter()
    }

    /// Borrow the underlying slice.
    #[inline]
    pub fn as_slice(&self) -> &[Task] {
        &self.tasks
    }

    /// Total utilization `Σ c_i / p_i` as `f64`.
    pub fn total_utilization(&self) -> f64 {
        self.tasks.iter().map(Task::utilization).sum()
    }

    /// Total utilization as an exact rational.
    ///
    /// Prefer this only for sets whose periods share small common multiples;
    /// see the overflow discussion in [`Ratio`]. Panics if the sum
    /// overflows `i128` — public entry points must use
    /// [`TaskSet::try_total_utilization_ratio`] instead.
    pub fn total_utilization_ratio(&self) -> Ratio {
        self.tasks.iter().map(Task::utilization_ratio).sum()
    }

    /// Total utilization as an exact rational, with overflow surfaced as
    /// `Err(ModelError::Overflow)` instead of a panic. Sets with many
    /// coprime periods (whose lcm exceeds `i128`) land here; callers
    /// typically fall back to the `f64` total or a conservative verdict.
    pub fn try_total_utilization_ratio(&self) -> Result<Ratio, ModelError> {
        let mut total = Ratio::ZERO;
        for t in &self.tasks {
            total = total
                .checked_add(&t.utilization_ratio())
                .ok_or(ModelError::Overflow("total utilization"))?;
        }
        Ok(total)
    }

    /// Largest single-task utilization (0.0 for an empty set).
    pub fn max_utilization(&self) -> f64 {
        self.tasks.iter().map(Task::utilization).fold(0.0, f64::max)
    }

    /// Indices of tasks ordered by non-increasing utilization, ties broken
    /// by original index (a deterministic total order — required so the
    /// paper's first-fit is reproducible).
    pub fn order_by_decreasing_utilization(&self) -> Vec<usize> {
        let mut idx = Vec::new();
        self.order_by_decreasing_utilization_into(&mut idx);
        idx
    }

    /// [`TaskSet::order_by_decreasing_utilization`] into a caller-owned
    /// buffer, so repeated sorts (e.g. an engine probing many α values)
    /// reuse the allocation. The buffer is cleared first.
    pub fn order_by_decreasing_utilization_into(&self, idx: &mut Vec<usize>) {
        idx.clear();
        idx.extend(0..self.tasks.len());
        // Exact rational comparison avoids f64 tie ambiguity between e.g.
        // 1/3 and 2/6.
        idx.sort_by(|&a, &b| {
            self.tasks[b]
                .utilization_ratio()
                .cmp(&self.tasks[a].utilization_ratio())
                .then(a.cmp(&b))
        });
    }

    /// Per-task utilizations `c_i / p_i` as a contiguous `f64` lane, in
    /// insertion order, written into a caller-owned buffer (cleared first).
    ///
    /// This is the struct-of-arrays view the vectorized admission kernel
    /// consumes: `out[i] == self[i].utilization()` bit-for-bit, so a kernel
    /// reading the lane sees exactly the values the scalar scan computes.
    pub fn utilizations_into(&self, out: &mut Vec<f64>) {
        out.clear();
        out.extend(self.tasks.iter().map(Task::utilization));
    }

    /// [`TaskSet::order_by_decreasing_utilization_into`] computed from
    /// precomputed fixed-point keys instead of per-comparison rational
    /// reductions.
    ///
    /// Each task gets the key `⌊(c·2^64)/p⌋` (`u128`); the floor is monotone
    /// in `c/p`, so a strict key inequality decides the comparison with no
    /// division or gcd. Equal keys fall back to the exact `u128`
    /// cross-multiplication `c_a·p_b` vs `c_b·p_a` (never overflows: both
    /// factors are `u64`), then the original index. The resulting order is
    /// the exact decreasing-utilization order and matches
    /// [`TaskSet::order_by_decreasing_utilization`] whenever the rational
    /// comparison stays inside `i128` (its documented pathological-overflow
    /// f64 fallback can misorder near-equal huge coprime ratios; this path
    /// cannot). `keys` is scratch space so repeated sorts allocate nothing.
    pub fn order_by_decreasing_utilization_keyed_into(
        &self,
        keys: &mut Vec<(u128, usize)>,
        idx: &mut Vec<usize>,
    ) {
        keys.clear();
        keys.extend(
            self.tasks
                .iter()
                .enumerate()
                .map(|(i, t)| (((t.wcet() as u128) << 64) / t.period() as u128, i)),
        );
        keys.sort_unstable_by(|&(ka, a), &(kb, b)| {
            kb.cmp(&ka)
                .then_with(|| {
                    let (ta, tb) = (&self.tasks[a], &self.tasks[b]);
                    let lhs = tb.wcet() as u128 * ta.period() as u128;
                    let rhs = ta.wcet() as u128 * tb.period() as u128;
                    lhs.cmp(&rhs)
                })
                .then(a.cmp(&b))
        });
        idx.clear();
        idx.extend(keys.iter().map(|&(_, i)| i));
    }

    /// Hyperperiod (lcm of periods), `None` when empty or on overflow.
    pub fn hyperperiod(&self) -> Option<u128> {
        hyperperiod(self.tasks.iter().map(|t| t.period()))
    }

    /// Exact per-task scaled loads `c_i · (H / p_i)` against the set's own
    /// hyperperiod. Returns `None` if the hyperperiod overflows or any
    /// individual load overflows.
    pub fn scaled_loads(&self) -> Option<(u128, Vec<u128>)> {
        let h = self.hyperperiod()?;
        let loads = self
            .tasks
            .iter()
            .map(|t| t.scaled_load(h))
            .collect::<Option<Vec<_>>>()?;
        Some((h, loads))
    }

    /// True when every task has `deadline == period`.
    pub fn is_implicit_deadline(&self) -> bool {
        self.tasks.iter().all(Task::is_implicit_deadline)
    }

    /// Sub-set restricted to the given indices (in the given order).
    pub fn select(&self, indices: &[usize]) -> TaskSet {
        TaskSet {
            tasks: indices.iter().map(|&i| self.tasks[i]).collect(),
        }
    }
}

impl Index<usize> for TaskSet {
    type Output = Task;
    fn index(&self, index: usize) -> &Task {
        &self.tasks[index]
    }
}

impl FromIterator<Task> for TaskSet {
    fn from_iter<I: IntoIterator<Item = Task>>(iter: I) -> Self {
        TaskSet {
            tasks: iter.into_iter().collect(),
        }
    }
}

impl<'a> IntoIterator for &'a TaskSet {
    type Item = &'a Task;
    type IntoIter = core::slice::Iter<'a, Task>;
    fn into_iter(self) -> Self::IntoIter {
        self.tasks.iter()
    }
}

impl fmt::Display for TaskSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, t) in self.tasks.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{t}")?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo() -> TaskSet {
        TaskSet::from_pairs([(1, 4), (3, 6), (2, 12)]).unwrap()
    }

    #[test]
    fn totals() {
        let ts = demo();
        assert_eq!(ts.len(), 3);
        assert!((ts.total_utilization() - (0.25 + 0.5 + 1.0 / 6.0)).abs() < 1e-12);
        assert_eq!(
            ts.total_utilization_ratio(),
            Ratio::new(1, 4) + Ratio::new(1, 2) + Ratio::new(1, 6)
        );
        assert_eq!(ts.max_utilization(), 0.5);
    }

    #[test]
    fn try_total_utilization_surfaces_overflow() {
        let ts = demo();
        assert_eq!(
            ts.try_total_utilization_ratio().unwrap(),
            ts.total_utilization_ratio()
        );
        // Periods near u64::MAX with distinct values: common denominator
        // blows past i128, which must be an Err, not a panic.
        let huge =
            TaskSet::from_pairs((0..4u64).map(|i| (u64::MAX - 2 - 2 * i, u64::MAX - 1 - 2 * i)))
                .unwrap();
        assert_eq!(
            huge.try_total_utilization_ratio(),
            Err(ModelError::Overflow("total utilization"))
        );
        assert_eq!(
            TaskSet::empty().try_total_utilization_ratio(),
            Ok(Ratio::ZERO)
        );
    }

    #[test]
    fn empty_set_behaviour() {
        let ts = TaskSet::empty();
        assert!(ts.is_empty());
        assert_eq!(ts.total_utilization(), 0.0);
        assert_eq!(ts.max_utilization(), 0.0);
        assert_eq!(ts.hyperperiod(), None);
        assert!(ts.order_by_decreasing_utilization().is_empty());
    }

    #[test]
    fn ordering_is_by_decreasing_utilization_with_stable_ties() {
        // utils: 0.25, 0.5, 1/6 → order 1, 0, 2
        assert_eq!(demo().order_by_decreasing_utilization(), vec![1, 0, 2]);
        // Exact ties keep original index order.
        let ts = TaskSet::from_pairs([(2, 6), (1, 3), (1, 2)]).unwrap();
        assert_eq!(ts.order_by_decreasing_utilization(), vec![2, 0, 1]);
    }

    #[test]
    fn utilization_lane_matches_scalar() {
        let ts = demo();
        let mut lane = vec![99.0];
        ts.utilizations_into(&mut lane);
        assert_eq!(lane.len(), ts.len());
        for (i, t) in ts.iter().enumerate() {
            assert_eq!(lane[i].to_bits(), t.utilization().to_bits());
        }
    }

    #[test]
    fn keyed_ordering_matches_rational_ordering() {
        // Deterministic xorshift instances across several magnitudes,
        // including values whose f64 images collide (so the fixed-point key
        // tie-break path is exercised) and exact rational ties.
        let mut s = 0x9e3779b97f4a7c15u64;
        let mut next = move || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            s
        };
        let mut keys = Vec::new();
        let mut keyed = Vec::new();
        for round in 0..40 {
            let n = 1 + (next() % 64) as usize;
            let cap = [10u64, 1_000, 1_000_000, 1 << 40][round % 4];
            let ts = TaskSet::from_pairs((0..n).map(|_| {
                let p = 1 + next() % cap;
                let c = 1 + next() % p.max(1);
                (c, p)
            }))
            .unwrap();
            ts.order_by_decreasing_utilization_keyed_into(&mut keys, &mut keyed);
            assert_eq!(keyed, ts.order_by_decreasing_utilization(), "round {round}");
        }
        // Exact ties (1/3 == 2/6 == 4/12) keep original index order.
        let ts = TaskSet::from_pairs([(2, 6), (1, 3), (4, 12), (1, 2)]).unwrap();
        ts.order_by_decreasing_utilization_keyed_into(&mut keys, &mut keyed);
        assert_eq!(keyed, vec![3, 0, 1, 2]);
        assert_eq!(keyed, ts.order_by_decreasing_utilization());
    }

    #[test]
    fn hyperperiod_and_scaled_loads() {
        let ts = demo();
        assert_eq!(ts.hyperperiod(), Some(12));
        let (h, loads) = ts.scaled_loads().unwrap();
        assert_eq!(h, 12);
        assert_eq!(loads, vec![3, 6, 2]);
        // load/h equals utilization exactly.
        for (t, &l) in ts.iter().zip(&loads) {
            assert_eq!(Ratio::new(l as i128, h as i128), t.utilization_ratio());
        }
    }

    #[test]
    fn select_reorders() {
        let ts = demo();
        let sel = ts.select(&[2, 0]);
        assert_eq!(sel.len(), 2);
        assert_eq!(sel[0], ts[2]);
        assert_eq!(sel[1], ts[0]);
    }

    #[test]
    fn from_iterator_and_index() {
        let ts: TaskSet = [(1u64, 2u64), (1, 5)]
            .into_iter()
            .map(|(c, p)| Task::implicit(c, p).unwrap())
            .collect();
        assert_eq!(ts[1].period(), 5);
        assert!(ts.is_implicit_deadline());
    }

    #[test]
    fn display_lists_tasks() {
        let ts = TaskSet::from_pairs([(1, 4), (3, 6)]).unwrap();
        assert_eq!(ts.to_string(), "{τ(c=1, p=4), τ(c=3, p=6)}");
    }

    #[test]
    fn implicit_deadline_detection() {
        let mut ts = demo();
        assert!(ts.is_implicit_deadline());
        ts.push(Task::constrained(1, 10, 5).unwrap());
        assert!(!ts.is_implicit_deadline());
    }
}
