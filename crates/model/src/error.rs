//! Error types shared across the workspace.

use core::fmt;

/// Errors raised when constructing or validating model objects.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ModelError {
    /// A task was constructed with a zero period.
    ZeroPeriod,
    /// A task was constructed with a zero worst-case execution time.
    ZeroWcet,
    /// A task's deadline was zero (constrained-deadline extension).
    ZeroDeadline,
    /// A task's utilization exceeds the given limit (e.g. the fastest
    /// machine's speed), making the instance trivially infeasible in a way
    /// the caller asked to reject at construction.
    UtilizationTooLarge {
        /// Offending task index.
        task: usize,
    },
    /// A platform was constructed with no machines.
    EmptyPlatform,
    /// A machine was constructed with a non-positive speed.
    NonPositiveSpeed,
    /// An integer computation (hyperperiod, scaled load) overflowed.
    Overflow(&'static str),
    /// A speed-augmentation factor below 1 was supplied.
    AugmentationBelowOne,
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelError::ZeroPeriod => write!(f, "task period must be positive"),
            ModelError::ZeroWcet => write!(f, "task WCET must be positive"),
            ModelError::ZeroDeadline => write!(f, "task deadline must be positive"),
            ModelError::UtilizationTooLarge { task } => {
                write!(f, "task {task} has utilization exceeding the allowed limit")
            }
            ModelError::EmptyPlatform => write!(f, "platform must contain at least one machine"),
            ModelError::NonPositiveSpeed => write!(f, "machine speed must be positive"),
            ModelError::Overflow(what) => write!(f, "integer overflow computing {what}"),
            ModelError::AugmentationBelowOne => {
                write!(f, "speed augmentation factor must be at least 1")
            }
        }
    }
}

impl std::error::Error for ModelError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        assert!(ModelError::ZeroPeriod.to_string().contains("period"));
        assert!(ModelError::ZeroWcet.to_string().contains("WCET"));
        assert!(ModelError::EmptyPlatform.to_string().contains("machine"));
        assert!(ModelError::Overflow("hyperperiod")
            .to_string()
            .contains("hyperperiod"));
        assert!(ModelError::UtilizationTooLarge { task: 3 }
            .to_string()
            .contains('3'));
    }

    #[test]
    fn error_trait_object_safe() {
        let e: Box<dyn std::error::Error> = Box::new(ModelError::ZeroPeriod);
        assert_eq!(e.to_string(), "task period must be positive");
    }
}
