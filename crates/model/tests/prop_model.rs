//! Property-based tests for the model substrate: `Ratio` algebra laws,
//! ordering consistency, task-set invariants.

use hetfeas_model::{Platform, Ratio, Task, TaskSet};
use proptest::prelude::*;

/// Strategy for ratios with bounded components (keeps products well inside
/// `i128` so no checked-op fallback triggers).
fn small_ratio() -> impl Strategy<Value = Ratio> {
    (-1_000_000i128..=1_000_000, 1i128..=1_000_000).prop_map(|(n, d)| Ratio::new(n, d))
}

fn small_task() -> impl Strategy<Value = Task> {
    (1u64..=1_000, 1u64..=10_000).prop_map(|(c, p)| Task::implicit(c, p).unwrap())
}

proptest! {
    #[test]
    fn ratio_add_commutes(a in small_ratio(), b in small_ratio()) {
        prop_assert_eq!(a + b, b + a);
    }

    #[test]
    fn ratio_mul_commutes(a in small_ratio(), b in small_ratio()) {
        prop_assert_eq!(a * b, b * a);
    }

    #[test]
    fn ratio_add_associates(a in small_ratio(), b in small_ratio(), c in small_ratio()) {
        prop_assert_eq!((a + b) + c, a + (b + c));
    }

    #[test]
    fn ratio_distributes(a in small_ratio(), b in small_ratio(), c in small_ratio()) {
        prop_assert_eq!(a * (b + c), a * b + a * c);
    }

    #[test]
    fn ratio_sub_inverts_add(a in small_ratio(), b in small_ratio()) {
        prop_assert_eq!((a + b) - b, a);
    }

    #[test]
    fn ratio_is_normalized(a in small_ratio()) {
        prop_assert!(a.denom() > 0);
        prop_assert_eq!(hetfeas_model::gcd_i128(a.numer().abs(), a.denom()).max(1), 1);
    }

    #[test]
    fn ratio_order_matches_f64(a in small_ratio(), b in small_ratio()) {
        // f64 has 53 bits of mantissa; with components ≤ 1e6 the cross
        // products are ≤ 1e12 < 2^53, so exact and float orders agree.
        let exact = a.cmp(&b);
        let float = a.to_f64().partial_cmp(&b.to_f64()).unwrap();
        prop_assert_eq!(exact, float);
    }

    #[test]
    fn ratio_recip_roundtrips(a in small_ratio()) {
        prop_assume!(!a.is_zero());
        prop_assert_eq!(a.recip().recip(), a);
        prop_assert_eq!(a * a.recip(), Ratio::ONE);
    }

    #[test]
    fn ratio_floor_ceil_bracket(a in small_ratio()) {
        let f = a.floor();
        let c = a.ceil();
        prop_assert!(Ratio::from_integer(f) <= a);
        prop_assert!(a <= Ratio::from_integer(c));
        prop_assert!(c - f <= 1);
    }

    #[test]
    fn taskset_order_is_sorted_permutation(tasks in prop::collection::vec(small_task(), 0..40)) {
        let ts = TaskSet::new(tasks);
        let order = ts.order_by_decreasing_utilization();
        // Is a permutation of 0..n.
        let mut seen = vec![false; ts.len()];
        for &i in &order {
            prop_assert!(!seen[i]);
            seen[i] = true;
        }
        // Non-increasing utilization.
        for w in order.windows(2) {
            prop_assert!(
                ts[w[0]].utilization_ratio() >= ts[w[1]].utilization_ratio()
            );
        }
    }

    #[test]
    fn taskset_total_utilization_matches_ratio(tasks in prop::collection::vec(
        // Menu periods keep the common denominator tiny: summing many
        // arbitrary coprime denominators overflows `Ratio` by design
        // (documented in `ratio`'s module docs — use the f64 path there).
        (1u64..=1_000, prop::sample::select(vec![8u64, 10, 20, 25, 40, 50, 100, 125, 200])),
        0..12,
    )) {
        let ts = TaskSet::from_pairs(tasks).unwrap();
        let exact = ts.total_utilization_ratio().to_f64();
        prop_assert!((ts.total_utilization() - exact).abs() < 1e-6);
    }

    #[test]
    fn scaled_loads_are_exact_utilizations(tasks in prop::collection::vec(
        (1u64..=100, prop::sample::select(vec![5u64, 10, 20, 25, 40, 50, 100])),
        1..16,
    )) {
        let ts = TaskSet::from_pairs(tasks).unwrap();
        let (h, loads) = ts.scaled_loads().expect("menu periods have small lcm");
        for (t, &l) in ts.iter().zip(&loads) {
            prop_assert_eq!(Ratio::new(l as i128, h as i128), t.utilization_ratio());
        }
    }

    #[test]
    fn platform_speed_order_is_sorted_permutation(speeds in prop::collection::vec(1u64..=64, 1..20)) {
        let p = Platform::from_int_speeds(speeds).unwrap();
        let order = p.order_by_increasing_speed();
        let mut seen = vec![false; p.len()];
        for &i in &order {
            prop_assert!(!seen[i]);
            seen[i] = true;
        }
        for w in order.windows(2) {
            prop_assert!(p.machine(w[0]).speed() <= p.machine(w[1]).speed());
        }
    }
}
