//! Round-trip property tests for the system file format.

use hetfeas_model::{parse_system, render_system, Machine, Platform, Ratio, Task, TaskSet};
use proptest::prelude::*;

fn arb_task() -> impl Strategy<Value = Task> {
    (1u64..=10_000, 1u64..=100_000, 0u64..=2).prop_map(|(c, p, kind)| match kind {
        0 => Task::implicit(c, p).unwrap(),
        1 => Task::constrained(c, p, p.div_ceil(2).max(1)).unwrap(),
        _ => Task::constrained(c, p, (p * 2).max(1)).unwrap(), // arbitrary deadline
    })
}

fn arb_machine() -> impl Strategy<Value = Machine> {
    (1i128..=1_000, 1i128..=100).prop_map(|(n, d)| Machine::new(Ratio::new(n, d)).unwrap())
}

proptest! {
    // parse ∘ render = id on every valid system.
    #[test]
    fn roundtrip(
        tasks in prop::collection::vec(arb_task(), 0..30),
        machines in prop::collection::vec(arb_machine(), 1..10),
    ) {
        let ts = TaskSet::new(tasks);
        let platform = Platform::new(machines).unwrap();
        let text = render_system(&ts, &platform);
        let parsed = parse_system(&text).expect("rendered systems reparse");
        prop_assert_eq!(parsed.tasks, ts);
        prop_assert_eq!(parsed.platform, platform);
    }

    // Arbitrary junk never panics — it errors.
    #[test]
    fn junk_never_panics(input in "\\PC{0,200}") {
        let _ = parse_system(&input);
    }

    // Line-oriented junk with plausible prefixes also errors gracefully.
    #[test]
    fn near_miss_lines_error(
        word in "[a-z]{1,8}",
        a in any::<i64>(),
        b in any::<i64>(),
    ) {
        let input = format!("{word} {a} {b}\nmachine 1\n");
        let out = parse_system(&input);
        if word == "task" && a > 0 && b > 0 {
            prop_assert!(out.is_ok());
        } else if word != "machine" {
            prop_assert!(out.is_err() || word == "task");
        }
    }
}
