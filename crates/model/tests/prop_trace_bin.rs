//! Property suite for the HBT1 binary op-trace format (dependency-free,
//! no proptest): seeded random traces round-trip text ↔ binary exactly,
//! and damaged streams — torn tails at every byte offset, single-byte
//! flips — surface as [`hetfeas_model::BinTraceError`] values, never
//! panics and never a silently shortened instance.

use hetfeas_model::{
    is_binary_trace, parse_op_trace, read_op_trace_bin, render_op_trace, write_op_trace_bin,
    Machine, OpStream, OpTrace, Platform, Ratio, Task, TraceEvent, TraceInstance, TraceOp,
};

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

fn draw(state: &mut u64, n: u64) -> u64 {
    splitmix64(state) % n.max(1)
}

fn random_platform(rng: &mut u64) -> Platform {
    let m = 1 + draw(rng, 4) as usize;
    let machines = (0..m)
        .map(|_| {
            // Mix integer and rational speeds so varint + ratio encoding
            // both get exercised.
            let num = 1 + draw(rng, 8) as i128;
            let den = 1 + draw(rng, 3) as i128;
            Machine::new(Ratio::new(num, den)).expect("positive speed")
        })
        .collect();
    Platform::new(machines).expect("non-empty platform")
}

fn random_task(rng: &mut u64) -> Task {
    let period = 2 + draw(rng, 1000);
    let wcet = 1 + draw(rng, period);
    if draw(rng, 3) == 0 {
        let deadline = (wcet + draw(rng, period)).clamp(1, period);
        Task::constrained(wcet, period, deadline.max(wcet)).expect("valid task")
    } else {
        Task::implicit(wcet, period).expect("valid task")
    }
}

/// A random but structurally valid trace: adds before their removes and
/// queries, rollbacks only after a snapshot.
fn random_trace(seed: u64) -> OpTrace {
    let mut rng = seed;
    let n_inst = 1 + draw(&mut rng, 3) as usize;
    let mut instances = Vec::with_capacity(n_inst);
    for i in 0..n_inst {
        let platform = random_platform(&mut rng);
        let n_ops = draw(&mut rng, 40) as usize;
        let mut ops = Vec::with_capacity(n_ops);
        let mut live: Vec<u64> = Vec::new();
        let mut next_id = 1u64;
        let mut snapped = false;
        for _ in 0..n_ops {
            match draw(&mut rng, 10) {
                0..=3 => {
                    ops.push(TraceOp::Add {
                        id: next_id,
                        task: random_task(&mut rng),
                    });
                    live.push(next_id);
                    next_id += 1;
                }
                4 | 5 if !live.is_empty() => {
                    let at = draw(&mut rng, live.len() as u64) as usize;
                    ops.push(TraceOp::Remove {
                        id: live.swap_remove(at),
                    });
                }
                6 if !live.is_empty() => {
                    let at = draw(&mut rng, live.len() as u64) as usize;
                    ops.push(TraceOp::Query { id: live[at] });
                }
                7 => {
                    ops.push(TraceOp::Snapshot);
                    snapped = true;
                }
                8 if snapped => ops.push(TraceOp::Rollback),
                _ => ops.push(TraceOp::Repack),
            }
        }
        instances.push(TraceInstance {
            name: format!("fuzz-{i}"),
            platform,
            ops,
        });
    }
    OpTrace { instances }
}

#[test]
fn random_traces_roundtrip_text_and_binary() {
    for seed in 0..60u64 {
        let trace = random_trace(seed);
        let text = render_op_trace(&trace);
        let reparsed = parse_op_trace(&text).expect("rendered trace parses");
        assert_eq!(reparsed, trace, "seed {seed}: text round trip");

        let bytes = write_op_trace_bin(&trace, Vec::new()).expect("encode");
        assert!(is_binary_trace(&bytes), "seed {seed}: magic");
        let back = read_op_trace_bin(&bytes[..]).expect("decode");
        assert_eq!(back, trace, "seed {seed}: binary round trip");

        // And the composition: binary → text → binary is byte-identical.
        let text2 = render_op_trace(&back);
        let trace2 = parse_op_trace(&text2).expect("reparse");
        let bytes2 = write_op_trace_bin(&trace2, Vec::new()).expect("re-encode");
        assert_eq!(bytes2, bytes, "seed {seed}: bytes stable across formats");
    }
}

/// Truncating a binary trace at any byte offset must either decode to an
/// exact prefix of the original instances or error — never panic, never
/// invent or shorten an instance silently.
#[test]
fn torn_tails_are_prefixes_or_errors() {
    for seed in [3u64, 17, 40] {
        let trace = random_trace(seed);
        let bytes = write_op_trace_bin(&trace, Vec::new()).expect("encode");
        for cut in 0..bytes.len() {
            match read_op_trace_bin(&bytes[..cut]) {
                Ok(prefix) => {
                    assert!(
                        prefix.instances.len() <= trace.instances.len(),
                        "seed {seed} cut {cut}: more instances than written"
                    );
                    assert_eq!(
                        prefix.instances[..],
                        trace.instances[..prefix.instances.len()],
                        "seed {seed} cut {cut}: not a prefix"
                    );
                }
                Err(e) => {
                    // Errors must render (offset diagnostics) without
                    // panicking.
                    let _ = e.to_string();
                }
            }
        }
    }
}

/// A truncated stream mid-instance is an error, not a clean EOF: the
/// reader refuses to hand back a half-replayed instance.
#[test]
fn truncation_inside_an_instance_is_an_error() {
    let trace = random_trace(9);
    assert!(!trace.instances[0].ops.is_empty() || trace.instances.len() > 1);
    let bytes = write_op_trace_bin(&trace, Vec::new()).expect("encode");
    // Cut strictly inside the first frame's payload.
    let cut = bytes.len() - 1;
    let mut stream = OpStream::new(&bytes[..cut]).expect("header intact");
    let mut saw_err = false;
    loop {
        match stream.next_event() {
            Ok(Some(_)) => continue,
            Ok(None) => break,
            Err(_) => {
                saw_err = true;
                break;
            }
        }
    }
    assert!(saw_err, "one-byte-short trace decoded cleanly");
    // Poisoned after the error: no spinning on damage.
    assert!(matches!(stream.next_event(), Ok(None)));
}

/// Flipping any single byte of a binary trace must be detected (magic,
/// version, frame length, CRC or payload — everything is covered).
#[test]
fn single_byte_flips_never_decode_silently() {
    let trace = random_trace(21);
    let bytes = write_op_trace_bin(&trace, Vec::new()).expect("encode");
    // Every offset in a small trace; sampled stride for big ones.
    let stride = (bytes.len() / 512).max(1);
    for at in (0..bytes.len()).step_by(stride) {
        let mut dam = bytes.clone();
        dam[at] ^= 0x40;
        match read_op_trace_bin(&dam[..]) {
            Err(e) => {
                let _ = e.to_string();
            }
            Ok(decoded) => panic!(
                "flip at {at} decoded {} instances without an error",
                decoded.instances.len()
            ),
        }
    }
}

/// The streaming reader yields exactly the materialized event sequence —
/// the pull-based path and `read_op_trace_bin` agree on every record.
#[test]
fn stream_events_match_materialized_decode() {
    for seed in [5u64, 28, 51] {
        let trace = random_trace(seed);
        let bytes = write_op_trace_bin(&trace, Vec::new()).expect("encode");
        let mut stream = OpStream::new(&bytes[..]).expect("header");
        for inst in &trace.instances {
            match stream.next_event().expect("begin").expect("begin") {
                TraceEvent::Begin { name, platform } => {
                    assert_eq!(name, inst.name);
                    assert_eq!(platform, inst.platform);
                }
                other => panic!("expected begin, got {other:?}"),
            }
            for op in &inst.ops {
                assert_eq!(
                    stream.next_event().expect("op").expect("op"),
                    TraceEvent::Op(*op)
                );
            }
            assert_eq!(
                stream.next_event().expect("end").expect("end"),
                TraceEvent::End
            );
        }
        assert!(matches!(stream.next_event(), Ok(None)));
    }
}
