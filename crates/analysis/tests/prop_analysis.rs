//! Property tests for the single-machine analyses.

use hetfeas_analysis::{
    edf_demand_schedulable, edf_schedulable, edf_schedulable_exact, liu_layland_bound,
    qpa_schedulable, rm_priority_order, rms_schedulable_hyperbolic, rms_schedulable_ll,
    rta_response_times, rta_schedulable,
};
use hetfeas_model::{Ratio, Task, TaskSet};
use proptest::prelude::*;

/// Constrained-deadline tasks on the same divisor-friendly menu.
fn constrained_task() -> impl Strategy<Value = Task> {
    (
        1u64..=20,
        prop::sample::select(vec![4u64, 5, 8, 10, 20, 25, 40, 50]),
        1u64..=100,
    )
        .prop_map(|(c, p, dfrac)| {
            let c = c.min(p);
            // deadline in [c, p], biased across the range.
            let d = c + (p - c) * dfrac.min(100) / 100;
            Task::constrained(c, p, d.max(1)).unwrap()
        })
}

/// Periods from a divisor-friendly menu so hyperperiods stay tiny.
fn menu_task() -> impl Strategy<Value = Task> {
    (
        1u64..=40,
        prop::sample::select(vec![4u64, 5, 8, 10, 20, 25, 40, 50, 100]),
    )
        .prop_map(|(c, p)| Task::implicit(c.min(p), p).unwrap())
}

fn small_set() -> impl Strategy<Value = TaskSet> {
    prop::collection::vec(menu_task(), 1..8).prop_map(TaskSet::new)
}

proptest! {
    #[test]
    fn edf_f64_matches_exact(ts in small_set(), snum in 1i128..8, sden in 1i128..8) {
        let speed = Ratio::new(snum, sden);
        let f = edf_schedulable(&ts, speed.to_f64());
        let e = edf_schedulable_exact(&ts, speed);
        // They may only disagree within EPS of the boundary; detect by
        // comparing the exact margin.
        let margin = (ts.total_utilization_ratio() - speed).to_f64().abs();
        if margin > 1e-6 {
            prop_assert_eq!(f, e);
        }
    }

    #[test]
    fn ll_implies_hyperbolic_implies_rta(ts in small_set(), s in 1u64..5) {
        let speed = s as f64;
        if rms_schedulable_ll(&ts, speed) {
            prop_assert!(rms_schedulable_hyperbolic(&ts, speed),
                "hyperbolic must dominate Liu–Layland");
        }
        if rms_schedulable_hyperbolic(&ts, speed) {
            prop_assert!(rta_schedulable(&ts, Ratio::from_integer(s as i128)),
                "exact RTA must dominate the hyperbolic bound");
        }
    }

    #[test]
    fn rta_monotone_in_speed(ts in small_set(), s in 1i128..4) {
        if rta_schedulable(&ts, Ratio::from_integer(s)) {
            prop_assert!(rta_schedulable(&ts, Ratio::from_integer(s + 1)));
            prop_assert!(rta_schedulable(&ts, Ratio::new(2 * s + 1, 2)));
        }
    }

    #[test]
    fn rta_response_at_most_deadline_when_some(ts in small_set()) {
        let order = rm_priority_order(&ts);
        let rs = rta_response_times(&ts, &order, Ratio::ONE);
        for (i, r) in rs.iter().enumerate() {
            if let Some(r) = r {
                prop_assert!(*r <= Ratio::from_integer(ts[i].deadline() as i128));
                prop_assert!(*r >= Ratio::from_integer(ts[i].wcet() as i128));
            }
        }
    }

    #[test]
    fn highest_priority_task_response_is_its_wcet(ts in small_set()) {
        let order = rm_priority_order(&ts);
        let rs = rta_response_times(&ts, &order, Ratio::ONE);
        let top = order[0];
        // WCET ≤ period holds by construction of menu_task, so the top task
        // always completes: R = c / 1.
        prop_assert_eq!(rs[top], Some(Ratio::from_integer(ts[top].wcet() as i128)));
    }

    #[test]
    fn pdc_matches_edf_for_implicit(ts in small_set(), snum in 1i128..6, sden in 1i128..4) {
        let speed = Ratio::new(snum, sden);
        let h = ts.hyperperiod().unwrap();
        prop_assume!(h <= u64::MAX as u128);
        let pdc = edf_demand_schedulable(&ts, speed, h as u64);
        let util = edf_schedulable_exact(&ts, speed);
        prop_assert_eq!(pdc, util,
            "for implicit deadlines PDC must coincide with the utilization test");
    }

    #[test]
    fn ll_bound_between_ln2_and_one(n in 0usize..512) {
        let b = liu_layland_bound(n);
        prop_assert!(b <= 1.0 + 1e-12);
        prop_assert!(b >= hetfeas_analysis::LN2 - 1e-12);
    }

    // QPA ⇔ naive processor-demand criterion, exactly, on constrained sets.
    #[test]
    fn qpa_matches_naive_pdc(
        tasks in prop::collection::vec(constrained_task(), 1..7),
        snum in 1i128..5,
        sden in 1i128..4,
    ) {
        let ts = TaskSet::new(tasks);
        let speed = Ratio::new(snum, sden);
        // Horizon: hyperperiod of the *scaled* system ≥ busy period bound.
        let h = ts.hyperperiod().unwrap();
        prop_assume!(h <= (u64::MAX / 8) as u128);
        let horizon = (h as u64) * 2;
        let naive = edf_demand_schedulable(&ts, speed, horizon);
        let quick = qpa_schedulable(&ts, speed);
        prop_assert_eq!(naive, quick, "QPA vs PDC disagree on {} at speed {}", ts, speed);
    }
}
