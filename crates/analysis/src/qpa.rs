//! Quick Processor-demand Analysis (QPA, Zhang & Burns 2009) — the fast
//! exact EDF test for constrained-deadline sporadic sets (extension; the
//! paper only needs implicit deadlines, where the utilization test is
//! already exact and O(n)).
//!
//! QPA walks *down* from the analysis bound `L`, jumping directly to
//! `h(t)` (the demand at `t`) or to the largest absolute deadline below
//! `t`, instead of enumerating every deadline like the naive
//! processor-demand criterion in [`crate::dbf`](mod@crate::dbf). Typical speedups are an
//! order of magnitude; the two are property-tested to agree exactly.
//!
//! Related-machine speeds are handled by exact rescaling: on a machine of
//! speed `num/den`, the system `(c, p, d)` behaves exactly like
//! `(c·den, p·num, d·num)` on a unit-speed machine, which keeps every
//! quantity an integer.

use crate::dbf::total_dbf;
use hetfeas_model::time::div_ceil_u128;
use hetfeas_model::{Ratio, Task, TaskSet};

/// The synchronous busy-period length: least fixpoint of
/// `w = Σ ⌈w / p_i⌉ · c_i` (unit speed), or `None` if utilization exceeds
/// 1 (the recurrence diverges) or arithmetic overflows.
pub fn busy_period(tasks: &TaskSet) -> Option<u128> {
    if tasks.is_empty() {
        return Some(0);
    }
    if tasks.total_utilization_ratio() > Ratio::ONE {
        return None;
    }
    let mut w: u128 = tasks.iter().map(|t| t.wcet() as u128).sum();
    // Convergence within the hyperperiod for U ≤ 1; guard with an
    // iteration cap anyway.
    for _ in 0..1_000_000 {
        let mut next: u128 = 0;
        for t in tasks {
            next = next
                .checked_add(div_ceil_u128(w, t.period() as u128).checked_mul(t.wcet() as u128)?)?;
        }
        if next == w {
            return Some(w);
        }
        debug_assert!(next > w);
        w = next;
    }
    None
}

/// Largest absolute deadline strictly below `t`, or `None` if none exists.
fn max_deadline_below(tasks: &TaskSet, t: u128) -> Option<u128> {
    let mut best: Option<u128> = None;
    for task in tasks {
        let d = task.deadline() as u128;
        if d >= t {
            continue; // even the first deadline is too late
        }
        // Largest k with d + k·p < t.
        let k = (t - 1 - d) / task.period() as u128;
        let cand = d + k * task.period() as u128;
        best = Some(best.map_or(cand, |b| b.max(cand)));
    }
    best
}

/// Demand `h(t)` over a window of length `t` (u128 domain wrapper around
/// [`total_dbf`]; saturates at the horizon-bounded values we use).
fn h(tasks: &TaskSet, t: u128) -> u128 {
    total_dbf(tasks, u64::try_from(t).unwrap_or(u64::MAX))
}

/// Exact EDF schedulability on a *unit-speed* machine via QPA. Assumes
/// `d_i ≤ p_i` (debug-asserted) — the constrained-deadline model.
pub fn qpa_schedulable_unit(tasks: &TaskSet) -> bool {
    debug_assert!(tasks.iter().all(|t| t.deadline() <= t.period()));
    if tasks.is_empty() {
        return true;
    }
    if tasks.total_utilization_ratio() > Ratio::ONE {
        return false;
    }
    let Some(l) = busy_period(tasks) else {
        return false;
    };
    let d_min = tasks
        .iter()
        .map(|t| t.deadline() as u128)
        .min()
        .expect("non-empty");
    // Start at the largest deadline strictly inside the busy period.
    let Some(mut t) = max_deadline_below(tasks, l.max(1)) else {
        return true; // no deadline inside the busy period ⇒ nothing to miss
    };
    loop {
        let demand = h(tasks, t);
        if demand > t {
            return false;
        }
        if demand <= d_min {
            return true;
        }
        t = if demand < t {
            demand
        } else {
            match max_deadline_below(tasks, t) {
                Some(next) => next,
                None => return true,
            }
        };
    }
}

/// Exact EDF schedulability on a speed-`speed` machine via QPA, using the
/// exact integer rescaling described in the module docs.
///
/// ```
/// use hetfeas_analysis::qpa_schedulable;
/// use hetfeas_model::{Ratio, Task, TaskSet};
///
/// let tight = Task::constrained(2, 10, 2).unwrap(); // all work due in 2 ticks
/// let set = TaskSet::new(vec![tight, tight]);
/// assert!(!qpa_schedulable(&set, Ratio::ONE));      // demand 4 at t = 2
/// assert!(qpa_schedulable(&set, Ratio::from_integer(2)));
/// ```
pub fn qpa_schedulable(tasks: &TaskSet, speed: Ratio) -> bool {
    if speed <= Ratio::ZERO {
        return false;
    }
    if tasks.is_empty() {
        return true;
    }
    let num = speed.numer() as u64;
    let den = speed.denom() as u64;
    let scaled: Option<TaskSet> = tasks
        .iter()
        .map(|t| {
            let c = t.wcet().checked_mul(den)?;
            let p = t.period().checked_mul(num)?;
            let d = t.deadline().checked_mul(num)?;
            Task::constrained(c, p, d).ok()
        })
        .collect::<Option<Vec<_>>>()
        .map(TaskSet::new);
    match scaled {
        Some(s) => qpa_schedulable_unit(&s),
        None => false, // conservative on overflow
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dbf::edf_demand_schedulable;
    use hetfeas_model::Task;

    fn ct(c: u64, p: u64, d: u64) -> Task {
        Task::constrained(c, p, d).unwrap()
    }

    #[test]
    fn busy_period_examples() {
        // Single task: busy period = c.
        let ts = TaskSet::from_pairs([(3, 10)]).unwrap();
        assert_eq!(busy_period(&ts), Some(3));
        // Two tasks c=2,p=4 and c=2,p=6: w0=4, w1=ceil(4/4)*2+ceil(4/6)*2=4 ✓.
        let ts = TaskSet::from_pairs([(2, 4), (2, 6)]).unwrap();
        assert_eq!(busy_period(&ts), Some(4));
        // Full utilization: busy period reaches the hyperperiod.
        let ts = TaskSet::from_pairs([(1, 2), (1, 2)]).unwrap();
        assert_eq!(busy_period(&ts), Some(2));
        // Overload diverges.
        let ts = TaskSet::from_pairs([(3, 2)]).unwrap();
        assert_eq!(busy_period(&ts), None);
        assert_eq!(busy_period(&TaskSet::empty()), Some(0));
    }

    #[test]
    fn max_deadline_below_walks_the_grid() {
        let ts = TaskSet::new(vec![ct(1, 4, 3), ct(1, 6, 6)]);
        // Absolute deadlines: 3,7,11,… and 6,12,18,…
        assert_eq!(max_deadline_below(&ts, 100), Some(99)); // 3+24·4 = 99
        assert_eq!(max_deadline_below(&ts, 7), Some(6));
        assert_eq!(max_deadline_below(&ts, 6), Some(3));
        assert_eq!(max_deadline_below(&ts, 3), None);
    }

    #[test]
    fn agrees_with_naive_pdc_on_fixed_cases() {
        let cases: Vec<Vec<Task>> = vec![
            vec![ct(2, 10, 6), ct(3, 15, 10), ct(4, 30, 30)],
            vec![ct(2, 10, 2), ct(2, 10, 2)],
            vec![ct(1, 2, 2), ct(1, 4, 3)],
            vec![ct(5, 20, 9), ct(5, 20, 10), ct(5, 20, 11)],
            vec![ct(1, 3, 3), ct(1, 4, 4), ct(2, 12, 8)],
        ];
        for tasks in cases {
            let ts = TaskSet::new(tasks);
            let h = ts.hyperperiod().unwrap() as u64 * 2;
            let naive = edf_demand_schedulable(&ts, Ratio::ONE, h);
            let qpa = qpa_schedulable_unit(&ts);
            assert_eq!(naive, qpa, "disagree on {ts}");
        }
    }

    #[test]
    fn speed_scaling_exact() {
        // c=1, p=d=2 needs exactly speed 1/2.
        let ts = TaskSet::new(vec![ct(1, 2, 2)]);
        assert!(qpa_schedulable(&ts, Ratio::new(1, 2)));
        assert!(!qpa_schedulable(&ts, Ratio::new(49, 100)));
        assert!(!qpa_schedulable(&ts, Ratio::ZERO));
    }

    #[test]
    fn implicit_deadline_reduces_to_utilization() {
        let ts = TaskSet::from_pairs([(1, 3), (1, 6), (1, 2)]).unwrap(); // util 1.0
        assert!(qpa_schedulable_unit(&ts));
        let ts2 = TaskSet::from_pairs([(1, 3), (1, 6), (1, 2), (1, 1000)]).unwrap();
        assert!(!qpa_schedulable_unit(&ts2));
    }

    #[test]
    fn tight_constrained_set() {
        // Demand exactly meets supply at the critical deadline.
        let ts = TaskSet::new(vec![ct(2, 8, 2), ct(6, 8, 8)]);
        // h(2) = 2 ≤ 2; h(8) = 8 ≤ 8 → schedulable.
        assert!(qpa_schedulable_unit(&ts));
        // Tighten the second deadline: h(7) = 8 > 7 → miss.
        let ts = TaskSet::new(vec![ct(2, 8, 2), ct(6, 8, 7)]);
        assert!(!qpa_schedulable_unit(&ts));
    }

    #[test]
    fn empty_set() {
        assert!(qpa_schedulable_unit(&TaskSet::empty()));
        assert!(qpa_schedulable(&TaskSet::empty(), Ratio::new(1, 7)));
    }
}
