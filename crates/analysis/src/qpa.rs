//! Quick Processor-demand Analysis (QPA, Zhang & Burns 2009) — the fast
//! exact EDF test for constrained-deadline sporadic sets (extension; the
//! paper only needs implicit deadlines, where the utilization test is
//! already exact and O(n)).
//!
//! QPA walks *down* from the analysis bound `L`, jumping directly to
//! `h(t)` (the demand at `t`) or to the largest absolute deadline below
//! `t`, instead of enumerating every deadline like the naive
//! processor-demand criterion in [`crate::dbf`](mod@crate::dbf). Typical speedups are an
//! order of magnitude; the two are property-tested to agree exactly.
//!
//! Related-machine speeds are handled by exact rescaling: on a machine of
//! speed `num/den`, the system `(c, p, d)` behaves exactly like
//! `(c·den, p·num, d·num)` on a unit-speed machine, which keeps every
//! quantity an integer.

use crate::dbf::total_dbf;
use hetfeas_model::time::div_ceil_u128;
use hetfeas_model::{ModelError, Ratio, Task, TaskSet};
use hetfeas_robust::{Exhaustion, Gas};

/// The synchronous busy-period length: least fixpoint of
/// `w = Σ ⌈w / p_i⌉ · c_i` (unit speed), or `None` if utilization exceeds
/// 1 (the recurrence diverges) or arithmetic overflows.
pub fn busy_period(tasks: &TaskSet) -> Option<u128> {
    busy_period_within(tasks, &mut Gas::unlimited()).expect("unlimited gas cannot exhaust")
}

/// [`busy_period`] under an execution budget: each fixed-point iteration
/// ticks `gas` once per task, so a pathological recurrence stops with
/// `Err(Exhaustion)` instead of burning the full iteration cap.
pub fn busy_period_within(tasks: &TaskSet, gas: &mut Gas) -> Result<Option<u128>, Exhaustion> {
    if tasks.is_empty() {
        return Ok(Some(0));
    }
    match tasks.try_total_utilization_ratio() {
        Ok(u) if u <= Ratio::ONE => {}
        // Overloaded (diverges) or overflow (can't certify convergence).
        _ => return Ok(None),
    }
    let mut w: u128 = tasks.iter().map(|t| t.wcet() as u128).sum();
    // Convergence within the hyperperiod for U ≤ 1; guard with an
    // iteration cap anyway.
    for _ in 0..1_000_000 {
        gas.tick_n(tasks.len() as u64)?;
        let mut next: u128 = 0;
        for t in tasks {
            let Some(term) = div_ceil_u128(w, t.period() as u128).checked_mul(t.wcet() as u128)
            else {
                return Ok(None);
            };
            let Some(sum) = next.checked_add(term) else {
                return Ok(None);
            };
            next = sum;
        }
        if next == w {
            return Ok(Some(w));
        }
        debug_assert!(next > w);
        w = next;
    }
    Ok(None)
}

/// Largest absolute deadline strictly below `t`, or `None` if none exists.
fn max_deadline_below(tasks: &TaskSet, t: u128) -> Option<u128> {
    let mut best: Option<u128> = None;
    for task in tasks {
        let d = task.deadline() as u128;
        if d >= t {
            continue; // even the first deadline is too late
        }
        // Largest k with d + k·p < t.
        let k = (t - 1 - d) / task.period() as u128;
        let cand = d + k * task.period() as u128;
        best = Some(best.map_or(cand, |b| b.max(cand)));
    }
    best
}

/// Demand `h(t)` over a window of length `t` (u128 domain wrapper around
/// [`total_dbf`]). `None` when `t` exceeds the `u64` DBF domain — the
/// caller must surface [`ModelError::Overflow`] rather than quietly test a
/// truncated time bound.
fn h(tasks: &TaskSet, t: u128) -> Option<u128> {
    Some(total_dbf(tasks, u64::try_from(t).ok()?))
}

/// Exact EDF schedulability on a *unit-speed* machine via QPA. Assumes
/// `d_i ≤ p_i` (debug-asserted) — the constrained-deadline model.
///
/// Conservative wrapper over [`qpa_schedulable_unit_checked`]: arithmetic
/// overflow classifies as *not schedulable*.
pub fn qpa_schedulable_unit(tasks: &TaskSet) -> bool {
    qpa_schedulable_unit_checked(tasks).unwrap_or(false)
}

/// [`qpa_schedulable_unit`] with overflow surfaced: when the busy period
/// lands outside the `u64` demand-bound domain the verdict would be taken
/// at the wrong time bound, so it is `Err(ModelError::Overflow)` instead.
pub fn qpa_schedulable_unit_checked(tasks: &TaskSet) -> Result<bool, ModelError> {
    qpa_unit_core(tasks, &mut Gas::unlimited()).expect("unlimited gas cannot exhaust")
}

/// The QPA walk itself, budgeted: one gas tick per demand probe.
fn qpa_unit_core(tasks: &TaskSet, gas: &mut Gas) -> Result<Result<bool, ModelError>, Exhaustion> {
    debug_assert!(tasks.iter().all(|t| t.deadline() <= t.period()));
    if tasks.is_empty() {
        return Ok(Ok(true));
    }
    match tasks.try_total_utilization_ratio() {
        Ok(u) if u > Ratio::ONE => return Ok(Ok(false)),
        Ok(_) => {}
        Err(e) => return Ok(Err(e)),
    }
    let Some(l) = busy_period_within(tasks, gas)? else {
        return Ok(Ok(false));
    };
    let d_min = tasks
        .iter()
        .map(|t| t.deadline() as u128)
        .min()
        .expect("non-empty");
    // Start at the largest deadline strictly inside the busy period.
    let Some(mut t) = max_deadline_below(tasks, l.max(1)) else {
        return Ok(Ok(true)); // no deadline inside the busy period ⇒ nothing to miss
    };
    loop {
        gas.tick_n(tasks.len() as u64)?;
        let Some(demand) = h(tasks, t) else {
            return Ok(Err(ModelError::Overflow("QPA demand bound")));
        };
        if demand > t {
            return Ok(Ok(false));
        }
        if demand <= d_min {
            return Ok(Ok(true));
        }
        t = if demand < t {
            demand
        } else {
            match max_deadline_below(tasks, t) {
                Some(next) => next,
                None => return Ok(Ok(true)),
            }
        };
    }
}

/// Exact EDF schedulability on a speed-`speed` machine via QPA, using the
/// exact integer rescaling described in the module docs.
///
/// ```
/// use hetfeas_analysis::qpa_schedulable;
/// use hetfeas_model::{Ratio, Task, TaskSet};
///
/// let tight = Task::constrained(2, 10, 2).unwrap(); // all work due in 2 ticks
/// let set = TaskSet::new(vec![tight, tight]);
/// assert!(!qpa_schedulable(&set, Ratio::ONE));      // demand 4 at t = 2
/// assert!(qpa_schedulable(&set, Ratio::from_integer(2)));
/// ```
pub fn qpa_schedulable(tasks: &TaskSet, speed: Ratio) -> bool {
    qpa_schedulable_checked(tasks, speed).unwrap_or(false)
}

/// [`qpa_schedulable`] with overflow surfaced as
/// `Err(ModelError::Overflow)` instead of a silent conservative `false` —
/// callers that degrade (rather than reject) on overflow need the
/// distinction.
pub fn qpa_schedulable_checked(tasks: &TaskSet, speed: Ratio) -> Result<bool, ModelError> {
    qpa_checked_within(tasks, speed, &mut Gas::unlimited()).expect("unlimited gas cannot exhaust")
}

/// [`qpa_schedulable`] under an execution budget: conservative `false` on
/// arithmetic overflow, `Err(Exhaustion)` when the budget runs out first.
pub fn qpa_schedulable_within(
    tasks: &TaskSet,
    speed: Ratio,
    gas: &mut Gas,
) -> Result<bool, Exhaustion> {
    Ok(qpa_checked_within(tasks, speed, gas)?.unwrap_or(false))
}

/// Full-fidelity budgeted QPA: the outer `Err` is budget exhaustion, the
/// inner `Err` is arithmetic overflow (wrong-domain time bound).
pub fn qpa_checked_within(
    tasks: &TaskSet,
    speed: Ratio,
    gas: &mut Gas,
) -> Result<Result<bool, ModelError>, Exhaustion> {
    if speed <= Ratio::ZERO {
        return Ok(Ok(false));
    }
    if tasks.is_empty() {
        return Ok(Ok(true));
    }
    let num = speed.numer() as u64;
    let den = speed.denom() as u64;
    let scaled: Option<TaskSet> = tasks
        .iter()
        .map(|t| {
            let c = t.wcet().checked_mul(den)?;
            let p = t.period().checked_mul(num)?;
            let d = t.deadline().checked_mul(num)?;
            Task::constrained(c, p, d).ok()
        })
        .collect::<Option<Vec<_>>>()
        .map(TaskSet::new);
    match scaled {
        Some(s) => qpa_unit_core(&s, gas),
        None => Ok(Err(ModelError::Overflow("QPA speed rescaling"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dbf::edf_demand_schedulable;
    use hetfeas_model::Task;

    fn ct(c: u64, p: u64, d: u64) -> Task {
        Task::constrained(c, p, d).unwrap()
    }

    #[test]
    fn busy_period_examples() {
        // Single task: busy period = c.
        let ts = TaskSet::from_pairs([(3, 10)]).unwrap();
        assert_eq!(busy_period(&ts), Some(3));
        // Two tasks c=2,p=4 and c=2,p=6: w0=4, w1=ceil(4/4)*2+ceil(4/6)*2=4 ✓.
        let ts = TaskSet::from_pairs([(2, 4), (2, 6)]).unwrap();
        assert_eq!(busy_period(&ts), Some(4));
        // Full utilization: busy period reaches the hyperperiod.
        let ts = TaskSet::from_pairs([(1, 2), (1, 2)]).unwrap();
        assert_eq!(busy_period(&ts), Some(2));
        // Overload diverges.
        let ts = TaskSet::from_pairs([(3, 2)]).unwrap();
        assert_eq!(busy_period(&ts), None);
        assert_eq!(busy_period(&TaskSet::empty()), Some(0));
    }

    #[test]
    fn max_deadline_below_walks_the_grid() {
        let ts = TaskSet::new(vec![ct(1, 4, 3), ct(1, 6, 6)]);
        // Absolute deadlines: 3,7,11,… and 6,12,18,…
        assert_eq!(max_deadline_below(&ts, 100), Some(99)); // 3+24·4 = 99
        assert_eq!(max_deadline_below(&ts, 7), Some(6));
        assert_eq!(max_deadline_below(&ts, 6), Some(3));
        assert_eq!(max_deadline_below(&ts, 3), None);
    }

    #[test]
    fn agrees_with_naive_pdc_on_fixed_cases() {
        let cases: Vec<Vec<Task>> = vec![
            vec![ct(2, 10, 6), ct(3, 15, 10), ct(4, 30, 30)],
            vec![ct(2, 10, 2), ct(2, 10, 2)],
            vec![ct(1, 2, 2), ct(1, 4, 3)],
            vec![ct(5, 20, 9), ct(5, 20, 10), ct(5, 20, 11)],
            vec![ct(1, 3, 3), ct(1, 4, 4), ct(2, 12, 8)],
        ];
        for tasks in cases {
            let ts = TaskSet::new(tasks);
            let h = ts.hyperperiod().unwrap() as u64 * 2;
            let naive = edf_demand_schedulable(&ts, Ratio::ONE, h);
            let qpa = qpa_schedulable_unit(&ts);
            assert_eq!(naive, qpa, "disagree on {ts}");
        }
    }

    #[test]
    fn speed_scaling_exact() {
        // c=1, p=d=2 needs exactly speed 1/2.
        let ts = TaskSet::new(vec![ct(1, 2, 2)]);
        assert!(qpa_schedulable(&ts, Ratio::new(1, 2)));
        assert!(!qpa_schedulable(&ts, Ratio::new(49, 100)));
        assert!(!qpa_schedulable(&ts, Ratio::ZERO));
    }

    #[test]
    fn implicit_deadline_reduces_to_utilization() {
        let ts = TaskSet::from_pairs([(1, 3), (1, 6), (1, 2)]).unwrap(); // util 1.0
        assert!(qpa_schedulable_unit(&ts));
        let ts2 = TaskSet::from_pairs([(1, 3), (1, 6), (1, 2), (1, 1000)]).unwrap();
        assert!(!qpa_schedulable_unit(&ts2));
    }

    #[test]
    fn tight_constrained_set() {
        // Demand exactly meets supply at the critical deadline.
        let ts = TaskSet::new(vec![ct(2, 8, 2), ct(6, 8, 8)]);
        // h(2) = 2 ≤ 2; h(8) = 8 ≤ 8 → schedulable.
        assert!(qpa_schedulable_unit(&ts));
        // Tighten the second deadline: h(7) = 8 > 7 → miss.
        let ts = TaskSet::new(vec![ct(2, 8, 2), ct(6, 8, 7)]);
        assert!(!qpa_schedulable_unit(&ts));
    }

    #[test]
    fn empty_set() {
        assert!(qpa_schedulable_unit(&TaskSet::empty()));
        assert!(qpa_schedulable(&TaskSet::empty(), Ratio::new(1, 7)));
    }

    #[test]
    fn checked_variant_surfaces_rescaling_overflow() {
        // Rescaling by 1/3 multiplies wcet by 3: overflows u64.
        let ts = TaskSet::from_pairs([(u64::MAX - 1, u64::MAX)]).unwrap();
        assert_eq!(
            qpa_schedulable_checked(&ts, Ratio::new(1, 3)),
            Err(hetfeas_model::ModelError::Overflow("QPA speed rescaling"))
        );
        // The bool wrapper stays conservative.
        assert!(!qpa_schedulable(&ts, Ratio::new(1, 3)));
    }

    #[test]
    fn checked_variant_surfaces_utilization_overflow() {
        let ts =
            TaskSet::from_pairs((0..4u64).map(|i| (u64::MAX - 2 - 2 * i, u64::MAX - 1 - 2 * i)))
                .unwrap();
        assert!(matches!(
            qpa_schedulable_unit_checked(&ts),
            Err(hetfeas_model::ModelError::Overflow(_))
        ));
        assert!(!qpa_schedulable_unit(&ts));
    }

    #[test]
    fn checked_agrees_with_bool_api_on_ordinary_sets() {
        let cases = [
            vec![ct(2, 10, 6), ct(3, 15, 10), ct(4, 30, 30)],
            vec![ct(2, 10, 2), ct(2, 10, 2)],
            vec![ct(5, 20, 9), ct(5, 20, 10), ct(5, 20, 11)],
        ];
        for tasks in cases {
            let ts = TaskSet::new(tasks);
            assert_eq!(
                qpa_schedulable_unit_checked(&ts),
                Ok(qpa_schedulable_unit(&ts))
            );
            for speed in [Ratio::ONE, Ratio::new(1, 2), Ratio::from_integer(3)] {
                assert_eq!(
                    qpa_schedulable_checked(&ts, speed),
                    Ok(qpa_schedulable(&ts, speed))
                );
            }
        }
    }

    #[test]
    fn budgeted_qpa_exhausts_and_agrees() {
        use hetfeas_robust::Budget;
        let ts = TaskSet::new(vec![ct(2, 8, 2), ct(6, 8, 8)]);
        // Generous budget: same verdict as the unbudgeted API.
        let mut gas = Budget::ops(1_000_000).gas();
        assert_eq!(qpa_schedulable_within(&ts, Ratio::ONE, &mut gas), Ok(true));
        // Starved budget: exhaustion, not a wrong answer.
        let mut gas = Budget::ops(1).gas();
        assert_eq!(
            qpa_schedulable_within(&ts, Ratio::ONE, &mut gas),
            Err(Exhaustion::Ops)
        );
    }

    #[test]
    fn budgeted_busy_period_matches() {
        use hetfeas_robust::Budget;
        let ts = TaskSet::from_pairs([(2, 4), (2, 6)]).unwrap();
        let mut gas = Budget::ops(10_000).gas();
        assert_eq!(busy_period_within(&ts, &mut gas), Ok(Some(4)));
        let mut gas = Budget::ops(1).gas();
        assert_eq!(busy_period_within(&ts, &mut gas), Err(Exhaustion::Ops));
    }
}
