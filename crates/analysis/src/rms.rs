//! Rate-monotonic schedulability on a single related machine: the
//! Liu–Layland sufficient test the paper's algorithm uses (Theorem II.3),
//! plus the sharper hyperbolic bound (Bini & Buttazzo) as an extension.

use crate::bounds::liu_layland_bound;
use hetfeas_model::{approx_le, TaskSet};

/// Liu–Layland sufficient RMS test on a speed-`s` machine:
/// `Σ w_i ≤ n(2^{1/n} − 1)·s` where `n = |S|`.
pub fn rms_schedulable_ll(tasks: &TaskSet, speed: f64) -> bool {
    rms_schedulable_ll_load(tasks.total_utilization(), tasks.len(), speed)
}

/// Liu–Layland test given a pre-computed load and task count. This is the
/// exact admission predicate of the paper's §III first-fit for RMS:
/// admitting `τ` onto a machine with `k` tasks and load `L` requires
/// `L + w ≤ (k+1)(2^{1/(k+1)} − 1)·α·s`; callers pass the post-admission
/// count and load.
#[inline]
pub fn rms_schedulable_ll_load(total_utilization: f64, n_tasks: usize, speed: f64) -> bool {
    approx_le(total_utilization, liu_layland_bound(n_tasks) * speed)
}

/// Hyperbolic-bound sufficient RMS test (Bini & Buttazzo 2003):
/// `Π (w_i/s + 1) ≤ 2`. Strictly dominates Liu–Layland; provided as the
/// "tighter admission" ablation of experiment E9.
pub fn rms_schedulable_hyperbolic(tasks: &TaskSet, speed: f64) -> bool {
    let product: f64 = tasks
        .iter()
        .map(|t| t.utilization() / speed + 1.0)
        .product();
    approx_le(product, 2.0)
}

/// Incremental form of the hyperbolic test: the partitioner maintains the
/// running product `Π (w_i/s + 1)` per machine and admits while it stays
/// at most 2.
#[inline]
pub fn rms_hyperbolic_product_ok(product: f64) -> bool {
    approx_le(product, 2.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetfeas_model::TaskSet;

    #[test]
    fn single_task_up_to_full_speed() {
        let ts = TaskSet::from_pairs([(1, 1)]).unwrap(); // util 1.0
                                                         // n=1 → bound = 1.0: a single task may use the whole machine.
        assert!(rms_schedulable_ll(&ts, 1.0));
        assert!(rms_schedulable_hyperbolic(&ts, 1.0));
        assert!(!rms_schedulable_ll(&ts, 0.9));
    }

    #[test]
    fn two_tasks_ll_threshold() {
        // Bound for n=2 is 2(√2−1) ≈ 0.8284.
        let ts = TaskSet::from_pairs([(41, 100), (41, 100)]).unwrap(); // util 0.82
        assert!(rms_schedulable_ll(&ts, 1.0));
        let ts = TaskSet::from_pairs([(42, 100), (42, 100)]).unwrap(); // util 0.84
        assert!(!rms_schedulable_ll(&ts, 1.0));
    }

    #[test]
    fn hyperbolic_dominates_ll() {
        // Classic example: utils 0.5 and 0.4 fail LL (0.9 > 0.8284) but
        // pass hyperbolic (1.5·1.4 = 2.1 > 2 — actually fails too); pick
        // 0.5 & 0.33: 1.5·1.33 = 1.995 ≤ 2, LL: 0.83 > 0.8284 fails.
        let ts = TaskSet::from_pairs([(1, 2), (33, 100)]).unwrap();
        assert!(!rms_schedulable_ll(&ts, 1.0));
        assert!(rms_schedulable_hyperbolic(&ts, 1.0));
    }

    #[test]
    fn scales_with_speed() {
        let ts = TaskSet::from_pairs([(1, 2), (1, 2), (1, 2)]).unwrap(); // util 1.5
                                                                         // n=3 bound ≈ 0.7798 → needs speed ≥ 1.5/0.7798 ≈ 1.924.
        assert!(!rms_schedulable_ll(&ts, 1.9));
        assert!(rms_schedulable_ll(&ts, 1.93));
        assert!(rms_schedulable_hyperbolic(&ts, 2.0)); // (1.25)^3 ≈ 1.95 ≤ 2
    }

    #[test]
    fn empty_set_schedulable() {
        assert!(rms_schedulable_ll(&TaskSet::empty(), 0.1));
        assert!(rms_schedulable_hyperbolic(&TaskSet::empty(), 0.1));
    }

    #[test]
    fn load_form_matches_set_form() {
        let ts = TaskSet::from_pairs([(1, 4), (1, 5), (1, 6)]).unwrap();
        for s in [0.5, 0.7, 0.78, 1.0] {
            assert_eq!(
                rms_schedulable_ll(&ts, s),
                rms_schedulable_ll_load(ts.total_utilization(), ts.len(), s)
            );
        }
    }
}
