//! Exact response-time analysis (RTA) for preemptive fixed-priority
//! scheduling on a related machine.
//!
//! RTA (Joseph & Pandya / Audsley et al.) is *exact* for constrained- and
//! implicit-deadline sporadic tasks under the critical-instant assumption:
//! task `τ_i` is schedulable iff the least fixed point of
//!
//! ```text
//! R_i = C_i + Σ_{j ∈ hp(i)} ⌈R_i / p_j⌉ · C_j
//! ```
//!
//! satisfies `R_i ≤ d_i`, where `C_i = c_i / s` is the execution time on a
//! speed-`s` machine.
//!
//! To keep everything exact with a rational speed `s = num/den`, we iterate
//! on the *scaled* response time `R' = R · num` (an integer):
//!
//! ```text
//! R'_i = c_i·den + Σ_{j ∈ hp(i)} ⌈R'_i / (p_j · num)⌉ · c_j·den
//! ```
//!
//! and check `R'_i ≤ d_i · num`. No floating point is involved, so RTA can
//! serve as ground truth for the Liu–Layland admission test (experiment E9)
//! and be cross-validated against the simulator.

use hetfeas_model::time::div_ceil_u128;
use hetfeas_model::{Ratio, TaskSet};
use hetfeas_robust::{Exhaustion, Gas};

/// Rate-monotonic priority order: indices sorted by increasing period
/// (higher priority first), ties broken by original index. This matches the
/// paper's RMS ("priority of a task is the inverse of its period").
pub fn rm_priority_order(tasks: &TaskSet) -> Vec<usize> {
    let mut idx: Vec<usize> = (0..tasks.len()).collect();
    idx.sort_by(|&a, &b| tasks[a].period().cmp(&tasks[b].period()).then(a.cmp(&b)));
    idx
}

/// Deadline-monotonic priority order (for the constrained-deadline
/// extension): indices by increasing relative deadline.
pub fn dm_priority_order(tasks: &TaskSet) -> Vec<usize> {
    let mut idx: Vec<usize> = (0..tasks.len()).collect();
    idx.sort_by(|&a, &b| {
        tasks[a]
            .deadline()
            .cmp(&tasks[b].deadline())
            .then(a.cmp(&b))
    });
    idx
}

/// Exact response times of every task under the given priority order
/// (`priority[0]` is the highest-priority task) on a machine of rational
/// speed `speed`.
///
/// Returns, per task (indexed as in `tasks`), `Some(R)` with the exact
/// rational response time if the task meets its deadline, or `None` if the
/// recurrence exceeds the deadline (or an intermediate overflows `u128`,
/// which is treated conservatively as a miss).
///
/// Exactness requires `deadline ≤ period` for every task (critical-instant
/// RTA); this is asserted in debug builds.
pub fn rta_response_times(tasks: &TaskSet, priority: &[usize], speed: Ratio) -> Vec<Option<Ratio>> {
    rta_response_times_within(tasks, priority, speed, &mut Gas::unlimited())
        .expect("unlimited gas cannot exhaust")
}

/// [`rta_response_times`] under an execution budget.
///
/// The fixed-point recurrence is bounded only by `R ≤ d_i` — with
/// near-`u64::MAX` deadlines that is ~2⁶⁴ iterations, a *de facto* hang.
/// Each iteration ticks `gas` once per interfering task, so a runaway
/// recurrence stops with `Err(Exhaustion)` instead.
pub fn rta_response_times_within(
    tasks: &TaskSet,
    priority: &[usize],
    speed: Ratio,
    gas: &mut Gas,
) -> Result<Vec<Option<Ratio>>, Exhaustion> {
    debug_assert!(speed > Ratio::ZERO);
    debug_assert!(
        tasks.iter().all(|t| t.deadline() <= t.period()),
        "RTA is exact only for constrained/implicit deadlines"
    );
    let num = speed.numer() as u128;
    let den = speed.denom() as u128;
    let mut out = vec![None; tasks.len()];

    for (rank, &i) in priority.iter().enumerate() {
        let t = &tasks[i];
        let budget = (t.deadline() as u128).checked_mul(num);
        let Some(budget) = budget else { continue };
        // Scaled execution times of this task and all higher-priority tasks.
        let Some(ci) = (t.wcet() as u128).checked_mul(den) else {
            continue;
        };
        let hp: Vec<(u128, u128)> = priority[..rank]
            .iter()
            .map(|&j| {
                let tj = &tasks[j];
                (
                    (tj.period() as u128).saturating_mul(num),
                    (tj.wcet() as u128).saturating_mul(den),
                )
            })
            .collect();

        let mut r = ci;
        let converged = loop {
            gas.tick_n(hp.len() as u64 + 1)?;
            if r > budget {
                break None;
            }
            let mut next = ci;
            let mut overflow = false;
            for &(pj, cj) in &hp {
                match div_ceil_u128(r, pj)
                    .checked_mul(cj)
                    .and_then(|x| next.checked_add(x))
                {
                    Some(v) => next = v,
                    None => {
                        overflow = true;
                        break;
                    }
                }
            }
            if overflow {
                break None;
            }
            if next == r {
                break Some(r);
            }
            debug_assert!(next > r, "RTA iteration must be monotone");
            r = next;
        };
        out[i] = converged.and_then(|r| {
            if r <= budget {
                // R = r / num ticks.
                Some(Ratio::new(r as i128, num as i128))
            } else {
                None
            }
        });
    }
    Ok(out)
}

/// Exact fixed-priority schedulability under rate-monotonic priorities on a
/// speed-`speed` machine: every task's response time meets its deadline.
pub fn rta_schedulable(tasks: &TaskSet, speed: Ratio) -> bool {
    let order = rm_priority_order(tasks);
    rta_response_times(tasks, &order, speed)
        .iter()
        .all(Option::is_some)
}

/// [`rta_schedulable`] under an execution budget.
pub fn rta_schedulable_within(
    tasks: &TaskSet,
    speed: Ratio,
    gas: &mut Gas,
) -> Result<bool, Exhaustion> {
    let order = rm_priority_order(tasks);
    Ok(rta_response_times_within(tasks, &order, speed, gas)?
        .iter()
        .all(Option::is_some))
}

/// Convenience wrapper taking an `f64` speed (rationalized with denominator
/// ≤ 10⁶; exact for the platform speeds used throughout the workspace).
pub fn rta_schedulable_f64(tasks: &TaskSet, speed: f64) -> bool {
    match Ratio::approximate_f64(speed, 1_000_000) {
        Some(r) if r > Ratio::ZERO => rta_schedulable(tasks, r),
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rms::rms_schedulable_ll;
    use hetfeas_model::TaskSet;

    #[test]
    fn priority_orders() {
        let ts = TaskSet::from_pairs([(1, 10), (1, 5), (1, 10)]).unwrap();
        assert_eq!(rm_priority_order(&ts), vec![1, 0, 2]);
        let mut ts2 = TaskSet::empty();
        ts2.push(hetfeas_model::Task::constrained(1, 10, 4).unwrap());
        ts2.push(hetfeas_model::Task::constrained(1, 5, 5).unwrap());
        assert_eq!(dm_priority_order(&ts2), vec![0, 1]);
    }

    #[test]
    fn textbook_example_unit_speed() {
        // Classic: (c=1,p=4), (c=2,p=6), (c=3,p=13).
        // R1 = 1; R2 = 2 + ceil(R2/4)·1 → 3; R3 = 3 + ceil(R/4) + 2·ceil(R/6):
        // r0=3→3+1+2=6; r=6→3+2+2=7; r=7→3+2+4=9; r=9→3+3+4=10; r=10→3+3+4=10 ✓
        let ts = TaskSet::from_pairs([(1, 4), (2, 6), (3, 13)]).unwrap();
        let order = rm_priority_order(&ts);
        let r = rta_response_times(&ts, &order, Ratio::ONE);
        assert_eq!(r[0], Some(Ratio::from_integer(1)));
        assert_eq!(r[1], Some(Ratio::from_integer(3)));
        assert_eq!(r[2], Some(Ratio::from_integer(10)));
        assert!(rta_schedulable(&ts, Ratio::ONE));
    }

    #[test]
    fn detects_miss() {
        // Two half-utilization tasks plus one more task cannot fit at speed 1.
        let ts = TaskSet::from_pairs([(2, 4), (2, 4), (1, 8)]).unwrap();
        assert!(!rta_schedulable(&ts, Ratio::ONE));
        // But a speed-2 machine schedules them easily.
        assert!(rta_schedulable(&ts, Ratio::from_integer(2)));
    }

    #[test]
    fn fractional_speed_exactness() {
        // One task: c=3, p=4, on speed 3/4: exec time = 4 ticks = period.
        let ts = TaskSet::from_pairs([(3, 4)]).unwrap();
        assert!(rta_schedulable(&ts, Ratio::new(3, 4)));
        // Any slower and it misses.
        assert!(!rta_schedulable(&ts, Ratio::new(74, 100)));
    }

    #[test]
    fn ll_acceptance_implies_rta_acceptance() {
        // Liu–Layland is sufficient: whenever it accepts, exact RTA accepts.
        let sets = [
            vec![(1u64, 4u64), (1, 5), (1, 7)],
            vec![(2, 10), (3, 15), (4, 30)],
            vec![(1, 3), (1, 5)],
            vec![(5, 20), (7, 35), (2, 10), (1, 100)],
        ];
        for pairs in sets {
            let ts = TaskSet::from_pairs(pairs).unwrap();
            for s in [1.0, 1.5, 2.0] {
                if rms_schedulable_ll(&ts, s) {
                    assert!(
                        rta_schedulable_f64(&ts, s),
                        "LL accepted but RTA rejected at speed {s}: {ts}"
                    );
                }
            }
        }
    }

    #[test]
    fn rta_accepts_full_utilization_harmonic() {
        // Harmonic periods reach utilization 1 under RM — LL rejects, RTA accepts.
        let ts = TaskSet::from_pairs([(1, 2), (1, 4), (2, 8)]).unwrap(); // util = 1.0
        assert!(!rms_schedulable_ll(&ts, 1.0));
        assert!(rta_schedulable(&ts, Ratio::ONE));
    }

    #[test]
    fn empty_set() {
        assert!(rta_schedulable(&TaskSet::empty(), Ratio::ONE));
    }

    #[test]
    fn budgeted_rta_agrees_when_budget_suffices() {
        use hetfeas_robust::Budget;
        let ts = TaskSet::from_pairs([(1, 4), (2, 6), (3, 13)]).unwrap();
        let mut gas = Budget::ops(100_000).gas();
        assert_eq!(rta_schedulable_within(&ts, Ratio::ONE, &mut gas), Ok(true));
    }

    #[test]
    fn budgeted_rta_stops_runaway_recurrence() {
        use hetfeas_robust::{Budget, Exhaustion};
        // Saturating high-priority task (util 1) plus a huge-deadline task:
        // the recurrence climbs by 1 per iteration toward a ~2⁶² budget —
        // a de-facto hang without gas.
        let mut ts = TaskSet::empty();
        ts.push(hetfeas_model::Task::implicit(1, 1).unwrap());
        ts.push(hetfeas_model::Task::implicit(1, 1 << 62).unwrap());
        let mut gas = Budget::ops(100_000).gas();
        assert_eq!(
            rta_schedulable_within(&ts, Ratio::ONE, &mut gas),
            Err(Exhaustion::Ops)
        );
    }

    #[test]
    fn constrained_deadline_checked_against_deadline() {
        let mut ts = TaskSet::empty();
        ts.push(hetfeas_model::Task::constrained(2, 10, 2).unwrap());
        ts.push(hetfeas_model::Task::constrained(2, 10, 10).unwrap());
        // Under RM both have period 10; tie broken by index so task 0 is
        // higher priority: R0 = 2 ≤ 2 OK, R1 = 4 ≤ 10 OK.
        assert!(rta_schedulable(&ts, Ratio::ONE));
        // Swap: give the tight-deadline task lower priority → R = 4 > 2.
        let order = vec![1usize, 0];
        let r = rta_response_times(&ts, &order, Ratio::ONE);
        assert_eq!(r[0], None);
        assert_eq!(r[1], Some(Ratio::from_integer(2)));
    }
}
