//! Harmonic-chain analysis (Kuo & Mok 1991) — a sharper RMS utilization
//! bound exploiting period structure (extension).
//!
//! Partition the task periods into *harmonic chains*: groups in which
//! every pair of periods divides one another. With `k` chains, RMS is
//! schedulable on a speed-`s` machine whenever `Σ w_i ≤ k(2^{1/k} − 1)·s`
//! — the Liu–Layland bound with the chain count in place of the task
//! count. Fully harmonic sets (k = 1) reach the full machine, which is
//! why the avionics example and the E2 harmonic cells behave so
//! differently from random-period workloads.

use crate::bounds::liu_layland_bound;
use hetfeas_model::{approx_le, TaskSet};

/// Partition the set's periods into harmonic chains greedily: sorted
/// distinct periods attach to the chain whose current largest element
/// divides them, preferring the largest such head. This is a heuristic —
/// any valid harmonic partition keeps the Kuo–Mok bound *sound* (fewer
/// chains merely sharpen it), so a rare suboptimal split only costs
/// acceptance, never correctness.
///
/// Returns the number of chains (0 for an empty set).
pub fn harmonic_chain_count(tasks: &TaskSet) -> usize {
    let mut periods: Vec<u64> = tasks.iter().map(|t| t.period()).collect();
    periods.sort_unstable();
    periods.dedup();
    // Greedy: chains identified by their current largest period.
    let mut chain_heads: Vec<u64> = Vec::new();
    for p in periods {
        // Attach to the chain whose head divides p, preferring the
        // *largest* such head (tightest fit leaves small heads available
        // for other values).
        let mut best: Option<usize> = None;
        for (i, &head) in chain_heads.iter().enumerate() {
            if p % head == 0 && best.is_none_or(|b| head > chain_heads[b]) {
                best = Some(i);
            }
        }
        match best {
            Some(i) => chain_heads[i] = p,
            None => chain_heads.push(p),
        }
    }
    chain_heads.len()
}

/// Kuo–Mok sufficient RMS test: `Σ w_i ≤ k(2^{1/k} − 1)·s` with `k` the
/// harmonic chain count. Dominates Liu–Layland (k ≤ n always).
pub fn rms_schedulable_kuo_mok(tasks: &TaskSet, speed: f64) -> bool {
    let k = harmonic_chain_count(tasks);
    approx_le(tasks.total_utilization(), liu_layland_bound(k) * speed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rms::rms_schedulable_ll;
    use crate::rta::rta_schedulable;
    use hetfeas_model::{Ratio, TaskSet};

    #[test]
    fn chain_counting() {
        // Fully harmonic: 10 | 20 | 40 → one chain.
        let ts = TaskSet::from_pairs([(1, 10), (1, 20), (1, 40)]).unwrap();
        assert_eq!(harmonic_chain_count(&ts), 1);
        // 10, 15: neither divides the other → two chains.
        let ts = TaskSet::from_pairs([(1, 10), (1, 15)]).unwrap();
        assert_eq!(harmonic_chain_count(&ts), 2);
        // {10, 20} and {15, 30}: 10|20, 15|30, but 20∤30 → two chains.
        let ts = TaskSet::from_pairs([(1, 10), (1, 20), (1, 15), (1, 30)]).unwrap();
        assert_eq!(harmonic_chain_count(&ts), 2);
        // Duplicated periods collapse.
        let ts = TaskSet::from_pairs([(1, 10), (2, 10), (3, 10)]).unwrap();
        assert_eq!(harmonic_chain_count(&ts), 1);
        assert_eq!(harmonic_chain_count(&TaskSet::empty()), 0);
    }

    #[test]
    fn greedy_prefers_tight_head() {
        // Periods 2, 4, 8, 6: chains {2,4,8} and {6}; a naive greedy that
        // attaches 6 to head 2 would then leave... sorted: 2,4,6,8.
        // 2 → new; 4 → head 2 → {2,4}; 6 → divisible by 2? head is now 4,
        // 6 % 4 ≠ 0 → new chain {6}; 8 → head 4 divides → {2,4,8}. k = 2.
        let ts = TaskSet::from_pairs([(1, 2), (1, 4), (1, 8), (1, 6)]).unwrap();
        assert_eq!(harmonic_chain_count(&ts), 2);
    }

    #[test]
    fn harmonic_set_reaches_full_utilization() {
        // k = 1 → bound = 1.0: utilization 1.0 accepted.
        let ts = TaskSet::from_pairs([(1, 2), (1, 4), (2, 8)]).unwrap();
        assert!(!rms_schedulable_ll(&ts, 1.0), "LL rejects at n = 3");
        assert!(rms_schedulable_kuo_mok(&ts, 1.0), "Kuo–Mok accepts, k = 1");
        assert!(rta_schedulable(&ts, Ratio::ONE), "and RTA agrees");
    }

    #[test]
    fn kuo_mok_dominates_ll_on_samples() {
        let sets = [
            vec![(1u64, 4u64), (1, 5), (1, 7)],
            vec![(2, 10), (3, 15), (4, 30)],
            vec![(1, 2), (1, 4), (1, 8), (1, 3)],
            vec![(5, 20), (7, 35), (2, 10)],
        ];
        for pairs in sets {
            let ts = TaskSet::from_pairs(pairs).unwrap();
            for s in [0.8, 1.0, 1.3] {
                if rms_schedulable_ll(&ts, s) {
                    assert!(rms_schedulable_kuo_mok(&ts, s), "KM must dominate LL: {ts}");
                }
                if rms_schedulable_kuo_mok(&ts, s) {
                    assert!(
                        crate::rta::rta_schedulable_f64(&ts, s),
                        "RTA must dominate KM: {ts} at {s}"
                    );
                }
            }
        }
    }
}
