//! Demand-bound functions and the processor-demand criterion (extension).
//!
//! The paper treats implicit deadlines only; this module implements the
//! standard generalization to constrained deadlines (Baruah–Mok–Rosier):
//! EDF feasibly schedules a sporadic set on a speed-`s` machine iff
//! `Σ_i dbf_i(t) ≤ s·t` for all `t > 0`, where
//!
//! ```text
//! dbf_i(t) = max(0, ⌊(t − d_i)/p_i⌋ + 1) · c_i
//! ```
//!
//! It suffices to check `t` at absolute deadlines up to a horizon (we use
//! the hyperperiod, which is always sufficient when total utilization does
//! not exceed the speed). All arithmetic is exact integer math against the
//! rational speed.

use hetfeas_model::{Ratio, Task, TaskSet};
use hetfeas_robust::{Exhaustion, Gas};

/// Demand bound of a single task over an interval of length `t`.
pub fn dbf(task: &Task, t: u64) -> u128 {
    if t < task.deadline() {
        return 0;
    }
    let k = (t - task.deadline()) as u128 / task.period() as u128 + 1;
    k * task.wcet() as u128
}

/// Total demand bound of a set over an interval of length `t`.
pub fn total_dbf(tasks: &TaskSet, t: u64) -> u128 {
    tasks.iter().map(|task| dbf(task, t)).sum()
}

/// All testing points (absolute deadlines `k·p_i + d_i`) in `(0, horizon]`,
/// deduplicated and sorted.
pub fn testing_points(tasks: &TaskSet, horizon: u64) -> Vec<u64> {
    let mut pts = Vec::new();
    for t in tasks {
        let mut point = t.deadline();
        while point <= horizon {
            pts.push(point);
            match point.checked_add(t.period()) {
                Some(p) => point = p,
                None => break,
            }
        }
    }
    pts.sort_unstable();
    pts.dedup();
    pts
}

/// Processor-demand criterion for EDF on a speed-`speed` machine, checked at
/// every testing point up to `horizon`:
/// `dbf(t)·den ≤ num·t` for `speed = num/den` — exact integer comparison.
///
/// With `horizon` at least the hyperperiod and total utilization at most
/// `speed`, this is necessary and sufficient.
pub fn edf_demand_schedulable(tasks: &TaskSet, speed: Ratio, horizon: u64) -> bool {
    edf_demand_schedulable_within(tasks, speed, horizon, &mut Gas::unlimited())
        .expect("unlimited gas cannot exhaust")
}

/// [`edf_demand_schedulable`] under an execution budget. The testing
/// points are generated lazily (next-deadline merge over the tasks) so an
/// absurd horizon costs neither memory nor unmetered time: each point
/// checked ticks `gas` once per task.
pub fn edf_demand_schedulable_within(
    tasks: &TaskSet,
    speed: Ratio,
    horizon: u64,
    gas: &mut Gas,
) -> Result<bool, Exhaustion> {
    debug_assert!(speed > Ratio::ZERO);
    let num = speed.numer() as u128;
    let den = speed.denom() as u128;
    // Quick necessary condition: long-run demand rate is total utilization.
    match tasks.try_total_utilization_ratio() {
        Ok(u) if u <= speed => {}
        // Overloaded, or overflow (cannot certify the horizon suffices).
        _ => return Ok(false),
    }
    // Lazy merge of the per-task deadline grids `d_i + k·p_i`; a grid whose
    // next point overflows u64 drops out (`None`).
    let mut next: Vec<Option<u64>> = tasks.iter().map(|t| Some(t.deadline())).collect();
    loop {
        let Some(t) = next
            .iter()
            .flatten()
            .copied()
            .filter(|&p| p <= horizon)
            .min()
        else {
            return Ok(true); // no testing point left inside the horizon
        };
        gas.tick_n(tasks.len() as u64)?;
        let demand = total_dbf(tasks, t);
        match demand.checked_mul(den) {
            Some(lhs) => {
                if lhs > num * t as u128 {
                    return Ok(false);
                }
            }
            None => return Ok(false), // conservative on overflow
        }
        // Advance every grid sitting at t.
        for (slot, task) in next.iter_mut().zip(tasks.iter()) {
            if *slot == Some(t) {
                *slot = t.checked_add(task.period());
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetfeas_model::Task;

    fn ct(c: u64, p: u64, d: u64) -> Task {
        Task::constrained(c, p, d).unwrap()
    }

    #[test]
    fn dbf_staircase() {
        let t = ct(2, 10, 6);
        assert_eq!(dbf(&t, 0), 0);
        assert_eq!(dbf(&t, 5), 0);
        assert_eq!(dbf(&t, 6), 2);
        assert_eq!(dbf(&t, 15), 2);
        assert_eq!(dbf(&t, 16), 4);
        assert_eq!(dbf(&t, 26), 6);
    }

    #[test]
    fn implicit_deadline_dbf_matches_floor() {
        let t = Task::implicit(3, 10).unwrap();
        // dbf(t) = floor(t/10)·3 for implicit deadlines.
        for x in 0..50 {
            assert_eq!(dbf(&t, x), (x as u128 / 10) * 3);
        }
    }

    #[test]
    fn testing_points_sorted_unique() {
        let ts = TaskSet::new(vec![ct(1, 4, 4), ct(1, 6, 3)]);
        assert_eq!(testing_points(&ts, 12), vec![3, 4, 8, 9, 12]);
    }

    #[test]
    fn implicit_sets_match_utilization_test() {
        // For implicit deadlines, PDC ⇔ util ≤ speed.
        let ts = TaskSet::from_pairs([(1, 3), (1, 6), (1, 2)]).unwrap(); // util 1.0
        let h = ts.hyperperiod().unwrap() as u64;
        assert!(edf_demand_schedulable(&ts, Ratio::ONE, h));
        assert!(!edf_demand_schedulable(&ts, Ratio::new(99, 100), h));
    }

    #[test]
    fn constrained_set_detects_overload() {
        // Two tasks whose deadlines squeeze demand: c=2,p=10,d=2 each →
        // at t=2 demand 4 > 2.
        let ts = TaskSet::new(vec![ct(2, 10, 2), ct(2, 10, 2)]);
        assert!(!edf_demand_schedulable(&ts, Ratio::ONE, 100));
        assert!(edf_demand_schedulable(&ts, Ratio::from_integer(2), 100));
    }

    #[test]
    fn fractional_speed_exact() {
        // c=1, p=d=2 needs exactly speed 1/2.
        let ts = TaskSet::new(vec![ct(1, 2, 2)]);
        assert!(edf_demand_schedulable(&ts, Ratio::new(1, 2), 20));
        assert!(!edf_demand_schedulable(&ts, Ratio::new(49, 100), 20));
    }

    #[test]
    fn empty_set_schedulable() {
        assert!(edf_demand_schedulable(
            &TaskSet::empty(),
            Ratio::new(1, 10),
            100
        ));
    }

    #[test]
    fn overflowing_utilization_is_conservative_not_fatal() {
        let ts =
            TaskSet::from_pairs((0..4u64).map(|i| (u64::MAX - 2 - 2 * i, u64::MAX - 1 - 2 * i)))
                .unwrap();
        // Ratio sum overflows i128; must classify false, not panic.
        assert!(!edf_demand_schedulable(&ts, Ratio::from_integer(1000), 100));
    }

    #[test]
    fn budgeted_pdc_exhausts_instead_of_scanning_forever() {
        use hetfeas_robust::{Budget, Exhaustion, Gas};
        // Dense grid: period 1 task yields ~horizon testing points; the
        // lazy scan must stop on gas, not materialize them.
        let ts = TaskSet::new(vec![ct(1, 2, 1), ct(1, 4, 4)]);
        let mut gas = Budget::ops(10).gas();
        assert_eq!(
            edf_demand_schedulable_within(&ts, Ratio::ONE, u64::MAX / 2, &mut gas),
            Err(Exhaustion::Ops)
        );
        // And agrees with the eager API when the budget suffices.
        let mut gas = Gas::unlimited();
        assert_eq!(
            edf_demand_schedulable_within(&ts, Ratio::ONE, 16, &mut gas),
            Ok(edf_demand_schedulable(&ts, Ratio::ONE, 16))
        );
    }
}
