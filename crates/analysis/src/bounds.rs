//! Classic utilization bounds (Liu & Layland 1973).

/// Natural logarithm of 2 — the limit of the Liu–Layland bound.
pub const LN2: f64 = core::f64::consts::LN_2;

/// The Liu–Layland RMS utilization bound for `n` tasks:
/// `n(2^{1/n} − 1)`, monotonically decreasing from 1 (n=1) towards `ln 2`.
///
/// For `n == 0` the bound is defined as 1.0 (an empty machine of speed `s`
/// can absorb a task of utilization up to `s`, which matches the paper's
/// admission test with `|S| = 0`).
#[inline]
pub fn liu_layland_bound(n: usize) -> f64 {
    if n == 0 {
        return 1.0;
    }
    let n = n as f64;
    n * ((2.0f64).powf(1.0 / n) - 1.0)
}

/// The Liu–Layland EDF bound — always 1, provided for symmetry / clarity in
/// call sites comparing the two admission policies.
#[inline]
pub const fn edf_bound() -> f64 {
    1.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ll_bound_known_values() {
        assert_eq!(liu_layland_bound(1), 1.0);
        assert!((liu_layland_bound(2) - 2.0 * (2.0f64.sqrt() - 1.0)).abs() < 1e-12);
        assert!((liu_layland_bound(3) - 3.0 * (2.0f64.powf(1.0 / 3.0) - 1.0)).abs() < 1e-12);
        assert_eq!(liu_layland_bound(0), 1.0);
    }

    #[test]
    fn ll_bound_decreases_towards_ln2() {
        let mut prev = liu_layland_bound(1);
        for n in 2..200 {
            let b = liu_layland_bound(n);
            assert!(b < prev, "bound must strictly decrease (n={n})");
            assert!(b > LN2, "bound must stay above ln 2 (n={n})");
            prev = b;
        }
        assert!((liu_layland_bound(1_000_000) - LN2).abs() < 1e-6);
    }

    #[test]
    fn edf_bound_is_one() {
        assert_eq!(edf_bound(), 1.0);
    }
}
