//! Classic utilization bounds (Liu & Layland 1973).

use std::sync::OnceLock;

/// Natural logarithm of 2 — the limit of the Liu–Layland bound.
pub const LN2: f64 = core::f64::consts::LN_2;

/// Table size for the memoized Liu–Layland bound: machines holding up to
/// 64 tasks hit the table, larger counts fall back to the closed form.
const LL_TABLE_LEN: usize = 65;

/// The closed form `n(2^{1/n} − 1)` (one `powf` — the memoized table is
/// built from this, so table hits are bit-identical to the closed form).
#[inline]
fn ll_closed_form(n: usize) -> f64 {
    let n = n as f64;
    n * ((2.0f64).powf(1.0 / n) - 1.0)
}

fn ll_table() -> &'static [f64; LL_TABLE_LEN] {
    static TABLE: OnceLock<[f64; LL_TABLE_LEN]> = OnceLock::new();
    TABLE.get_or_init(|| {
        let mut t = [1.0; LL_TABLE_LEN];
        for (n, slot) in t.iter_mut().enumerate().skip(1) {
            *slot = ll_closed_form(n);
        }
        t
    })
}

/// The Liu–Layland RMS utilization bound for `n` tasks:
/// `n(2^{1/n} − 1)`, monotonically decreasing from 1 (n=1) towards `ln 2`.
///
/// For `n == 0` the bound is defined as 1.0 (an empty machine of speed `s`
/// can absorb a task of utilization up to `s`, which matches the paper's
/// admission test with `|S| = 0`).
///
/// This sits inside the RMS admission hot loop of the first-fit test, so
/// `n ≤ 64` is served from a lazily built table instead of recomputing the
/// `powf`; the table is built from the same closed form, so memoized and
/// direct values are bit-identical.
#[inline]
pub fn liu_layland_bound(n: usize) -> f64 {
    if n < LL_TABLE_LEN {
        ll_table()[n]
    } else {
        ll_closed_form(n)
    }
}

/// The Liu–Layland EDF bound — always 1, provided for symmetry / clarity in
/// call sites comparing the two admission policies.
#[inline]
pub const fn edf_bound() -> f64 {
    1.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ll_bound_known_values() {
        assert_eq!(liu_layland_bound(1), 1.0);
        assert!((liu_layland_bound(2) - 2.0 * (2.0f64.sqrt() - 1.0)).abs() < 1e-12);
        assert!((liu_layland_bound(3) - 3.0 * (2.0f64.powf(1.0 / 3.0) - 1.0)).abs() < 1e-12);
        assert_eq!(liu_layland_bound(0), 1.0);
    }

    #[test]
    fn ll_bound_decreases_towards_ln2() {
        let mut prev = liu_layland_bound(1);
        for n in 2..200 {
            let b = liu_layland_bound(n);
            assert!(b < prev, "bound must strictly decrease (n={n})");
            assert!(b > LN2, "bound must stay above ln 2 (n={n})");
            prev = b;
        }
        assert!((liu_layland_bound(1_000_000) - LN2).abs() < 1e-6);
    }

    #[test]
    fn edf_bound_is_one() {
        assert_eq!(edf_bound(), 1.0);
    }

    #[test]
    fn memoized_table_is_bit_identical_to_closed_form() {
        // Table hits (n ≤ 64) and the fallback must agree exactly with the
        // closed form — admission decisions depend on exact f64 equality.
        for n in 1..200 {
            assert_eq!(liu_layland_bound(n), ll_closed_form(n), "n={n}");
        }
        assert_eq!(liu_layland_bound(0), 1.0);
    }
}
