//! # hetfeas-analysis
//!
//! Single-machine schedulability analysis for related (speed-scaled)
//! machines — the per-machine admission tests of Ahuja–Lu–Moseley §II plus
//! the exact comparators our experiments use as ground truth:
//!
//! * [`edf`] — Theorem II.2: EDF schedulable iff `Σ w_i ≤ s` (exact for
//!   implicit deadlines).
//! * [`rms`] — Theorem II.3: the Liu–Layland sufficient RMS test
//!   `Σ w_i ≤ n(2^{1/n}−1)·s`, and the sharper hyperbolic bound.
//! * [`rta`] — exact response-time analysis for fixed priorities, in exact
//!   integer arithmetic against rational speeds.
//! * [`dbf`](mod@dbf) — demand-bound functions / processor-demand criterion for the
//!   constrained-deadline extension.
//! * [`qpa`] — Quick Processor-demand Analysis (Zhang & Burns), the fast
//!   exact form of the same test.
//! * [`bounds`] — the classic utilization bound functions themselves.

#![warn(missing_docs)]

pub mod bounds;
pub mod dbf;
pub mod edf;
pub mod harmonic;
pub mod qpa;
pub mod rms;
pub mod rta;

pub use bounds::{edf_bound, liu_layland_bound, LN2};
pub use dbf::{
    dbf, edf_demand_schedulable, edf_demand_schedulable_within, testing_points, total_dbf,
};
pub use edf::{edf_schedulable, edf_schedulable_exact, edf_schedulable_load, edf_slack};
pub use harmonic::{harmonic_chain_count, rms_schedulable_kuo_mok};
pub use qpa::{
    busy_period, busy_period_within, qpa_checked_within, qpa_schedulable, qpa_schedulable_checked,
    qpa_schedulable_unit, qpa_schedulable_unit_checked, qpa_schedulable_within,
};
pub use rms::{
    rms_hyperbolic_product_ok, rms_schedulable_hyperbolic, rms_schedulable_ll,
    rms_schedulable_ll_load,
};
pub use rta::{
    dm_priority_order, rm_priority_order, rta_response_times, rta_response_times_within,
    rta_schedulable, rta_schedulable_f64, rta_schedulable_within,
};
