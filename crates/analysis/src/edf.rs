//! EDF schedulability on a single related machine.
//!
//! Theorem II.2 (Liu & Layland): an implicit-deadline sporadic task set `S`
//! is feasibly scheduled by preemptive EDF on a machine of speed `s` iff
//! `Σ_{τ_i ∈ S} w_i ≤ s`. (The "only if" direction holds for implicit
//! deadlines because total density equals total utilization.)

use hetfeas_model::{approx_le, Ratio, TaskSet};

/// Exact EDF schedulability test on a speed-`s` machine: `Σ w_i ≤ s`,
/// compared with the workspace tolerance.
pub fn edf_schedulable(tasks: &TaskSet, speed: f64) -> bool {
    edf_schedulable_load(tasks.total_utilization(), speed)
}

/// EDF test given a pre-computed total utilization (used by the first-fit
/// partitioner, which maintains running loads incrementally for the O(nm)
/// bound of §III).
#[inline]
pub fn edf_schedulable_load(total_utilization: f64, speed: f64) -> bool {
    approx_le(total_utilization, speed)
}

/// Exact rational EDF test: `Σ c_i/p_i ≤ s` with no rounding. Prefer for
/// oracle/ground-truth classification of knife-edge instances; requires the
/// periods' lcm to stay within `i128` (see `hetfeas_model::ratio`).
/// Conservative `false` when the sum overflows — this entry point never
/// panics on valid inputs.
pub fn edf_schedulable_exact(tasks: &TaskSet, speed: Ratio) -> bool {
    matches!(tasks.try_total_utilization_ratio(), Ok(u) if u <= speed)
}

/// The largest additional utilization a speed-`s` machine carrying
/// `current_load` can still admit under EDF (clamped at 0).
#[inline]
pub fn edf_slack(current_load: f64, speed: f64) -> f64 {
    (speed - current_load).max(0.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetfeas_model::TaskSet;

    #[test]
    fn accepts_up_to_capacity() {
        let ts = TaskSet::from_pairs([(1, 2), (1, 2)]).unwrap(); // util 1.0
        assert!(edf_schedulable(&ts, 1.0));
        assert!(edf_schedulable(&ts, 2.0));
        assert!(!edf_schedulable(&ts, 0.99));
    }

    #[test]
    fn exact_knife_edge() {
        // 1/3 + 1/6 + 1/2 = 1 exactly.
        let ts = TaskSet::from_pairs([(1, 3), (1, 6), (1, 2)]).unwrap();
        assert!(edf_schedulable_exact(&ts, Ratio::ONE));
        assert!(!edf_schedulable_exact(&ts, Ratio::new(999_999, 1_000_000)));
    }

    #[test]
    fn fast_machine_hosts_heavy_task() {
        let ts = TaskSet::from_pairs([(5, 2)]).unwrap(); // util 2.5
        assert!(!edf_schedulable(&ts, 2.0));
        assert!(edf_schedulable(&ts, 2.5));
        assert!(edf_schedulable_exact(&ts, Ratio::new(5, 2)));
    }

    #[test]
    fn slack_clamps() {
        assert_eq!(edf_slack(0.4, 1.0), 0.6);
        assert_eq!(edf_slack(1.4, 1.0), 0.0);
    }

    #[test]
    fn empty_set_always_schedulable() {
        assert!(edf_schedulable(&TaskSet::empty(), 1e-9));
    }

    #[test]
    fn exact_test_survives_ratio_overflow() {
        // Coprime-ish periods near u64::MAX: the rational sum overflows
        // i128, which must classify as false rather than panic.
        let ts =
            TaskSet::from_pairs((0..4u64).map(|i| (u64::MAX - 2 - 2 * i, u64::MAX - 1 - 2 * i)))
                .unwrap();
        assert!(!edf_schedulable_exact(&ts, Ratio::from_integer(1_000_000)));
    }
}
