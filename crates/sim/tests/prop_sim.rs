//! Cross-validation of the simulator against the analytical tests:
//! the discrete-event engine and the closed-form theory must agree.

use hetfeas_analysis::{
    edf_schedulable_exact, rm_priority_order, rta_response_times, rta_schedulable,
};
use hetfeas_model::{Ratio, Task, TaskSet};
use hetfeas_sim::{simulate_machine, validation_horizon, ReleasePattern, SchedPolicy};
use proptest::prelude::*;

/// Tasks with divisor-friendly periods and WCET ≤ period.
fn menu_task() -> impl Strategy<Value = Task> {
    (
        1u64..=30,
        prop::sample::select(vec![4u64, 5, 8, 10, 20, 25, 40, 50]),
    )
        .prop_map(|(c, p)| Task::implicit(c.min(p), p).unwrap())
}

fn small_set() -> impl Strategy<Value = TaskSet> {
    prop::collection::vec(menu_task(), 1..6).prop_map(TaskSet::new)
}

fn small_speed() -> impl Strategy<Value = Ratio> {
    (1i128..=6, 1i128..=4).prop_map(|(n, d)| Ratio::new(n, d))
}

proptest! {
    // EDF exactness: Σw ≤ s  ⇔  no miss over the validation horizon under
    // the synchronous periodic worst case (Theorem II.2 both directions).
    #[test]
    fn edf_simulation_matches_utilization_test(ts in small_set(), speed in small_speed()) {
        let horizon = validation_horizon(&ts).unwrap();
        let report = simulate_machine(
            &ts, speed, SchedPolicy::Edf, ReleasePattern::Periodic, horizon,
        ).unwrap();
        let theory = edf_schedulable_exact(&ts, speed);
        prop_assert_eq!(
            report.all_deadlines_met(), theory,
            "EDF sim vs utilization test disagree: {} at speed {} ({} misses)",
            ts, speed, report.miss_count
        );
    }

    // RM exactness: exact RTA ⇔ no miss over the validation horizon.
    #[test]
    fn rm_simulation_matches_rta(ts in small_set(), speed in small_speed()) {
        let horizon = validation_horizon(&ts).unwrap();
        let report = simulate_machine(
            &ts, speed, SchedPolicy::RateMonotonic, ReleasePattern::Periodic, horizon,
        ).unwrap();
        let theory = rta_schedulable(&ts, speed);
        prop_assert_eq!(
            report.all_deadlines_met(), theory,
            "RM sim vs RTA disagree: {} at speed {} ({} misses)",
            ts, speed, report.miss_count
        );
    }

    // Work conservation: busy time equals total released work (scaled) when
    // every job completes — the engine never loses or invents work.
    #[test]
    fn busy_time_equals_released_work(ts in small_set(), speed in small_speed()) {
        let horizon = validation_horizon(&ts).unwrap();
        let report = simulate_machine(
            &ts, speed, SchedPolicy::Edf, ReleasePattern::Periodic, horizon,
        ).unwrap();
        let den = speed.denom() as u64;
        let released: u64 = ts.iter()
            .map(|t| (horizon / t.period() + u64::from(!horizon.is_multiple_of(t.period()))) * t.wcet() * den)
            .sum();
        prop_assert_eq!(report.busy_time, released);
        let jobs: u64 = ts.iter()
            .map(|t| horizon / t.period() + u64::from(!horizon.is_multiple_of(t.period())))
            .sum();
        prop_assert_eq!(report.jobs_completed, jobs);
    }

    // Sporadic slack never hurts: a set with no misses under the periodic
    // worst case has none under jittered sporadic releases either.
    #[test]
    fn sporadic_dominated_by_periodic(ts in small_set(), seed in 0u64..1000) {
        let horizon = validation_horizon(&ts).unwrap();
        let periodic = simulate_machine(
            &ts, Ratio::ONE, SchedPolicy::Edf, ReleasePattern::Periodic, horizon,
        ).unwrap();
        prop_assume!(periodic.all_deadlines_met());
        let sporadic = simulate_machine(
            &ts,
            Ratio::ONE,
            SchedPolicy::Edf,
            ReleasePattern::Sporadic { jitter_frac: 0.5, seed },
            horizon,
        ).unwrap();
        prop_assert!(sporadic.all_deadlines_met());
    }

    // Speed monotonicity: raising the speed never introduces misses.
    #[test]
    fn faster_machine_never_worse(ts in small_set(), speed in small_speed()) {
        let horizon = validation_horizon(&ts).unwrap();
        let base = simulate_machine(
            &ts, speed, SchedPolicy::RateMonotonic, ReleasePattern::Periodic, horizon,
        ).unwrap();
        prop_assume!(base.all_deadlines_met());
        let faster = simulate_machine(
            &ts,
            speed * Ratio::new(3, 2),
            SchedPolicy::RateMonotonic,
            ReleasePattern::Periodic,
            horizon,
        ).unwrap();
        prop_assert!(faster.all_deadlines_met());
    }

    // Critical-instant exactness: under RM with synchronous periodic
    // releases, the worst observed response time of every task equals the
    // RTA fixed point exactly (scaled by the speed numerator).
    #[test]
    fn observed_response_equals_rta(ts in small_set(), speed in small_speed()) {
        prop_assume!(rta_schedulable(&ts, speed));
        let horizon = validation_horizon(&ts).unwrap();
        let report = simulate_machine(
            &ts, speed, SchedPolicy::RateMonotonic, ReleasePattern::Periodic, horizon,
        ).unwrap();
        let order = rm_priority_order(&ts);
        let rta = rta_response_times(&ts, &order, speed);
        let num = speed.numer();
        for (task, r) in rta.iter().enumerate() {
            let r = r.expect("schedulable by assumption");
            // R is in ticks; the engine reports scaled ticks (× num).
            let scaled = r * hetfeas_model::Ratio::from_integer(num);
            prop_assert!(scaled.is_integer(),
                "RTA response times land on scaled integers");
            prop_assert_eq!(
                report.max_response[task] as i128,
                scaled.numer(),
                "observed response ≠ RTA for task {} in {} at speed {}",
                task, ts, speed
            );
        }
    }
}
