//! Three-way cross-validation of the migrative adversary: the level
//! algorithm *simulation* must complete exactly when the closed-form
//! prefix conditions hold, which in turn coincide with the paper's LP.

use hetfeas_lp::{level_feasible_sorted, lp_feasible_simplex};
use hetfeas_model::{Platform, Ratio, TaskSet};
use hetfeas_sim::{level_schedulable, run_level_algorithm};
use proptest::prelude::*;

fn small_ratios(max_num: i128, len: core::ops::Range<usize>) -> impl Strategy<Value = Vec<Ratio>> {
    prop::collection::vec(
        (1i128..=max_num, 1i128..=8).prop_map(|(n, d)| Ratio::new(n, d)),
        len,
    )
}

proptest! {
    // The headline equivalence: simulation completes ⇔ prefix conditions.
    #[test]
    fn level_run_matches_closed_form(
        demands in small_ratios(12, 1..8),
        speeds in small_ratios(6, 1..5),
    ) {
        let mut d_sorted = demands.clone();
        d_sorted.sort_by(|a, b| b.cmp(a));
        let mut s_sorted = speeds.clone();
        s_sorted.sort_by(|a, b| b.cmp(a));
        let closed = level_feasible_sorted(&d_sorted, &s_sorted);
        let simulated = level_schedulable(&demands, &speeds);
        prop_assert_eq!(closed, simulated,
            "level algorithm vs prefix conditions disagree: d={:?} s={:?}",
            demands, speeds);
    }

    // And both agree with the simplex on the paper's LP, via integer task
    // sets (utilization = demand over a unit window).
    #[test]
    fn level_run_matches_simplex(
        pairs in prop::collection::vec((1u64..=30, 5u64..=30), 1..6),
        speeds in prop::collection::vec(1u64..=5, 1..4),
    ) {
        let ts = TaskSet::from_pairs(pairs).unwrap();
        let platform = Platform::from_int_speeds(speeds.clone()).unwrap();
        let demands: Vec<Ratio> = ts.iter().map(|t| t.utilization_ratio()).collect();
        let speed_ratios: Vec<Ratio> =
            platform.iter().map(|m| m.speed()).collect();
        let simulated = level_schedulable(&demands, &speed_ratios);
        let lp = lp_feasible_simplex(&ts, &platform);
        // The simplex works in f64; tolerate boundary disagreement only.
        if simulated != lp {
            let beta = hetfeas_lp::level_scaling_factor(&ts, &platform);
            prop_assert!((beta - 1.0).abs() < 1e-7,
                "level sim vs simplex disagree away from boundary (β={beta})");
        }
    }

    // Work conservation: delivered work never exceeds capacity and equals
    // total demand on completion.
    #[test]
    fn level_run_conserves_work(
        demands in small_ratios(12, 1..8),
        speeds in small_ratios(6, 1..5),
    ) {
        let window = Ratio::ONE;
        let run = run_level_algorithm(&demands, &speeds, window);
        let total_demand: Ratio = demands.iter().copied().sum();
        let capacity: Ratio = speeds.iter().copied().sum();
        let delivered = run.delivered();
        prop_assert!(delivered <= capacity + Ratio::new(1, 1_000_000_000));
        let left: Ratio = run.remaining.iter().copied().sum();
        prop_assert_eq!(delivered + left, total_demand, "work must be conserved exactly");
        if run.completed {
            prop_assert_eq!(delivered, total_demand);
        }
    }

    // No job ever runs faster than the fastest machine (per-job rate cap).
    #[test]
    fn per_job_rate_bounded_by_fastest_machine(
        demands in small_ratios(12, 1..8),
        speeds in small_ratios(6, 1..5),
    ) {
        let run = run_level_algorithm(&demands, &speeds, Ratio::ONE);
        let max_speed = speeds.iter().copied().max().unwrap();
        for slice in &run.slices {
            for (_, rate) in &slice.groups {
                prop_assert!(*rate <= max_speed, "rate {} exceeds fastest {}", rate, max_speed);
            }
        }
    }
}
