//! Simulating one related machine: scaling, job expansion, engine run.

use crate::engine::{run_within, EngineConfig, TraceSegment};
use crate::job::{Job, SimReport};
use crate::policy::SchedPolicy;
use crate::source::{releases, ReleasePattern};
use hetfeas_model::{ModelError, Ratio, TaskSet};
use hetfeas_robust::{Exhaustion, Gas};

/// Expand `tasks` into scaled jobs for a machine of speed `num/den` over
/// `horizon` (unscaled ticks, exclusive on releases).
///
/// Scaling: times × `num`, work × `den` — one scaled work unit then takes
/// exactly one scaled tick (`DESIGN.md` §10).
pub fn scaled_jobs(
    tasks: &TaskSet,
    speed: Ratio,
    pattern: ReleasePattern,
    horizon: u64,
) -> Result<Vec<Job>, ModelError> {
    scaled_jobs_within(tasks, speed, pattern, horizon, &mut Gas::unlimited())
        .expect("unlimited gas cannot exhaust")
}

/// [`scaled_jobs`] under an execution budget: job expansion is `O(horizon ·
/// n / min period)` and dominates engine time for long horizons, so `gas`
/// is ticked once per generated job. Outer `Err` is budget exhaustion;
/// inner `Err` is an arithmetic/model failure.
pub fn scaled_jobs_within(
    tasks: &TaskSet,
    speed: Ratio,
    pattern: ReleasePattern,
    horizon: u64,
    gas: &mut Gas,
) -> Result<Result<Vec<Job>, ModelError>, Exhaustion> {
    if speed <= Ratio::ZERO {
        return Ok(Err(ModelError::NonPositiveSpeed));
    }
    let (Ok(num), Ok(den)) = (u64::try_from(speed.numer()), u64::try_from(speed.denom())) else {
        return Ok(Err(ModelError::Overflow("speed encoding")));
    };
    let mut jobs = Vec::new();
    for (task, release) in releases(tasks, pattern, horizon) {
        gas.tick()?;
        let t = &tasks[task];
        let scaled = release.checked_mul(num).and_then(|release| {
            let deadline = release.checked_add(t.deadline().checked_mul(num)?)?;
            let work = t.wcet().checked_mul(den)?;
            Some(Job {
                task,
                release,
                deadline,
                work,
            })
        });
        match scaled {
            Some(job) => jobs.push(job),
            None => return Ok(Err(ModelError::Overflow("scaled job"))),
        }
    }
    Ok(Ok(jobs))
}

/// Simulate `tasks` on a machine of rational speed `speed` under `policy`,
/// releasing jobs per `pattern` for `horizon` unscaled ticks.
///
/// ```
/// use hetfeas_model::{Ratio, TaskSet};
/// use hetfeas_sim::{simulate_machine, ReleasePattern, SchedPolicy};
///
/// // Utilization exactly 1 — EDF meets every deadline, with zero idle time.
/// let tasks = TaskSet::from_pairs([(1, 2), (1, 3), (1, 6)]).unwrap();
/// let report = simulate_machine(
///     &tasks, Ratio::ONE, SchedPolicy::Edf, ReleasePattern::Periodic, 12,
/// ).unwrap();
/// assert!(report.all_deadlines_met());
/// assert_eq!(report.idle_time, 0);
/// ```
pub fn simulate_machine(
    tasks: &TaskSet,
    speed: Ratio,
    policy: SchedPolicy,
    pattern: ReleasePattern,
    horizon: u64,
) -> Result<SimReport, ModelError> {
    let (report, _) = simulate_machine_traced(
        tasks,
        speed,
        policy,
        pattern,
        horizon,
        EngineConfig::default(),
    )?;
    Ok(report)
}

/// [`simulate_machine`] with explicit engine config; returns the trace too.
pub fn simulate_machine_traced(
    tasks: &TaskSet,
    speed: Ratio,
    policy: SchedPolicy,
    pattern: ReleasePattern,
    horizon: u64,
    config: EngineConfig,
) -> Result<(SimReport, Vec<TraceSegment>), ModelError> {
    simulate_machine_traced_within(
        tasks,
        speed,
        policy,
        pattern,
        horizon,
        config,
        &mut Gas::unlimited(),
    )
    .expect("unlimited gas cannot exhaust")
}

/// [`simulate_machine_traced`] under an execution budget: both job
/// expansion and the engine loop tick `gas`, so a hostile horizon (huge
/// hyperperiod, tiny period) is cut off instead of exhausting memory/time.
pub fn simulate_machine_traced_within(
    tasks: &TaskSet,
    speed: Ratio,
    policy: SchedPolicy,
    pattern: ReleasePattern,
    horizon: u64,
    config: EngineConfig,
    gas: &mut Gas,
) -> Result<Result<(SimReport, Vec<TraceSegment>), ModelError>, Exhaustion> {
    let jobs = match scaled_jobs_within(tasks, speed, pattern, horizon, gas)? {
        Ok(jobs) => jobs,
        Err(e) => return Ok(Err(e)),
    };
    let ranks = policy.ranks(tasks);
    Ok(Ok(run_within(&jobs, policy, &ranks, config, gas)?))
}

/// [`simulate_machine`] under an execution budget.
pub fn simulate_machine_within(
    tasks: &TaskSet,
    speed: Ratio,
    policy: SchedPolicy,
    pattern: ReleasePattern,
    horizon: u64,
    gas: &mut Gas,
) -> Result<Result<SimReport, ModelError>, Exhaustion> {
    Ok(simulate_machine_traced_within(
        tasks,
        speed,
        policy,
        pattern,
        horizon,
        EngineConfig::default(),
        gas,
    )?
    .map(|(report, _)| report))
}

/// The default validation horizon: two hyperperiods of the set (for a
/// synchronous periodic release pattern, one hyperperiod already suffices
/// for EDF/FP with met deadlines; the second catches carried-in effects
/// defensively). `None` when the hyperperiod overflows `u64`.
pub fn validation_horizon(tasks: &TaskSet) -> Option<u64> {
    let h = tasks.hyperperiod()?;
    let two = h.checked_mul(2)?;
    u64::try_from(two).ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn utilization_at_capacity_meets_deadlines_under_edf() {
        // util exactly 1.0 on a unit machine.
        let ts = TaskSet::from_pairs([(1, 2), (1, 3), (1, 6)]).unwrap();
        let h = validation_horizon(&ts).unwrap();
        let r = simulate_machine(
            &ts,
            Ratio::ONE,
            SchedPolicy::Edf,
            ReleasePattern::Periodic,
            h,
        )
        .unwrap();
        assert!(r.all_deadlines_met(), "misses: {:?}", r.misses);
        // The machine is saturated: no idle time inside the horizon.
        assert_eq!(r.idle_time, 0);
    }

    #[test]
    fn overload_misses_under_edf() {
        let ts = TaskSet::from_pairs([(2, 3), (2, 4)]).unwrap(); // util ≈ 1.17
        let r = simulate_machine(
            &ts,
            Ratio::ONE,
            SchedPolicy::Edf,
            ReleasePattern::Periodic,
            24,
        )
        .unwrap();
        assert!(!r.all_deadlines_met());
    }

    #[test]
    fn fractional_speed_is_exact() {
        // c=3, p=4 at speed 3/4 → execution takes exactly the period.
        let ts = TaskSet::from_pairs([(3, 4)]).unwrap();
        let r = simulate_machine(
            &ts,
            Ratio::new(3, 4),
            SchedPolicy::Edf,
            ReleasePattern::Periodic,
            40,
        )
        .unwrap();
        assert!(r.all_deadlines_met());
        assert_eq!(r.max_lateness, Some(0)); // finishes exactly at each deadline
                                             // A hair slower ⇒ every job misses.
        let r = simulate_machine(
            &ts,
            Ratio::new(74, 100),
            SchedPolicy::Edf,
            ReleasePattern::Periodic,
            40,
        )
        .unwrap();
        assert!(!r.all_deadlines_met());
    }

    #[test]
    fn rm_schedules_what_rta_promises() {
        let ts = TaskSet::from_pairs([(1, 4), (2, 6), (3, 13)]).unwrap();
        let h = validation_horizon(&ts).unwrap();
        let r = simulate_machine(
            &ts,
            Ratio::ONE,
            SchedPolicy::RateMonotonic,
            ReleasePattern::Periodic,
            h,
        )
        .unwrap();
        assert!(r.all_deadlines_met());
    }

    #[test]
    fn rm_misses_where_edf_survives() {
        // The classic full-utilization pair (c,p) = (2,4),(5,10): EDF
        // schedules it (util exactly 1), RM misses the long task.
        let ts = TaskSet::from_pairs([(2, 4), (5, 10)]).unwrap();
        let h = validation_horizon(&ts).unwrap();
        let edf = simulate_machine(
            &ts,
            Ratio::ONE,
            SchedPolicy::Edf,
            ReleasePattern::Periodic,
            h,
        )
        .unwrap();
        let rm = simulate_machine(
            &ts,
            Ratio::ONE,
            SchedPolicy::RateMonotonic,
            ReleasePattern::Periodic,
            h,
        )
        .unwrap();
        assert!(edf.all_deadlines_met());
        assert!(!rm.all_deadlines_met());
    }

    #[test]
    fn sporadic_releases_never_harder_than_periodic() {
        // A set feasible under the periodic worst case stays feasible with
        // sporadic slack.
        let ts = TaskSet::from_pairs([(1, 2), (1, 3), (1, 6)]).unwrap();
        let r = simulate_machine(
            &ts,
            Ratio::ONE,
            SchedPolicy::Edf,
            ReleasePattern::Sporadic {
                jitter_frac: 0.4,
                seed: 17,
            },
            1000,
        )
        .unwrap();
        assert!(r.all_deadlines_met());
    }

    #[test]
    fn empty_set_is_quiet() {
        let r = simulate_machine(
            &TaskSet::empty(),
            Ratio::ONE,
            SchedPolicy::Edf,
            ReleasePattern::Periodic,
            100,
        )
        .unwrap();
        assert_eq!(r.jobs_completed, 0);
    }

    #[test]
    fn zero_speed_rejected() {
        let ts = TaskSet::from_pairs([(1, 2)]).unwrap();
        assert!(matches!(
            simulate_machine(
                &ts,
                Ratio::ZERO,
                SchedPolicy::Edf,
                ReleasePattern::Periodic,
                10
            ),
            Err(ModelError::NonPositiveSpeed)
        ));
    }

    #[test]
    fn validation_horizon_is_two_hyperperiods() {
        let ts = TaskSet::from_pairs([(1, 4), (1, 6)]).unwrap();
        assert_eq!(validation_horizon(&ts), Some(24));
        assert_eq!(validation_horizon(&TaskSet::empty()), None);
    }
}
