//! Simulating one related machine: scaling, job expansion, engine run.

use crate::engine::{run, EngineConfig, TraceSegment};
use crate::job::{Job, SimReport};
use crate::policy::SchedPolicy;
use crate::source::{releases, ReleasePattern};
use hetfeas_model::{ModelError, Ratio, TaskSet};

/// Expand `tasks` into scaled jobs for a machine of speed `num/den` over
/// `horizon` (unscaled ticks, exclusive on releases).
///
/// Scaling: times × `num`, work × `den` — one scaled work unit then takes
/// exactly one scaled tick (`DESIGN.md` §8).
pub fn scaled_jobs(
    tasks: &TaskSet,
    speed: Ratio,
    pattern: ReleasePattern,
    horizon: u64,
) -> Result<Vec<Job>, ModelError> {
    if speed <= Ratio::ZERO {
        return Err(ModelError::NonPositiveSpeed);
    }
    let num = u64::try_from(speed.numer()).map_err(|_| ModelError::Overflow("speed numerator"))?;
    let den =
        u64::try_from(speed.denom()).map_err(|_| ModelError::Overflow("speed denominator"))?;
    let mut jobs = Vec::new();
    for (task, release) in releases(tasks, pattern, horizon) {
        let t = &tasks[task];
        let release = release
            .checked_mul(num)
            .ok_or(ModelError::Overflow("scaled release"))?;
        let deadline = release
            .checked_add(
                t.deadline()
                    .checked_mul(num)
                    .ok_or(ModelError::Overflow("scaled deadline"))?,
            )
            .ok_or(ModelError::Overflow("scaled deadline"))?;
        let work = t
            .wcet()
            .checked_mul(den)
            .ok_or(ModelError::Overflow("scaled work"))?;
        jobs.push(Job {
            task,
            release,
            deadline,
            work,
        });
    }
    Ok(jobs)
}

/// Simulate `tasks` on a machine of rational speed `speed` under `policy`,
/// releasing jobs per `pattern` for `horizon` unscaled ticks.
///
/// ```
/// use hetfeas_model::{Ratio, TaskSet};
/// use hetfeas_sim::{simulate_machine, ReleasePattern, SchedPolicy};
///
/// // Utilization exactly 1 — EDF meets every deadline, with zero idle time.
/// let tasks = TaskSet::from_pairs([(1, 2), (1, 3), (1, 6)]).unwrap();
/// let report = simulate_machine(
///     &tasks, Ratio::ONE, SchedPolicy::Edf, ReleasePattern::Periodic, 12,
/// ).unwrap();
/// assert!(report.all_deadlines_met());
/// assert_eq!(report.idle_time, 0);
/// ```
pub fn simulate_machine(
    tasks: &TaskSet,
    speed: Ratio,
    policy: SchedPolicy,
    pattern: ReleasePattern,
    horizon: u64,
) -> Result<SimReport, ModelError> {
    let (report, _) = simulate_machine_traced(
        tasks,
        speed,
        policy,
        pattern,
        horizon,
        EngineConfig::default(),
    )?;
    Ok(report)
}

/// [`simulate_machine`] with explicit engine config; returns the trace too.
pub fn simulate_machine_traced(
    tasks: &TaskSet,
    speed: Ratio,
    policy: SchedPolicy,
    pattern: ReleasePattern,
    horizon: u64,
    config: EngineConfig,
) -> Result<(SimReport, Vec<TraceSegment>), ModelError> {
    let jobs = scaled_jobs(tasks, speed, pattern, horizon)?;
    let ranks = policy.ranks(tasks);
    Ok(run(&jobs, policy, &ranks, config))
}

/// The default validation horizon: two hyperperiods of the set (for a
/// synchronous periodic release pattern, one hyperperiod already suffices
/// for EDF/FP with met deadlines; the second catches carried-in effects
/// defensively). `None` when the hyperperiod overflows `u64`.
pub fn validation_horizon(tasks: &TaskSet) -> Option<u64> {
    let h = tasks.hyperperiod()?;
    let two = h.checked_mul(2)?;
    u64::try_from(two).ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn utilization_at_capacity_meets_deadlines_under_edf() {
        // util exactly 1.0 on a unit machine.
        let ts = TaskSet::from_pairs([(1, 2), (1, 3), (1, 6)]).unwrap();
        let h = validation_horizon(&ts).unwrap();
        let r = simulate_machine(
            &ts,
            Ratio::ONE,
            SchedPolicy::Edf,
            ReleasePattern::Periodic,
            h,
        )
        .unwrap();
        assert!(r.all_deadlines_met(), "misses: {:?}", r.misses);
        // The machine is saturated: no idle time inside the horizon.
        assert_eq!(r.idle_time, 0);
    }

    #[test]
    fn overload_misses_under_edf() {
        let ts = TaskSet::from_pairs([(2, 3), (2, 4)]).unwrap(); // util ≈ 1.17
        let r = simulate_machine(
            &ts,
            Ratio::ONE,
            SchedPolicy::Edf,
            ReleasePattern::Periodic,
            24,
        )
        .unwrap();
        assert!(!r.all_deadlines_met());
    }

    #[test]
    fn fractional_speed_is_exact() {
        // c=3, p=4 at speed 3/4 → execution takes exactly the period.
        let ts = TaskSet::from_pairs([(3, 4)]).unwrap();
        let r = simulate_machine(
            &ts,
            Ratio::new(3, 4),
            SchedPolicy::Edf,
            ReleasePattern::Periodic,
            40,
        )
        .unwrap();
        assert!(r.all_deadlines_met());
        assert_eq!(r.max_lateness, Some(0)); // finishes exactly at each deadline
                                             // A hair slower ⇒ every job misses.
        let r = simulate_machine(
            &ts,
            Ratio::new(74, 100),
            SchedPolicy::Edf,
            ReleasePattern::Periodic,
            40,
        )
        .unwrap();
        assert!(!r.all_deadlines_met());
    }

    #[test]
    fn rm_schedules_what_rta_promises() {
        let ts = TaskSet::from_pairs([(1, 4), (2, 6), (3, 13)]).unwrap();
        let h = validation_horizon(&ts).unwrap();
        let r = simulate_machine(
            &ts,
            Ratio::ONE,
            SchedPolicy::RateMonotonic,
            ReleasePattern::Periodic,
            h,
        )
        .unwrap();
        assert!(r.all_deadlines_met());
    }

    #[test]
    fn rm_misses_where_edf_survives() {
        // The classic full-utilization pair (c,p) = (2,4),(5,10): EDF
        // schedules it (util exactly 1), RM misses the long task.
        let ts = TaskSet::from_pairs([(2, 4), (5, 10)]).unwrap();
        let h = validation_horizon(&ts).unwrap();
        let edf = simulate_machine(
            &ts,
            Ratio::ONE,
            SchedPolicy::Edf,
            ReleasePattern::Periodic,
            h,
        )
        .unwrap();
        let rm = simulate_machine(
            &ts,
            Ratio::ONE,
            SchedPolicy::RateMonotonic,
            ReleasePattern::Periodic,
            h,
        )
        .unwrap();
        assert!(edf.all_deadlines_met());
        assert!(!rm.all_deadlines_met());
    }

    #[test]
    fn sporadic_releases_never_harder_than_periodic() {
        // A set feasible under the periodic worst case stays feasible with
        // sporadic slack.
        let ts = TaskSet::from_pairs([(1, 2), (1, 3), (1, 6)]).unwrap();
        let r = simulate_machine(
            &ts,
            Ratio::ONE,
            SchedPolicy::Edf,
            ReleasePattern::Sporadic {
                jitter_frac: 0.4,
                seed: 17,
            },
            1000,
        )
        .unwrap();
        assert!(r.all_deadlines_met());
    }

    #[test]
    fn empty_set_is_quiet() {
        let r = simulate_machine(
            &TaskSet::empty(),
            Ratio::ONE,
            SchedPolicy::Edf,
            ReleasePattern::Periodic,
            100,
        )
        .unwrap();
        assert_eq!(r.jobs_completed, 0);
    }

    #[test]
    fn zero_speed_rejected() {
        let ts = TaskSet::from_pairs([(1, 2)]).unwrap();
        assert!(matches!(
            simulate_machine(
                &ts,
                Ratio::ZERO,
                SchedPolicy::Edf,
                ReleasePattern::Periodic,
                10
            ),
            Err(ModelError::NonPositiveSpeed)
        ));
    }

    #[test]
    fn validation_horizon_is_two_hyperperiods() {
        let ts = TaskSet::from_pairs([(1, 4), (1, 6)]).unwrap();
        assert_eq!(validation_horizon(&ts), Some(24));
        assert_eq!(validation_horizon(&TaskSet::empty()), None);
    }
}
