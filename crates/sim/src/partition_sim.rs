//! Platform-level simulation of a partitioned schedule.
//!
//! Partitioned scheduling means each machine is an independent
//! single-machine system — so the platform simulation is per-machine
//! simulation plus aggregation. This is the workspace's stand-in for the
//! hardware testbed the paper never had (see `DESIGN.md` substitutions):
//! experiment E7 replays every accepted assignment here and checks that
//! zero deadlines are missed on the α-augmented platform.

use crate::job::SimReport;
use crate::machine::{simulate_machine, validation_horizon};
use crate::policy::SchedPolicy;
use crate::source::ReleasePattern;
use hetfeas_model::{ModelError, Platform, Ratio, TaskSet};
use hetfeas_partition::Assignment;

/// Simulate a complete partitioned assignment on `platform` with machine
/// speeds multiplied by `alpha` (the algorithm's speed augmentation as an
/// exact rational — e.g. `Ratio::new(149, 50)` for α = 2.98).
///
/// `horizon` is in unscaled ticks; pass [`validation_horizon`]'s value for
/// a full hyperperiod-level check, or a smaller budget for smoke tests.
pub fn simulate_partition(
    tasks: &TaskSet,
    platform: &Platform,
    assignment: &Assignment,
    alpha: Ratio,
    policy: SchedPolicy,
    pattern: ReleasePattern,
    horizon: u64,
) -> Result<SimReport, ModelError> {
    if !assignment.is_complete() {
        // An incomplete assignment has no defined schedule; treat as error
        // rather than silently simulating a subset.
        return Err(ModelError::UtilizationTooLarge { task: usize::MAX });
    }
    let mut total = SimReport::default();
    for m in 0..platform.len() {
        let subset = assignment.taskset_on(m, tasks);
        if subset.is_empty() {
            continue;
        }
        let speed = platform
            .machine(m)
            .speed()
            .checked_mul(&alpha)
            .ok_or(ModelError::Overflow("augmented speed"))?;
        let report = simulate_machine(&subset, speed, policy, pattern, horizon)?;
        total.absorb(&report);
    }
    Ok(total)
}

/// Convenience: simulate with the set's own validation horizon
/// (two hyperperiods) under the synchronous periodic worst case.
pub fn validate_assignment(
    tasks: &TaskSet,
    platform: &Platform,
    assignment: &Assignment,
    alpha: Ratio,
    policy: SchedPolicy,
) -> Result<SimReport, ModelError> {
    let horizon = validation_horizon(tasks).ok_or(ModelError::Overflow("validation horizon"))?;
    simulate_partition(
        tasks,
        platform,
        assignment,
        alpha,
        policy,
        ReleasePattern::Periodic,
        horizon,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetfeas_model::Augmentation;
    use hetfeas_partition::{first_fit, EdfAdmission, RmsLlAdmission};

    #[test]
    fn accepted_edf_partition_meets_all_deadlines() {
        let tasks = TaskSet::from_pairs([(9, 10), (4, 10), (3, 10), (6, 20)]).unwrap();
        let platform = Platform::from_int_speeds([1, 2]).unwrap();
        let out = first_fit(&tasks, &platform, Augmentation::NONE, &EdfAdmission);
        let a = out.assignment().expect("feasible");
        let r = validate_assignment(&tasks, &platform, a, Ratio::ONE, SchedPolicy::Edf).unwrap();
        assert!(r.all_deadlines_met(), "misses: {:?}", r.misses);
        assert_eq!(r.jobs_completed % 1, 0);
    }

    #[test]
    fn accepted_rms_partition_meets_all_deadlines() {
        let tasks = TaskSet::from_pairs([(1, 10), (2, 20), (3, 25), (1, 50), (2, 40)]).unwrap();
        let platform = Platform::from_int_speeds([1, 1]).unwrap();
        let out = first_fit(&tasks, &platform, Augmentation::NONE, &RmsLlAdmission);
        let a = out.assignment().expect("feasible");
        let r = validate_assignment(&tasks, &platform, a, Ratio::ONE, SchedPolicy::RateMonotonic)
            .unwrap();
        assert!(r.all_deadlines_met(), "misses: {:?}", r.misses);
    }

    #[test]
    fn deliberately_overloaded_assignment_misses() {
        // Force both tasks (total util 1.4) onto the slow machine.
        let tasks = TaskSet::from_pairs([(7, 10), (7, 10)]).unwrap();
        let platform = Platform::from_int_speeds([1, 4]).unwrap();
        let mut a = Assignment::new(2, 2);
        a.assign(0, 0);
        a.assign(1, 0);
        let r = validate_assignment(&tasks, &platform, &a, Ratio::ONE, SchedPolicy::Edf).unwrap();
        assert!(!r.all_deadlines_met());
        // The same assignment at α = 2 is fine (speed 2 ≥ 1.4).
        let r = validate_assignment(
            &tasks,
            &platform,
            &a,
            Ratio::from_integer(2),
            SchedPolicy::Edf,
        )
        .unwrap();
        assert!(r.all_deadlines_met());
    }

    #[test]
    fn fractional_alpha_is_exact() {
        // util 1.49 on a unit machine at α = 149/100 → exactly feasible.
        let tasks = TaskSet::from_pairs([(149, 100)]).unwrap();
        let platform = Platform::identical(1).unwrap();
        let mut a = Assignment::new(1, 1);
        a.assign(0, 0);
        let ok = validate_assignment(
            &tasks,
            &platform,
            &a,
            Ratio::new(149, 100),
            SchedPolicy::Edf,
        )
        .unwrap();
        assert!(ok.all_deadlines_met());
        let under = validate_assignment(
            &tasks,
            &platform,
            &a,
            Ratio::new(148, 100),
            SchedPolicy::Edf,
        )
        .unwrap();
        assert!(!under.all_deadlines_met());
    }

    #[test]
    fn incomplete_assignment_rejected() {
        let tasks = TaskSet::from_pairs([(1, 2), (1, 2)]).unwrap();
        let platform = Platform::identical(2).unwrap();
        let mut a = Assignment::new(2, 2);
        a.assign(0, 0);
        assert!(validate_assignment(&tasks, &platform, &a, Ratio::ONE, SchedPolicy::Edf).is_err());
    }

    #[test]
    fn empty_machines_are_skipped() {
        let tasks = TaskSet::from_pairs([(1, 2)]).unwrap();
        let platform = Platform::identical(3).unwrap();
        let mut a = Assignment::new(1, 3);
        a.assign(0, 1);
        let r = validate_assignment(&tasks, &platform, &a, Ratio::ONE, SchedPolicy::Edf).unwrap();
        assert!(r.all_deadlines_met());
        assert_eq!(r.jobs_completed, 2); // two hyperperiods of p=2 → 4/2... horizon 4, releases at 0,2
    }
}
