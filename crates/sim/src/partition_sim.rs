//! Platform-level simulation of a partitioned schedule.
//!
//! Partitioned scheduling means each machine is an independent
//! single-machine system — so the platform simulation is per-machine
//! simulation plus aggregation. This is the workspace's stand-in for the
//! hardware testbed the paper never had (see `DESIGN.md` substitutions):
//! experiment E7 replays every accepted assignment here and checks that
//! zero deadlines are missed on the α-augmented platform.

use crate::job::SimReport;
use crate::machine::{simulate_machine_within, validation_horizon};
use crate::policy::SchedPolicy;
use crate::source::ReleasePattern;
use hetfeas_model::{ModelError, Platform, Ratio, TaskSet};
use hetfeas_partition::Assignment;
use hetfeas_robust::{Exhaustion, Gas};

/// Simulate a complete partitioned assignment on `platform` with machine
/// speeds multiplied by `alpha` (the algorithm's speed augmentation as an
/// exact rational — e.g. `Ratio::new(149, 50)` for α = 2.98).
///
/// `horizon` is in unscaled ticks; pass [`validation_horizon`]'s value for
/// a full hyperperiod-level check, or a smaller budget for smoke tests.
pub fn simulate_partition(
    tasks: &TaskSet,
    platform: &Platform,
    assignment: &Assignment,
    alpha: Ratio,
    policy: SchedPolicy,
    pattern: ReleasePattern,
    horizon: u64,
) -> Result<SimReport, ModelError> {
    simulate_partition_within(
        tasks,
        platform,
        assignment,
        alpha,
        policy,
        pattern,
        horizon,
        &mut Gas::unlimited(),
    )
    .expect("unlimited gas cannot exhaust")
}

/// [`simulate_partition`] under an execution budget shared across all
/// machines. A partial replay proves nothing, so exhaustion discards the
/// accumulated report and returns the reason as the outer `Err`.
#[allow(clippy::too_many_arguments)]
pub fn simulate_partition_within(
    tasks: &TaskSet,
    platform: &Platform,
    assignment: &Assignment,
    alpha: Ratio,
    policy: SchedPolicy,
    pattern: ReleasePattern,
    horizon: u64,
    gas: &mut Gas,
) -> Result<Result<SimReport, ModelError>, Exhaustion> {
    if !assignment.is_complete() {
        // An incomplete assignment has no defined schedule; treat as error
        // rather than silently simulating a subset.
        return Ok(Err(ModelError::UtilizationTooLarge { task: usize::MAX }));
    }
    let mut total = SimReport::default();
    for m in 0..platform.len() {
        let subset = assignment.taskset_on(m, tasks);
        if subset.is_empty() {
            continue;
        }
        let Some(speed) = platform.machine(m).speed().checked_mul(&alpha) else {
            return Ok(Err(ModelError::Overflow("augmented speed")));
        };
        match simulate_machine_within(&subset, speed, policy, pattern, horizon, gas)? {
            Ok(report) => total.absorb(&report),
            Err(e) => return Ok(Err(e)),
        }
    }
    Ok(Ok(total))
}

/// Convenience: simulate with the set's own validation horizon
/// (two hyperperiods) under the synchronous periodic worst case.
pub fn validate_assignment(
    tasks: &TaskSet,
    platform: &Platform,
    assignment: &Assignment,
    alpha: Ratio,
    policy: SchedPolicy,
) -> Result<SimReport, ModelError> {
    validate_assignment_within(
        tasks,
        platform,
        assignment,
        alpha,
        policy,
        &mut Gas::unlimited(),
    )
    .expect("unlimited gas cannot exhaust")
}

/// [`validate_assignment`] under an execution budget — the hyperperiod
/// horizon can be astronomically large for hostile period menus, so
/// budgeted callers (the CLI, fault harness) use this variant.
pub fn validate_assignment_within(
    tasks: &TaskSet,
    platform: &Platform,
    assignment: &Assignment,
    alpha: Ratio,
    policy: SchedPolicy,
    gas: &mut Gas,
) -> Result<Result<SimReport, ModelError>, Exhaustion> {
    let Some(horizon) = validation_horizon(tasks) else {
        return Ok(Err(ModelError::Overflow("validation horizon")));
    };
    simulate_partition_within(
        tasks,
        platform,
        assignment,
        alpha,
        policy,
        ReleasePattern::Periodic,
        horizon,
        gas,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetfeas_model::Augmentation;
    use hetfeas_partition::{first_fit, EdfAdmission, RmsLlAdmission};

    #[test]
    fn accepted_edf_partition_meets_all_deadlines() {
        let tasks = TaskSet::from_pairs([(9, 10), (4, 10), (3, 10), (6, 20)]).unwrap();
        let platform = Platform::from_int_speeds([1, 2]).unwrap();
        let out = first_fit(&tasks, &platform, Augmentation::NONE, &EdfAdmission);
        let a = out.assignment().expect("feasible");
        let r = validate_assignment(&tasks, &platform, a, Ratio::ONE, SchedPolicy::Edf).unwrap();
        assert!(r.all_deadlines_met(), "misses: {:?}", r.misses);
        assert_eq!(r.jobs_completed % 1, 0);
    }

    #[test]
    fn accepted_rms_partition_meets_all_deadlines() {
        let tasks = TaskSet::from_pairs([(1, 10), (2, 20), (3, 25), (1, 50), (2, 40)]).unwrap();
        let platform = Platform::from_int_speeds([1, 1]).unwrap();
        let out = first_fit(&tasks, &platform, Augmentation::NONE, &RmsLlAdmission);
        let a = out.assignment().expect("feasible");
        let r = validate_assignment(&tasks, &platform, a, Ratio::ONE, SchedPolicy::RateMonotonic)
            .unwrap();
        assert!(r.all_deadlines_met(), "misses: {:?}", r.misses);
    }

    #[test]
    fn deliberately_overloaded_assignment_misses() {
        // Force both tasks (total util 1.4) onto the slow machine.
        let tasks = TaskSet::from_pairs([(7, 10), (7, 10)]).unwrap();
        let platform = Platform::from_int_speeds([1, 4]).unwrap();
        let mut a = Assignment::new(2, 2);
        a.assign(0, 0);
        a.assign(1, 0);
        let r = validate_assignment(&tasks, &platform, &a, Ratio::ONE, SchedPolicy::Edf).unwrap();
        assert!(!r.all_deadlines_met());
        // The same assignment at α = 2 is fine (speed 2 ≥ 1.4).
        let r = validate_assignment(
            &tasks,
            &platform,
            &a,
            Ratio::from_integer(2),
            SchedPolicy::Edf,
        )
        .unwrap();
        assert!(r.all_deadlines_met());
    }

    #[test]
    fn fractional_alpha_is_exact() {
        // util 1.49 on a unit machine at α = 149/100 → exactly feasible.
        let tasks = TaskSet::from_pairs([(149, 100)]).unwrap();
        let platform = Platform::identical(1).unwrap();
        let mut a = Assignment::new(1, 1);
        a.assign(0, 0);
        let ok = validate_assignment(
            &tasks,
            &platform,
            &a,
            Ratio::new(149, 100),
            SchedPolicy::Edf,
        )
        .unwrap();
        assert!(ok.all_deadlines_met());
        let under = validate_assignment(
            &tasks,
            &platform,
            &a,
            Ratio::new(148, 100),
            SchedPolicy::Edf,
        )
        .unwrap();
        assert!(!under.all_deadlines_met());
    }

    #[test]
    fn budgeted_validation_agrees_then_exhausts() {
        use hetfeas_robust::Budget;
        let tasks = TaskSet::from_pairs([(9, 10), (4, 10), (3, 10), (6, 20)]).unwrap();
        let platform = Platform::from_int_speeds([1, 2]).unwrap();
        let out = first_fit(&tasks, &platform, Augmentation::NONE, &EdfAdmission);
        let a = out.assignment().expect("feasible");
        let mut gas = Budget::ops(1_000_000).gas();
        let r = validate_assignment_within(
            &tasks,
            &platform,
            a,
            Ratio::ONE,
            SchedPolicy::Edf,
            &mut gas,
        )
        .expect("ample budget")
        .unwrap();
        let unbudgeted =
            validate_assignment(&tasks, &platform, a, Ratio::ONE, SchedPolicy::Edf).unwrap();
        assert_eq!(r, unbudgeted);
        let mut starved = Budget::ops(2).gas();
        assert!(validate_assignment_within(
            &tasks,
            &platform,
            a,
            Ratio::ONE,
            SchedPolicy::Edf,
            &mut starved
        )
        .is_err());
    }

    #[test]
    fn incomplete_assignment_rejected() {
        let tasks = TaskSet::from_pairs([(1, 2), (1, 2)]).unwrap();
        let platform = Platform::identical(2).unwrap();
        let mut a = Assignment::new(2, 2);
        a.assign(0, 0);
        assert!(validate_assignment(&tasks, &platform, &a, Ratio::ONE, SchedPolicy::Edf).is_err());
    }

    #[test]
    fn empty_machines_are_skipped() {
        let tasks = TaskSet::from_pairs([(1, 2)]).unwrap();
        let platform = Platform::identical(3).unwrap();
        let mut a = Assignment::new(1, 3);
        a.assign(0, 1);
        let r = validate_assignment(&tasks, &platform, &a, Ratio::ONE, SchedPolicy::Edf).unwrap();
        assert!(r.all_deadlines_met());
        assert_eq!(r.jobs_completed, 2); // two hyperperiods of p=2 → 4/2... horizon 4, releases at 0,2
    }
}
