//! The single-machine preemptive discrete-event engine.
//!
//! Event-driven simulation over scaled integer time: the only events are
//! job releases and job completions, so the engine advances directly from
//! decision point to decision point — O((jobs + preemptions) · log jobs)
//! total, independent of the tick resolution.

use crate::job::{Job, MissRecord, SimReport};
use crate::policy::SchedPolicy;
use hetfeas_robust::{Exhaustion, Gas};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// One contiguous execution segment in the trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceSegment {
    /// Segment start (scaled ticks).
    pub start: u64,
    /// Segment end (scaled ticks, exclusive).
    pub end: u64,
    /// Task index executing.
    pub task: usize,
}

/// Engine options.
#[derive(Debug, Clone, Copy)]
pub struct EngineConfig {
    /// Record the execution trace (costs memory proportional to segments).
    pub record_trace: bool,
    /// At most this many [`MissRecord`]s are kept (the total count is
    /// always exact).
    pub max_recorded_misses: usize,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            record_trace: false,
            max_recorded_misses: 64,
        }
    }
}

/// Priority key: lower = runs first. EDF keys by absolute deadline,
/// fixed-priority by the task's static rank; both tie-break by release
/// then arena index for determinism.
#[inline]
fn key(policy: SchedPolicy, ranks: &[u64], job: &Job, id: usize) -> (u64, u64, usize) {
    match policy {
        SchedPolicy::Edf => (job.deadline, job.release, id),
        SchedPolicy::RateMonotonic => (ranks[job.task], job.release, id),
    }
}

/// Run the engine over `jobs` (must be sorted by release time; scaled
/// units — see [`crate::job`]).
///
/// Returns the report and (if requested) the execution trace. Every
/// released job is run to completion, so misses are reported with their
/// actual completion times rather than as censored "unfinished" records.
pub fn run(
    jobs: &[Job],
    policy: SchedPolicy,
    ranks: &[u64],
    config: EngineConfig,
) -> (SimReport, Vec<TraceSegment>) {
    run_within(jobs, policy, ranks, config, &mut Gas::unlimited())
        .expect("unlimited gas cannot exhaust")
}

/// [`run`] under an execution budget: `gas` is ticked once per decision
/// point (release, completion, or preemption). On exhaustion the partial
/// report is discarded and the exhaustion reason returned — a truncated
/// simulation proves nothing about the schedule, so there is no partial
/// result to salvage.
pub fn run_within(
    jobs: &[Job],
    policy: SchedPolicy,
    ranks: &[u64],
    config: EngineConfig,
    gas: &mut Gas,
) -> Result<(SimReport, Vec<TraceSegment>), Exhaustion> {
    debug_assert!(jobs.windows(2).all(|w| w[0].release <= w[1].release));
    let mut report = SimReport::default();
    let mut trace = Vec::new();

    // Remaining work per job (arena-indexed).
    let mut remaining: Vec<u64> = jobs.iter().map(|j| j.work).collect();
    // Min-heap of (priority key, arena id).
    type ReadyHeap = BinaryHeap<Reverse<((u64, u64, usize), usize)>>;
    let mut ready: ReadyHeap = BinaryHeap::new();
    let mut next_release = 0usize; // index into `jobs`
    let mut t: u64 = jobs.first().map_or(0, |j| j.release);
    let mut last_running: Option<usize> = None;

    loop {
        gas.tick()?;
        // Admit all jobs released by time t.
        while next_release < jobs.len() && jobs[next_release].release <= t {
            let id = next_release;
            ready.push(Reverse((key(policy, ranks, &jobs[id], id), id)));
            next_release += 1;
        }

        let Some(&Reverse((_, id))) = ready.peek() else {
            // Idle: jump to the next release, or finish.
            last_running = None;
            match jobs.get(next_release) {
                Some(j) => {
                    report.idle_time += j.release - t;
                    t = j.release;
                    continue;
                }
                None => break,
            }
        };

        // Preemption accounting: a different job than the one previously
        // running resumes while that one still has work left.
        if let Some(prev) = last_running {
            if prev != id && remaining[prev] > 0 {
                report.preemptions += 1;
            }
        }

        // Run the chosen job until it finishes or the next release.
        let finish_at = t + remaining[id];
        let horizon = jobs
            .get(next_release)
            .map_or(finish_at, |j| j.release.min(finish_at));
        let run_until = horizon.max(t + 1).min(finish_at); // always progress
        let ran = run_until - t;
        remaining[id] -= ran;
        report.busy_time += ran;
        if config.record_trace {
            match trace.last_mut() {
                Some(TraceSegment { end, task, .. }) if *end == t && *task == jobs[id].task => {
                    *end = run_until;
                }
                _ => trace.push(TraceSegment {
                    start: t,
                    end: run_until,
                    task: jobs[id].task,
                }),
            }
        }
        t = run_until;

        if remaining[id] == 0 {
            ready.pop();
            report.jobs_completed += 1;
            let job = &jobs[id];
            if report.max_response.len() <= job.task {
                report.max_response.resize(job.task + 1, 0);
            }
            let response = t - job.release;
            let slot = &mut report.max_response[job.task];
            *slot = (*slot).max(response);
            let lateness = t as i128 - job.deadline as i128;
            report.max_lateness = Some(report.max_lateness.map_or(lateness, |m| m.max(lateness)));
            if t > job.deadline {
                report.miss_count += 1;
                if report.misses.len() < config.max_recorded_misses {
                    report.misses.push(MissRecord {
                        task: job.task,
                        release: job.release,
                        deadline: job.deadline,
                        completion: t,
                    });
                }
            }
            last_running = None;
        } else {
            last_running = Some(id);
        }
    }
    Ok((report, trace))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn j(task: usize, release: u64, deadline: u64, work: u64) -> Job {
        Job {
            task,
            release,
            deadline,
            work,
        }
    }

    fn run_edf(jobs: &[Job]) -> (SimReport, Vec<TraceSegment>) {
        run(
            jobs,
            SchedPolicy::Edf,
            &[],
            EngineConfig {
                record_trace: true,
                max_recorded_misses: 64,
            },
        )
    }

    #[test]
    fn single_job_completes_on_time() {
        let (r, trace) = run_edf(&[j(0, 0, 10, 4)]);
        assert_eq!(r.jobs_completed, 1);
        assert!(r.all_deadlines_met());
        assert_eq!(r.busy_time, 4);
        assert_eq!(r.max_lateness, Some(-6));
        assert_eq!(
            trace,
            vec![TraceSegment {
                start: 0,
                end: 4,
                task: 0
            }]
        );
    }

    #[test]
    fn edf_prefers_earlier_deadline() {
        // Job B arrives later but with an earlier deadline → preempts A.
        let jobs = [j(0, 0, 100, 10), j(1, 2, 6, 3)];
        let (r, trace) = run_edf(&jobs);
        assert_eq!(r.jobs_completed, 2);
        assert!(r.all_deadlines_met());
        assert_eq!(r.preemptions, 1);
        assert_eq!(
            trace,
            vec![
                TraceSegment {
                    start: 0,
                    end: 2,
                    task: 0
                },
                TraceSegment {
                    start: 2,
                    end: 5,
                    task: 1
                },
                TraceSegment {
                    start: 5,
                    end: 13,
                    task: 0
                },
            ]
        );
    }

    #[test]
    fn fixed_priority_ignores_deadlines() {
        // Task 0 has higher rank (0) despite a later deadline.
        let jobs = [j(0, 0, 100, 10), j(1, 2, 6, 3)];
        let ranks = [0u64, 1];
        let (r, trace) = run(
            &jobs,
            SchedPolicy::RateMonotonic,
            &ranks,
            EngineConfig {
                record_trace: true,
                max_recorded_misses: 8,
            },
        );
        // Task 1 waits for task 0 → finishes at 13 > 6: one miss.
        assert_eq!(r.miss_count, 1);
        assert_eq!(r.misses[0].task, 1);
        assert_eq!(r.misses[0].completion, 13);
        assert_eq!(r.max_lateness, Some(7));
        assert_eq!(trace.len(), 2);
        assert_eq!(r.preemptions, 0);
    }

    #[test]
    fn idle_gaps_accounted() {
        let jobs = [j(0, 0, 5, 2), j(0, 10, 15, 2)];
        let (r, _) = run_edf(&jobs);
        assert_eq!(r.busy_time, 4);
        assert_eq!(r.idle_time, 8); // gap from 2 to 10
        assert!(r.all_deadlines_met());
    }

    #[test]
    fn empty_job_list() {
        let (r, trace) = run_edf(&[]);
        assert_eq!(r, SimReport::default());
        assert!(trace.is_empty());
    }

    #[test]
    fn miss_recording_caps_but_count_exact() {
        // 10 jobs all due at 1, each 2 units of work → 9 misses (the first
        // finishes at 2 > 1... actually all 10 miss).
        let jobs: Vec<Job> = (0..10).map(|k| j(k, 0, 1, 2)).collect();
        let (r, _) = run(
            &jobs,
            SchedPolicy::Edf,
            &[],
            EngineConfig {
                record_trace: false,
                max_recorded_misses: 3,
            },
        );
        assert_eq!(r.miss_count, 10);
        assert_eq!(r.misses.len(), 3);
    }

    #[test]
    fn determinism_with_ties() {
        // Identical jobs: tie-break by arena order, stable across runs.
        let jobs = [j(0, 0, 10, 3), j(1, 0, 10, 3)];
        let (_, t1) = run_edf(&jobs);
        let (_, t2) = run_edf(&jobs);
        assert_eq!(t1, t2);
        assert_eq!(t1[0].task, 0);
    }

    #[test]
    fn budgeted_run_agrees_then_exhausts() {
        use hetfeas_robust::Budget;
        let jobs: Vec<Job> = (0..20)
            .map(|k| j(k % 3, k as u64, k as u64 + 50, 2))
            .collect();
        let mut jobs = jobs;
        jobs.sort_by_key(|jb| jb.release);
        let cfg = EngineConfig::default();
        let unbudgeted = run(&jobs, SchedPolicy::Edf, &[], cfg);
        let mut gas = Budget::ops(1_000_000).gas();
        let budgeted =
            run_within(&jobs, SchedPolicy::Edf, &[], cfg, &mut gas).expect("ample budget");
        assert_eq!(unbudgeted.0, budgeted.0);
        let mut starved = Budget::ops(3).gas();
        assert_eq!(
            run_within(&jobs, SchedPolicy::Edf, &[], cfg, &mut starved),
            Err(hetfeas_robust::Exhaustion::Ops)
        );
    }

    #[test]
    fn trace_merges_contiguous_segments_of_same_task() {
        // A job interrupted by a release that does NOT preempt (lower
        // priority arrival) keeps one merged segment.
        let jobs = [j(0, 0, 4, 4), j(1, 2, 100, 1)];
        let (_, trace) = run_edf(&jobs);
        assert_eq!(
            trace,
            vec![
                TraceSegment {
                    start: 0,
                    end: 4,
                    task: 0
                },
                TraceSegment {
                    start: 4,
                    end: 5,
                    task: 1
                },
            ]
        );
    }
}
