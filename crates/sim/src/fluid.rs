//! The level algorithm (Horvath–Lam–Sethi 1977): a constructive,
//! exact-rational simulation of the *optimal migrative* scheduler on
//! uniform machines.
//!
//! The paper's LP (§II) characterizes what a migrative adversary can do;
//! `hetfeas_lp::level_feasible` decides it in closed form. This module
//! supplies the missing constructive piece: an event-driven simulation of
//! the level algorithm, which actually *builds* a feasible migrative
//! schedule whenever one exists. Property tests assert
//! `run_level_algorithm(..) completes ⇔ level prefix conditions hold` —
//! the closed form, the simplex LP, and this scheduler all agree.
//!
//! **Algorithm.** Jobs have remaining work ("levels"). At every instant the
//! k-th largest level is served by the k-th fastest machine; jobs with
//! *equal* levels share their machines equally (processor sharing), so the
//! schedule is the fluid limit — exact here because all quantities are
//! rational and we advance event-by-event:
//!
//! * a *merge* event when a faster-served group's level drops to the next
//!   group's level (they then share),
//! * a *completion* event when a group's level reaches zero,
//! * the *window end*.
//!
//! Between events every group shrinks linearly, so event times solve
//! linear equations over [`Ratio`]s — no rounding anywhere.

use hetfeas_model::Ratio;

/// One step of the fluid schedule: for `duration`, each group of jobs
/// (equal-level set) is served at an aggregate rate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FluidSlice {
    /// Slice length (time units).
    pub duration: Ratio,
    /// `(job indices in the group, per-job service rate)` for every active
    /// group during the slice.
    pub groups: Vec<(Vec<usize>, Ratio)>,
}

/// Result of running the level algorithm over a window.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LevelRun {
    /// True iff every job's demand completed within the window.
    pub completed: bool,
    /// Remaining work per job at the window end (all zero iff completed).
    pub remaining: Vec<Ratio>,
    /// The fluid schedule, slice by slice.
    pub slices: Vec<FluidSlice>,
}

impl LevelRun {
    /// Total work delivered across all slices (for conservation checks).
    pub fn delivered(&self) -> Ratio {
        self.slices
            .iter()
            .map(|s| {
                s.groups
                    .iter()
                    .map(|(members, rate)| {
                        Ratio::from_integer(members.len() as i128) * *rate * s.duration
                    })
                    .sum::<Ratio>()
            })
            .sum()
    }
}

/// Sorted (descending) view of current levels as groups of equal value.
/// Returns `(level, member job indices)` for non-zero levels.
fn groups_desc(levels: &[Ratio]) -> Vec<(Ratio, Vec<usize>)> {
    let mut idx: Vec<usize> = (0..levels.len())
        .filter(|&i| !levels[i].is_zero())
        .collect();
    idx.sort_by(|&a, &b| levels[b].cmp(&levels[a]).then(a.cmp(&b)));
    let mut out: Vec<(Ratio, Vec<usize>)> = Vec::new();
    for i in idx {
        match out.last_mut() {
            Some((lvl, members)) if *lvl == levels[i] => members.push(i),
            _ => out.push((levels[i], vec![i])),
        }
    }
    out
}

/// Run the level algorithm: jobs with `demands` work units on machines of
/// `speeds` (any order; sorted internally), over a window of length
/// `window`. Exact rational arithmetic throughout.
///
/// ```
/// use hetfeas_model::Ratio;
/// use hetfeas_sim::run_level_algorithm;
///
/// // Three 2-unit jobs, two unit machines, window 3: partitioning is
/// // pigeonholed but migration completes exactly.
/// let r = |n| Ratio::from_integer(n);
/// let run = run_level_algorithm(&[r(2), r(2), r(2)], &[r(1), r(1)], r(3));
/// assert!(run.completed);
/// assert_eq!(run.delivered(), r(6));
/// ```
///
/// Complexity: every event merges two groups or completes one, so there
/// are O(n) events, each O(n log n) — comfortably fast for the workloads
/// here.
pub fn run_level_algorithm(demands: &[Ratio], speeds: &[Ratio], window: Ratio) -> LevelRun {
    assert!(
        demands.iter().all(|d| *d >= Ratio::ZERO),
        "demands must be non-negative"
    );
    assert!(
        speeds.iter().all(|s| *s > Ratio::ZERO),
        "speeds must be positive"
    );
    assert!(window >= Ratio::ZERO);

    let mut speeds_desc: Vec<Ratio> = speeds.to_vec();
    speeds_desc.sort_by(|a, b| b.cmp(a));
    let mut levels: Vec<Ratio> = demands.to_vec();
    let mut elapsed = Ratio::ZERO;
    let mut slices = Vec::new();

    loop {
        let groups = groups_desc(&levels);
        if groups.is_empty() || elapsed >= window {
            break;
        }
        // Assign machine positions: group g covering sorted positions
        // [start, start+len) gets the aggregate speed of those machines
        // (positions beyond m get speed 0). Per-job rate = aggregate / len.
        let mut rates: Vec<Ratio> = Vec::with_capacity(groups.len());
        let mut pos = 0usize;
        for (_, members) in &groups {
            let len = members.len();
            let agg: Ratio = speeds_desc.iter().skip(pos).take(len).copied().sum();
            rates.push(agg / Ratio::from_integer(len as i128));
            pos += len;
        }

        // Next event: window end, a completion, or a merge of group g into
        // group g+1 (levels equalize — only possible when g shrinks
        // faster, i.e. rate[g] > rate[g+1]).
        let mut dt = window - elapsed;
        for (g, (level, _)) in groups.iter().enumerate() {
            if rates[g] > Ratio::ZERO {
                dt = dt.min(*level / rates[g]); // completion of group g
            }
            if g + 1 < groups.len() {
                let (next_level, _) = groups[g + 1];
                let rate_diff = rates[g] - rates[g + 1];
                if rate_diff > Ratio::ZERO {
                    dt = dt.min((*level - next_level) / rate_diff);
                }
            }
        }
        debug_assert!(dt >= Ratio::ZERO);
        if dt.is_zero() {
            // Degenerate (zero-length window remainder); stop.
            break;
        }

        // Apply the slice.
        let mut slice_groups = Vec::with_capacity(groups.len());
        for (g, (_, members)) in groups.iter().enumerate() {
            for &i in members {
                levels[i] -= rates[g] * dt;
                if levels[i] < Ratio::ZERO {
                    levels[i] = Ratio::ZERO; // guard exact-zero rounding (exact math: never negative)
                }
            }
            slice_groups.push((members.clone(), rates[g]));
        }
        slices.push(FluidSlice {
            duration: dt,
            groups: slice_groups,
        });
        elapsed += dt;
    }

    let completed = levels.iter().all(Ratio::is_zero);
    LevelRun {
        completed,
        remaining: levels,
        slices,
    }
}

/// Convenience: can the migrative level scheduler complete utilization-
/// demands `w_i · window` on the given machine speeds within `window`?
/// (For fluid per-window demands this is window-independent; `window = 1`
/// is canonical.)
pub fn level_schedulable(utilizations: &[Ratio], speeds: &[Ratio]) -> bool {
    run_level_algorithm(utilizations, speeds, Ratio::ONE).completed
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(n: i128, d: i128) -> Ratio {
        Ratio::new(n, d)
    }

    #[test]
    fn single_job_single_machine() {
        let run = run_level_algorithm(&[r(3, 1)], &[r(1, 1)], r(3, 1));
        assert!(run.completed);
        assert_eq!(run.slices.len(), 1);
        assert_eq!(run.slices[0].duration, r(3, 1));
        assert_eq!(run.delivered(), r(3, 1));
        // A shorter window fails with the exact remainder.
        let run = run_level_algorithm(&[r(3, 1)], &[r(1, 1)], r(2, 1));
        assert!(!run.completed);
        assert_eq!(run.remaining[0], r(1, 1));
    }

    #[test]
    fn migration_beats_partitioning() {
        // Three demands of 2 on two speed-... total 6, window 3, speeds
        // [1, 1]: capacity 6 exactly; partitioned would need 2+2=4 > 3 on
        // one machine, but migration completes (the classic m+1 jobs case).
        let run = run_level_algorithm(&[r(2, 1); 3], &[r(1, 1); 2], r(3, 1));
        assert!(run.completed, "remaining: {:?}", run.remaining);
        assert_eq!(run.delivered(), r(6, 1));
    }

    #[test]
    fn heavy_job_needs_fast_machine() {
        // Demand 3 in window 2 exceeds any one unit machine even with two
        // of them (a job cannot run on two machines at once: per-job rate
        // on the top position is 1).
        let run = run_level_algorithm(&[r(3, 1)], &[r(1, 1), r(1, 1)], r(2, 1));
        assert!(!run.completed);
        assert_eq!(run.remaining[0], r(1, 1));
        // A speed-2 machine handles it: 3/2 ≤ 2.
        let run = run_level_algorithm(&[r(3, 1)], &[r(2, 1), r(1, 1)], r(2, 1));
        assert!(run.completed);
    }

    #[test]
    fn levels_merge_then_share() {
        // Jobs 4 and 2 on speeds [2, 1], window 2: job A runs at 2, job B
        // at 1. After t=2? A: 4−2t, B: 2−t — levels meet when 4−2t = 2−t →
        // t=2 = window end. Shorten: window 3 with demands 4,2 → at t=2
        // levels are 0... recompute: meet at t=2 exactly when A=0? A=0 at
        // t=2, B=0 at t=2. Both complete at the window... use demands 5,2:
        // A at rate 2, B at 1: meet when 5−2t=2−t → t=3, levels 1? B would
        // be −1 before... B completes at t=2 first. Events: t=2 B done;
        // then A (level 1) gets the fast machine alone, done at 2.5.
        let run = run_level_algorithm(&[r(5, 1), r(2, 1)], &[r(2, 1), r(1, 1)], r(5, 2));
        assert!(run.completed);
        assert!(run.slices.len() >= 2);
        assert_eq!(run.delivered(), r(7, 1));
    }

    #[test]
    fn equal_levels_share_equally() {
        // Two equal demands on speeds [3, 1]: they share aggregate 4 at
        // rate 2 each — both complete 2 units of work in 1 time unit.
        let run = run_level_algorithm(&[r(2, 1), r(2, 1)], &[r(3, 1), r(1, 1)], r(1, 1));
        assert!(run.completed);
        assert_eq!(run.slices.len(), 1);
        let (members, rate) = &run.slices[0].groups[0];
        assert_eq!(members.len(), 2);
        assert_eq!(*rate, r(2, 1));
    }

    #[test]
    fn completion_matches_prefix_conditions_on_examples() {
        // w = (1.5, 1.5, 0.1), s = (2, 1, 1): feasible (cf. lp::level).
        let w = [r(3, 2), r(3, 2), r(1, 10)];
        let s = [r(2, 1), r(1, 1), r(1, 1)];
        assert!(level_schedulable(&w, &s));
        // w = (1.9, 1.9), s = (2, 1, 1): prefix-2 violated → infeasible.
        let w = [r(19, 10), r(19, 10)];
        assert!(!level_schedulable(&w, &s));
    }

    #[test]
    fn zero_window_and_empty_inputs() {
        let run = run_level_algorithm(&[r(1, 1)], &[r(1, 1)], Ratio::ZERO);
        assert!(!run.completed);
        let run = run_level_algorithm(&[], &[r(1, 1)], r(1, 1));
        assert!(run.completed);
        assert!(run.slices.is_empty());
        // Zero demands complete instantly.
        let run = run_level_algorithm(&[Ratio::ZERO, Ratio::ZERO], &[r(1, 1)], r(1, 1));
        assert!(run.completed);
    }

    #[test]
    fn work_conservation() {
        // Delivered work equals total demand when completed.
        let w = [r(7, 4), r(5, 3), r(1, 2), r(1, 5)];
        let s = [r(2, 1), r(3, 2), r(1, 1)];
        let run = run_level_algorithm(&w, &s, r(2, 1));
        assert!(run.completed);
        let total: Ratio = w.iter().copied().sum();
        assert_eq!(run.delivered(), total);
    }

    #[test]
    fn more_jobs_than_machines() {
        // 5 equal demands of 0.4 on 2 unit machines, window 1: total 2.0 =
        // capacity → must complete exactly.
        let w = [r(2, 5); 5];
        let s = [r(1, 1); 2];
        let run = run_level_algorithm(&w, &s, r(1, 1));
        assert!(run.completed, "remaining {:?}", run.remaining);
        assert_eq!(run.delivered(), r(2, 1));
    }
}
