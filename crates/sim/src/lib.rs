//! # hetfeas-sim
//!
//! Exact integer-time discrete-event simulation of preemptive EDF and
//! rate-monotonic scheduling on related machines — the workspace's
//! substitute for a hardware testbed (the paper has none; `DESIGN.md`
//! documents the substitution).
//!
//! * [`engine`] — the event-driven single-machine core (releases and
//!   completions are the only events; everything lands on integers).
//! * [`machine`] — scaling a task set onto a rational-speed machine.
//! * [`partition_sim`] — replaying a partitioned [`Assignment`] machine by
//!   machine (partitioned ⇒ machines are independent).
//! * [`source`] — synchronous periodic (critical instant) and jittered
//!   sporadic release patterns.
//! * [`fluid`] — the level algorithm: a constructive exact-rational
//!   simulation of the optimal *migrative* scheduler (the LP adversary).
//! * [`global_edf`] — global EDF on identical machines (the non-optimal
//!   migrative baseline; exhibits the Dhall effect — experiment E15).
//!
//! [`Assignment`]: hetfeas_partition::Assignment

#![warn(missing_docs)]

pub mod engine;
pub mod fluid;
pub mod gantt;
pub mod global_edf;
pub mod job;
pub mod machine;
pub mod partition_sim;
pub mod policy;
pub mod source;

pub use engine::{EngineConfig, TraceSegment};
pub use fluid::{level_schedulable, run_level_algorithm, FluidSlice, LevelRun};
pub use gantt::{observed_utilization, per_task_stats, render_gantt, TaskTraceStats};
pub use global_edf::simulate_global_edf;
pub use job::{Job, MissRecord, SimReport};
pub use machine::{
    scaled_jobs, scaled_jobs_within, simulate_machine, simulate_machine_traced,
    simulate_machine_traced_within, simulate_machine_within, validation_horizon,
};
pub use partition_sim::{
    simulate_partition, simulate_partition_within, validate_assignment, validate_assignment_within,
};
pub use policy::SchedPolicy;
pub use source::{releases, ReleasePattern};
