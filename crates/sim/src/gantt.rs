//! Trace analysis and text Gantt rendering.
//!
//! The engine can record an execution trace ([`TraceSegment`]); this module
//! turns traces into per-task statistics and compact ASCII Gantt charts —
//! handy in examples, debugging, and the CLI's verbose output.

use crate::engine::TraceSegment;

/// Per-task execution statistics extracted from a trace.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct TaskTraceStats {
    /// Total scaled ticks the task executed.
    pub execution: u64,
    /// Number of distinct execution segments (≥ number of dispatches).
    pub segments: u64,
    /// First tick the task ran, if ever.
    pub first_start: Option<u64>,
    /// Last tick the task ran (exclusive end).
    pub last_end: Option<u64>,
}

/// Aggregate a trace into per-task stats (indexed by task id; the vector
/// is sized to the largest task index + 1).
pub fn per_task_stats(trace: &[TraceSegment]) -> Vec<TaskTraceStats> {
    let n = trace.iter().map(|s| s.task + 1).max().unwrap_or(0);
    let mut out = vec![TaskTraceStats::default(); n];
    for seg in trace {
        let st = &mut out[seg.task];
        st.execution += seg.end - seg.start;
        st.segments += 1;
        st.first_start = Some(st.first_start.map_or(seg.start, |f| f.min(seg.start)));
        st.last_end = Some(st.last_end.map_or(seg.end, |l| l.max(seg.end)));
    }
    out
}

/// Fraction of `[0, horizon)` covered by execution (machine utilization as
/// observed in the trace).
pub fn observed_utilization(trace: &[TraceSegment], horizon: u64) -> f64 {
    if horizon == 0 {
        return 0.0;
    }
    let busy: u64 = trace
        .iter()
        .map(|s| s.end.min(horizon).saturating_sub(s.start.min(horizon)))
        .sum();
    busy as f64 / horizon as f64
}

/// Render a trace as an ASCII Gantt chart: one row per task, `width`
/// character columns spanning `[0, horizon)`. A cell shows the task's
/// glyph when the task runs during (most of) that slice, `·` when idle.
///
/// Intended for quick terminal inspection, not exact visualization: each
/// column aggregates `horizon/width` ticks and is marked if the task runs
/// at the column's midpoint.
pub fn render_gantt(trace: &[TraceSegment], horizon: u64, width: usize) -> String {
    let n_tasks = trace.iter().map(|s| s.task + 1).max().unwrap_or(0);
    if n_tasks == 0 || horizon == 0 || width == 0 {
        return String::new();
    }
    let glyph = |task: usize| -> char {
        let alphabet = "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz";
        alphabet
            .chars()
            .nth(task % alphabet.len())
            .expect("non-empty alphabet")
    };
    let mut out = String::new();
    for task in 0..n_tasks {
        out.push_str(&format!("τ{task:<3} "));
        for col in 0..width {
            // Midpoint tick of the column.
            let t = (2 * col as u128 + 1) * horizon as u128 / (2 * width as u128);
            let t = t as u64;
            let running = trace
                .iter()
                .any(|s| s.task == task && s.start <= t && t < s.end);
            out.push(if running { glyph(task) } else { '·' });
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seg(task: usize, start: u64, end: u64) -> TraceSegment {
        TraceSegment { task, start, end }
    }

    #[test]
    fn stats_aggregate() {
        let trace = vec![seg(0, 0, 2), seg(1, 2, 5), seg(0, 5, 13)];
        let stats = per_task_stats(&trace);
        assert_eq!(stats.len(), 2);
        assert_eq!(stats[0].execution, 10);
        assert_eq!(stats[0].segments, 2);
        assert_eq!(stats[0].first_start, Some(0));
        assert_eq!(stats[0].last_end, Some(13));
        assert_eq!(stats[1].execution, 3);
        assert_eq!(stats[1].segments, 1);
    }

    #[test]
    fn empty_trace() {
        assert!(per_task_stats(&[]).is_empty());
        assert_eq!(observed_utilization(&[], 100), 0.0);
        assert_eq!(render_gantt(&[], 100, 10), "");
    }

    #[test]
    fn utilization_measured() {
        let trace = vec![seg(0, 0, 50)];
        assert_eq!(observed_utilization(&trace, 100), 0.5);
        assert_eq!(observed_utilization(&trace, 0), 0.0);
        // Segments past the horizon are clipped.
        let trace = vec![seg(0, 50, 150)];
        assert_eq!(observed_utilization(&trace, 100), 0.5);
    }

    #[test]
    fn gantt_shape() {
        let trace = vec![seg(0, 0, 5), seg(1, 5, 10)];
        let g = render_gantt(&trace, 10, 10);
        let lines: Vec<&str> = g.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].starts_with("τ0"));
        // Task 0 occupies the first half of its row, idle after.
        let row0: Vec<char> = lines[0].chars().skip(5).collect();
        assert_eq!(row0[..5].iter().collect::<String>(), "AAAAA");
        assert_eq!(row0[5..].iter().collect::<String>(), "·····");
        let row1: Vec<char> = lines[1].chars().skip(5).collect();
        assert_eq!(row1[5..].iter().collect::<String>(), "BBBBB");
    }

    #[test]
    fn gantt_from_real_engine_trace() {
        use crate::engine::{run, EngineConfig};
        use crate::job::Job;
        use crate::policy::SchedPolicy;
        let jobs = [
            Job {
                task: 0,
                release: 0,
                deadline: 100,
                work: 10,
            },
            Job {
                task: 1,
                release: 2,
                deadline: 6,
                work: 3,
            },
        ];
        let (_, trace) = run(
            &jobs,
            SchedPolicy::Edf,
            &[],
            EngineConfig {
                record_trace: true,
                max_recorded_misses: 8,
            },
        );
        let stats = per_task_stats(&trace);
        assert_eq!(stats[0].execution, 10);
        assert_eq!(stats[1].execution, 3);
        let g = render_gantt(&trace, 13, 13);
        assert!(g.contains('A') && g.contains('B'));
        // Machine fully busy until t = 13.
        assert!((observed_utilization(&trace, 13) - 1.0).abs() < 1e-12);
    }
}
