//! Global EDF on identical unit-speed machines (baseline, extension).
//!
//! The paper studies *partitioned* scheduling; the textbook alternative is
//! global scheduling, where the `m` earliest-deadline ready jobs run on the
//! `m` machines and jobs migrate freely. Global EDF is **not** optimal on
//! multiprocessors — the Dhall effect makes it miss deadlines at total
//! utilization barely above 1 regardless of `m` — which is a standard
//! motivation for partitioned approaches like the paper's. Experiment E15
//! quantifies this against first-fit.
//!
//! Restricted to identical unit-speed machines so that every event lands
//! on an integer tick (the general related-machine global EDF needs
//! rational event times and is deliberately out of scope — the *optimal*
//! migrative scheduler for that case is [`crate::fluid`]).

use crate::job::{Job, MissRecord, SimReport};
use crate::source::{releases, ReleasePattern};
use hetfeas_model::TaskSet;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Simulate global EDF of `tasks` on `m` identical unit-speed machines
/// over `horizon` ticks of releases.
///
/// At every event (release or completion) the `m` pending jobs with the
/// earliest absolute deadlines run, each at rate 1; ties break by release
/// then job id (deterministic).
pub fn simulate_global_edf(
    tasks: &TaskSet,
    m: usize,
    pattern: ReleasePattern,
    horizon: u64,
) -> SimReport {
    assert!(m > 0, "at least one machine");
    let jobs: Vec<Job> = releases(tasks, pattern, horizon)
        .into_iter()
        .map(|(task, release)| Job {
            task,
            release,
            deadline: release + tasks[task].deadline(),
            work: tasks[task].wcet(),
        })
        .collect();

    let mut report = SimReport::default();
    let mut remaining: Vec<u64> = jobs.iter().map(|j| j.work).collect();
    // Pending jobs keyed by (deadline, release, id).
    let mut pending: BinaryHeap<Reverse<(u64, u64, usize)>> = BinaryHeap::new();
    let mut next_release = 0usize;
    let mut t: u64 = jobs.first().map_or(0, |j| j.release);
    let mut running_prev: Vec<usize> = Vec::new();

    loop {
        while next_release < jobs.len() && jobs[next_release].release <= t {
            let id = next_release;
            pending.push(Reverse((jobs[id].deadline, jobs[id].release, id)));
            next_release += 1;
        }
        if pending.is_empty() {
            match jobs.get(next_release) {
                Some(j) => {
                    report.idle_time += (j.release - t) * m as u64;
                    t = j.release;
                    continue;
                }
                None => break,
            }
        }
        // Select the m earliest-deadline jobs.
        let mut running: Vec<usize> = Vec::with_capacity(m);
        let mut stash: Vec<Reverse<(u64, u64, usize)>> = Vec::new();
        while running.len() < m {
            match pending.pop() {
                Some(Reverse(key)) => {
                    running.push(key.2);
                    stash.push(Reverse(key));
                }
                None => break,
            }
        }
        for key in stash {
            pending.push(key);
        }

        // Preemptions: a previously-running, still-unfinished job displaced
        // from the running set.
        for &prev in &running_prev {
            if remaining[prev] > 0 && !running.contains(&prev) {
                report.preemptions += 1;
            }
        }

        // Advance to the next event.
        let min_remaining = running
            .iter()
            .map(|&id| remaining[id])
            .min()
            .expect("non-empty");
        let mut dt = min_remaining;
        if let Some(j) = jobs.get(next_release) {
            dt = dt.min(j.release - t);
        }
        debug_assert!(dt > 0);
        for &id in &running {
            remaining[id] -= dt;
        }
        report.busy_time += dt * running.len() as u64;
        report.idle_time += dt * (m - running.len()) as u64;
        t += dt;

        // Complete finished jobs (remove from pending).
        let mut survivors: BinaryHeap<Reverse<(u64, u64, usize)>> = BinaryHeap::new();
        while let Some(Reverse(key)) = pending.pop() {
            let id = key.2;
            if remaining[id] == 0 {
                report.jobs_completed += 1;
                let job = &jobs[id];
                if report.max_response.len() <= job.task {
                    report.max_response.resize(job.task + 1, 0);
                }
                let response = t - job.release;
                let slot = &mut report.max_response[job.task];
                *slot = (*slot).max(response);
                let lateness = t as i128 - job.deadline as i128;
                report.max_lateness =
                    Some(report.max_lateness.map_or(lateness, |x| x.max(lateness)));
                if t > job.deadline {
                    report.miss_count += 1;
                    if report.misses.len() < 64 {
                        report.misses.push(MissRecord {
                            task: job.task,
                            release: job.release,
                            deadline: job.deadline,
                            completion: t,
                        });
                    }
                }
            } else {
                survivors.push(Reverse(key));
            }
        }
        pending = survivors;
        running_prev = running;
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_machine_matches_uniprocessor_edf() {
        // util exactly 1.0: EDF meets everything.
        let ts = TaskSet::from_pairs([(1, 2), (1, 3), (1, 6)]).unwrap();
        let r = simulate_global_edf(&ts, 1, ReleasePattern::Periodic, 12);
        assert!(r.all_deadlines_met());
        assert_eq!(r.idle_time, 0);
    }

    #[test]
    fn parallelism_helps_light_tasks() {
        // Four tasks of util 0.5 on 2 machines: global EDF schedules them.
        let ts = TaskSet::from_pairs(vec![(1, 2); 4]).unwrap();
        let r = simulate_global_edf(&ts, 2, ReleasePattern::Periodic, 20);
        assert!(r.all_deadlines_met(), "misses: {:?}", r.misses);
    }

    #[test]
    fn dhall_effect() {
        // The classic pathology: m light short-period tasks + one heavy
        // task of utilization 1. Total utilization 1 + ε, yet global EDF
        // on m machines misses: at t = 0 the light jobs' earlier deadlines
        // claim every machine, the heavy job starts one tick late, and a
        // full-utilization task has no slack to give.
        let ts = TaskSet::from_pairs([(1, 10), (1, 10), (12, 12)]).unwrap();
        let r = simulate_global_edf(&ts, 2, ReleasePattern::Periodic, 60);
        assert!(
            !r.all_deadlines_met(),
            "Dhall instance must miss under global EDF"
        );
        assert_eq!(r.misses[0].task, 2, "the heavy task misses");
        // The same set is trivially partitioned-feasible: heavy task alone
        // on one machine (12/12 = 1), both light tasks on the other (0.2).
        use hetfeas_model::{Augmentation, Platform};
        use hetfeas_partition::{first_fit, EdfAdmission};
        let p = Platform::identical(2).unwrap();
        assert!(first_fit(&ts, &p, Augmentation::NONE, &EdfAdmission).is_feasible());
    }

    #[test]
    fn overload_misses() {
        let ts = TaskSet::from_pairs([(2, 2), (2, 2), (1, 2)]).unwrap(); // util 2.5 on 2
        let r = simulate_global_edf(&ts, 2, ReleasePattern::Periodic, 10);
        assert!(!r.all_deadlines_met());
    }

    #[test]
    fn work_conservation_and_counters() {
        let ts = TaskSet::from_pairs([(1, 4), (2, 8)]).unwrap();
        let r = simulate_global_edf(&ts, 2, ReleasePattern::Periodic, 8);
        // Releases: t0 ×2 + t4 → work = 1+1+2 = 4.
        assert_eq!(r.busy_time, 4);
        assert_eq!(r.jobs_completed, 3);
        assert!(r.all_deadlines_met());
    }

    #[test]
    fn empty_inputs() {
        let r = simulate_global_edf(&TaskSet::empty(), 3, ReleasePattern::Periodic, 10);
        assert_eq!(r, SimReport::default());
    }

    #[test]
    #[should_panic(expected = "at least one machine")]
    fn zero_machines_rejected() {
        let ts = TaskSet::from_pairs([(1, 2)]).unwrap();
        let _ = simulate_global_edf(&ts, 0, ReleasePattern::Periodic, 10);
    }
}
