//! Jobs and simulation reports.
//!
//! All quantities are in *scaled ticks*: for a machine of rational speed
//! `num/den`, real ticks are multiplied by `num` and work units by `den`,
//! so one scaled work unit takes exactly one scaled tick — every schedule
//! event lands on an integer and the simulation is exact (see `DESIGN.md`
//! §10).

/// One job instance released by a task.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Job {
    /// Index of the generating task (within the simulated machine's set).
    pub task: usize,
    /// Release time (scaled ticks).
    pub release: u64,
    /// Absolute deadline (scaled ticks).
    pub deadline: u64,
    /// Total execution demand (scaled work units = scaled ticks).
    pub work: u64,
}

/// A deadline miss observed by the simulator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MissRecord {
    /// Task index.
    pub task: usize,
    /// Release time of the offending job (scaled ticks).
    pub release: u64,
    /// Its absolute deadline (scaled ticks).
    pub deadline: u64,
    /// When it actually completed (scaled ticks).
    pub completion: u64,
}

/// Aggregate outcome of simulating one machine (or, summed, a platform).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SimReport {
    /// Number of jobs that completed.
    pub jobs_completed: u64,
    /// Deadline misses, in completion order (capped by the engine's
    /// `max_recorded_misses`).
    pub misses: Vec<MissRecord>,
    /// Total number of misses (even beyond the recorded cap).
    pub miss_count: u64,
    /// Scaled ticks the processor spent executing.
    pub busy_time: u64,
    /// Scaled ticks the processor idled between the first release and the
    /// last completion.
    pub idle_time: u64,
    /// Maximum lateness `completion − deadline` over all jobs (negative
    /// when everything finishes early; `None` when no job completed).
    pub max_lateness: Option<i128>,
    /// Number of preemptions (a running job displaced before completing).
    pub preemptions: u64,
    /// Largest observed response time (completion − release, scaled ticks)
    /// per task index; 0 for tasks that completed no job. Sized to the
    /// largest task index seen.
    pub max_response: Vec<u64>,
}

impl SimReport {
    /// True when no job missed its deadline.
    pub fn all_deadlines_met(&self) -> bool {
        self.miss_count == 0
    }

    /// Merge another machine's report into this one (for platform-level
    /// aggregation). `max_lateness` takes the max; counters add.
    pub fn absorb(&mut self, other: &SimReport) {
        self.jobs_completed += other.jobs_completed;
        self.miss_count += other.miss_count;
        self.misses.extend_from_slice(&other.misses);
        self.busy_time += other.busy_time;
        self.idle_time += other.idle_time;
        self.max_lateness = match (self.max_lateness, other.max_lateness) {
            (Some(a), Some(b)) => Some(a.max(b)),
            (a, b) => a.or(b),
        };
        self.preemptions += other.preemptions;
        // Per-machine task indices are local; platform-level aggregation
        // keeps the pairwise max by position (callers that need global
        // task identities should query per-machine reports instead).
        if self.max_response.len() < other.max_response.len() {
            self.max_response.resize(other.max_response.len(), 0);
        }
        for (a, &b) in self.max_response.iter_mut().zip(&other.max_response) {
            *a = (*a).max(b);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_report_is_clean() {
        let r = SimReport::default();
        assert!(r.all_deadlines_met());
        assert_eq!(r.jobs_completed, 0);
    }

    #[test]
    fn absorb_merges() {
        let mut a = SimReport {
            jobs_completed: 2,
            miss_count: 1,
            misses: vec![MissRecord {
                task: 0,
                release: 0,
                deadline: 5,
                completion: 7,
            }],
            busy_time: 10,
            idle_time: 1,
            max_lateness: Some(2),
            preemptions: 1,
            max_response: vec![7],
        };
        let b = SimReport {
            jobs_completed: 3,
            miss_count: 0,
            misses: vec![],
            busy_time: 4,
            idle_time: 0,
            max_lateness: Some(-3),
            preemptions: 0,
            max_response: vec![2, 4],
        };
        a.absorb(&b);
        assert_eq!(a.jobs_completed, 5);
        assert_eq!(a.miss_count, 1);
        assert_eq!(a.busy_time, 14);
        assert_eq!(a.max_lateness, Some(2));
        assert_eq!(a.max_response, vec![7, 4]);
        assert!(!a.all_deadlines_met());
    }
}
