//! Job release patterns.
//!
//! Sporadic tasks may release *at most* every `p_i` ticks. The synchronous
//! periodic pattern (all tasks release at 0 and exactly every period) is
//! the worst case for implicit-deadline feasibility, so validation uses it;
//! the jittered pattern exercises genuinely sporadic arrivals.

use hetfeas_model::TaskSet;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// How jobs are released.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ReleasePattern {
    /// Synchronous periodic: task `i` releases at `0, p_i, 2p_i, …`
    /// (the critical instant — worst case).
    Periodic,
    /// Sporadic: consecutive releases are separated by
    /// `p_i + U(0, jitter_frac·p_i)` ticks, seeded for reproducibility.
    Sporadic {
        /// Extra inter-arrival slack as a fraction of the period.
        jitter_frac: f64,
        /// RNG seed.
        seed: u64,
    },
}

/// Generate all `(task, release_tick)` pairs with `release < horizon`
/// (unscaled ticks), sorted by release time (ties by task index).
pub fn releases(tasks: &TaskSet, pattern: ReleasePattern, horizon: u64) -> Vec<(usize, u64)> {
    let mut out = Vec::new();
    match pattern {
        ReleasePattern::Periodic => {
            for (i, t) in tasks.iter().enumerate() {
                let mut r = 0u64;
                while r < horizon {
                    out.push((i, r));
                    match r.checked_add(t.period()) {
                        Some(next) => r = next,
                        None => break,
                    }
                }
            }
        }
        ReleasePattern::Sporadic { jitter_frac, seed } => {
            assert!(
                (0.0..=10.0).contains(&jitter_frac),
                "jitter fraction out of sane range"
            );
            for (i, t) in tasks.iter().enumerate() {
                // Independent stream per task so adding tasks never
                // perturbs the others.
                let mut rng = StdRng::seed_from_u64(seed ^ (i as u64).wrapping_mul(0x9E37_79B9));
                let mut r = 0u64;
                while r < horizon {
                    out.push((i, r));
                    let jitter = (rng.gen::<f64>() * jitter_frac * t.period() as f64) as u64;
                    match r
                        .checked_add(t.period())
                        .and_then(|x| x.checked_add(jitter))
                    {
                        Some(next) => r = next,
                        None => break,
                    }
                }
            }
        }
    }
    out.sort_unstable_by_key(|&(task, rel)| (rel, task));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn periodic_releases_every_period() {
        let ts = TaskSet::from_pairs([(1, 4), (1, 6)]).unwrap();
        let r = releases(&ts, ReleasePattern::Periodic, 12);
        assert_eq!(r, vec![(0, 0), (1, 0), (0, 4), (1, 6), (0, 8)],);
    }

    #[test]
    fn horizon_is_exclusive() {
        let ts = TaskSet::from_pairs([(1, 4)]).unwrap();
        let r = releases(&ts, ReleasePattern::Periodic, 4);
        assert_eq!(r, vec![(0, 0)]);
    }

    #[test]
    fn sporadic_gaps_at_least_period() {
        let ts = TaskSet::from_pairs([(1, 10), (2, 25)]).unwrap();
        let r = releases(
            &ts,
            ReleasePattern::Sporadic {
                jitter_frac: 0.5,
                seed: 99,
            },
            1000,
        );
        for task in 0..2 {
            let times: Vec<u64> = r
                .iter()
                .filter(|(t, _)| *t == task)
                .map(|&(_, x)| x)
                .collect();
            assert!(!times.is_empty());
            let p = ts[task].period();
            for w in times.windows(2) {
                assert!(w[1] - w[0] >= p, "sporadic gap below period");
                assert!(w[1] - w[0] <= p + p / 2 + 1, "jitter exceeded bound");
            }
        }
    }

    #[test]
    fn sporadic_is_deterministic_per_seed() {
        let ts = TaskSet::from_pairs([(1, 10)]).unwrap();
        let p = ReleasePattern::Sporadic {
            jitter_frac: 1.0,
            seed: 5,
        };
        assert_eq!(releases(&ts, p, 500), releases(&ts, p, 500));
    }

    #[test]
    fn zero_jitter_sporadic_equals_periodic() {
        let ts = TaskSet::from_pairs([(1, 7), (1, 11)]).unwrap();
        let s = releases(
            &ts,
            ReleasePattern::Sporadic {
                jitter_frac: 0.0,
                seed: 1,
            },
            200,
        );
        let p = releases(&ts, ReleasePattern::Periodic, 200);
        assert_eq!(s, p);
    }

    #[test]
    fn output_sorted_by_release() {
        let ts = TaskSet::from_pairs([(1, 3), (1, 5), (1, 7)]).unwrap();
        let r = releases(&ts, ReleasePattern::Periodic, 100);
        for w in r.windows(2) {
            assert!(w[0].1 <= w[1].1);
        }
    }
}
