//! Scheduling policies for the single-machine engine.

use hetfeas_model::TaskSet;

/// Which preemptive scheduler runs on the machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SchedPolicy {
    /// Earliest-Deadline-First: dynamic priority by absolute deadline.
    Edf,
    /// Rate-monotonic: static priority by period (smaller period = higher
    /// priority; ties by task index), the paper's RMS.
    RateMonotonic,
}

impl SchedPolicy {
    /// Static priority rank per task (lower = higher priority). For EDF
    /// the rank is unused (dynamic priorities), so the identity is
    /// returned.
    pub fn ranks(&self, tasks: &TaskSet) -> Vec<u64> {
        match self {
            SchedPolicy::Edf => (0..tasks.len() as u64).collect(),
            SchedPolicy::RateMonotonic => {
                let order = hetfeas_analysis_rank(tasks);
                let mut ranks = vec![0u64; tasks.len()];
                for (rank, &task) in order.iter().enumerate() {
                    ranks[task] = rank as u64;
                }
                ranks
            }
        }
    }

    /// Label for tables.
    pub fn name(&self) -> &'static str {
        match self {
            SchedPolicy::Edf => "EDF",
            SchedPolicy::RateMonotonic => "RMS",
        }
    }
}

/// Rate-monotonic order (period ascending, ties by index). Local copy of
/// `hetfeas_analysis::rm_priority_order` to keep this crate's dependency
/// surface minimal (the definitions must — and are tested to — agree).
fn hetfeas_analysis_rank(tasks: &TaskSet) -> Vec<usize> {
    let mut idx: Vec<usize> = (0..tasks.len()).collect();
    idx.sort_by(|&a, &b| tasks[a].period().cmp(&tasks[b].period()).then(a.cmp(&b)));
    idx
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rm_ranks_by_period() {
        let ts = TaskSet::from_pairs([(1, 10), (1, 5), (1, 10), (1, 2)]).unwrap();
        // Periods 10,5,10,2 → priority order: 3 (p=2), 1 (p=5), 0, 2.
        assert_eq!(SchedPolicy::RateMonotonic.ranks(&ts), vec![2, 1, 3, 0]);
    }

    #[test]
    fn edf_ranks_are_identity_placeholder() {
        let ts = TaskSet::from_pairs([(1, 10), (1, 5)]).unwrap();
        assert_eq!(SchedPolicy::Edf.ranks(&ts), vec![0, 1]);
    }

    #[test]
    fn names() {
        assert_eq!(SchedPolicy::Edf.name(), "EDF");
        assert_eq!(SchedPolicy::RateMonotonic.name(), "RMS");
    }
}
