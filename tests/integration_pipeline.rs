//! End-to-end integration: workload generation → feasibility test →
//! adversary oracles → simulator, spanning every crate via the facade.

use hetfeas::analysis::rta_schedulable;
use hetfeas::lp::{lp_feasible, lp_feasible_simplex, solve_paper_lp};
use hetfeas::model::{Augmentation, Platform, Ratio, TaskSet};
use hetfeas::partition::{
    exact_partition_edf, first_fit, EdfAdmission, ExactOutcome, RmsLlAdmission,
};
use hetfeas::sim::{validate_assignment, SchedPolicy};
use hetfeas::workload::{PeriodMenu, PlatformSpec, UtilizationSampler, WorkloadSpec};

fn family(u_norm: f64) -> WorkloadSpec {
    WorkloadSpec {
        n_tasks: 10,
        normalized_utilization: u_norm,
        platform: PlatformSpec::BigLittle {
            big: 1,
            little: 3,
            ratio: 3,
        },
        sampler: UtilizationSampler::UUniFastCapped,
        periods: PeriodMenu::standard(),
    }
}

/// The full soundness chain on random instances:
/// FF accepted ⇒ simulator-clean; FF@2 rejected ⇒ exact-partition
/// infeasible ⇒ LP may still accept; FF@2.98 rejected ⇒ LP infeasible.
#[test]
fn soundness_chain_edf() {
    let spec = family(0.9);
    for i in 0..40 {
        let Some(inst) = spec.generate(424242, i) else {
            continue;
        };
        let (tasks, platform) = (&inst.tasks, &inst.platform);

        // 1. Acceptance at α = 1 ⇒ zero misses in simulation.
        if let Some(a) = first_fit(tasks, platform, Augmentation::NONE, &EdfAdmission).assignment()
        {
            let report = validate_assignment(tasks, platform, a, Ratio::ONE, SchedPolicy::Edf)
                .expect("simulate");
            assert_eq!(
                report.miss_count, 0,
                "accepted partition missed: instance {i}"
            );
        }

        // 2. Theorem I.1: rejection at α = 2 ⇒ no partitioned schedule.
        if !first_fit(
            tasks,
            platform,
            Augmentation::EDF_VS_PARTITIONED,
            &EdfAdmission,
        )
        .is_feasible()
        {
            if let ExactOutcome::Feasible(_) = exact_partition_edf(tasks, platform, 4_000_000) {
                panic!("Theorem I.1 violated on instance {i}: {tasks}")
            }
        }

        // 3. Theorem I.3: rejection at α = 2.98 ⇒ LP infeasible.
        if !first_fit(tasks, platform, Augmentation::EDF_VS_ANY, &EdfAdmission).is_feasible() {
            assert!(
                !lp_feasible(tasks, platform),
                "Theorem I.3 violated on instance {i}: {tasks}"
            );
        }
    }
}

/// The RMS soundness chain (Theorems I.2/I.4) plus simulator validation.
#[test]
fn soundness_chain_rms() {
    let spec = family(0.6);
    for i in 0..30 {
        let Some(inst) = spec.generate(777, i) else {
            continue;
        };
        let (tasks, platform) = (&inst.tasks, &inst.platform);

        if let Some(a) =
            first_fit(tasks, platform, Augmentation::NONE, &RmsLlAdmission).assignment()
        {
            let report =
                validate_assignment(tasks, platform, a, Ratio::ONE, SchedPolicy::RateMonotonic)
                    .expect("simulate");
            assert_eq!(
                report.miss_count, 0,
                "accepted RMS partition missed: instance {i}"
            );
            // And per machine, exact RTA agrees with acceptance.
            for m in 0..platform.len() {
                let subset = a.taskset_on(m, tasks);
                assert!(
                    rta_schedulable(&subset, platform.machine(m).speed()),
                    "LL-admitted machine fails RTA on instance {i}"
                );
            }
        }

        // Theorem I.4: rejection at α = 3.34 ⇒ LP infeasible.
        if !first_fit(tasks, platform, Augmentation::RMS_VS_ANY, &RmsLlAdmission).is_feasible() {
            assert!(
                !lp_feasible(tasks, platform),
                "Theorem I.4 violated on instance {i}"
            );
        }
    }
}

/// The two independent LP oracles agree on random instances, and solved
/// points satisfy the paper's constraints.
#[test]
fn lp_oracles_agree_end_to_end() {
    for (j, u) in [0.6, 0.9, 1.0, 1.1].into_iter().enumerate() {
        let spec = WorkloadSpec {
            n_tasks: 6,
            ..family(u)
        };
        for i in 0..10 {
            let Some(inst) = spec.generate(31337 + j as u64, i) else {
                continue;
            };
            let closed = lp_feasible(&inst.tasks, &inst.platform);
            let simplex = lp_feasible_simplex(&inst.tasks, &inst.platform);
            // Boundary instances may classify differently within f64
            // tolerance; allow disagreement only when the level margin is
            // tiny.
            if closed != simplex {
                let beta = hetfeas::lp::level_scaling_factor(&inst.tasks, &inst.platform);
                assert!(
                    (beta - 1.0).abs() < 1e-6,
                    "oracles disagree away from the boundary (β = {beta})"
                );
                continue;
            }
            if closed {
                let point = solve_paper_lp(&inst.tasks, &inst.platform).expect("simplex point");
                assert!(point.validate(&inst.tasks, &inst.platform, 1e-6));
            }
        }
    }
}

/// Augmentation monotonicity of the full pipeline: once accepted at α, a
/// set stays accepted at every larger α (checked across the API surface).
#[test]
fn acceptance_monotone_in_alpha() {
    let spec = family(0.95);
    for i in 0..20 {
        let Some(inst) = spec.generate(99, i) else {
            continue;
        };
        let alphas = [1.0, 1.3, 1.7, 2.0, 2.5, 3.0];
        let mut accepted_before = false;
        for &a in &alphas {
            let ok = first_fit(
                &inst.tasks,
                &inst.platform,
                Augmentation::new(a).unwrap(),
                &EdfAdmission,
            )
            .is_feasible();
            assert!(
                !accepted_before || ok,
                "acceptance not monotone at α = {a} on instance {i}"
            );
            accepted_before = accepted_before || ok;
        }
    }
}

/// Determinism: the same seed regenerates byte-identical outcomes through
/// the whole pipeline.
#[test]
fn pipeline_is_deterministic() {
    let spec = family(0.8);
    let run = || {
        let inst = spec.generate(5150, 3).unwrap();
        let out = first_fit(
            &inst.tasks,
            &inst.platform,
            Augmentation::NONE,
            &EdfAdmission,
        );
        format!("{:?}", out)
    };
    assert_eq!(run(), run());
}

/// The facade re-exports compose: build a platform three ways and get the
/// same answer.
#[test]
fn facade_types_interoperate() {
    let t1 = TaskSet::from_pairs([(1, 2), (1, 4)]).unwrap();
    let p_int = Platform::from_int_speeds([1, 2]).unwrap();
    let p_f64 = Platform::from_f64_speeds([1.0, 2.0]).unwrap();
    assert_eq!(p_int, p_f64);
    assert!(first_fit(&t1, &p_int, Augmentation::NONE, &EdfAdmission).is_feasible());
}
