//! End-to-end validation of semi-partitioned splitting: every accepted
//! placement — whole tasks and split pieces alike — is replayed in the
//! exact simulator machine by machine, under the sporadic abstraction the
//! analysis uses (each piece an independent constrained-deadline task).

use hetfeas::model::{Augmentation, Platform, Task, TaskSet};
use hetfeas::partition::{first_fit, semi_partition, EdfAdmission, Placement, SplitOutcome};
use hetfeas::sim::{simulate_machine, validation_horizon, ReleasePattern, SchedPolicy};
use hetfeas::workload::{PeriodMenu, PlatformSpec, UtilizationSampler, WorkloadSpec};

/// Rebuild each machine's (possibly constrained) task set from placements.
fn machine_sets(tasks: &TaskSet, platform: &Platform, placements: &[Placement]) -> Vec<TaskSet> {
    let mut per_machine: Vec<Vec<Task>> = vec![Vec::new(); platform.len()];
    for (ti, pl) in placements.iter().enumerate() {
        match pl {
            Placement::Whole { machine } => per_machine[*machine].push(tasks[ti]),
            Placement::Split { first, second } => {
                let p = tasks[ti].period();
                per_machine[first.0].push(Task::constrained(first.1, p, first.2).unwrap());
                per_machine[second.0].push(Task::constrained(second.1, p, second.2).unwrap());
            }
        }
    }
    per_machine.into_iter().map(TaskSet::new).collect()
}

#[test]
fn accepted_splits_simulate_cleanly() {
    let spec = WorkloadSpec {
        n_tasks: 10,
        normalized_utilization: 0.95, // high load → splits actually happen
        platform: PlatformSpec::BigLittle {
            big: 1,
            little: 3,
            ratio: 3,
        },
        sampler: UtilizationSampler::UUniFastCapped,
        periods: PeriodMenu::standard(),
    };
    let mut split_instances = 0usize;
    for i in 0..60 {
        let Some(inst) = spec.generate(20260705, i) else {
            continue;
        };
        let SplitOutcome::Feasible(placements) =
            semi_partition(&inst.tasks, &inst.platform, Augmentation::NONE)
        else {
            continue;
        };
        let had_split = placements
            .iter()
            .any(|p| matches!(p, Placement::Split { .. }));
        split_instances += usize::from(had_split);
        for (m, set) in machine_sets(&inst.tasks, &inst.platform, &placements)
            .into_iter()
            .enumerate()
        {
            if set.is_empty() {
                continue;
            }
            let horizon = validation_horizon(&set).expect("menu periods");
            let report = simulate_machine(
                &set,
                inst.platform.machine(m).speed(),
                SchedPolicy::Edf,
                ReleasePattern::Periodic,
                horizon,
            )
            .expect("simulate");
            assert_eq!(
                report.miss_count, 0,
                "split machine {m} missed on instance {i}: {set}"
            );
        }
    }
    assert!(
        split_instances >= 3,
        "workload too easy — only {split_instances} instances exercised splitting"
    );
}

#[test]
fn splitting_strictly_extends_first_fit_on_this_family() {
    let spec = WorkloadSpec {
        n_tasks: 10,
        normalized_utilization: 0.95,
        platform: PlatformSpec::BigLittle {
            big: 1,
            little: 3,
            ratio: 3,
        },
        sampler: UtilizationSampler::UUniFastCapped,
        periods: PeriodMenu::standard(),
    };
    let (mut ff_n, mut semi_n) = (0usize, 0usize);
    for i in 0..80 {
        let Some(inst) = spec.generate(777_000, i) else {
            continue;
        };
        let ff = first_fit(
            &inst.tasks,
            &inst.platform,
            Augmentation::NONE,
            &EdfAdmission,
        )
        .is_feasible();
        let semi = semi_partition(&inst.tasks, &inst.platform, Augmentation::NONE).is_feasible();
        assert!(!ff || semi, "FF ⊆ semi violated on instance {i}");
        ff_n += usize::from(ff);
        semi_n += usize::from(semi);
    }
    assert!(
        semi_n > ff_n,
        "expected splitting to rescue at least one instance ({semi_n} vs {ff_n})"
    );
}
