//! The no-panic battery (`DESIGN.md` §8): every public entry point of the
//! workspace terminates within its budget and never panics — on arbitrary
//! generated instances and on the adversarial [`FaultPlan`] corpus alike.
//!
//! Requires cargo + the real proptest crate; the offline CI fallback
//! (`scripts/offline_check.sh`) skips this suite and relies on
//! `tests/integration_robust.rs` plus the per-crate unit tests instead.

use hetfeas::analysis::{qpa_schedulable_within, rta_schedulable_within};
use hetfeas::experiments::{replay_durable, replay_instance, ReplayMode};
use hetfeas::lp::solve_paper_lp_within;
use hetfeas::model::{parse_op_trace, parse_system, Augmentation, Platform, Ratio, Task, TaskSet};
use hetfeas::partition::{
    exact_partition_edf, exact_partition_edf_degraded, first_fit, first_fit_within,
    lp_feasible_degraded, min_feasible_alpha_within, DurableOptions, EdfAdmission, ExactOutcome,
    ExactSolver, LadderVerdict, Outcome,
};
use hetfeas::robust::{guard, Budget, FaultKind, FaultPlan, MemStorage};
use hetfeas::sim::{validate_assignment_within, SchedPolicy};
use proptest::prelude::*;

fn menu_task() -> impl Strategy<Value = Task> {
    (
        1u64..=90,
        prop::sample::select(vec![10u64, 20, 25, 40, 50, 100, 1000]),
    )
        .prop_map(|(c, p)| Task::implicit(c, p.max(c)).unwrap())
}

fn small_set(max: usize) -> impl Strategy<Value = TaskSet> {
    prop::collection::vec(menu_task(), 0..max).prop_map(TaskSet::new)
}

fn small_platform() -> impl Strategy<Value = Platform> {
    prop::collection::vec(1u64..=6, 1..5).prop_map(|s| Platform::from_int_speeds(s).unwrap())
}

/// An ops budget small enough to exhaust mid-computation on many of the
/// generated instances, so both the `Ok` and `Err` paths get exercised.
fn tight_ops() -> impl Strategy<Value = u64> {
    prop_oneof![Just(0u64), 1u64..200, Just(u64::MAX)]
}

proptest! {
    // Budgeted first-fit terminates, never panics, and agrees with the
    // unbudgeted run whenever it does not exhaust.
    #[test]
    fn first_fit_within_terminates_and_agrees(
        ts in small_set(14), p in small_platform(), ops in tight_ops()
    ) {
        let mut gas = Budget::ops(ops).gas();
        let budgeted = first_fit_within(&ts, &p, Augmentation::NONE, &EdfAdmission, &mut gas);
        if budgeted.is_decided() {
            let free = first_fit(&ts, &p, Augmentation::NONE, &EdfAdmission);
            prop_assert_eq!(budgeted.is_feasible(), free.is_feasible());
        }
    }

    // The α-bisection under a budget either answers like the unbudgeted
    // search or reports exhaustion — it never panics or loops.
    #[test]
    fn alpha_search_within_terminates(
        ts in small_set(10), p in small_platform(), ops in tight_ops()
    ) {
        let mut gas = Budget::ops(ops).gas();
        let _ = min_feasible_alpha_within(&ts, &p, &EdfAdmission, 8.0, 1e-4, &mut gas);
    }

    // The exact-partition degradation ladder: always returns, and a
    // decided verdict is sound against the exact oracle.
    #[test]
    fn exact_ladder_is_sound_under_any_budget(
        ts in small_set(9), p in small_platform(), ops in tight_ops()
    ) {
        let mut gas = Budget::ops(ops).gas();
        let ladder = exact_partition_edf_degraded(&ts, &p, 100_000, &mut gas, &());
        match exact_partition_edf(&ts, &p, 2_000_000) {
            ExactOutcome::Feasible(_) => {
                prop_assert!(!matches!(ladder.verdict, LadderVerdict::Infeasible));
            }
            ExactOutcome::Infeasible => {
                prop_assert!(!ladder.verdict.is_feasible());
            }
            ExactOutcome::Unknown => {}
        }
    }

    // The LP ladder mirrors the same contract against the LP oracle.
    #[test]
    fn lp_ladder_terminates(
        ts in small_set(10), p in small_platform(), ops in tight_ops()
    ) {
        let mut gas = Budget::ops(ops).gas();
        let _ = lp_feasible_degraded(&ts, &p, &mut gas, &());
    }

    // Budgeted single-machine analyses terminate on any menu instance.
    #[test]
    fn analysis_within_terminates(
        ts in small_set(12), speed in 1u64..=6, ops in tight_ops()
    ) {
        let s = Ratio::from_integer(speed as i128);
        let mut gas = Budget::ops(ops).gas();
        let _ = qpa_schedulable_within(&ts, s, &mut gas);
        let mut gas = Budget::ops(ops).gas();
        let _ = rta_schedulable_within(&ts, s, &mut gas);
    }

    // The budgeted LP solver terminates on any instance.
    #[test]
    fn lp_solver_within_terminates(
        ts in small_set(10), p in small_platform(), ops in tight_ops()
    ) {
        let mut gas = Budget::ops(ops).gas();
        let _ = solve_paper_lp_within(&ts, &p, &mut gas);
    }

    // A budgeted simulation either validates the first-fit witness or
    // reports exhaustion; a witness that simulates to completion is clean.
    #[test]
    fn budgeted_validation_terminates(
        ts in small_set(8), p in small_platform(), ops in tight_ops()
    ) {
        if let Outcome::Feasible(a) = first_fit(&ts, &p, Augmentation::NONE, &EdfAdmission) {
            let mut gas = Budget::ops(ops).gas();
            if let Ok(Ok(report)) = validate_assignment_within(
                &ts, &p, &a, Ratio::ONE, SchedPolicy::Edf, &mut gas,
            ) {
                prop_assert_eq!(report.miss_count, 0, "EDF witness missed a deadline");
            }
        }
    }

    // The parser never panics on arbitrary input — it answers Ok or a
    // diagnostic Err for any byte soup.
    #[test]
    fn parser_never_panics(text in "\\PC{0,200}") {
        let _ = parse_system(&text);
    }

    // The op-trace parser never panics on arbitrary input either.
    #[test]
    fn op_trace_parser_never_panics(text in "\\PC{0,300}") {
        let _ = parse_op_trace(&text);
    }

    // Line-level corruption of a well-formed op trace — dropped,
    // duplicated (duplicate ids), truncated and junk lines, truncated
    // files — yields a diagnostic Err or a valid parse, never a panic;
    // and whatever still parses replays under a budget, through both the
    // in-memory engine and the journaled durability layer, without
    // panicking.
    #[test]
    fn corrupted_op_traces_never_panic(
        mutations in prop::collection::vec(
            (0usize..64, 0usize..6, "\\PC{0,24}"), 1..5
        )
    ) {
        let mut lines: Vec<String> =
            CORRUPTION_BASE_TRACE.lines().map(str::to_string).collect();
        for (pos, kind, junk) in mutations {
            if lines.is_empty() {
                break;
            }
            let i = pos % lines.len();
            match kind {
                0 => {
                    lines.remove(i);
                }
                1 => {
                    // Duplicate a line — re-adding a live id, re-opening
                    // an instance, doubling an `end`.
                    let line = lines[i].clone();
                    lines.insert(i, line);
                }
                2 => {
                    // Torn line (truncated at an arbitrary byte).
                    let mut cut = junk.len() % (lines[i].len() + 1);
                    while !lines[i].is_char_boundary(cut) {
                        cut -= 1;
                    }
                    lines[i].truncate(cut);
                }
                3 => lines[i] = junk,
                4 => lines.insert(i, junk),
                _ => {
                    // Torn file: drop everything from line i on.
                    lines.truncate(i);
                }
            }
        }
        let text = lines.join("\n");
        if let Ok(trace) = parse_op_trace(&text) {
            for inst in &trace.instances {
                let mut gas = Budget::ops(10_000).gas();
                let _ = replay_instance(
                    EdfAdmission, inst, Augmentation::NONE,
                    ReplayMode::Incremental, &mut gas, &(),
                );
                let mut gas = Budget::ops(10_000).gas();
                let _ = replay_durable(
                    EdfAdmission, inst, Augmentation::NONE, "edf",
                    DurableOptions::default(), Box::new(MemStorage::new()),
                    &mut gas, &(),
                );
            }
        }
    }
}

/// Base trace for the corruption generator: two instances covering every
/// op kind, so mutations can manufacture duplicate ids, orphan ops,
/// unterminated instances and mid-line garbage.
const CORRUPTION_BASE_TRACE: &str = "\
begin alpha
machine 1
machine 2
add 1 1 2
add 2 1 4
query 1
snapshot
add 3 9 10
rollback
remove 2
repack
end

begin beta
machine 1
add 7 1 5
query 7
remove 7
end
";

/// Every fault-plan case runs through both ladders under a small ops
/// budget without panicking, and decided verdicts are internally
/// consistent (never both feasible and infeasible for the same case).
#[test]
fn fault_corpus_survives_both_ladders() {
    for seed in [0u64, 1, 42] {
        for case in FaultPlan::new(seed).cases() {
            let outcome = guard(|| {
                let mut gas = Budget::ops(200_000).gas();
                let exact = exact_partition_edf_degraded(
                    &case.tasks,
                    &case.platform,
                    50_000,
                    &mut gas,
                    &(),
                );
                let mut gas = Budget::ops(200_000).gas();
                let lp = lp_feasible_degraded(&case.tasks, &case.platform, &mut gas, &());
                (exact, lp)
            });
            let (exact, lp) =
                outcome.unwrap_or_else(|p| panic!("case {} panicked: {}", case.name, p.message));
            // Exact-partitioned feasible implies LP (migrative) feasible,
            // so "exact feasible + lp infeasible" would be unsound.
            if exact.verdict.is_feasible() {
                assert!(
                    !matches!(lp.verdict, LadderVerdict::Infeasible),
                    "case {}: exact feasible but LP refuted",
                    case.name
                );
            }
        }
    }
}

/// Budget conformance on the B&B blowup corpus: these cases are
/// infeasible by counting (2m+1 pairs-only tasks on m machines), so under
/// *any* ops budget the solver may answer `Infeasible` or `Unknown` but
/// never `Feasible`; and once a meter exhausts mid-search, the latch is
/// sticky — every later tick keeps failing, so a caller that checks once
/// after the solve cannot be fooled by a revived meter.
#[test]
fn bnb_blowup_tiny_budgets_never_lie_and_latch_is_sticky() {
    for seed in [0u64, 7] {
        for case in FaultPlan::new(seed).cases() {
            if case.kind != FaultKind::BnbBlowup {
                continue;
            }
            for ops in [0u64, 1, 64, 4096, 100_000] {
                let mut gas = Budget::ops(ops).gas();
                let out = ExactSolver::new(&case.tasks, &case.platform, &EdfAdmission)
                    .workers(2)
                    .solve_within(&mut gas);
                assert!(
                    !matches!(out, ExactOutcome::Feasible(_)),
                    "case {} (ops={ops}): counting-infeasible instance reported feasible",
                    case.name
                );
                if matches!(out, ExactOutcome::Unknown) {
                    assert!(
                        gas.tick().is_err(),
                        "case {} (ops={ops}): Unknown verdict but the meter still ticks",
                        case.name
                    );
                    assert!(
                        gas.tick().is_err(),
                        "case {} (ops={ops}): exhaustion latch is not sticky",
                        case.name
                    );
                }
            }
        }
    }
}

/// Regression for the acceptance scenario: a starved exact search on the
/// blowup instance must fall back to a sound answer, not hang or lie.
#[test]
fn starved_exact_blowup_degrades_soundly() {
    // 21 distinct pairs-only tasks on 10 unit machines — infeasible, but
    // only provably so by exhaustive search (utilization 9.68 < 10).
    let tasks = TaskSet::new(
        (0..21)
            .map(|i| Task::implicit(451 + i, 1000).unwrap())
            .collect::<Vec<_>>(),
    );
    let platform = Platform::from_int_speeds(vec![1u64; 10]).unwrap();
    let mut gas = Budget::ops(10_000).gas();
    let ladder = exact_partition_edf_degraded(&tasks, &platform, u64::MAX, &mut gas, &());
    assert!(
        !ladder.verdict.is_feasible(),
        "infeasible instance reported feasible after degradation"
    );
    assert!(
        ladder.degraded >= 1,
        "starved search must record a downgrade"
    );
}
