//! End-to-end tests of the `hetfeas` CLI binary.

use hetfeas::model::{parse_system, Augmentation};
use hetfeas::obs::json;
use hetfeas::partition::{first_fit_instrumented, EdfAdmission};
use std::path::PathBuf;
use std::process::{Command, Output};
use std::sync::atomic::{AtomicU64, Ordering};

fn hetfeas(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_hetfeas"))
        .args(args)
        .output()
        .expect("spawn hetfeas")
}

/// Self-cleaning temp file (no external tempfile crate needed).
struct TempSystem(PathBuf);

impl TempSystem {
    fn to_str(&self) -> &str {
        self.0.to_str().expect("utf-8 temp path")
    }
}

impl Drop for TempSystem {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.0);
    }
}

fn temp_path(ext: &str) -> TempSystem {
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    TempSystem(std::env::temp_dir().join(format!(
        "hetfeas-cli-test-{}-{}.{ext}",
        std::process::id(),
        COUNTER.fetch_add(1, Ordering::Relaxed)
    )))
}

fn write_system(content: &str) -> TempSystem {
    let path = temp_path("txt");
    std::fs::write(&path.0, content).expect("write temp system file");
    path
}

const FEASIBLE: &str = "task 9 10\ntask 4 10\ntask 3 10\nmachine 1\nmachine 2\n";
const INFEASIBLE: &str = "task 8 10\ntask 8 10\ntask 8 10\nmachine 1\nmachine 1\n";

#[test]
fn check_feasible_exits_zero() {
    let path = write_system(FEASIBLE);
    let out = hetfeas(&["check", path.to_str(), "-v"]);
    assert!(out.status.success(), "{out:?}");
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("FEASIBLE"));
    assert!(stdout.contains("machine 0"));
}

#[test]
fn check_infeasible_exits_one_and_cites_theorem_at_alpha_two() {
    // Five 0.9-utilization tasks on two unit machines stay infeasible even
    // at α = 2 (4 fit pairwise, the fifth does not) — so the CLI must cite
    // Theorem I.1's partitioned-infeasibility certificate.
    let path = write_system(
        "task 9 10
task 9 10
task 9 10
task 9 10
task 9 10
machine 1
machine 1
",
    );
    let out = hetfeas(&["check", path.to_str(), "--alpha", "2"]);
    assert_eq!(out.status.code(), Some(1));
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("INFEASIBLE"));
    assert!(stdout.contains("provably infeasible"), "{stdout}");
}

#[test]
fn alpha_reports_bisection_and_lp_bound() {
    let path = write_system(INFEASIBLE);
    let out = hetfeas(&["alpha", path.to_str()]);
    assert!(out.status.success());
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("β"));
    // Known instance: α* = 1.6 (see partition unit tests).
    assert!(stdout.contains("α* = 1.6000"), "{stdout}");
}

#[test]
fn oracles_report_all_three() {
    let path = write_system(FEASIBLE);
    let out = hetfeas(&["oracles", path.to_str()]);
    assert!(out.status.success());
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("LP (migrative adversary): feasible"));
    assert!(stdout.contains("optimal partitioned EDF: feasible"));
    assert!(stdout.contains("optimal partitioned RMS"));
}

#[test]
fn simulate_reports_zero_misses() {
    let path = write_system(FEASIBLE);
    let out = hetfeas(&["simulate", path.to_str()]);
    assert!(out.status.success(), "{out:?}");
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("0 misses"), "{stdout}");
}

#[test]
fn generate_then_check_roundtrip() {
    let out = hetfeas(&[
        "generate",
        "--tasks",
        "8",
        "--machines",
        "4",
        "--util",
        "0.6",
        "--seed",
        "5",
    ]);
    assert!(out.status.success());
    let system = String::from_utf8(out.stdout).unwrap();
    assert!(system.lines().filter(|l| l.starts_with("task")).count() == 8);
    assert!(system.lines().filter(|l| l.starts_with("machine")).count() == 4);
    let path = write_system(&system);
    let out = hetfeas(&["check", path.to_str()]);
    assert!(
        out.status.success(),
        "generated 0.6-load system must be feasible"
    );
}

#[test]
fn bad_usage_exits_two() {
    assert_eq!(hetfeas(&[]).status.code(), Some(2));
    assert_eq!(hetfeas(&["frobnicate"]).status.code(), Some(2));
    assert_eq!(
        hetfeas(&["check", "/nonexistent/file.txt"]).status.code(),
        Some(2)
    );
    assert_eq!(hetfeas(&["check", "--alpha"]).status.code(), Some(2));
    let path = write_system("task 1 2\nbogus\nmachine 1\n");
    let out = hetfeas(&["check", path.to_str()]);
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8(out.stderr).unwrap().contains("line 2"));
}

#[test]
fn report_flag_writes_wellformed_json_and_round_trips_counters() {
    let sys = write_system(FEASIBLE);
    let report = temp_path("json");
    let out = hetfeas(&["check", sys.to_str(), "--report", report.to_str()]);
    assert!(
        out.status.success(),
        "exit code must be unchanged by --report: {out:?}"
    );

    let text = std::fs::read_to_string(&report.0).expect("report file written");
    let v = json::parse(&text).expect("report must be well-formed JSON");

    // Stable top-level keys, in render order.
    let keys: Vec<&str> = v
        .as_object()
        .unwrap()
        .iter()
        .map(|(k, _)| k.as_str())
        .collect();
    assert_eq!(
        keys,
        vec![
            "tool",
            "version",
            "command",
            "input",
            "policy",
            "n_tasks",
            "n_machines",
            "total_utilization",
            "total_speed",
            "alpha",
            "verdict",
            "counters",
            "timers",
            "histograms",
        ],
        "top-level report keys changed"
    );
    assert_eq!(v.get("tool").unwrap().as_str(), Some("hetfeas"));
    assert_eq!(v.get("command").unwrap().as_str(), Some("check"));
    assert_eq!(v.get("verdict").unwrap().as_str(), Some("feasible"));
    assert_eq!(v.get("n_tasks").unwrap().as_u64(), Some(3));
    assert_eq!(v.get("n_machines").unwrap().as_u64(), Some(2));

    // Acceptance criterion: the reported admission-check counter equals
    // the instrumented in-process run on the same system.
    let parsed = parse_system(FEASIBLE).unwrap();
    let (_, stats) = first_fit_instrumented(
        &parsed.tasks,
        &parsed.platform,
        Augmentation::NONE,
        &EdfAdmission,
    );
    let counters = v.get("counters").unwrap();
    assert_eq!(
        counters.get("ff.admission_checks").unwrap().as_u64(),
        Some(stats.admission_checks),
        "reported counters diverge from the instrumented scan"
    );
    assert_eq!(
        counters.get("ff.placed").unwrap().as_u64(),
        Some(stats.placed)
    );

    // The partition phase timer fired exactly once.
    let timer = v.get("timers").unwrap().get("phase.partition").unwrap();
    assert_eq!(timer.get("count").unwrap().as_u64(), Some(1));
}

#[test]
fn report_flag_keeps_infeasible_exit_code() {
    let sys = write_system(INFEASIBLE);
    let report = temp_path("json");
    let out = hetfeas(&["check", sys.to_str(), "--report", report.to_str()]);
    assert_eq!(out.status.code(), Some(1), "--report must not mask exit 1");
    let v = json::parse(&std::fs::read_to_string(&report.0).unwrap()).unwrap();
    assert_eq!(v.get("verdict").unwrap().as_str(), Some("infeasible"));
    assert!(v.get("failing_task").unwrap().as_u64().is_some());
}

#[test]
fn report_flag_works_for_alpha_and_simulate() {
    let sys = write_system(INFEASIBLE);
    let report = temp_path("json");
    let out = hetfeas(&["alpha", sys.to_str(), "--report", report.to_str()]);
    assert!(out.status.success());
    let v = json::parse(&std::fs::read_to_string(&report.0).unwrap()).unwrap();
    assert_eq!(v.get("command").unwrap().as_str(), Some("alpha"));
    // Known instance: α* = 1.6 (see `alpha_reports_bisection_and_lp_bound`).
    let star = v.get("alpha_star").unwrap().as_f64().unwrap();
    assert!((star - 1.6).abs() < 1e-3, "alpha_star = {star}");
    assert!(v.get("lp_beta").unwrap().as_f64().is_some());
    assert!(
        v.get("counters")
            .unwrap()
            .get("alpha.probes")
            .unwrap()
            .as_u64()
            .unwrap()
            >= 1
    );

    let sys = write_system(FEASIBLE);
    let report = temp_path("json");
    let out = hetfeas(&["simulate", sys.to_str(), "--report", report.to_str()]);
    assert!(out.status.success());
    let v = json::parse(&std::fs::read_to_string(&report.0).unwrap()).unwrap();
    assert_eq!(v.get("command").unwrap().as_str(), Some("simulate"));
    assert_eq!(v.get("verdict").unwrap().as_str(), Some("clean"));
    assert_eq!(v.get("miss_count").unwrap().as_u64(), Some(0));
    assert!(v.get("jobs_completed").unwrap().as_u64().unwrap() > 0);
    let timers = v.get("timers").unwrap();
    assert!(timers.get("phase.partition").is_some());
    assert!(timers.get("phase.simulate").is_some());
}

#[test]
fn report_error_paths_exit_two_without_partial_file() {
    // Unreadable input: exit 2, no report file.
    let report = temp_path("json");
    let out = hetfeas(&[
        "check",
        "/nonexistent/file.txt",
        "--report",
        report.to_str(),
    ]);
    assert_eq!(out.status.code(), Some(2));
    assert!(
        !report.0.exists(),
        "error run must not leave a partial report"
    );

    // Empty system file (no machines): parse error, exit 2, no report.
    let sys = write_system("");
    let report = temp_path("json");
    let out = hetfeas(&["check", sys.to_str(), "--report", report.to_str()]);
    assert_eq!(out.status.code(), Some(2));
    assert!(!report.0.exists());

    // Invalid system line: same contract.
    let sys = write_system("task 1 2\nbogus\nmachine 1\n");
    let report = temp_path("json");
    let out = hetfeas(&["alpha", sys.to_str(), "--report", report.to_str()]);
    assert_eq!(out.status.code(), Some(2));
    assert!(!report.0.exists());

    // --report with no value is a usage error.
    let sys = write_system(FEASIBLE);
    assert_eq!(
        hetfeas(&["check", sys.to_str(), "--report"]).status.code(),
        Some(2)
    );
}

#[test]
fn policy_flag_selects_admission() {
    // A pair of 0.45-utilization tasks on one machine: EDF ok, RMS-LL not.
    let path = write_system("task 45 100\ntask 45 100\nmachine 1\n");
    assert!(hetfeas(&["check", path.to_str(), "--policy", "edf"])
        .status
        .success());
    assert_eq!(
        hetfeas(&["check", path.to_str(), "--policy", "rms"])
            .status
            .code(),
        Some(1)
    );
    // Exact RTA admission also rejects (0.9 > LL? exact RM: equal periods,
    // R2 = 90 ≤ 100 — actually schedulable!).
    assert!(hetfeas(&["check", path.to_str(), "--policy", "rms-rta"])
        .status
        .success());
}
