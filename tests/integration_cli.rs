//! End-to-end tests of the `hetfeas` CLI binary.

use std::path::PathBuf;
use std::process::{Command, Output};
use std::sync::atomic::{AtomicU64, Ordering};

fn hetfeas(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_hetfeas"))
        .args(args)
        .output()
        .expect("spawn hetfeas")
}

/// Self-cleaning temp file (no external tempfile crate needed).
struct TempSystem(PathBuf);

impl TempSystem {
    fn to_str(&self) -> &str {
        self.0.to_str().expect("utf-8 temp path")
    }
}

impl Drop for TempSystem {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.0);
    }
}

fn write_system(content: &str) -> TempSystem {
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let path = std::env::temp_dir().join(format!(
        "hetfeas-cli-test-{}-{}.txt",
        std::process::id(),
        COUNTER.fetch_add(1, Ordering::Relaxed)
    ));
    std::fs::write(&path, content).expect("write temp system file");
    TempSystem(path)
}

const FEASIBLE: &str = "task 9 10\ntask 4 10\ntask 3 10\nmachine 1\nmachine 2\n";
const INFEASIBLE: &str = "task 8 10\ntask 8 10\ntask 8 10\nmachine 1\nmachine 1\n";

#[test]
fn check_feasible_exits_zero() {
    let path = write_system(FEASIBLE);
    let out = hetfeas(&["check", path.to_str(), "-v"]);
    assert!(out.status.success(), "{out:?}");
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("FEASIBLE"));
    assert!(stdout.contains("machine 0"));
}

#[test]
fn check_infeasible_exits_one_and_cites_theorem_at_alpha_two() {
    // Five 0.9-utilization tasks on two unit machines stay infeasible even
    // at α = 2 (4 fit pairwise, the fifth does not) — so the CLI must cite
    // Theorem I.1's partitioned-infeasibility certificate.
    let path = write_system("task 9 10
task 9 10
task 9 10
task 9 10
task 9 10
machine 1
machine 1
");
    let out = hetfeas(&["check", path.to_str(), "--alpha", "2"]);
    assert_eq!(out.status.code(), Some(1));
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("INFEASIBLE"));
    assert!(stdout.contains("provably infeasible"), "{stdout}");
}

#[test]
fn alpha_reports_bisection_and_lp_bound() {
    let path = write_system(INFEASIBLE);
    let out = hetfeas(&["alpha", path.to_str()]);
    assert!(out.status.success());
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("β"));
    // Known instance: α* = 1.6 (see partition unit tests).
    assert!(stdout.contains("α* = 1.6000"), "{stdout}");
}

#[test]
fn oracles_report_all_three() {
    let path = write_system(FEASIBLE);
    let out = hetfeas(&["oracles", path.to_str()]);
    assert!(out.status.success());
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("LP (migrative adversary): feasible"));
    assert!(stdout.contains("optimal partitioned EDF: feasible"));
    assert!(stdout.contains("optimal partitioned RMS"));
}

#[test]
fn simulate_reports_zero_misses() {
    let path = write_system(FEASIBLE);
    let out = hetfeas(&["simulate", path.to_str()]);
    assert!(out.status.success(), "{out:?}");
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("0 misses"), "{stdout}");
}

#[test]
fn generate_then_check_roundtrip() {
    let out = hetfeas(&[
        "generate", "--tasks", "8", "--machines", "4", "--util", "0.6", "--seed", "5",
    ]);
    assert!(out.status.success());
    let system = String::from_utf8(out.stdout).unwrap();
    assert!(system.lines().filter(|l| l.starts_with("task")).count() == 8);
    assert!(system.lines().filter(|l| l.starts_with("machine")).count() == 4);
    let path = write_system(&system);
    let out = hetfeas(&["check", path.to_str()]);
    assert!(out.status.success(), "generated 0.6-load system must be feasible");
}

#[test]
fn bad_usage_exits_two() {
    assert_eq!(hetfeas(&[]).status.code(), Some(2));
    assert_eq!(hetfeas(&["frobnicate"]).status.code(), Some(2));
    assert_eq!(hetfeas(&["check", "/nonexistent/file.txt"]).status.code(), Some(2));
    assert_eq!(hetfeas(&["check", "--alpha"]).status.code(), Some(2));
    let path = write_system("task 1 2\nbogus\nmachine 1\n");
    let out = hetfeas(&["check", path.to_str()]);
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8(out.stderr).unwrap().contains("line 2"));
}

#[test]
fn policy_flag_selects_admission() {
    // A pair of 0.45-utilization tasks on one machine: EDF ok, RMS-LL not.
    let path = write_system("task 45 100\ntask 45 100\nmachine 1\n");
    assert!(hetfeas(&["check", path.to_str(), "--policy", "edf"]).status.success());
    assert_eq!(
        hetfeas(&["check", path.to_str(), "--policy", "rms"]).status.code(),
        Some(1)
    );
    // Exact RTA admission also rejects (0.9 > LL? exact RM: equal periods,
    // R2 = 90 ≤ 100 — actually schedulable!).
    assert!(hetfeas(&["check", path.to_str(), "--policy", "rms-rta"])
        .status
        .success());
}
