//! End-to-end robustness tests of the `hetfeas` CLI: wall-clock budgets,
//! the graceful-degradation ladder, the fault corpus, and the exit-code
//! contract (0 feasible / clean, 1 infeasible / misses, 2 usage or parse
//! error, 3 undecided within budget).
//!
//! The centerpiece is the acceptance scenario from the robustness issue:
//! an exact-search blowup instance under `--budget-ms 50` must come back
//! with a degraded-but-sound verdict (and `robust.degraded ≥ 1` in the
//! JSON report) instead of hanging.

use hetfeas::obs::json;
use hetfeas::obs::Json;
use std::path::PathBuf;
use std::process::{Command, Output};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

fn hetfeas(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_hetfeas"))
        .args(args)
        .output()
        .expect("spawn hetfeas")
}

fn exit_code(out: &Output) -> i32 {
    out.status.code().expect("no exit code")
}

/// Self-cleaning temp file (no external tempfile crate needed).
struct TempFile(PathBuf);

impl TempFile {
    fn to_str(&self) -> &str {
        self.0.to_str().expect("utf-8 temp path")
    }
}

impl Drop for TempFile {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.0);
    }
}

fn temp_path(ext: &str) -> TempFile {
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    TempFile(std::env::temp_dir().join(format!(
        "hetfeas-robust-test-{}-{}.{ext}",
        std::process::id(),
        COUNTER.fetch_add(1, Ordering::Relaxed)
    )))
}

fn write_system(content: &str) -> TempFile {
    let path = temp_path("txt");
    std::fs::write(&path.0, content).expect("write temp system file");
    path
}

fn read_report(path: &TempFile) -> Json {
    let text = std::fs::read_to_string(&path.0).expect("report file written");
    json::parse(&text).expect("report is valid JSON")
}

/// Pairs-only packing with distinct task sizes: 21 tasks of utilization
/// ≈ 0.46 on 10 unit machines. Any machine holds at most two tasks, so the
/// instance is infeasible (needs ⌈21/2⌉ = 11 machines), but total
/// utilization 9.68 < 10 keeps the utilization bound from refuting it —
/// the exact search must enumerate an astronomically large tree to prove
/// infeasibility. Distinct sizes defeat the task-symmetry pruning.
fn blowup_system() -> String {
    let mut s = String::new();
    for i in 0..21 {
        s.push_str(&format!("task {} 1000\n", 451 + i));
    }
    for _ in 0..10 {
        s.push_str("machine 1\n");
    }
    s
}

#[test]
fn budgeted_exact_on_blowup_instance_degrades_instead_of_hanging() {
    let sys = write_system(&blowup_system());
    let report = temp_path("json");
    let started = Instant::now();
    let out = hetfeas(&[
        "check",
        sys.to_str(),
        "--exact",
        "--budget-ms",
        "50",
        "--report",
        report.to_str(),
    ]);
    let elapsed = started.elapsed();
    // Sound: the instance is infeasible, so "feasible" (exit 0) would be a
    // soundness bug; exit 3 (undecided) or exit 1 (infeasible) are both
    // acceptable, and with a 50 ms budget it is undecided in practice.
    assert_eq!(exit_code(&out), 3, "{out:?}");
    // Terminates promptly: the budget plus the cheap fallback rungs. A
    // generous 10× slack keeps this robust on loaded CI machines while
    // still catching a hang or a non-sticky budget (an unbudgeted exact
    // run on this instance takes minutes).
    assert!(
        elapsed.as_millis() < 5_000,
        "budgeted run took {elapsed:?} — budget not enforced"
    );
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("UNDECIDED"), "{stdout}");

    let r = read_report(&report);
    assert_eq!(r.get("verdict").and_then(Json::as_str), Some("undecided"));
    let degraded = r.get("degraded").and_then(Json::as_u64).unwrap();
    assert!(degraded >= 1, "expected at least one downgrade");
    let counters = r.get("counters").expect("counters object");
    let robust_degraded = counters
        .get("robust.degraded")
        .and_then(Json::as_u64)
        .unwrap_or(0);
    assert!(robust_degraded >= 1, "robust.degraded missing from report");
    assert!(
        counters
            .get("robust.budget_exhausted")
            .and_then(Json::as_u64)
            .unwrap_or(0)
            >= 1
    );
}

#[test]
fn unbudgeted_exact_still_decides_small_instances() {
    let sys = write_system("task 9 10\ntask 4 10\ntask 3 10\nmachine 1\nmachine 2\n");
    let report = temp_path("json");
    let out = hetfeas(&[
        "check",
        sys.to_str(),
        "--exact",
        "--report",
        report.to_str(),
    ]);
    assert_eq!(exit_code(&out), 0, "{out:?}");
    let r = read_report(&report);
    assert_eq!(r.get("verdict").and_then(Json::as_str), Some("feasible"));
    assert_eq!(r.get("level").and_then(Json::as_str), Some("exact"));
    assert_eq!(r.get("degraded").and_then(Json::as_u64), Some(0));
}

#[test]
fn exact_workers_flag_changes_nothing_but_wallclock() {
    // The branch-and-bound verdict (and exit code) must be identical for
    // every worker count; the report records the count that ran.
    let sys = write_system("task 9 10\ntask 4 10\ntask 3 10\nmachine 1\nmachine 2\n");
    for w in ["1", "4"] {
        let report = temp_path("json");
        let out = hetfeas(&[
            "check",
            sys.to_str(),
            "--exact",
            "--workers",
            w,
            "--report",
            report.to_str(),
        ]);
        assert_eq!(exit_code(&out), 0, "workers {w}: {out:?}");
        let r = read_report(&report);
        assert_eq!(r.get("verdict").and_then(Json::as_str), Some("feasible"));
        assert_eq!(r.get("level").and_then(Json::as_str), Some("exact"));
        assert_eq!(
            r.get("workers").and_then(Json::as_u64),
            Some(w.parse().unwrap())
        );
    }
    // And the starved blowup stays undecided regardless of worker count.
    let blowup = write_system(&blowup_system());
    let out = hetfeas(&[
        "check",
        blowup.to_str(),
        "--exact",
        "--workers",
        "4",
        "--budget-ms",
        "50",
    ]);
    assert_eq!(exit_code(&out), 3, "{out:?}");
    // Zero or garbage worker counts are usage errors.
    for bad in [
        &["check", "f", "--workers", "0"],
        &["check", "f", "--workers", "lots"],
    ] {
        assert_eq!(exit_code(&hetfeas(bad)), 2);
    }
}

#[test]
fn budget_exhausted_exact_falls_back_to_sound_first_fit_witness() {
    // 20 tasks on 10 machines: feasible (two per machine). However the
    // exact search fares within the budget, the ladder's answer must stay
    // sound: exit 0 (feasible, possibly via the first-fit rung) or exit 3
    // (undecided) — never exit 1.
    let mut s = String::new();
    for i in 0..20 {
        s.push_str(&format!("task {} 1000\n", 451 + i));
    }
    for _ in 0..10 {
        s.push_str("machine 1\n");
    }
    let sys = write_system(&s);
    let out = hetfeas(&["check", sys.to_str(), "--exact", "--budget-ms", "50"]);
    let code = exit_code(&out);
    assert!(
        code == 0 || code == 3,
        "feasible instance reported infeasible: {out:?}"
    );
}

#[test]
fn budgeted_plain_check_answers_within_budget() {
    // Plain (non-exact) first-fit is fast; a generous budget never fires.
    let sys = write_system(&blowup_system());
    let out = hetfeas(&["check", sys.to_str(), "--budget-ms", "10000"]);
    assert_eq!(exit_code(&out), 1, "{out:?}");
}

#[test]
fn faults_corpus_runs_clean_with_zero_panics() {
    let report = temp_path("json");
    let out = hetfeas(&["faults", "--report", report.to_str()]);
    assert_eq!(exit_code(&out), 0, "{out:?}");
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("0 panics"), "{stdout}");
    assert!(!stdout.contains("✗panic"), "{stdout}");
    let r = read_report(&report);
    assert_eq!(r.get("verdict").and_then(Json::as_str), Some("clean"));
    let counters = r.get("counters").expect("counters object");
    assert!(
        counters
            .get("robust.faults_injected")
            .and_then(Json::as_u64)
            .unwrap_or(0)
            >= 10
    );
    assert_eq!(
        counters.get("robust.panics").and_then(Json::as_u64),
        None,
        "robust.panics must stay zero (absent counters render as omitted)"
    );
}

#[test]
fn parse_error_exits_two_with_line_diagnostic() {
    let sys = write_system("task 9 10\nmachine zero\n");
    let out = hetfeas(&["check", sys.to_str()]);
    assert_eq!(exit_code(&out), 2, "{out:?}");
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(stderr.contains("line 2"), "{stderr}");
}

#[test]
fn bad_budget_flag_exits_two() {
    let sys = write_system("task 1 10\nmachine 1\n");
    for bad in [
        &["check", "--budget-ms", "0"] as &[&str],
        &["check", "--budget-ms", "soon"],
        &["check", "--budget-ms"],
    ] {
        let mut args = bad.to_vec();
        args.insert(1, sys.to_str());
        let out = hetfeas(&args);
        assert_eq!(exit_code(&out), 2, "{args:?} -> {out:?}");
    }
}

#[test]
fn budgeted_simulate_stays_sound() {
    // A tiny feasible system simulates clean even with a budget attached.
    let sys = write_system("task 2 10\ntask 3 15\nmachine 1\n");
    let out = hetfeas(&["simulate", sys.to_str(), "--budget-ms", "10000"]);
    assert_eq!(exit_code(&out), 0, "{out:?}");
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("0 misses"), "{stdout}");
}

#[test]
fn budgeted_alpha_answers_or_exits_three() {
    let sys = write_system("task 9 10\ntask 4 10\nmachine 1\nmachine 1\n");
    let out = hetfeas(&["alpha", sys.to_str(), "--budget-ms", "10000"]);
    let code = exit_code(&out);
    assert!(code == 0 || code == 3, "{out:?}");
}
