//! Exhaustive verification on a small discrete grid — no randomness, every
//! instance in the family is checked, so any coherence bug in the oracle
//! chain shows up deterministically.
//!
//! Family: utilizations from {0.25, 0.5, 0.75, 1.0} (as c/p = k/4), up to
//! 4 tasks, platforms [1], [1,1], [1,2]. That is 4+16+64+256 task sets ×
//! 3 platforms = 1 020 instances, each pushed through first-fit (EDF and
//! RMS), the exact branch-and-bound, the LP, and the level-algorithm
//! simulation.

use hetfeas::lp::lp_feasible;
use hetfeas::model::{Augmentation, Platform, Ratio, TaskSet};
use hetfeas::partition::{
    exact_partition_edf, exact_partition_rms, first_fit, EdfAdmission, RmsLlAdmission,
};
use hetfeas::sim::{level_schedulable, validate_assignment, SchedPolicy};

fn all_tasksets(max_n: usize) -> Vec<TaskSet> {
    let mut out = Vec::new();
    // wcets from 1..=4 over period 4 → utils 0.25..1.0.
    fn rec(prefix: &mut Vec<u64>, max_n: usize, out: &mut Vec<TaskSet>) {
        if !prefix.is_empty() {
            out.push(TaskSet::from_pairs(prefix.iter().map(|&c| (c, 4))).unwrap());
        }
        if prefix.len() == max_n {
            return;
        }
        // Non-decreasing wcets to kill permutation duplicates (every
        // algorithm here is permutation-invariant up to tie-breaking of
        // equal utilizations, and feasibility certainly is).
        let lo = prefix.last().copied().unwrap_or(1);
        for c in lo..=4 {
            prefix.push(c);
            rec(prefix, max_n, out);
            prefix.pop();
        }
    }
    rec(&mut Vec::new(), max_n, &mut out);
    out
}

fn platforms() -> Vec<Platform> {
    vec![
        Platform::identical(1).unwrap(),
        Platform::identical(2).unwrap(),
        Platform::from_int_speeds([1, 2]).unwrap(),
    ]
}

#[test]
fn exhaustive_oracle_coherence() {
    let mut checked = 0usize;
    for platform in platforms() {
        for ts in all_tasksets(4) {
            checked += 1;
            let ff_edf = first_fit(&ts, &platform, Augmentation::NONE, &EdfAdmission);
            let exact_edf = exact_partition_edf(&ts, &platform, 1 << 20);
            assert!(exact_edf.is_decided(), "budget must suffice at this size");
            let lp = lp_feasible(&ts, &platform);
            let demands: Vec<Ratio> = ts.iter().map(|t| t.utilization_ratio()).collect();
            let speeds: Vec<Ratio> = platform.iter().map(|m| m.speed()).collect();
            let fluid = level_schedulable(&demands, &speeds);

            // Chain: FF ⊆ exact ⊆ LP = fluid.
            if ff_edf.is_feasible() {
                assert!(exact_edf.is_feasible(), "FF ⊄ exact on {ts} / {platform}");
            }
            if exact_edf.is_feasible() {
                assert!(lp, "exact ⊄ LP on {ts} / {platform}");
            }
            assert_eq!(lp, fluid, "LP ≠ level simulation on {ts} / {platform}");

            // Theorem I.1 exhaustively: exact-feasible ⇒ FF-EDF@2 accepts.
            if exact_edf.is_feasible() {
                assert!(
                    first_fit(&ts, &platform, Augmentation::EDF_VS_PARTITIONED, &EdfAdmission)
                        .is_feasible(),
                    "Theorem I.1 fails on {ts} / {platform}"
                );
            }
            // Theorem I.3 exhaustively: LP-feasible ⇒ FF-EDF@2.98 accepts.
            if lp {
                assert!(
                    first_fit(&ts, &platform, Augmentation::EDF_VS_ANY, &EdfAdmission)
                        .is_feasible(),
                    "Theorem I.3 fails on {ts} / {platform}"
                );
            }

            // Simulator agreement for every accepted EDF assignment.
            if let Some(a) = ff_edf.assignment() {
                let rep = validate_assignment(&ts, &platform, a, Ratio::ONE, SchedPolicy::Edf)
                    .expect("simulate");
                assert_eq!(rep.miss_count, 0, "accepted but missed: {ts} / {platform}");
            }
        }
    }
    assert_eq!(checked, 3 * (4 + 10 + 20 + 35), "combinatorial family size");
}

#[test]
fn exhaustive_rms_chain() {
    for platform in platforms() {
        for ts in all_tasksets(3) {
            let ff = first_fit(&ts, &platform, Augmentation::NONE, &RmsLlAdmission);
            let exact = exact_partition_rms(&ts, &platform, 1 << 20);
            assert!(exact.is_decided());
            // FF with LL admission ⊆ exact RTA partitioning.
            if ff.is_feasible() {
                assert!(exact.is_feasible(), "LL-FF ⊄ exact RTA on {ts} / {platform}");
            }
            // Theorem I.2 exhaustively.
            if exact.is_feasible() {
                assert!(
                    first_fit(&ts, &platform, Augmentation::RMS_VS_PARTITIONED, &RmsLlAdmission)
                        .is_feasible(),
                    "Theorem I.2 fails on {ts} / {platform}"
                );
            }
            // Theorem I.4 exhaustively.
            if lp_feasible(&ts, &platform) {
                assert!(
                    first_fit(&ts, &platform, Augmentation::RMS_VS_ANY, &RmsLlAdmission)
                        .is_feasible(),
                    "Theorem I.4 fails on {ts} / {platform}"
                );
            }
            // Accepted RMS assignments survive simulation.
            if let Some(a) = ff.assignment() {
                let rep =
                    validate_assignment(&ts, &platform, a, Ratio::ONE, SchedPolicy::RateMonotonic)
                        .expect("simulate");
                assert_eq!(rep.miss_count, 0, "accepted RMS missed: {ts} / {platform}");
            }
        }
    }
}
