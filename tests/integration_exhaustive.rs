//! Exhaustive verification on a small discrete grid — no randomness, every
//! instance in the family is checked, so any coherence bug in the oracle
//! chain shows up deterministically.
//!
//! Family: utilizations from {0.25, 0.5, 0.75, 1.0} (as c/p = k/4), up to
//! 4 tasks, platforms [1], [1,1], [1,2]. That is 4+16+64+256 task sets ×
//! 3 platforms = 1 020 instances, each pushed through first-fit (EDF and
//! RMS), the exact branch-and-bound, the LP, and the level-algorithm
//! simulation.

use hetfeas::lp::lp_feasible;
use hetfeas::model::{Augmentation, Platform, Ratio, TaskSet};
use hetfeas::obs::MemorySink;
use hetfeas::partition::{
    exact_partition_edf, exact_partition_rms, first_fit, first_fit_instrumented, EdfAdmission,
    FirstFitEngine, RmsLlAdmission, ScanStats,
};
use hetfeas::sim::{level_schedulable, validate_assignment, SchedPolicy};

fn all_tasksets(max_n: usize) -> Vec<TaskSet> {
    let mut out = Vec::new();
    // wcets from 1..=4 over period 4 → utils 0.25..1.0.
    fn rec(prefix: &mut Vec<u64>, max_n: usize, out: &mut Vec<TaskSet>) {
        if !prefix.is_empty() {
            out.push(TaskSet::from_pairs(prefix.iter().map(|&c| (c, 4))).unwrap());
        }
        if prefix.len() == max_n {
            return;
        }
        // Non-decreasing wcets to kill permutation duplicates (every
        // algorithm here is permutation-invariant up to tie-breaking of
        // equal utilizations, and feasibility certainly is).
        let lo = prefix.last().copied().unwrap_or(1);
        for c in lo..=4 {
            prefix.push(c);
            rec(prefix, max_n, out);
            prefix.pop();
        }
    }
    rec(&mut Vec::new(), max_n, &mut out);
    out
}

fn platforms() -> Vec<Platform> {
    vec![
        Platform::identical(1).unwrap(),
        Platform::identical(2).unwrap(),
        Platform::from_int_speeds([1, 2]).unwrap(),
    ]
}

#[test]
fn exhaustive_oracle_coherence() {
    let mut checked = 0usize;
    for platform in platforms() {
        for ts in all_tasksets(4) {
            checked += 1;
            let ff_edf = first_fit(&ts, &platform, Augmentation::NONE, &EdfAdmission);
            let exact_edf = exact_partition_edf(&ts, &platform, 1 << 20);
            assert!(exact_edf.is_decided(), "budget must suffice at this size");
            let lp = lp_feasible(&ts, &platform);
            let demands: Vec<Ratio> = ts.iter().map(|t| t.utilization_ratio()).collect();
            let speeds: Vec<Ratio> = platform.iter().map(|m| m.speed()).collect();
            let fluid = level_schedulable(&demands, &speeds);

            // Chain: FF ⊆ exact ⊆ LP = fluid.
            if ff_edf.is_feasible() {
                assert!(exact_edf.is_feasible(), "FF ⊄ exact on {ts} / {platform}");
            }
            if exact_edf.is_feasible() {
                assert!(lp, "exact ⊄ LP on {ts} / {platform}");
            }
            assert_eq!(lp, fluid, "LP ≠ level simulation on {ts} / {platform}");

            // Theorem I.1 exhaustively: exact-feasible ⇒ FF-EDF@2 accepts.
            if exact_edf.is_feasible() {
                assert!(
                    first_fit(
                        &ts,
                        &platform,
                        Augmentation::EDF_VS_PARTITIONED,
                        &EdfAdmission
                    )
                    .is_feasible(),
                    "Theorem I.1 fails on {ts} / {platform}"
                );
            }
            // Theorem I.3 exhaustively: LP-feasible ⇒ FF-EDF@2.98 accepts.
            if lp {
                assert!(
                    first_fit(&ts, &platform, Augmentation::EDF_VS_ANY, &EdfAdmission)
                        .is_feasible(),
                    "Theorem I.3 fails on {ts} / {platform}"
                );
            }

            // Simulator agreement for every accepted EDF assignment.
            if let Some(a) = ff_edf.assignment() {
                let rep = validate_assignment(&ts, &platform, a, Ratio::ONE, SchedPolicy::Edf)
                    .expect("simulate");
                assert_eq!(rep.miss_count, 0, "accepted but missed: {ts} / {platform}");
            }
        }
    }
    assert_eq!(checked, 3 * (4 + 10 + 20 + 35), "combinatorial family size");
}

/// Wider conformance grid: tasks off a two-period utilization menu
/// ({k/4} ∪ {k/5}), every non-decreasing multiset of size ≤ `max_n`.
fn mixed_tasksets(max_n: usize) -> Vec<TaskSet> {
    const MENU: [(u64, u64); 9] = [
        (1, 5),
        (1, 4),
        (2, 5),
        (2, 4),
        (3, 5),
        (3, 4),
        (4, 5),
        (4, 4),
        (5, 5),
    ];
    let mut out = Vec::new();
    fn rec(prefix: &mut Vec<usize>, max_n: usize, out: &mut Vec<TaskSet>) {
        if !prefix.is_empty() {
            out.push(TaskSet::from_pairs(prefix.iter().map(|&i| MENU[i])).unwrap());
        }
        if prefix.len() == max_n {
            return;
        }
        let lo = prefix.last().copied().unwrap_or(0);
        for i in lo..MENU.len() {
            prefix.push(i);
            rec(prefix, max_n, out);
            prefix.pop();
        }
    }
    rec(&mut Vec::new(), max_n, &mut out);
    out
}

/// Every platform with m ≤ 3 machines over the speed menu {1, 2}.
fn wide_platforms() -> Vec<Platform> {
    [
        vec![1],
        vec![2],
        vec![1, 1],
        vec![1, 2],
        vec![2, 2],
        vec![1, 1, 1],
        vec![1, 1, 2],
        vec![1, 2, 2],
        vec![2, 2, 2],
    ]
    .into_iter()
    .map(|s| Platform::from_int_speeds(s).unwrap())
    .collect()
}

/// Conformance tier at the theorem constants, over the full n ≤ 4, m ≤ 3
/// coarse grid: whenever the exact partitioned oracle fits the instance at
/// speed 1, first-fit at α = 2 (EDF, Theorem I.1) and at α = 1/(√2−1)
/// (RMS-LL, Theorem I.2) must accept — no exceptions anywhere in the
/// family. The same sweep cross-checks the observability layer: the
/// instrumented scan's counters stay within the analytic worst case and
/// the indexed engine reports identical scan-equivalent counters.
#[test]
fn exhaustive_theorem_constants_wide_grid() {
    let tasksets = mixed_tasksets(4);
    let mut checked = 0usize;
    for platform in wide_platforms() {
        for ts in &tasksets {
            checked += 1;
            let exact = exact_partition_edf(ts, &platform, 1 << 20);
            assert!(
                exact.is_decided(),
                "EDF budget must suffice at n ≤ 4, m ≤ 3"
            );
            if exact.is_feasible() {
                assert!(
                    first_fit(
                        ts,
                        &platform,
                        Augmentation::EDF_VS_PARTITIONED,
                        &EdfAdmission
                    )
                    .is_feasible(),
                    "Theorem I.1 violated at α = 2 on {ts} / {platform}"
                );
            }

            // Counter conformance rides the same sweep: the scan does at
            // most n·m admission checks and places at most n tasks, and
            // the engine's derived counters match the scan exactly.
            let (outcome, stats) =
                first_fit_instrumented(ts, &platform, Augmentation::NONE, &EdfAdmission);
            let worst = ScanStats::worst_case(ts.len(), platform.len());
            assert!(stats.admission_checks <= worst, "{ts} / {platform}");
            assert!(stats.placed <= ts.len() as u64, "{ts} / {platform}");
            let sink = MemorySink::new();
            let engine_outcome = FirstFitEngine::new(EdfAdmission).run_with(
                ts,
                &platform,
                Augmentation::NONE,
                &sink,
            );
            assert_eq!(
                engine_outcome, outcome,
                "engine diverges on {ts} / {platform}"
            );
            assert_eq!(
                ScanStats::from_sink(&sink),
                stats,
                "engine counters diverge on {ts} / {platform}"
            );
        }
    }
    // 9-element menu, non-decreasing multisets of sizes 1..=4:
    // 9 + 45 + 165 + 495 = 714 task sets on each of the 9 platforms.
    assert_eq!(checked, 9 * 714, "combinatorial family size");
}

/// RMS half of the conformance tier (n ≤ 3 keeps the exact RTA
/// branch-and-bound cheap): exact-partitioned-feasible at speed 1 ⇒
/// first-fit RMS-LL accepts at the Theorem I.2 constant √2 + 1.
#[test]
fn exhaustive_rms_theorem_constant_wide_grid() {
    for platform in wide_platforms() {
        for ts in mixed_tasksets(3) {
            let exact = exact_partition_rms(&ts, &platform, 1 << 20);
            assert!(
                exact.is_decided(),
                "RMS budget must suffice at n ≤ 3, m ≤ 3"
            );
            if exact.is_feasible() {
                assert!(
                    first_fit(
                        &ts,
                        &platform,
                        Augmentation::RMS_VS_PARTITIONED,
                        &RmsLlAdmission
                    )
                    .is_feasible(),
                    "Theorem I.2 violated at α = √2 + 1 on {ts} / {platform}"
                );
            }
        }
    }
}

#[test]
fn exhaustive_rms_chain() {
    for platform in platforms() {
        for ts in all_tasksets(3) {
            let ff = first_fit(&ts, &platform, Augmentation::NONE, &RmsLlAdmission);
            let exact = exact_partition_rms(&ts, &platform, 1 << 20);
            assert!(exact.is_decided());
            // FF with LL admission ⊆ exact RTA partitioning.
            if ff.is_feasible() {
                assert!(
                    exact.is_feasible(),
                    "LL-FF ⊄ exact RTA on {ts} / {platform}"
                );
            }
            // Theorem I.2 exhaustively.
            if exact.is_feasible() {
                assert!(
                    first_fit(
                        &ts,
                        &platform,
                        Augmentation::RMS_VS_PARTITIONED,
                        &RmsLlAdmission
                    )
                    .is_feasible(),
                    "Theorem I.2 fails on {ts} / {platform}"
                );
            }
            // Theorem I.4 exhaustively.
            if lp_feasible(&ts, &platform) {
                assert!(
                    first_fit(&ts, &platform, Augmentation::RMS_VS_ANY, &RmsLlAdmission)
                        .is_feasible(),
                    "Theorem I.4 fails on {ts} / {platform}"
                );
            }
            // Accepted RMS assignments survive simulation.
            if let Some(a) = ff.assignment() {
                let rep =
                    validate_assignment(&ts, &platform, a, Ratio::ONE, SchedPolicy::RateMonotonic)
                        .expect("simulate");
                assert_eq!(rep.miss_count, 0, "accepted RMS missed: {ts} / {platform}");
            }
        }
    }
}
