//! Hand-constructed adversarial instances probing the theorems' edges:
//! known worst-case families for first-fit, knife-edge utilizations, and
//! the asymmetric platforms the paper's slow/medium/fast analysis targets.

use hetfeas::lp::{level_scaling_factor, lp_feasible};
use hetfeas::model::{Augmentation, Platform, TaskSet};
use hetfeas::partition::{
    exact_partition_edf, first_fit, min_feasible_alpha, EdfAdmission, ExactOutcome, RmsLlAdmission,
};

/// The classic first-fit stressor on identical machines: m machines,
/// m+1 tasks of utilization just over 1/2. The adversary cannot schedule
/// them either (pigeonhole), so this does NOT separate FF from OPT — it
/// verifies they agree.
#[test]
fn pigeonhole_family_agrees_with_exact() {
    for m in 2..6 {
        let tasks = TaskSet::from_pairs(vec![(51, 100); m + 1]).unwrap();
        let platform = Platform::identical(m).unwrap();
        assert!(!first_fit(&tasks, &platform, Augmentation::NONE, &EdfAdmission).is_feasible());
        assert_eq!(
            exact_partition_edf(&tasks, &platform, 1 << 22),
            ExactOutcome::Infeasible
        );
        // The *migrative* adversary schedules them fine (total 0.51(m+1)
        // ≤ m and each w ≤ 1) — exactly the partitioned-vs-migrative gap
        // the paper's two adversary classes capture.
        assert!(
            lp_feasible(&tasks, &platform),
            "migration handles m+1 half-loads"
        );
    }
}

/// A genuine FF-vs-OPT gap: 2 machines, tasks (0.5, 0.5, 0.5, 0.5, 1.0)…
/// FF(dec) places 1.0 first. Construct instead the textbook gap for
/// decreasing first-fit: utils {0.6, 0.6, 0.4, 0.4, 0.4, 0.4} on three
/// unit machines — OPT pairs 0.6+0.4 twice and 0.4+0.4 once; FF(dec) puts
/// 0.6+0.4 … actually also fits. Decreasing first-fit is 11/9-competitive
/// for bin packing, so gaps exist but are intricate; this test instead
/// *certifies a measured gap* found by search: the α* from bisection
/// exceeds 1 while the exact oracle succeeds.
#[test]
fn measured_ff_opt_gap_instance() {
    // utils: 0.46, 0.46, 0.30, 0.30, 0.24, 0.24 on two unit machines.
    // OPT: {0.46, 0.30, 0.24} = 1.00 twice. FF(dec): m0 ← 0.46, 0.46 →
    // 0.92; m1 ← 0.30, 0.30 → 0.60; 0.24 → m1 (0.84); 0.24 → m1? 1.08 ✗
    // m0 1.16 ✗ → FF fails while OPT packs perfectly.
    let tasks = TaskSet::from_pairs([
        (46, 100),
        (46, 100),
        (30, 100),
        (30, 100),
        (24, 100),
        (24, 100),
    ])
    .unwrap();
    let platform = Platform::identical(2).unwrap();
    assert!(
        !first_fit(&tasks, &platform, Augmentation::NONE, &EdfAdmission).is_feasible(),
        "FF must fail at α = 1"
    );
    assert!(
        exact_partition_edf(&tasks, &platform, 1 << 20).is_feasible(),
        "a perfect 2-way partition exists"
    );
    let alpha = min_feasible_alpha(&tasks, &platform, &EdfAdmission, 3.0, 1e-6).unwrap();
    assert!(
        alpha > 1.0 && alpha <= 2.0,
        "gap α* = {alpha} within Theorem I.1"
    );
    // The specific value: the final 0.24 task fits machine 1 once
    // 0.30+0.30+0.24+0.24 = 1.08 ≤ α, so α* = 1.08.
    assert!((alpha - 1.08).abs() < 1e-3, "α* = {alpha}");
}

/// Knife-edge: total utilization exactly equals total speed, per-machine
/// perfect packing required and possible.
#[test]
fn exact_saturation_feasible() {
    // Speeds [1, 2]; tasks 1.0 and 2.0 exactly.
    let tasks = TaskSet::from_pairs([(1, 1), (2, 1)]).unwrap();
    let platform = Platform::from_int_speeds([1, 2]).unwrap();
    let out = first_fit(&tasks, &platform, Augmentation::NONE, &EdfAdmission);
    assert!(
        out.is_feasible(),
        "exact saturation must be accepted (non-strict bound)"
    );
    assert!(lp_feasible(&tasks, &platform));
    assert!((level_scaling_factor(&tasks, &platform) - 1.0).abs() < 1e-12);
}

/// A single heavy task heavier than every slow machine exercises the
/// paper's "slow machines cannot host τ_n" case.
#[test]
fn heavy_task_skips_slow_machines() {
    let tasks = TaskSet::from_pairs([(15, 10)]).unwrap(); // w = 1.5
    let platform = Platform::from_int_speeds([1, 1, 1, 2]).unwrap();
    let out = first_fit(&tasks, &platform, Augmentation::NONE, &EdfAdmission);
    assert_eq!(out.assignment().unwrap().machine_of(0), Some(3));
    // With every machine too slow, failure at α = 1 but the LP agrees
    // (constraint (2): a task cannot exceed the fastest machine).
    let slow = Platform::from_int_speeds([1, 1, 1]).unwrap();
    assert!(!first_fit(&tasks, &slow, Augmentation::NONE, &EdfAdmission).is_feasible());
    assert!(!lp_feasible(&tasks, &slow));
}

/// The RMS factor-2.41 witness shape: pairs of tasks at the Liu–Layland
/// boundary. Verifies the theorem's α rescues them and the bound is not
/// violated on the family.
#[test]
fn rms_boundary_pairs() {
    for k in 1..6 {
        // 2k tasks of utilization 0.5 on k unit machines: exact RM can
        // schedule 2 per machine only if 1.0 ≤ ... RM needs harmonic; with
        // equal periods RM = FIFO-ish and 0.5+0.5 = 1.0 is schedulable
        // (same period ⇒ both complete). LL rejects (bound 0.828).
        let tasks = TaskSet::from_pairs(vec![(1, 2); 2 * k]).unwrap();
        let platform = Platform::identical(k).unwrap();
        assert!(
            !first_fit(&tasks, &platform, Augmentation::NONE, &RmsLlAdmission).is_feasible(),
            "LL must reject 0.5+0.5 pairs at α = 1"
        );
        assert!(
            first_fit(
                &tasks,
                &platform,
                Augmentation::RMS_VS_PARTITIONED,
                &RmsLlAdmission
            )
            .is_feasible(),
            "α = 2.414 must rescue the pairs (Theorem I.2)"
        );
    }
}

/// Geometric speed ladders: the slow/medium/fast grouping of §IV with a
/// wide speed range; FF must walk up the ladder correctly.
#[test]
fn geometric_ladder_placement() {
    let platform = Platform::from_int_speeds([1, 2, 4, 8]).unwrap();
    // Tasks sized to fit exactly one rung each (utilization = rung speed).
    let tasks = TaskSet::from_pairs([(8, 1), (4, 1), (2, 1), (1, 1)]).unwrap();
    let out = first_fit(&tasks, &platform, Augmentation::NONE, &EdfAdmission);
    let a = out.assignment().expect("one task per rung fits");
    // Decreasing utilization: 8, 4, 2, 1 → machines 3, 2, 1, 0.
    assert_eq!(a.machine_of(0), Some(3));
    assert_eq!(a.machine_of(1), Some(2));
    assert_eq!(a.machine_of(2), Some(1));
    assert_eq!(a.machine_of(3), Some(0));
}

/// Empty and degenerate inputs across the public API.
#[test]
fn degenerate_inputs() {
    let empty = TaskSet::empty();
    let p = Platform::identical(1).unwrap();
    assert!(first_fit(&empty, &p, Augmentation::NONE, &EdfAdmission).is_feasible());
    assert!(lp_feasible(&empty, &p));
    assert!(exact_partition_edf(&empty, &p, 10).is_feasible());
    assert_eq!(
        min_feasible_alpha(&empty, &p, &EdfAdmission, 2.0, 1e-6),
        Some(1.0)
    );
}
