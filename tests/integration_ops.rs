//! End-to-end tests of the `hetfeas ops` subcommand: op-trace replay
//! through the incremental admission engine and the from-scratch
//! baseline, budget exhaustion (exit 3), and malformed traces (exit 2).

use std::path::PathBuf;
use std::process::{Command, Output};
use std::sync::atomic::{AtomicU64, Ordering};

fn hetfeas(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_hetfeas"))
        .args(args)
        .output()
        .expect("spawn hetfeas")
}

/// Self-cleaning temp file (no external tempfile crate needed).
struct TempFile(PathBuf);

impl TempFile {
    fn to_str(&self) -> &str {
        self.0.to_str().expect("utf-8 temp path")
    }
}

impl Drop for TempFile {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.0);
    }
}

fn temp_path(ext: &str) -> TempFile {
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    TempFile(std::env::temp_dir().join(format!(
        "hetfeas-ops-test-{}-{}.{ext}",
        std::process::id(),
        COUNTER.fetch_add(1, Ordering::Relaxed)
    )))
}

fn write_trace(content: &str) -> TempFile {
    let path = temp_path("ops");
    std::fs::write(&path.0, content).expect("write temp trace");
    path
}

/// Two instances exercising every op kind the replay engine supports.
const TRACE: &str = "\
# two machines, adds with churn, speculation, and a repack
begin warm
machine 1
machine 2
add 1 1 2
add 2 1 4
query 1
snapshot
add 3 9 10
rollback
remove 2
remove 9
repack
end

begin tiny
machine 1
add 7 1 5
query 7
query 8
end
";

#[test]
fn ops_replays_a_trace_and_writes_a_report() {
    let trace = write_trace(TRACE);
    let report = temp_path("json");
    let out = hetfeas(&[
        "ops",
        "--trace",
        trace.to_str(),
        "--workers",
        "2",
        "--report",
        report.to_str(),
        "-v",
    ]);
    assert!(out.status.success(), "{out:?}");
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("2 instances (12 ops)"), "{stdout}");
    assert!(stdout.contains("ops replayed"), "{stdout}");
    let json = std::fs::read_to_string(&report.0).expect("report written");
    assert!(json.contains("\"verdict\": \"replayed\""), "{json}");
    assert!(json.contains("\"mode\": \"incremental\""), "{json}");
    assert!(json.contains("\"instances\": 2"), "{json}");
    assert!(json.contains("\"snapshots\": 1"), "{json}");
    assert!(json.contains("\"rollbacks\": 1"), "{json}");
}

#[test]
fn ops_incremental_and_from_scratch_agree() {
    let trace = write_trace(TRACE);
    let summary = |mode: &str| -> String {
        let out = hetfeas(&["ops", "--trace", trace.to_str(), "--mode", mode]);
        assert!(out.status.success(), "{mode}: {out:?}");
        let stdout = String::from_utf8(out.stdout).unwrap();
        stdout
            .lines()
            .find(|l| l.contains("ops replayed"))
            .expect("summary line")
            .to_string()
    };
    assert_eq!(summary("incremental"), summary("from-scratch"));
}

#[test]
fn ops_tiny_budget_is_undecided_exit_three() {
    // A trace heavy enough that a 1 ms wall budget always exhausts
    // mid-replay: every `repack` is a full batch re-run over 1000 live
    // tasks, and each one polls the clock (tick_n), so the deadline is
    // observed promptly no matter how fast the host is.
    let mut heavy = String::from("begin heavy\n");
    for _ in 0..64 {
        heavy.push_str("machine 1\n");
    }
    for id in 0..1000u32 {
        heavy.push_str(&format!("add {id} 1 1000\n"));
    }
    for _ in 0..500 {
        heavy.push_str("repack\n");
    }
    heavy.push_str("end\n");
    let trace = write_trace(&heavy);
    let out = hetfeas(&["ops", "--trace", trace.to_str(), "--budget-ms", "1"]);
    assert_eq!(out.status.code(), Some(3), "{out:?}");
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("UNDECIDED"), "{stdout}");
    assert!(stdout.contains("wall-clock"), "{stdout}");
}

#[test]
fn ops_malformed_trace_exits_two() {
    let trace = write_trace("begin broken\nmachine 1\nadd nonsense\nend\n");
    let out = hetfeas(&["ops", "--trace", trace.to_str()]);
    assert_eq!(out.status.code(), Some(2), "{out:?}");
}

fn hetfeas_env(args: &[&str], envs: &[(&str, &str)]) -> Output {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_hetfeas"));
    cmd.args(args);
    for (k, v) in envs {
        cmd.env(k, v);
    }
    cmd.output().expect("spawn hetfeas")
}

/// Single instance covering every op kind — `--journal` replays exactly
/// one instance.
const SOLO_TRACE: &str = "\
begin solo
machine 1
machine 2
add 1 1 2
add 2 1 4
snapshot
add 3 9 10
rollback
remove 2
repack
end
";

fn digest_line(stdout: &[u8], prefix: &str) -> String {
    let text = String::from_utf8(stdout.to_vec()).unwrap();
    text.lines()
        .find(|l| l.starts_with(prefix))
        .unwrap_or_else(|| panic!("no {prefix:?} line in {text}"))
        .rsplit(' ')
        .next()
        .unwrap()
        .to_string()
}

#[test]
fn journaled_ops_then_recover_round_trips_the_digest() {
    let trace = write_trace(SOLO_TRACE);
    let journal = temp_path("journal");
    let out = hetfeas(&[
        "ops",
        "--trace",
        trace.to_str(),
        "--journal",
        journal.to_str(),
    ]);
    assert!(out.status.success(), "{out:?}");
    let written = digest_line(&out.stdout, "journal digest ");
    let out = hetfeas(&["recover", journal.to_str(), "-v"]);
    assert!(out.status.success(), "{out:?}");
    let recovered = digest_line(&out.stdout, "state digest ");
    assert_eq!(written, recovered, "recovery must be bit-exact");
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(
        stdout.contains("(0 truncated, 0 bytes dropped)"),
        "{stdout}"
    );
}

#[test]
fn injected_crash_exits_two_and_the_journal_recovers() {
    let trace = write_trace(SOLO_TRACE);
    let journal = temp_path("journal");
    // 150 bytes is past the config record (~115 bytes for this platform)
    // but well inside the op stream, so the crash tears a mid-run record.
    let out = hetfeas_env(
        &[
            "ops",
            "--trace",
            trace.to_str(),
            "--journal",
            journal.to_str(),
        ],
        &[("HETFEAS_JOURNAL_CRASH_AT", "150")],
    );
    assert_eq!(out.status.code(), Some(2), "{out:?}");
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(stderr.contains("injected fault"), "{stderr}");
    // The synced prefix recovers cleanly (exit 0), reporting the torn tail.
    let out = hetfeas(&["recover", journal.to_str()]);
    assert!(out.status.success(), "{out:?}");
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("state digest "), "{stdout}");
}

#[test]
fn transient_io_errors_are_retried_to_success() {
    let trace = write_trace(SOLO_TRACE);
    let journal = temp_path("journal");
    let out = hetfeas_env(
        &[
            "ops",
            "--trace",
            trace.to_str(),
            "--journal",
            journal.to_str(),
        ],
        &[("HETFEAS_JOURNAL_TRANSIENT", "2")],
    );
    assert!(out.status.success(), "{out:?}");
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("2 retries"), "{stdout}");
}

#[test]
fn recover_on_garbage_or_missing_journal_exits_two() {
    let garbage = temp_path("journal");
    std::fs::write(&garbage.0, b"not a journal at all").unwrap();
    let out = hetfeas(&["recover", garbage.to_str()]);
    assert_eq!(out.status.code(), Some(2), "{out:?}");
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(stderr.contains("no intact records"), "{stderr}");
    let out = hetfeas(&["recover", "/nonexistent/hetfeas.journal"]);
    assert_eq!(out.status.code(), Some(2), "{out:?}");
}

#[test]
fn journal_flag_validation_exits_two() {
    // Two instances cannot share one journal.
    let trace = write_trace(TRACE);
    let journal = temp_path("journal");
    let out = hetfeas(&[
        "ops",
        "--trace",
        trace.to_str(),
        "--journal",
        journal.to_str(),
    ]);
    assert_eq!(out.status.code(), Some(2), "{out:?}");
    // The from-scratch baseline has no journaled form.
    let solo = write_trace(SOLO_TRACE);
    let out = hetfeas(&[
        "ops",
        "--trace",
        solo.to_str(),
        "--journal",
        journal.to_str(),
        "--mode",
        "from-scratch",
    ]);
    assert_eq!(out.status.code(), Some(2), "{out:?}");
    // --compact-every is meaningless without a journal.
    let out = hetfeas(&["ops", "--trace", solo.to_str(), "--compact-every", "4"]);
    assert_eq!(out.status.code(), Some(2), "{out:?}");
    // recover needs a file argument.
    let out = hetfeas(&["recover"]);
    assert_eq!(out.status.code(), Some(2), "{out:?}");
}

#[test]
fn compaction_keeps_the_journal_recoverable() {
    let trace = write_trace(SOLO_TRACE);
    let journal = temp_path("journal");
    let out = hetfeas(&[
        "ops",
        "--trace",
        trace.to_str(),
        "--journal",
        journal.to_str(),
        "--compact-every",
        "3",
    ]);
    assert!(out.status.success(), "{out:?}");
    let written = digest_line(&out.stdout, "journal digest ");
    let stdout = String::from_utf8(out.stdout.clone()).unwrap();
    assert!(!stdout.contains(" 0 compactions"), "{stdout}");
    let out = hetfeas(&["recover", journal.to_str()]);
    assert!(out.status.success(), "{out:?}");
    assert_eq!(digest_line(&out.stdout, "state digest "), written);
}

#[test]
fn ops_rejects_rms_rta_and_bad_mode() {
    let trace = write_trace(TRACE);
    let out = hetfeas(&["ops", "--trace", trace.to_str(), "--policy", "rms-rta"]);
    assert_eq!(out.status.code(), Some(2), "{out:?}");
    let out = hetfeas(&["ops", "--trace", trace.to_str(), "--mode", "sideways"]);
    assert_eq!(out.status.code(), Some(2), "{out:?}");
    let out = hetfeas(&["ops"]);
    assert_eq!(out.status.code(), Some(2), "{out:?}");
}
