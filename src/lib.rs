//! # hetfeas — partitioned feasibility tests for sporadic tasks on heterogeneous machines
//!
//! Facade crate re-exporting the `hetfeas` workspace: a reproduction of
//! Ahuja, Lu & Moseley, *Partitioned Feasibility Tests for Sporadic Tasks on
//! Heterogeneous Machines* (IPPS 2016).
//!
//! ## Quickstart
//!
//! ```
//! use hetfeas::model::{Augmentation, Platform, TaskSet};
//! use hetfeas::partition::{first_fit, EdfAdmission};
//!
//! // Three tasks, two machines of speeds 1 and 2.
//! let tasks = TaskSet::from_pairs([(3, 10), (4, 10), (9, 10)]).unwrap();
//! let platform = Platform::from_int_speeds([1, 2]).unwrap();
//!
//! // The paper's feasibility test: first-fit by decreasing utilization onto
//! // machines by increasing speed, EDF admission, speed augmentation α.
//! let outcome = first_fit(&tasks, &platform, Augmentation::NONE, &EdfAdmission);
//! assert!(outcome.is_feasible());
//! ```
//!
//! See the crate-level docs of the member crates for details:
//! [`model`], [`analysis`], [`partition`], [`lp`], [`sim`], [`workload`],
//! [`par`], [`obs`], [`robust`], [`experiments`], [`service`].

pub use hetfeas_analysis as analysis;
pub use hetfeas_experiments as experiments;
pub use hetfeas_lp as lp;
pub use hetfeas_model as model;
pub use hetfeas_obs as obs;
pub use hetfeas_par as par;
pub use hetfeas_partition as partition;
pub use hetfeas_robust as robust;
pub use hetfeas_service as service;
pub use hetfeas_sim as sim;
pub use hetfeas_workload as workload;
