//! `hetfeas` — command-line front end for the feasibility tests.
//!
//! ```text
//! hetfeas check    SYSTEM.txt [--policy edf|rms|rms-hyp|rms-rta] [--alpha X] [--report FILE] [-v]
//! hetfeas alpha    SYSTEM.txt [--policy …] [--report FILE]   least feasible augmentation + LP bound
//! hetfeas oracles  SYSTEM.txt                                LP / exact-partition ground truth
//! hetfeas simulate SYSTEM.txt [--policy …] [--alpha X] [--jitter F] [--seed N] [--report FILE]
//! hetfeas generate --tasks N --machines M --util U [--platform KIND] [--seed N]
//! ```
//!
//! System files: `task <wcet> <period> [deadline]` and `machine <speed>`
//! lines (see `hetfeas::model::io`). Exit codes: 0 feasible / clean,
//! 1 infeasible / misses, 2 usage or I/O error.
//!
//! `--report FILE` writes a JSON run report (verdict, instance shape,
//! `ff.*`/`alpha.*` work counters, phase timers — see
//! `hetfeas::partition::metrics`) after the run completes. The report is
//! rendered fully in memory and written only on success, so a run that
//! exits 2 never leaves a partial file behind.

use hetfeas::analysis;
use hetfeas::lp::{level_scaling_factor, lp_feasible};
use hetfeas::model::{parse_system, render_system, Augmentation, Ratio, System};
use hetfeas::obs::{Json, MemorySink, MetricsSink, RunReport};
use hetfeas::partition::{
    exact_partition_edf, exact_partition_rms, first_fit_with, min_feasible_alpha_with,
    AdmissionTest, EdfAdmission, ExactOutcome, Outcome, RmsHyperbolicAdmission, RmsLlAdmission,
    RmsRtaAdmission,
};
use hetfeas::sim::{validate_assignment, ReleasePattern, SchedPolicy};
use hetfeas::workload::{PeriodMenu, PlatformSpec, Scenario, UtilizationSampler, WorkloadSpec};
use std::process::ExitCode;

#[derive(Clone, Copy, PartialEq)]
enum Policy {
    Edf,
    RmsLl,
    RmsHyperbolic,
    RmsRta,
}

impl Policy {
    fn parse(s: &str) -> Result<Self, String> {
        match s {
            "edf" => Ok(Policy::Edf),
            "rms" | "rms-ll" => Ok(Policy::RmsLl),
            "rms-hyp" | "rms-hyperbolic" => Ok(Policy::RmsHyperbolic),
            "rms-rta" => Ok(Policy::RmsRta),
            other => Err(format!(
                "unknown policy {other:?} (edf|rms|rms-hyp|rms-rta)"
            )),
        }
    }

    fn sched(self) -> SchedPolicy {
        match self {
            Policy::Edf => SchedPolicy::Edf,
            _ => SchedPolicy::RateMonotonic,
        }
    }

    fn name(self) -> &'static str {
        match self {
            Policy::Edf => "EDF",
            Policy::RmsLl => "RMS (Liu–Layland)",
            Policy::RmsHyperbolic => "RMS (hyperbolic)",
            Policy::RmsRta => "RMS (exact RTA)",
        }
    }

    /// Canonical flag spelling, used as the `policy` field of run reports.
    fn key(self) -> &'static str {
        match self {
            Policy::Edf => "edf",
            Policy::RmsLl => "rms-ll",
            Policy::RmsHyperbolic => "rms-hyp",
            Policy::RmsRta => "rms-rta",
        }
    }
}

fn run_ff(sys: &System, policy: Policy, alpha: Augmentation) -> Outcome {
    run_ff_with(sys, policy, alpha, &())
}

fn run_ff_with<S: MetricsSink>(
    sys: &System,
    policy: Policy,
    alpha: Augmentation,
    sink: &S,
) -> Outcome {
    match policy {
        Policy::Edf => first_fit_with(&sys.tasks, &sys.platform, alpha, &EdfAdmission, sink),
        Policy::RmsLl => first_fit_with(&sys.tasks, &sys.platform, alpha, &RmsLlAdmission, sink),
        Policy::RmsHyperbolic => first_fit_with(
            &sys.tasks,
            &sys.platform,
            alpha,
            &RmsHyperbolicAdmission,
            sink,
        ),
        Policy::RmsRta => first_fit_with(&sys.tasks, &sys.platform, alpha, &RmsRtaAdmission, sink),
    }
}

fn min_alpha_with<S: MetricsSink>(sys: &System, policy: Policy, hi: f64, sink: &S) -> Option<f64> {
    fn go<A: AdmissionTest, S: MetricsSink>(sys: &System, a: &A, hi: f64, sink: &S) -> Option<f64> {
        min_feasible_alpha_with(&sys.tasks, &sys.platform, a, hi, 1e-6, sink)
    }
    match policy {
        Policy::Edf => go(sys, &EdfAdmission, hi, sink),
        Policy::RmsLl => go(sys, &RmsLlAdmission, hi, sink),
        Policy::RmsHyperbolic => go(sys, &RmsHyperbolicAdmission, hi, sink),
        Policy::RmsRta => go(sys, &RmsRtaAdmission, hi, sink),
    }
}

/// Start a run report with the fields every subcommand shares: the input
/// file, policy key, and instance shape.
fn base_report(command: &str, c: &Common, sys: &System) -> RunReport {
    let mut r = RunReport::new("hetfeas", command);
    r.set("input", Json::Str(c.file.clone().unwrap_or_default()))
        .set("policy", Json::Str(c.policy.key().into()))
        .set("n_tasks", Json::UInt(sys.tasks.len() as u64))
        .set("n_machines", Json::UInt(sys.platform.len() as u64))
        .set(
            "total_utilization",
            Json::Float(sys.tasks.total_utilization()),
        )
        .set("total_speed", Json::Float(sys.platform.total_speed()));
    r
}

/// Render and write a finished report. Called only after the run computed a
/// verdict, so error paths never leave a partial file behind.
fn write_report(path: &str, report: &RunReport) -> Result<(), String> {
    std::fs::write(path, report.render()).map_err(|e| format!("write {path}: {e}"))
}

struct Common {
    file: Option<String>,
    policy: Policy,
    alpha: f64,
    verbose: bool,
    jitter: Option<f64>,
    seed: u64,
    report: Option<String>,
    // generate-only
    tasks: usize,
    machines: usize,
    util: f64,
    platform: String,
    scenario: Option<String>,
}

fn parse_common(args: &[String]) -> Result<Common, String> {
    let mut c = Common {
        file: None,
        policy: Policy::Edf,
        alpha: 1.0,
        verbose: false,
        jitter: None,
        seed: 1,
        report: None,
        tasks: 10,
        machines: 4,
        util: 0.7,
        platform: "big-little".into(),
        scenario: None,
    };
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let mut next = |what: &str| -> Result<String, String> {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{what} needs a value"))
        };
        match a.as_str() {
            "--policy" => c.policy = Policy::parse(&next("--policy")?)?,
            "--alpha" => {
                c.alpha = next("--alpha")?
                    .parse()
                    .map_err(|e| format!("bad --alpha: {e}"))?
            }
            "--jitter" => {
                c.jitter = Some(
                    next("--jitter")?
                        .parse()
                        .map_err(|e| format!("bad --jitter: {e}"))?,
                )
            }
            "--seed" => {
                c.seed = next("--seed")?
                    .parse()
                    .map_err(|e| format!("bad --seed: {e}"))?
            }
            "--tasks" => {
                c.tasks = next("--tasks")?
                    .parse()
                    .map_err(|e| format!("bad --tasks: {e}"))?
            }
            "--machines" => {
                c.machines = next("--machines")?
                    .parse()
                    .map_err(|e| format!("bad --machines: {e}"))?
            }
            "--util" => {
                c.util = next("--util")?
                    .parse()
                    .map_err(|e| format!("bad --util: {e}"))?
            }
            "--platform" => c.platform = next("--platform")?,
            "--scenario" => c.scenario = Some(next("--scenario")?),
            "--report" => c.report = Some(next("--report")?),
            "-v" | "--verbose" => c.verbose = true,
            other if other.starts_with('-') => return Err(format!("unknown flag {other}")),
            path => {
                if c.file.replace(path.to_string()).is_some() {
                    return Err("more than one input file".into());
                }
            }
        }
    }
    Ok(c)
}

fn load(c: &Common) -> Result<System, String> {
    let path = c.file.as_ref().ok_or("missing SYSTEM file argument")?;
    let text = std::fs::read_to_string(path).map_err(|e| format!("read {path}: {e}"))?;
    parse_system(&text).map_err(|e| format!("{path}: {e}"))
}

fn cmd_check(c: &Common) -> Result<ExitCode, String> {
    let sys = load(c)?;
    let alpha = Augmentation::new(c.alpha).map_err(|e| e.to_string())?;
    println!(
        "{} tasks (ΣU = {:.3}), {} machines (ΣS = {:.3}), policy {}, α = {}",
        sys.tasks.len(),
        sys.tasks.total_utilization(),
        sys.platform.len(),
        sys.platform.total_speed(),
        c.policy.name(),
        c.alpha
    );
    let sink = c.report.as_ref().map(|_| MemorySink::new());
    let outcome = match &sink {
        Some(s) => {
            let _t = s.timer("phase.partition");
            run_ff_with(&sys, c.policy, alpha, s)
        }
        None => run_ff(&sys, c.policy, alpha),
    };
    let code = match &outcome {
        Outcome::Feasible(a) => {
            println!("FEASIBLE");
            if c.verbose {
                for m in 0..sys.platform.len() {
                    println!(
                        "  machine {m} (speed {}): tasks {:?}, load {:.3}",
                        sys.platform.machine(m).speed(),
                        a.tasks_on(m),
                        a.load_on(m, &sys.tasks),
                    );
                }
            }
            ExitCode::SUCCESS
        }
        Outcome::Infeasible(w) => {
            println!(
                "INFEASIBLE — task {} (utilization {:.3}) fits no machine",
                w.failing_task, w.failing_utilization
            );
            let (bound, name) = match c.policy {
                Policy::Edf => (2.0, "partitioned (Theorem I.1)"),
                _ => (
                    Augmentation::RMS_VS_PARTITIONED.factor(),
                    "partitioned (Theorem I.2)",
                ),
            };
            if c.alpha >= bound {
                println!("⇒ provably infeasible for any {name} scheduler at speed 1");
            }
            ExitCode::from(1)
        }
    };
    if let (Some(path), Some(s)) = (&c.report, &sink) {
        let mut r = base_report("check", c, &sys);
        r.set("alpha", Json::Float(c.alpha));
        match &outcome {
            Outcome::Feasible(_) => {
                r.set("verdict", Json::Str("feasible".into()));
            }
            Outcome::Infeasible(w) => {
                r.set("verdict", Json::Str("infeasible".into()))
                    .set("failing_task", Json::UInt(w.failing_task as u64))
                    .set("failing_utilization", Json::Float(w.failing_utilization));
            }
        }
        r.attach_metrics(&s.snapshot());
        write_report(path, &r)?;
    }
    Ok(code)
}

fn cmd_alpha(c: &Common) -> Result<ExitCode, String> {
    let sys = load(c)?;
    let sink = c.report.as_ref().map(|_| MemorySink::new());
    let beta = match &sink {
        Some(s) => {
            let _t = s.timer("phase.lp_bound");
            level_scaling_factor(&sys.tasks, &sys.platform)
        }
        None => level_scaling_factor(&sys.tasks, &sys.platform),
    };
    println!("LP lower bound β (no scheduler can need less): {beta:.4}");
    let star = match &sink {
        Some(s) => {
            let _t = s.timer("phase.alpha_search");
            min_alpha_with(&sys, c.policy, 64.0, s)
        }
        None => min_alpha_with(&sys, c.policy, 64.0, &()),
    };
    let code = match star {
        Some(a) => {
            println!("first-fit {} needs α* = {a:.4}", c.policy.name());
            println!("overhead vs LP bound: {:.3}×", a / beta.max(1e-12));
            ExitCode::SUCCESS
        }
        None => {
            println!("first-fit {} infeasible even at α = 64", c.policy.name());
            ExitCode::from(1)
        }
    };
    if let (Some(path), Some(s)) = (&c.report, &sink) {
        let mut r = base_report("alpha", c, &sys);
        r.set("lp_beta", Json::Float(beta))
            .set("alpha_star", star.map_or(Json::Null, Json::Float))
            .set(
                "verdict",
                Json::Str(
                    if star.is_some() {
                        "feasible"
                    } else {
                        "infeasible"
                    }
                    .into(),
                ),
            );
        r.attach_metrics(&s.snapshot());
        write_report(path, &r)?;
    }
    Ok(code)
}

fn cmd_oracles(c: &Common) -> Result<ExitCode, String> {
    let sys = load(c)?;
    println!(
        "LP (migrative adversary): {}",
        if lp_feasible(&sys.tasks, &sys.platform) {
            "feasible"
        } else {
            "infeasible"
        }
    );
    let budget = 8_000_000;
    let fmt = |o: ExactOutcome| match o {
        ExactOutcome::Feasible(_) => "feasible".to_string(),
        ExactOutcome::Infeasible => "infeasible".to_string(),
        ExactOutcome::Unknown => format!("undecided within {budget} nodes"),
    };
    println!(
        "optimal partitioned EDF: {}",
        fmt(exact_partition_edf(&sys.tasks, &sys.platform, budget))
    );
    println!(
        "optimal partitioned RMS (exact RTA): {}",
        fmt(exact_partition_rms(&sys.tasks, &sys.platform, budget / 8))
    );
    // Single-machine quick facts when m = 1.
    if sys.platform.len() == 1 {
        let s = sys.platform.machine(0).speed();
        println!(
            "single machine: EDF {}, RTA {}",
            if analysis::edf_schedulable_exact(&sys.tasks, s) {
                "ok"
            } else {
                "overload"
            },
            if analysis::rta_schedulable(&sys.tasks, s) {
                "ok"
            } else {
                "miss"
            },
        );
    }
    Ok(ExitCode::SUCCESS)
}

fn cmd_simulate(c: &Common) -> Result<ExitCode, String> {
    let sys = load(c)?;
    let alpha = Augmentation::new(c.alpha).map_err(|e| e.to_string())?;
    let sink = c.report.as_ref().map(|_| MemorySink::new());
    let outcome = match &sink {
        Some(s) => {
            let _t = s.timer("phase.partition");
            run_ff_with(&sys, c.policy, alpha, s)
        }
        None => run_ff(&sys, c.policy, alpha),
    };
    let Outcome::Feasible(assignment) = outcome else {
        println!(
            "first-fit rejects this system at α = {} — nothing to simulate",
            c.alpha
        );
        if let (Some(path), Some(s)) = (&c.report, &sink) {
            let mut r = base_report("simulate", c, &sys);
            r.set("alpha", Json::Float(c.alpha))
                .set("verdict", Json::Str("rejected".into()));
            r.attach_metrics(&s.snapshot());
            write_report(path, &r)?;
        }
        return Ok(ExitCode::from(1));
    };
    let alpha_ratio = Ratio::approximate_f64(c.alpha, 1_000_000)
        .ok_or("cannot rationalize --alpha for the exact simulator")?;
    let _sim_phase = sink.as_ref().map(|s| s.timer("phase.simulate"));
    let report = if let Some(j) = c.jitter {
        let horizon = hetfeas::sim::validation_horizon(&sys.tasks)
            .ok_or("hyperperiod too large for simulation")?;
        hetfeas::sim::simulate_partition(
            &sys.tasks,
            &sys.platform,
            &assignment,
            alpha_ratio,
            c.policy.sched(),
            ReleasePattern::Sporadic {
                jitter_frac: j,
                seed: c.seed,
            },
            horizon,
        )
    } else {
        validate_assignment(
            &sys.tasks,
            &sys.platform,
            &assignment,
            alpha_ratio,
            c.policy.sched(),
        )
    }
    .map_err(|e| e.to_string())?;
    drop(_sim_phase);
    println!(
        "simulated 2 hyperperiods: {} jobs, {} misses, {} preemptions, max lateness {:?}",
        report.jobs_completed, report.miss_count, report.preemptions, report.max_lateness
    );
    if c.verbose {
        for m in &report.misses {
            println!(
                "  miss: task {} released {} deadline {} completed {}",
                m.task, m.release, m.deadline, m.completion
            );
        }
    }
    if let (Some(path), Some(s)) = (&c.report, &sink) {
        let mut r = base_report("simulate", c, &sys);
        r.set("alpha", Json::Float(c.alpha))
            .set("jobs_completed", Json::UInt(report.jobs_completed))
            .set("miss_count", Json::UInt(report.miss_count))
            .set("preemptions", Json::UInt(report.preemptions))
            .set(
                "verdict",
                Json::Str(
                    if report.miss_count == 0 {
                        "clean"
                    } else {
                        "misses"
                    }
                    .into(),
                ),
            );
        r.attach_metrics(&s.snapshot());
        write_report(path, &r)?;
    }
    Ok(if report.miss_count == 0 {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    })
}

fn cmd_generate(c: &Common) -> Result<ExitCode, String> {
    if let Some(name) = &c.scenario {
        let scenario = Scenario::parse(name).ok_or_else(|| {
            format!(
                "unknown --scenario {name:?} (available: {})",
                Scenario::ALL.map(|s| s.name()).join(", ")
            )
        })?;
        let inst = scenario
            .spec()
            .generate(c.seed, 0)
            .ok_or("scenario generator could not satisfy its parameters")?;
        print!("{}", render_system(&inst.tasks, &inst.platform));
        return Ok(ExitCode::SUCCESS);
    }
    let platform = match c.platform.as_str() {
        "identical" => PlatformSpec::Identical { m: c.machines },
        "big-little" => PlatformSpec::BigLittle {
            big: (c.machines / 3).max(1),
            little: c.machines - (c.machines / 3).max(1),
            ratio: 3,
        },
        "geometric" => PlatformSpec::Geometric {
            m: c.machines,
            base: 2,
        },
        "uniform" => PlatformSpec::UniformRandom {
            m: c.machines,
            lo: 1,
            hi: 8,
        },
        other => return Err(format!("unknown --platform {other:?}")),
    };
    let spec = WorkloadSpec {
        n_tasks: c.tasks,
        normalized_utilization: c.util,
        platform,
        sampler: UtilizationSampler::UUniFastCapped,
        periods: PeriodMenu::standard(),
    };
    let inst = spec
        .generate(c.seed, 0)
        .ok_or("generator could not satisfy the parameters (utilization too tight?)")?;
    print!("{}", render_system(&inst.tasks, &inst.platform));
    Ok(ExitCode::SUCCESS)
}

const USAGE: &str = "usage: hetfeas <check|alpha|oracles|simulate|generate> [ARGS]
  check    SYSTEM [--policy edf|rms|rms-hyp|rms-rta] [--alpha X] [--report FILE] [-v]
  alpha    SYSTEM [--policy …] [--report FILE]
  oracles  SYSTEM
  simulate SYSTEM [--policy …] [--alpha X] [--jitter F] [--seed N] [--report FILE] [-v]
  generate --tasks N --machines M --util U [--platform identical|big-little|geometric|uniform]
           [--scenario automotive|avionics|media|server] [--seed N]
  --report FILE writes a JSON run report (verdict + work counters + phase timers)";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((cmd, rest)) = args.split_first() else {
        eprintln!("{USAGE}");
        return ExitCode::from(2);
    };
    let common = match parse_common(rest) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("{e}\n{USAGE}");
            return ExitCode::from(2);
        }
    };
    let result = match cmd.as_str() {
        "check" => cmd_check(&common),
        "alpha" => cmd_alpha(&common),
        "oracles" => cmd_oracles(&common),
        "simulate" => cmd_simulate(&common),
        "generate" => cmd_generate(&common),
        other => Err(format!("unknown command {other:?}\n{USAGE}")),
    };
    match result {
        Ok(code) => code,
        Err(e) => {
            eprintln!("{e}");
            ExitCode::from(2)
        }
    }
}
