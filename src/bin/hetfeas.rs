//! `hetfeas` — command-line front end for the feasibility tests.
//!
//! ```text
//! hetfeas check    SYSTEM.txt [--policy edf|rms|rms-hyp|rms-rta] [--alpha X] [--exact]
//!                             [--workers N] [--budget-ms N] [--report FILE] [-v]
//! hetfeas alpha    SYSTEM.txt [--policy …] [--budget-ms N] [--report FILE]
//! hetfeas oracles  SYSTEM.txt                                LP / exact-partition ground truth
//! hetfeas simulate SYSTEM.txt [--policy …] [--alpha X] [--jitter F] [--seed N]
//!                             [--budget-ms N] [--report FILE]
//! hetfeas generate --tasks N --machines M --util U [--platform KIND] [--seed N]
//! hetfeas faults   [--seed N] [--budget-ms N] [--report FILE]
//! hetfeas trace synth --out FILE [--seed N] [--ops N] [--instances N] [--machines M]
//!                             [--max-live N] [--adversarial PERMILLE] [--text]
//! hetfeas trace convert IN --out OUT
//! hetfeas ops      --trace TRACE [--mode incremental|from-scratch] [--policy …]
//!                             [--alpha X] [--workers N] [--budget-ms N] [--report FILE] [-v]
//!                             [--journal FILE] [--compact-every N] [--slice-bytes B]
//! hetfeas recover  JOURNAL [--budget-ms N] [--report FILE] [-v]
//! hetfeas serve    [--data-dir DIR] [--socket PATH | --tcp ADDR] [--text] [--workers N]
//!                             [--seed N] [--queue-depth N] [--batch-max N] [--max-restarts N]
//!                             [--max-conns N] [--reply-wait-ms N]
//!                             [--compact-every N] [--report FILE]
//! hetfeas serve --chaos [--net] [--tenants N] [--ops N] [--machines M] [--seed N]
//!                             [--workers N] [--report FILE]
//! hetfeas call     CMDLINE (--socket PATH | --tcp ADDR) [--attempts N] [--budget-ms N]
//!                             [--seed N] [--report FILE]
//! ```
//!
//! System files: `task <wcet> <period> [deadline]` and `machine <speed>`
//! lines (see `hetfeas::model::io`). Exit codes: 0 feasible / clean,
//! 1 infeasible / misses, 2 usage or I/O error (parse errors carry a
//! line/col diagnostic on stderr), 3 undecided within `--budget-ms`,
//! 4 transport failure (`call` could not obtain a definitive reply).
//!
//! `--budget-ms N` bounds every potentially-expensive computation by a
//! wall-clock deadline; a run that would otherwise hang (exponential exact
//! search, astronomical hyperperiod) exits 3 with a sound partial answer
//! instead. `check --exact` runs the graceful-degradation ladder: exact
//! branch-and-bound, then first-fit witness, then the utilization bound —
//! every downgrade is counted under `robust.degraded` in the report.
//! `check --exact --workers N` explores branch-and-bound subtrees on N
//! threads; the verdict (and witness) are identical for every N, only the
//! tree coverage per unit budget changes.
//!
//! `hetfeas serve` runs the supervised multi-tenant admission service:
//! length-prefixed command frames on stdin (or `--socket PATH`), one
//! durable engine + write-ahead journal per tenant under `--data-dir`,
//! each inside a panic-firewalled shard that the supervisor restarts by
//! journal replay (seeded-jitter exponential backoff, capped). A tenant
//! whose journal is corrupt or whose restarts exceed the cap is
//! *quarantined* — it keeps answering with an error, neighbors are
//! untouched, the process never dies. The socket front ends (`--socket`,
//! `--tcp`) accept connections concurrently up to `--max-conns`, shedding
//! excess connections with one `err busy` reply; mutating commands may
//! carry `rid=<u64>` idempotency tokens and `dl=<ms>` deadline budgets
//! (capped by `--reply-wait-ms`). `serve --chaos` runs the built-in
//! seeded fault storm instead and exits 0 only when every surviving
//! tenant's digest matches a fault-free replay and the quarantine set is
//! exactly the poisoned tenants (exit 1 otherwise); `serve --chaos --net`
//! runs the network storm — retrying clients through the seeded
//! fault-injecting TCP proxy — and exits 0 only when every acked op is in
//! the journal exactly once.
//!
//! `hetfeas call` sends one command line to a running server with the
//! full retry discipline (fresh rid, capped-jitter retries under a
//! `--budget-ms` deadline, circuit breaker): exit 0 on `ok`, 1 on a
//! definitive negative reply, 4 when no definitive reply could be
//! obtained (the op may or may not have been applied).
//!
//! `hetfeas faults` runs the built-in adversarial corpus (huge periods,
//! degenerate speeds, zero slack, LP degeneracy, exact-search blowup)
//! through the budgeted pipeline behind a panic firewall — the CI smoke
//! stage asserts `robust.panics` stays zero.
//!
//! `--report FILE` writes a JSON run report (verdict, instance shape,
//! `ff.*`/`alpha.*`/`robust.*` work counters, phase timers — see
//! `hetfeas::partition::metrics`) after the run completes. The report is
//! rendered fully in memory and written only on success, so a run that
//! exits 2 never leaves a partial file behind.
//!
//! `hetfeas ops` replays an op trace (`begin`/`machine`/`add`/`remove`/
//! `query`/`snapshot`/`rollback`/`repack`/`end` lines, see
//! `hetfeas::model::io`) through the online admission engine, sharding
//! independent instances across `--workers` threads with live `done/total`
//! progress on stderr. `--mode from-scratch` runs the batch first-fit
//! baseline instead — the pair is what `scripts/bench_smoke.sh` compares.
//! Exit 3 if any instance exhausted its budget; a semantically malformed
//! trace (e.g. an `add` reusing a live id) exits 2.
//!
//! `hetfeas trace synth` deterministically synthesizes op-trace workloads
//! (diurnal arrival waves, churn bursts, heavy-tailed lifetimes, optional
//! adversarial arrivals drawn from the fault corpus) as streaming binary
//! `.hbt` traces; `hetfeas trace convert` round-trips between the text and
//! binary formats. `ops --trace X.hbt` detects the binary magic and
//! replays as a pull-based stream — only the live engine state is ever
//! resident, so million-op traces replay in bounded RSS with the same
//! digests as a materialized text replay.
//!
//! `ops --journal FILE` runs a single-instance incremental replay through
//! the crash-safe durability layer: every op is appended to a
//! length-prefixed, CRC32-checksummed write-ahead journal *before* it is
//! applied, with periodic snapshot compaction (`--compact-every N`
//! records, 0 = never) copied in bounded `--slice-bytes B` slices that
//! interleave with live appends. `hetfeas recover JOURNAL` rebuilds the engine from
//! such a journal — truncating a torn or corrupt tail — and prints the
//! recovered state digest; a journal with no intact config record exits 2,
//! a recovery that exhausts `--budget-ms` exits 3. The
//! `HETFEAS_JOURNAL_CRASH_AT` / `HETFEAS_JOURNAL_TRANSIENT` /
//! `HETFEAS_JOURNAL_SHORT_WRITE_AT` / `HETFEAS_JOURNAL_FAIL_SYNC_AT`
//! environment knobs inject deterministic IO faults into the journaled
//! path (`scripts/crash_smoke.sh` drives them).

use hetfeas::analysis;
use hetfeas::experiments::{
    combine_digests, replay_durable, replay_durable_stream, replay_sharded, replay_stream,
    ReplayError, ReplayMode, ReplayStats, StreamError, StreamSummary,
};
use hetfeas::lp::{level_scaling_factor, lp_feasible};
use hetfeas::model::{
    is_binary_trace, parse_op_trace, parse_system, read_op_trace_bin, render_op_trace,
    render_system, write_op_trace_bin, Augmentation, OpStream, OpTrace, Ratio, System,
    TraceInstance, TraceWriter,
};
use hetfeas::obs::{Json, MemorySink, MetricsSink, RunReport};
use hetfeas::par::{default_workers, Progress};
use hetfeas::partition::{
    exact_partition_edf, exact_partition_edf_degraded_workers, exact_partition_rms,
    first_fit_ordered_within_with, lp_feasible_degraded, min_feasible_alpha_with,
    min_feasible_alpha_within, peek_config, recover, AdmissionTest, DurableOptions, EdfAdmission,
    ExactOutcome, IndexableAdmission, LadderVerdict, Outcome, RecoverError, RecoveryReport,
    RmsHyperbolicAdmission, RmsLlAdmission, RmsRtaAdmission,
};
use hetfeas::robust::metrics::{ROBUST_FAULTS_INJECTED, ROBUST_PANICS};
use hetfeas::robust::{
    guard_with, Budget, FaultFs, FaultPlan, FaultScript, FileStorage, Gas, PanicReport, Storage,
};
use hetfeas::sim::{validate_assignment_within, ReleasePattern, SchedPolicy};
use hetfeas::workload::{
    synth_platform, PeriodMenu, PlatformSpec, Scenario, SynthSpec, TraceSynth, UtilizationSampler,
    WorkloadSpec,
};
use std::process::ExitCode;

#[derive(Clone, Copy, PartialEq)]
enum Policy {
    Edf,
    RmsLl,
    RmsHyperbolic,
    RmsRta,
}

impl Policy {
    fn parse(s: &str) -> Result<Self, String> {
        match s {
            "edf" => Ok(Policy::Edf),
            "rms" | "rms-ll" => Ok(Policy::RmsLl),
            "rms-hyp" | "rms-hyperbolic" => Ok(Policy::RmsHyperbolic),
            "rms-rta" => Ok(Policy::RmsRta),
            other => Err(format!(
                "unknown policy {other:?} (edf|rms|rms-hyp|rms-rta)"
            )),
        }
    }

    fn sched(self) -> SchedPolicy {
        match self {
            Policy::Edf => SchedPolicy::Edf,
            _ => SchedPolicy::RateMonotonic,
        }
    }

    fn name(self) -> &'static str {
        match self {
            Policy::Edf => "EDF",
            Policy::RmsLl => "RMS (Liu–Layland)",
            Policy::RmsHyperbolic => "RMS (hyperbolic)",
            Policy::RmsRta => "RMS (exact RTA)",
        }
    }

    /// Canonical flag spelling, used as the `policy` field of run reports.
    fn key(self) -> &'static str {
        match self {
            Policy::Edf => "edf",
            Policy::RmsLl => "rms-ll",
            Policy::RmsHyperbolic => "rms-hyp",
            Policy::RmsRta => "rms-rta",
        }
    }
}

/// First-fit under the chosen admission test, metered by `sink` and bounded
/// by `gas`. Returns [`Outcome::BudgetExhausted`] instead of running long.
fn run_ff_within<S: MetricsSink>(
    sys: &System,
    policy: Policy,
    alpha: Augmentation,
    gas: &mut Gas,
    sink: &S,
) -> Outcome {
    fn go<A: AdmissionTest, S: MetricsSink>(
        sys: &System,
        a: &A,
        alpha: Augmentation,
        gas: &mut Gas,
        sink: &S,
    ) -> Outcome {
        let task_order = sys.tasks.order_by_decreasing_utilization();
        let machine_order = sys.platform.order_by_increasing_speed();
        first_fit_ordered_within_with(
            &sys.tasks,
            &sys.platform,
            alpha,
            a,
            &task_order,
            &machine_order,
            gas,
            sink,
        )
    }
    match policy {
        Policy::Edf => go(sys, &EdfAdmission, alpha, gas, sink),
        Policy::RmsLl => go(sys, &RmsLlAdmission, alpha, gas, sink),
        Policy::RmsHyperbolic => go(sys, &RmsHyperbolicAdmission, alpha, gas, sink),
        Policy::RmsRta => go(sys, &RmsRtaAdmission, alpha, gas, sink),
    }
}

fn min_alpha_with<S: MetricsSink>(sys: &System, policy: Policy, hi: f64, sink: &S) -> Option<f64> {
    fn go<A: AdmissionTest, S: MetricsSink>(sys: &System, a: &A, hi: f64, sink: &S) -> Option<f64> {
        min_feasible_alpha_with(&sys.tasks, &sys.platform, a, hi, 1e-6, sink)
    }
    match policy {
        Policy::Edf => go(sys, &EdfAdmission, hi, sink),
        Policy::RmsLl => go(sys, &RmsLlAdmission, hi, sink),
        Policy::RmsHyperbolic => go(sys, &RmsHyperbolicAdmission, hi, sink),
        Policy::RmsRta => go(sys, &RmsRtaAdmission, hi, sink),
    }
}

/// [`min_alpha_with`] bounded by `gas` — `Err` means the budget ran out
/// before the bisection converged.
fn min_alpha_within(
    sys: &System,
    policy: Policy,
    hi: f64,
    gas: &mut Gas,
) -> Result<Option<f64>, hetfeas::robust::Exhaustion> {
    fn go<A: AdmissionTest>(
        sys: &System,
        a: &A,
        hi: f64,
        gas: &mut Gas,
    ) -> Result<Option<f64>, hetfeas::robust::Exhaustion> {
        min_feasible_alpha_within(&sys.tasks, &sys.platform, a, hi, 1e-6, gas)
    }
    match policy {
        Policy::Edf => go(sys, &EdfAdmission, hi, gas),
        Policy::RmsLl => go(sys, &RmsLlAdmission, hi, gas),
        Policy::RmsHyperbolic => go(sys, &RmsHyperbolicAdmission, hi, gas),
        Policy::RmsRta => go(sys, &RmsRtaAdmission, hi, gas),
    }
}

/// The wall-clock gas for this invocation: bounded iff `--budget-ms` was
/// given, unlimited otherwise (legacy behaviour).
fn gas_for(c: &Common) -> Gas {
    match c.budget_ms {
        Some(ms) => Budget::wall_ms(ms).gas(),
        None => Gas::unlimited(),
    }
}

/// Start a run report with the fields every subcommand shares: the input
/// file, policy key, and instance shape.
fn base_report(command: &str, c: &Common, sys: &System) -> RunReport {
    let mut r = RunReport::new("hetfeas", command);
    r.set("input", Json::Str(c.file.clone().unwrap_or_default()))
        .set("policy", Json::Str(c.policy.key().into()))
        .set("n_tasks", Json::UInt(sys.tasks.len() as u64))
        .set("n_machines", Json::UInt(sys.platform.len() as u64))
        .set(
            "total_utilization",
            Json::Float(sys.tasks.total_utilization()),
        )
        .set("total_speed", Json::Float(sys.platform.total_speed()));
    r
}

/// Render and write a finished report. Called only after the run computed a
/// verdict, so error paths never leave a partial file behind.
fn write_report(path: &str, report: &RunReport) -> Result<(), String> {
    std::fs::write(path, report.render()).map_err(|e| format!("write {path}: {e}"))
}

struct Common {
    file: Option<String>,
    policy: Policy,
    alpha: f64,
    verbose: bool,
    jitter: Option<f64>,
    seed: u64,
    report: Option<String>,
    budget_ms: Option<u64>,
    exact: bool,
    // ops-only
    trace: Option<String>,
    workers: Option<usize>,
    mode: String,
    journal: Option<String>,
    compact_every: Option<u64>,
    slice_bytes: Option<u64>,
    // trace-only
    out: Option<String>,
    instances: Option<usize>,
    max_live: Option<usize>,
    adversarial: Option<u64>,
    // generate-only
    tasks: usize,
    machines: usize,
    util: f64,
    platform: String,
    scenario: Option<String>,
    // serve-only
    data_dir: Option<String>,
    socket: Option<String>,
    tcp: Option<String>,
    text_mode: bool,
    chaos: bool,
    net: bool,
    tenants: usize,
    ops: Option<usize>,
    queue_depth: Option<usize>,
    batch_max: Option<usize>,
    max_restarts: Option<u32>,
    max_conns: Option<usize>,
    reply_wait_ms: Option<u64>,
    // call-only
    attempts: Option<u32>,
}

fn parse_common(args: &[String]) -> Result<Common, String> {
    let mut c = Common {
        file: None,
        policy: Policy::Edf,
        alpha: 1.0,
        verbose: false,
        jitter: None,
        seed: 1,
        report: None,
        budget_ms: None,
        exact: false,
        trace: None,
        workers: None,
        mode: "incremental".into(),
        journal: None,
        compact_every: None,
        slice_bytes: None,
        out: None,
        instances: None,
        max_live: None,
        adversarial: None,
        tasks: 10,
        machines: 4,
        util: 0.7,
        platform: "big-little".into(),
        scenario: None,
        data_dir: None,
        socket: None,
        tcp: None,
        text_mode: false,
        chaos: false,
        net: false,
        tenants: 8,
        ops: None,
        queue_depth: None,
        batch_max: None,
        max_restarts: None,
        max_conns: None,
        reply_wait_ms: None,
        attempts: None,
    };
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let mut next = |what: &str| -> Result<String, String> {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{what} needs a value"))
        };
        match a.as_str() {
            "--policy" => c.policy = Policy::parse(&next("--policy")?)?,
            "--alpha" => {
                c.alpha = next("--alpha")?
                    .parse()
                    .map_err(|e| format!("bad --alpha: {e}"))?
            }
            "--jitter" => {
                c.jitter = Some(
                    next("--jitter")?
                        .parse()
                        .map_err(|e| format!("bad --jitter: {e}"))?,
                )
            }
            "--seed" => {
                c.seed = next("--seed")?
                    .parse()
                    .map_err(|e| format!("bad --seed: {e}"))?
            }
            "--tasks" => {
                c.tasks = next("--tasks")?
                    .parse()
                    .map_err(|e| format!("bad --tasks: {e}"))?
            }
            "--machines" => {
                c.machines = next("--machines")?
                    .parse()
                    .map_err(|e| format!("bad --machines: {e}"))?
            }
            "--util" => {
                c.util = next("--util")?
                    .parse()
                    .map_err(|e| format!("bad --util: {e}"))?
            }
            "--platform" => c.platform = next("--platform")?,
            "--scenario" => c.scenario = Some(next("--scenario")?),
            "--trace" => c.trace = Some(next("--trace")?),
            "--workers" => {
                let w: usize = next("--workers")?
                    .parse()
                    .map_err(|e| format!("bad --workers: {e}"))?;
                if w == 0 {
                    return Err("--workers must be positive".into());
                }
                c.workers = Some(w);
            }
            "--mode" => c.mode = next("--mode")?,
            "--journal" => c.journal = Some(next("--journal")?),
            "--compact-every" => {
                c.compact_every = Some(
                    next("--compact-every")?
                        .parse()
                        .map_err(|e| format!("bad --compact-every: {e}"))?,
                )
            }
            "--slice-bytes" => {
                c.slice_bytes = Some(
                    next("--slice-bytes")?
                        .parse()
                        .map_err(|e| format!("bad --slice-bytes: {e}"))?,
                )
            }
            "--out" => c.out = Some(next("--out")?),
            "--instances" => {
                let n: usize = next("--instances")?
                    .parse()
                    .map_err(|e| format!("bad --instances: {e}"))?;
                if n == 0 {
                    return Err("--instances must be positive".into());
                }
                c.instances = Some(n);
            }
            "--max-live" => {
                let n: usize = next("--max-live")?
                    .parse()
                    .map_err(|e| format!("bad --max-live: {e}"))?;
                if n == 0 {
                    return Err("--max-live must be positive".into());
                }
                c.max_live = Some(n);
            }
            "--adversarial" => {
                let n: u64 = next("--adversarial")?
                    .parse()
                    .map_err(|e| format!("bad --adversarial: {e}"))?;
                if n > 1000 {
                    return Err("--adversarial is per-mille (0..=1000)".into());
                }
                c.adversarial = Some(n);
            }
            "--report" => c.report = Some(next("--report")?),
            "--budget-ms" => {
                let ms: u64 = next("--budget-ms")?
                    .parse()
                    .map_err(|e| format!("bad --budget-ms: {e}"))?;
                if ms == 0 {
                    return Err("--budget-ms must be positive".into());
                }
                c.budget_ms = Some(ms);
            }
            "--data-dir" => c.data_dir = Some(next("--data-dir")?),
            "--socket" => c.socket = Some(next("--socket")?),
            "--tcp" => c.tcp = Some(next("--tcp")?),
            "--text" => c.text_mode = true,
            "--chaos" => c.chaos = true,
            "--net" => c.net = true,
            "--max-conns" => {
                let n: usize = next("--max-conns")?
                    .parse()
                    .map_err(|e| format!("bad --max-conns: {e}"))?;
                if n == 0 {
                    return Err("--max-conns must be positive".into());
                }
                c.max_conns = Some(n);
            }
            "--reply-wait-ms" => {
                let ms: u64 = next("--reply-wait-ms")?
                    .parse()
                    .map_err(|e| format!("bad --reply-wait-ms: {e}"))?;
                if ms == 0 {
                    return Err("--reply-wait-ms must be positive".into());
                }
                c.reply_wait_ms = Some(ms);
            }
            "--attempts" => {
                let n: u32 = next("--attempts")?
                    .parse()
                    .map_err(|e| format!("bad --attempts: {e}"))?;
                if n == 0 {
                    return Err("--attempts must be positive".into());
                }
                c.attempts = Some(n);
            }
            "--tenants" => {
                c.tenants = next("--tenants")?
                    .parse()
                    .map_err(|e| format!("bad --tenants: {e}"))?;
                if c.tenants == 0 {
                    return Err("--tenants must be positive".into());
                }
            }
            "--ops" => {
                c.ops = Some(
                    next("--ops")?
                        .parse()
                        .map_err(|e| format!("bad --ops: {e}"))?,
                )
            }
            "--queue-depth" => {
                c.queue_depth = Some(
                    next("--queue-depth")?
                        .parse()
                        .map_err(|e| format!("bad --queue-depth: {e}"))?,
                )
            }
            "--batch-max" => {
                c.batch_max = Some(
                    next("--batch-max")?
                        .parse()
                        .map_err(|e| format!("bad --batch-max: {e}"))?,
                )
            }
            "--max-restarts" => {
                c.max_restarts = Some(
                    next("--max-restarts")?
                        .parse()
                        .map_err(|e| format!("bad --max-restarts: {e}"))?,
                )
            }
            "--exact" => c.exact = true,
            "-v" | "--verbose" => c.verbose = true,
            other if other.starts_with('-') => return Err(format!("unknown flag {other}")),
            path => {
                if c.file.replace(path.to_string()).is_some() {
                    return Err("more than one input file".into());
                }
            }
        }
    }
    Ok(c)
}

fn load(c: &Common) -> Result<System, String> {
    let path = c.file.as_ref().ok_or("missing SYSTEM file argument")?;
    let text = std::fs::read_to_string(path).map_err(|e| format!("read {path}: {e}"))?;
    parse_system(&text).map_err(|e| format!("{path}: {e}"))
}

fn cmd_check(c: &Common) -> Result<ExitCode, String> {
    let sys = load(c)?;
    let alpha = Augmentation::new(c.alpha).map_err(|e| e.to_string())?;
    println!(
        "{} tasks (ΣU = {:.3}), {} machines (ΣS = {:.3}), policy {}, α = {}",
        sys.tasks.len(),
        sys.tasks.total_utilization(),
        sys.platform.len(),
        sys.platform.total_speed(),
        c.policy.name(),
        c.alpha
    );
    if c.exact {
        return cmd_check_exact(c, &sys);
    }
    let sink = c.report.as_ref().map(|_| MemorySink::new());
    let mut gas = gas_for(c);
    let outcome = match &sink {
        Some(s) => {
            let _t = s.timer("phase.partition");
            run_ff_within(&sys, c.policy, alpha, &mut gas, s)
        }
        None => run_ff_within(&sys, c.policy, alpha, &mut gas, &()),
    };
    let code = match &outcome {
        Outcome::Feasible(a) => {
            println!("FEASIBLE");
            if c.verbose {
                for m in 0..sys.platform.len() {
                    println!(
                        "  machine {m} (speed {}): tasks {:?}, load {:.3}",
                        sys.platform.machine(m).speed(),
                        a.tasks_on(m),
                        a.load_on(m, &sys.tasks),
                    );
                }
            }
            ExitCode::SUCCESS
        }
        Outcome::Infeasible(w) => {
            println!(
                "INFEASIBLE — task {} (utilization {:.3}) fits no machine",
                w.failing_task, w.failing_utilization
            );
            let (bound, name) = match c.policy {
                Policy::Edf => (2.0, "partitioned (Theorem I.1)"),
                _ => (
                    Augmentation::RMS_VS_PARTITIONED.factor(),
                    "partitioned (Theorem I.2)",
                ),
            };
            if c.alpha >= bound {
                println!("⇒ provably infeasible for any {name} scheduler at speed 1");
            }
            ExitCode::from(1)
        }
        Outcome::BudgetExhausted { partial } => {
            println!(
                "UNDECIDED — budget exhausted after placing {} of {} tasks",
                partial.assigned_count(),
                sys.tasks.len()
            );
            ExitCode::from(3)
        }
    };
    if let (Some(path), Some(s)) = (&c.report, &sink) {
        let mut r = base_report("check", c, &sys);
        r.set("alpha", Json::Float(c.alpha));
        match &outcome {
            Outcome::Feasible(_) => {
                r.set("verdict", Json::Str("feasible".into()));
            }
            Outcome::Infeasible(w) => {
                r.set("verdict", Json::Str("infeasible".into()))
                    .set("failing_task", Json::UInt(w.failing_task as u64))
                    .set("failing_utilization", Json::Float(w.failing_utilization));
            }
            Outcome::BudgetExhausted { partial } => {
                r.set("verdict", Json::Str("undecided".into()))
                    .set("tasks_placed", Json::UInt(partial.assigned_count() as u64));
            }
        }
        r.attach_metrics(&s.snapshot());
        write_report(path, &r)?;
    }
    Ok(code)
}

/// `check --exact`: the graceful-degradation ladder. Exact branch-and-bound
/// first; when the budget runs out, fall back to the first-fit witness, then
/// the utilization bound. Every answer short of "undecided" is sound.
fn cmd_check_exact(c: &Common, sys: &System) -> Result<ExitCode, String> {
    if c.policy != Policy::Edf {
        return Err("--exact currently supports only --policy edf".into());
    }
    // With a wall-clock budget the clock is the limiter; otherwise cap the
    // search by nodes like `oracles` does so an unbudgeted run still ends.
    let node_budget = if c.budget_ms.is_some() {
        u64::MAX
    } else {
        8_000_000
    };
    // Default to a single worker: `check` is often scripted and exact
    // verdicts are worker-count independent anyway, so parallelism is
    // opt-in via --workers.
    let workers = c.workers.unwrap_or(1);
    let mut gas = gas_for(c);
    let sink = MemorySink::new();
    let ladder = {
        let _t = sink.timer("phase.exact_ladder");
        exact_partition_edf_degraded_workers(
            &sys.tasks,
            &sys.platform,
            node_budget,
            workers,
            &mut gas,
            &sink,
        )
    };
    let code = match &ladder.verdict {
        LadderVerdict::Feasible { witness } => {
            println!(
                "FEASIBLE (decided by {}, {} downgrades)",
                ladder.level, ladder.degraded
            );
            if c.verbose {
                if let Some(a) = witness {
                    for m in 0..sys.platform.len() {
                        println!(
                            "  machine {m} (speed {}): tasks {:?}, load {:.3}",
                            sys.platform.machine(m).speed(),
                            a.tasks_on(m),
                            a.load_on(m, &sys.tasks),
                        );
                    }
                }
            }
            ExitCode::SUCCESS
        }
        LadderVerdict::Infeasible => {
            println!(
                "INFEASIBLE (decided by {}, {} downgrades)",
                ladder.level, ladder.degraded
            );
            ExitCode::from(1)
        }
        LadderVerdict::Undecided => {
            println!(
                "UNDECIDED within budget (last level tried: {}, {} downgrades) \
                 — rerun with a larger --budget-ms for a definite answer",
                ladder.level, ladder.degraded
            );
            ExitCode::from(3)
        }
    };
    if let Some(path) = &c.report {
        let mut r = base_report("check", c, sys);
        r.set("exact", Json::Bool(true))
            .set("workers", Json::UInt(workers as u64))
            .set("verdict", Json::Str(ladder.verdict.as_str().into()))
            .set("level", Json::Str(ladder.level.into()))
            .set("degraded", Json::UInt(ladder.degraded as u64));
        r.attach_metrics(&sink.snapshot());
        write_report(path, &r)?;
    }
    Ok(code)
}

fn cmd_alpha(c: &Common) -> Result<ExitCode, String> {
    let sys = load(c)?;
    let sink = c.report.as_ref().map(|_| MemorySink::new());
    let beta = match &sink {
        Some(s) => {
            let _t = s.timer("phase.lp_bound");
            level_scaling_factor(&sys.tasks, &sys.platform)
        }
        None => level_scaling_factor(&sys.tasks, &sys.platform),
    };
    println!("LP lower bound β (no scheduler can need less): {beta:.4}");
    let star = if c.budget_ms.is_some() {
        let mut gas = gas_for(c);
        let _t = sink.as_ref().map(|s| s.timer("phase.alpha_search"));
        match min_alpha_within(&sys, c.policy, 64.0, &mut gas) {
            Ok(star) => star,
            Err(why) => {
                println!(
                    "UNDECIDED — α-bisection budget exhausted ({})",
                    why.as_str()
                );
                if let (Some(path), Some(s)) = (&c.report, &sink) {
                    let mut r = base_report("alpha", c, &sys);
                    r.set("lp_beta", Json::Float(beta))
                        .set("verdict", Json::Str("undecided".into()));
                    r.attach_metrics(&s.snapshot());
                    write_report(path, &r)?;
                }
                return Ok(ExitCode::from(3));
            }
        }
    } else {
        match &sink {
            Some(s) => {
                let _t = s.timer("phase.alpha_search");
                min_alpha_with(&sys, c.policy, 64.0, s)
            }
            None => min_alpha_with(&sys, c.policy, 64.0, &()),
        }
    };
    let code = match star {
        Some(a) => {
            println!("first-fit {} needs α* = {a:.4}", c.policy.name());
            println!("overhead vs LP bound: {:.3}×", a / beta.max(1e-12));
            ExitCode::SUCCESS
        }
        None => {
            println!("first-fit {} infeasible even at α = 64", c.policy.name());
            ExitCode::from(1)
        }
    };
    if let (Some(path), Some(s)) = (&c.report, &sink) {
        let mut r = base_report("alpha", c, &sys);
        r.set("lp_beta", Json::Float(beta))
            .set("alpha_star", star.map_or(Json::Null, Json::Float))
            .set(
                "verdict",
                Json::Str(
                    if star.is_some() {
                        "feasible"
                    } else {
                        "infeasible"
                    }
                    .into(),
                ),
            );
        r.attach_metrics(&s.snapshot());
        write_report(path, &r)?;
    }
    Ok(code)
}

fn cmd_oracles(c: &Common) -> Result<ExitCode, String> {
    let sys = load(c)?;
    println!(
        "LP (migrative adversary): {}",
        if lp_feasible(&sys.tasks, &sys.platform) {
            "feasible"
        } else {
            "infeasible"
        }
    );
    let budget = 8_000_000;
    let fmt = |o: ExactOutcome| match o {
        ExactOutcome::Feasible(_) => "feasible".to_string(),
        ExactOutcome::Infeasible => "infeasible".to_string(),
        ExactOutcome::Unknown => format!("undecided within {budget} nodes"),
    };
    println!(
        "optimal partitioned EDF: {}",
        fmt(exact_partition_edf(&sys.tasks, &sys.platform, budget))
    );
    println!(
        "optimal partitioned RMS (exact RTA): {}",
        fmt(exact_partition_rms(&sys.tasks, &sys.platform, budget / 8))
    );
    // Single-machine quick facts when m = 1.
    if sys.platform.len() == 1 {
        let s = sys.platform.machine(0).speed();
        println!(
            "single machine: EDF {}, RTA {}",
            if analysis::edf_schedulable_exact(&sys.tasks, s) {
                "ok"
            } else {
                "overload"
            },
            if analysis::rta_schedulable(&sys.tasks, s) {
                "ok"
            } else {
                "miss"
            },
        );
    }
    Ok(ExitCode::SUCCESS)
}

fn cmd_simulate(c: &Common) -> Result<ExitCode, String> {
    let sys = load(c)?;
    let alpha = Augmentation::new(c.alpha).map_err(|e| e.to_string())?;
    let sink = c.report.as_ref().map(|_| MemorySink::new());
    // One gas pool for the whole command: partitioning and simulation share
    // the `--budget-ms` allowance.
    let mut gas = gas_for(c);
    let outcome = match &sink {
        Some(s) => {
            let _t = s.timer("phase.partition");
            run_ff_within(&sys, c.policy, alpha, &mut gas, s)
        }
        None => run_ff_within(&sys, c.policy, alpha, &mut gas, &()),
    };
    if let Outcome::BudgetExhausted { partial } = &outcome {
        println!(
            "UNDECIDED — budget exhausted during partitioning ({} of {} tasks placed)",
            partial.assigned_count(),
            sys.tasks.len()
        );
        if let (Some(path), Some(s)) = (&c.report, &sink) {
            let mut r = base_report("simulate", c, &sys);
            r.set("alpha", Json::Float(c.alpha))
                .set("verdict", Json::Str("undecided".into()));
            r.attach_metrics(&s.snapshot());
            write_report(path, &r)?;
        }
        return Ok(ExitCode::from(3));
    }
    let Outcome::Feasible(assignment) = outcome else {
        println!(
            "first-fit rejects this system at α = {} — nothing to simulate",
            c.alpha
        );
        if let (Some(path), Some(s)) = (&c.report, &sink) {
            let mut r = base_report("simulate", c, &sys);
            r.set("alpha", Json::Float(c.alpha))
                .set("verdict", Json::Str("rejected".into()));
            r.attach_metrics(&s.snapshot());
            write_report(path, &r)?;
        }
        return Ok(ExitCode::from(1));
    };
    let alpha_ratio = Ratio::approximate_f64(c.alpha, 1_000_000)
        .ok_or("cannot rationalize --alpha for the exact simulator")?;
    let _sim_phase = sink.as_ref().map(|s| s.timer("phase.simulate"));
    let sim_res = if let Some(j) = c.jitter {
        let horizon = hetfeas::sim::validation_horizon(&sys.tasks)
            .ok_or("hyperperiod too large for simulation")?;
        hetfeas::sim::simulate_partition_within(
            &sys.tasks,
            &sys.platform,
            &assignment,
            alpha_ratio,
            c.policy.sched(),
            ReleasePattern::Sporadic {
                jitter_frac: j,
                seed: c.seed,
            },
            horizon,
            &mut gas,
        )
    } else {
        validate_assignment_within(
            &sys.tasks,
            &sys.platform,
            &assignment,
            alpha_ratio,
            c.policy.sched(),
            &mut gas,
        )
    };
    drop(_sim_phase);
    let report = match sim_res {
        Ok(inner) => inner.map_err(|e| e.to_string())?,
        Err(why) => {
            // A truncated trace proves nothing — report undecided, not clean.
            println!("UNDECIDED — simulation budget exhausted ({})", why.as_str());
            if let (Some(path), Some(s)) = (&c.report, &sink) {
                let mut r = base_report("simulate", c, &sys);
                r.set("alpha", Json::Float(c.alpha))
                    .set("verdict", Json::Str("undecided".into()));
                r.attach_metrics(&s.snapshot());
                write_report(path, &r)?;
            }
            return Ok(ExitCode::from(3));
        }
    };
    println!(
        "simulated 2 hyperperiods: {} jobs, {} misses, {} preemptions, max lateness {:?}",
        report.jobs_completed, report.miss_count, report.preemptions, report.max_lateness
    );
    if c.verbose {
        for m in &report.misses {
            println!(
                "  miss: task {} released {} deadline {} completed {}",
                m.task, m.release, m.deadline, m.completion
            );
        }
    }
    if let (Some(path), Some(s)) = (&c.report, &sink) {
        let mut r = base_report("simulate", c, &sys);
        r.set("alpha", Json::Float(c.alpha))
            .set("jobs_completed", Json::UInt(report.jobs_completed))
            .set("miss_count", Json::UInt(report.miss_count))
            .set("preemptions", Json::UInt(report.preemptions))
            .set(
                "verdict",
                Json::Str(
                    if report.miss_count == 0 {
                        "clean"
                    } else {
                        "misses"
                    }
                    .into(),
                ),
            );
        r.attach_metrics(&s.snapshot());
        write_report(path, &r)?;
    }
    Ok(if report.miss_count == 0 {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    })
}

fn cmd_generate(c: &Common) -> Result<ExitCode, String> {
    if let Some(name) = &c.scenario {
        let scenario = Scenario::parse(name).ok_or_else(|| {
            format!(
                "unknown --scenario {name:?} (available: {})",
                Scenario::ALL.map(|s| s.name()).join(", ")
            )
        })?;
        let inst = scenario
            .spec()
            .generate(c.seed, 0)
            .ok_or("scenario generator could not satisfy its parameters")?;
        print!("{}", render_system(&inst.tasks, &inst.platform));
        return Ok(ExitCode::SUCCESS);
    }
    let platform = match c.platform.as_str() {
        "identical" => PlatformSpec::Identical { m: c.machines },
        "big-little" => PlatformSpec::BigLittle {
            big: (c.machines / 3).max(1),
            little: c.machines - (c.machines / 3).max(1),
            ratio: 3,
        },
        "geometric" => PlatformSpec::Geometric {
            m: c.machines,
            base: 2,
        },
        "uniform" => PlatformSpec::UniformRandom {
            m: c.machines,
            lo: 1,
            hi: 8,
        },
        other => return Err(format!("unknown --platform {other:?}")),
    };
    let spec = WorkloadSpec {
        n_tasks: c.tasks,
        normalized_utilization: c.util,
        platform,
        sampler: UtilizationSampler::UUniFastCapped,
        periods: PeriodMenu::standard(),
    };
    let inst = spec
        .generate(c.seed, 0)
        .ok_or("generator could not satisfy the parameters (utilization too tight?)")?;
    print!("{}", render_system(&inst.tasks, &inst.platform));
    Ok(ExitCode::SUCCESS)
}

/// Run the adversarial fault corpus through the budgeted pipeline behind
/// the panic firewall. Exit 0 iff no case panicked — the verdicts may well
/// be "undecided"; the point is that every case *terminates and answers*.
fn cmd_faults(c: &Common) -> Result<ExitCode, String> {
    let sink = MemorySink::new();
    let cases = FaultPlan::new(c.seed).cases();
    // Default each case to a short wall clock so the corpus stays a smoke
    // test; --budget-ms overrides per case.
    let per_case_ms = c.budget_ms.unwrap_or(200);
    println!(
        "fault corpus: {} cases, seed {}, {} ms budget per case",
        cases.len(),
        c.seed,
        per_case_ms
    );
    let mut worst = ExitCode::SUCCESS;
    for case in &cases {
        sink.counter_add(ROBUST_FAULTS_INJECTED, 1);
        let verdicts = guard_with(&sink, || {
            let mut gas = Budget::wall_ms(per_case_ms).gas();
            let exact = exact_partition_edf_degraded_workers(
                &case.tasks,
                &case.platform,
                200_000,
                1,
                &mut gas,
                &sink,
            );
            let mut lp_gas = Budget::wall_ms(per_case_ms).gas();
            let lp = lp_feasible_degraded(&case.tasks, &case.platform, &mut lp_gas, &sink);
            (exact, lp)
        });
        let text = match &verdicts {
            Ok((exact, lp)) => format!(
                "exact: {:10} via {:17}  lp: {:10} via {}",
                exact.verdict.as_str(),
                exact.level,
                lp.verdict.as_str(),
                lp.level
            ),
            Err(p) => format!("{} {}", PanicReport::CELL, p.message),
        };
        println!("  {:22} [{:17}] {}", case.name, case.kind.as_str(), text);
        if verdicts.is_err() {
            worst = ExitCode::from(1);
        }
    }
    let panics = sink.counter(ROBUST_PANICS);
    println!(
        "{} cases injected, {} panics",
        sink.counter(ROBUST_FAULTS_INJECTED),
        panics
    );
    if let Some(path) = &c.report {
        let mut r = RunReport::new("hetfeas", "faults");
        r.set("seed", Json::UInt(c.seed))
            .set("cases", Json::UInt(cases.len() as u64))
            .set("budget_ms_per_case", Json::UInt(per_case_ms))
            .set(
                "verdict",
                Json::Str(if panics == 0 { "clean" } else { "panics" }.into()),
            );
        r.attach_metrics(&sink.snapshot());
        write_report(path, &r)?;
    }
    Ok(worst)
}

/// Dispatch [`replay_sharded`] over the policy's indexed admission test.
/// RMS-RTA has no incremental form (its response-time fixpoint is not a
/// fold), so it is rejected up front.
#[allow(clippy::too_many_arguments)]
fn ops_results<S: MetricsSink + Sync>(
    trace: &OpTrace,
    policy: Policy,
    alpha: Augmentation,
    mode: ReplayMode,
    workers: usize,
    budget_ms: Option<u64>,
    progress: &Progress,
    sink: &S,
) -> Result<Vec<Result<ReplayStats, ReplayError>>, String> {
    Ok(match policy {
        Policy::Edf => replay_sharded(
            trace,
            EdfAdmission,
            alpha,
            mode,
            workers,
            budget_ms,
            Some(progress),
            sink,
        ),
        Policy::RmsLl => replay_sharded(
            trace,
            RmsLlAdmission,
            alpha,
            mode,
            workers,
            budget_ms,
            Some(progress),
            sink,
        ),
        Policy::RmsHyperbolic => replay_sharded(
            trace,
            RmsHyperbolicAdmission,
            alpha,
            mode,
            workers,
            budget_ms,
            Some(progress),
            sink,
        ),
        Policy::RmsRta => {
            return Err(
                "--policy rms-rta has no indexed admission; ops supports edf|rms|rms-hyp".into(),
            )
        }
    })
}

/// Open the journal file as a [`Storage`], wrapping it in the deterministic
/// fault-injection layer when any `HETFEAS_JOURNAL_*` knob is set.
fn journal_store(path: &str) -> Box<dyn Storage> {
    let fs = FileStorage::new(path);
    let script = FaultScript::from_env();
    if script.is_noop() {
        Box::new(fs)
    } else {
        Box::new(FaultFs::new(fs, script))
    }
}

/// The durability knobs shared by the journaled replay paths and `serve`:
/// `--compact-every` sets the snapshot-compaction cadence, `--slice-bytes`
/// the per-slice copy budget of the incremental compactor (0 = one
/// stop-the-world slice).
fn durable_opts(c: &Common) -> DurableOptions {
    let mut opts = DurableOptions::default();
    if let Some(n) = c.compact_every {
        opts.compact_every = n;
    }
    if let Some(b) = c.slice_bytes {
        opts.slice_bytes = b;
    }
    opts
}

/// The `journal: …` summary line shared by the journaled replay paths.
fn journal_summary(sink: &MemorySink) -> String {
    use hetfeas::robust::metrics as jm;
    format!(
        "journal: {} appends, {} bytes, {} syncs, {} retries, {} compactions \
         ({} slices, {} bytes reclaimed)",
        sink.counter(jm::JOURNAL_APPENDS),
        sink.counter(jm::JOURNAL_BYTES_WRITTEN),
        sink.counter(jm::JOURNAL_SYNCS),
        sink.counter(jm::JOURNAL_RETRIES),
        sink.counter(jm::JOURNAL_COMPACTIONS),
        sink.counter(jm::JOURNAL_COMPACT_SLICES),
        sink.counter(jm::JOURNAL_BYTES_RECLAIMED),
    )
}

/// `ops --journal FILE`: single-instance incremental replay through the
/// write-ahead journal. IO errors (including injected crash faults) exit 2;
/// an exhausted budget exits 3.
fn cmd_ops_journaled(
    c: &Common,
    path: &str,
    trace: &OpTrace,
    journal_path: &str,
    alpha: Augmentation,
) -> Result<ExitCode, String> {
    if c.mode != "incremental" {
        return Err("--journal requires --mode incremental".into());
    }
    let [inst] = trace.instances.as_slice() else {
        return Err(format!(
            "--journal replays exactly one instance; {path} holds {}",
            trace.instances.len()
        ));
    };
    let opts = durable_opts(c);
    let mut gas = gas_for(c);
    let sink = MemorySink::new();
    let result = match c.policy {
        Policy::Edf => replay_durable(
            EdfAdmission,
            inst,
            alpha,
            c.policy.key(),
            opts,
            journal_store(journal_path),
            &mut gas,
            &sink,
        ),
        Policy::RmsLl => replay_durable(
            RmsLlAdmission,
            inst,
            alpha,
            c.policy.key(),
            opts,
            journal_store(journal_path),
            &mut gas,
            &sink,
        ),
        Policy::RmsHyperbolic => replay_durable(
            RmsHyperbolicAdmission,
            inst,
            alpha,
            c.policy.key(),
            opts,
            journal_store(journal_path),
            &mut gas,
            &sink,
        ),
        Policy::RmsRta => {
            return Err(
                "--policy rms-rta has no indexed admission; ops supports edf|rms|rms-hyp".into(),
            )
        }
    };
    let (stats, digest) = match result {
        Ok(v) => v,
        Err(ReplayError::Exhausted { op_index, cause }) => {
            println!(
                "UNDECIDED — budget exhausted ({}) at op {op_index}",
                cause.as_str()
            );
            return Ok(ExitCode::from(3));
        }
        Err(e) => return Err(format!("{path}: instance {:?}: {e}", inst.name)),
    };
    println!(
        "{} ops journaled+replayed: {} admitted, {} rejected, {} removed, \
         {} repacks, {} snapshots, {} rollbacks, live {}",
        stats.ops,
        stats.admitted,
        stats.rejected,
        stats.removed,
        stats.repacks,
        stats.snapshots,
        stats.rollbacks,
        stats.final_live
    );
    println!("{}", journal_summary(&sink));
    println!("journal digest {digest:08x}");
    if let Some(out) = &c.report {
        let mut r = RunReport::new("hetfeas", "ops");
        r.set("input", Json::Str(path.to_string()))
            .set("policy", Json::Str(c.policy.key().into()))
            .set("mode", Json::Str("incremental".into()))
            .set("journal", Json::Str(journal_path.to_string()))
            .set("workers", Json::UInt(1))
            .set("ops", Json::UInt(stats.ops))
            .set("admitted", Json::UInt(stats.admitted))
            .set("rejected", Json::UInt(stats.rejected))
            .set("removed", Json::UInt(stats.removed))
            .set("snapshots", Json::UInt(stats.snapshots))
            .set("rollbacks", Json::UInt(stats.rollbacks))
            .set("repacks", Json::UInt(stats.repacks))
            .set("final_live", Json::UInt(stats.final_live))
            .set("digest", Json::Str(format!("{digest:08x}")))
            .set(
                "journal_compact_slices",
                Json::UInt(sink.counter(hetfeas::robust::metrics::JOURNAL_COMPACT_SLICES)),
            )
            .set(
                "journal_bytes_reclaimed",
                Json::UInt(sink.counter(hetfeas::robust::metrics::JOURNAL_BYTES_RECLAIMED)),
            )
            .set("verdict", Json::Str("replayed".into()));
        r.attach_metrics(&sink.snapshot());
        write_report(out, &r)?;
    }
    Ok(ExitCode::SUCCESS)
}

/// Replay an op trace through the online admission engine (or the batch
/// from-scratch baseline), sharding instances across worker threads.
fn cmd_ops(c: &Common) -> Result<ExitCode, String> {
    let path = c
        .trace
        .as_ref()
        .or(c.file.as_ref())
        .ok_or("missing --trace FILE")?;
    if c.compact_every.is_some() && c.journal.is_none() {
        return Err("--compact-every requires --journal".into());
    }
    if c.slice_bytes.is_some() && c.journal.is_none() {
        return Err("--slice-bytes requires --journal".into());
    }
    let head = {
        use std::io::Read as _;
        let mut f = std::fs::File::open(path).map_err(|e| format!("read {path}: {e}"))?;
        let mut buf = [0u8; 8];
        let mut n = 0;
        while n < buf.len() {
            match f
                .read(&mut buf[n..])
                .map_err(|e| format!("read {path}: {e}"))?
            {
                0 => break,
                k => n += k,
            }
        }
        buf[..n].to_vec()
    };
    if is_binary_trace(&head) {
        return cmd_ops_stream(c, path);
    }
    let text = std::fs::read_to_string(path).map_err(|e| format!("read {path}: {e}"))?;
    let trace = parse_op_trace(&text).map_err(|e| format!("{path}: {e}"))?;
    let mode = match c.mode.as_str() {
        "incremental" => ReplayMode::Incremental,
        "from-scratch" => ReplayMode::FromScratch,
        other => {
            return Err(format!(
                "unknown --mode {other:?} (incremental|from-scratch)"
            ))
        }
    };
    let alpha = Augmentation::new(c.alpha).map_err(|e| e.to_string())?;
    if let Some(journal_path) = c.journal.clone() {
        return cmd_ops_journaled(c, path, &trace, &journal_path, alpha);
    }
    let workers = c.workers.unwrap_or_else(|| default_workers(8));
    let total_ops: usize = trace.instances.iter().map(|i| i.ops.len()).sum();
    println!(
        "{} instances ({} ops), policy {}, mode {}, {} workers",
        trace.instances.len(),
        total_ops,
        c.policy.name(),
        mode.as_str(),
        workers
    );
    let progress = Progress::new(trace.instances.len() as u64);
    let sink = c.report.as_ref().map(|_| MemorySink::new());
    let results = match &sink {
        Some(s) => {
            let _t = s.timer("phase.replay");
            ops_results(
                &trace,
                c.policy,
                alpha,
                mode,
                workers,
                c.budget_ms,
                &progress,
                s,
            )?
        }
        None => ops_results(
            &trace,
            c.policy,
            alpha,
            mode,
            workers,
            c.budget_ms,
            &progress,
            &(),
        )?,
    };
    let mut total = ReplayStats::default();
    let mut exhausted = 0u64;
    for (i, r) in results.iter().enumerate() {
        let name = &trace.instances[i].name;
        match r {
            Ok(stats) => {
                total.merge(stats);
                if c.verbose {
                    println!(
                        "  {name}: {} ops, {} admitted, {} rejected, {} removed, live {}",
                        stats.ops, stats.admitted, stats.rejected, stats.removed, stats.final_live
                    );
                }
            }
            Err(ReplayError::Exhausted { op_index, cause }) => {
                exhausted += 1;
                println!(
                    "  {name}: UNDECIDED — budget exhausted ({}) at op {op_index}",
                    cause.as_str()
                );
            }
            Err(e @ (ReplayError::Trace { .. } | ReplayError::Io { .. })) => {
                return Err(format!("{path}: instance {name:?}: {e}"));
            }
        }
    }
    println!(
        "{} ops replayed: {} admitted, {} rejected, {} removed ({} misses), \
         {} queries ({} hits), {} repacks ({} infeasible), {} snapshots, {} rollbacks",
        total.ops,
        total.admitted,
        total.rejected,
        total.removed,
        total.remove_misses,
        total.query_hits + total.query_misses,
        total.query_hits,
        total.repacks,
        total.repacks_infeasible,
        total.snapshots,
        total.rollbacks
    );
    if exhausted > 0 {
        println!(
            "UNDECIDED — {exhausted} of {} instances exhausted the budget",
            trace.instances.len()
        );
    }
    if let (Some(out), Some(s)) = (&c.report, &sink) {
        let mut r = RunReport::new("hetfeas", "ops");
        r.set("input", Json::Str(path.clone()))
            .set("policy", Json::Str(c.policy.key().into()))
            .set("mode", Json::Str(mode.as_str().into()))
            .set("workers", Json::UInt(workers as u64))
            .set("instances", Json::UInt(trace.instances.len() as u64))
            .set("exhausted", Json::UInt(exhausted))
            .set("ops", Json::UInt(total.ops))
            .set("admitted", Json::UInt(total.admitted))
            .set("rejected", Json::UInt(total.rejected))
            .set("removed", Json::UInt(total.removed))
            .set("remove_misses", Json::UInt(total.remove_misses))
            .set("query_hits", Json::UInt(total.query_hits))
            .set("query_misses", Json::UInt(total.query_misses))
            .set("snapshots", Json::UInt(total.snapshots))
            .set("rollbacks", Json::UInt(total.rollbacks))
            .set("repacks", Json::UInt(total.repacks))
            .set("repacks_infeasible", Json::UInt(total.repacks_infeasible))
            .set("final_live", Json::UInt(total.final_live))
            .set(
                "verdict",
                Json::Str(
                    if exhausted == 0 {
                        "replayed"
                    } else {
                        "undecided"
                    }
                    .into(),
                ),
            );
        r.attach_metrics(&s.snapshot());
        write_report(out, &r)?;
    }
    Ok(if exhausted == 0 {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(3)
    })
}

/// `ops --trace X.hbt`: pull-based streaming replay of a binary op trace.
/// Only the live engine state and one decode frame are ever resident — the
/// trace itself is never materialized, so a multi-gigabyte trace replays in
/// bounded RSS. `--journal` routes a single-instance stream through the
/// crash-safe durability layer instead.
fn cmd_ops_stream(c: &Common, path: &str) -> Result<ExitCode, String> {
    if c.mode != "incremental" {
        return Err(format!(
            "{path} is a binary trace; streaming replay is incremental-only — \
             convert to text with `hetfeas trace convert` for --mode {}",
            c.mode
        ));
    }
    let alpha = Augmentation::new(c.alpha).map_err(|e| e.to_string())?;
    let file = std::fs::File::open(path).map_err(|e| format!("read {path}: {e}"))?;
    let trace_bytes = file.metadata().map(|m| m.len()).unwrap_or(0);
    let mut stream = OpStream::new(std::io::BufReader::with_capacity(1 << 20, file))
        .map_err(|e| format!("{path}: {e}"))?;
    let mut gas = gas_for(c);
    let sink = MemorySink::new();
    println!(
        "streaming binary trace {path} ({trace_bytes} bytes), policy {}, mode incremental",
        c.policy.name()
    );

    if let Some(journal_path) = c.journal.clone() {
        let opts = durable_opts(c);
        let result = match c.policy {
            Policy::Edf => replay_durable_stream(
                &mut stream,
                EdfAdmission,
                alpha,
                c.policy.key(),
                opts,
                journal_store(&journal_path),
                &mut gas,
                &sink,
            ),
            Policy::RmsLl => replay_durable_stream(
                &mut stream,
                RmsLlAdmission,
                alpha,
                c.policy.key(),
                opts,
                journal_store(&journal_path),
                &mut gas,
                &sink,
            ),
            Policy::RmsHyperbolic => replay_durable_stream(
                &mut stream,
                RmsHyperbolicAdmission,
                alpha,
                c.policy.key(),
                opts,
                journal_store(&journal_path),
                &mut gas,
                &sink,
            ),
            Policy::RmsRta => {
                return Err(
                    "--policy rms-rta has no indexed admission; ops supports edf|rms|rms-hyp"
                        .into(),
                )
            }
        };
        let (name, stats, digest) = match result {
            Ok(v) => v,
            Err(StreamError::Replay(ReplayError::Exhausted { op_index, cause })) => {
                println!(
                    "UNDECIDED — budget exhausted ({}) at op {op_index}",
                    cause.as_str()
                );
                return Ok(ExitCode::from(3));
            }
            Err(e) => return Err(format!("{path}: {e}")),
        };
        println!(
            "{}: {} ops journaled+streamed: {} admitted, {} rejected, {} removed, \
             {} repacks, {} snapshots, {} rollbacks, live {}",
            name,
            stats.ops,
            stats.admitted,
            stats.rejected,
            stats.removed,
            stats.repacks,
            stats.snapshots,
            stats.rollbacks,
            stats.final_live
        );
        println!("{}", journal_summary(&sink));
        println!("journal digest {digest:08x}");
        if let Some(out) = &c.report {
            let mut r = RunReport::new("hetfeas", "ops");
            r.set("input", Json::Str(path.to_string()))
                .set("policy", Json::Str(c.policy.key().into()))
                .set("mode", Json::Str("incremental".into()))
                .set("streaming", Json::Bool(true))
                .set("trace_bytes", Json::UInt(trace_bytes))
                .set("journal", Json::Str(journal_path))
                .set("ops", Json::UInt(stats.ops))
                .set("admitted", Json::UInt(stats.admitted))
                .set("rejected", Json::UInt(stats.rejected))
                .set("removed", Json::UInt(stats.removed))
                .set("snapshots", Json::UInt(stats.snapshots))
                .set("rollbacks", Json::UInt(stats.rollbacks))
                .set("repacks", Json::UInt(stats.repacks))
                .set("final_live", Json::UInt(stats.final_live))
                .set("digest", Json::Str(format!("{digest:08x}")))
                .set(
                    "journal_compact_slices",
                    Json::UInt(sink.counter(hetfeas::robust::metrics::JOURNAL_COMPACT_SLICES)),
                )
                .set(
                    "journal_bytes_reclaimed",
                    Json::UInt(sink.counter(hetfeas::robust::metrics::JOURNAL_BYTES_RECLAIMED)),
                )
                .set("verdict", Json::Str("replayed".into()));
            r.attach_metrics(&sink.snapshot());
            write_report(out, &r)?;
        }
        return Ok(ExitCode::SUCCESS);
    }

    let result: Result<Vec<StreamSummary>, StreamError> = match c.policy {
        Policy::Edf => replay_stream(&mut stream, EdfAdmission, alpha, &mut gas, &sink),
        Policy::RmsLl => replay_stream(&mut stream, RmsLlAdmission, alpha, &mut gas, &sink),
        Policy::RmsHyperbolic => {
            replay_stream(&mut stream, RmsHyperbolicAdmission, alpha, &mut gas, &sink)
        }
        Policy::RmsRta => {
            return Err(
                "--policy rms-rta has no indexed admission; ops supports edf|rms|rms-hyp".into(),
            )
        }
    };
    let summaries = match result {
        Ok(v) => v,
        Err(StreamError::Replay(ReplayError::Exhausted { op_index, cause })) => {
            println!(
                "UNDECIDED — budget exhausted ({}) at op {op_index}",
                cause.as_str()
            );
            return Ok(ExitCode::from(3));
        }
        Err(e) => return Err(format!("{path}: {e}")),
    };
    let mut total = ReplayStats::default();
    for s in &summaries {
        total.merge(&s.stats);
        if c.verbose {
            println!(
                "  {}: {} ops, {} admitted, {} rejected, {} removed, live {}, digest {:08x}",
                s.name,
                s.stats.ops,
                s.stats.admitted,
                s.stats.rejected,
                s.stats.removed,
                s.stats.final_live,
                s.digest
            );
        }
    }
    let combined = combine_digests(summaries.iter().map(|s| s.digest));
    println!(
        "{} instances streamed, {} ops replayed: {} admitted, {} rejected, {} removed \
         ({} misses), {} queries ({} hits), {} repacks ({} infeasible), {} snapshots, \
         {} rollbacks",
        summaries.len(),
        total.ops,
        total.admitted,
        total.rejected,
        total.removed,
        total.remove_misses,
        total.query_hits + total.query_misses,
        total.query_hits,
        total.repacks,
        total.repacks_infeasible,
        total.snapshots,
        total.rollbacks
    );
    println!("combined digest {combined:08x}");
    if let Some(out) = &c.report {
        let mut r = RunReport::new("hetfeas", "ops");
        r.set("input", Json::Str(path.to_string()))
            .set("policy", Json::Str(c.policy.key().into()))
            .set("mode", Json::Str("incremental".into()))
            .set("streaming", Json::Bool(true))
            .set("trace_bytes", Json::UInt(trace_bytes))
            .set("instances", Json::UInt(summaries.len() as u64))
            .set("ops", Json::UInt(total.ops))
            .set("admitted", Json::UInt(total.admitted))
            .set("rejected", Json::UInt(total.rejected))
            .set("removed", Json::UInt(total.removed))
            .set("remove_misses", Json::UInt(total.remove_misses))
            .set("query_hits", Json::UInt(total.query_hits))
            .set("query_misses", Json::UInt(total.query_misses))
            .set("snapshots", Json::UInt(total.snapshots))
            .set("rollbacks", Json::UInt(total.rollbacks))
            .set("repacks", Json::UInt(total.repacks))
            .set("repacks_infeasible", Json::UInt(total.repacks_infeasible))
            .set("final_live", Json::UInt(total.final_live))
            .set("combined_digest", Json::Str(format!("{combined:08x}")))
            .set("verdict", Json::Str("replayed".into()));
        r.attach_metrics(&sink.snapshot());
        write_report(out, &r)?;
    }
    Ok(ExitCode::SUCCESS)
}

/// Recover the engine from `path` and summarize it, generic over the
/// admission test the journal's config record names.
fn recover_summary<A: IndexableAdmission>(
    admission: A,
    path: &str,
    policy: &str,
    gas: &mut Gas,
    sink: &MemorySink,
) -> Result<(RecoveryReport, u32, usize, Vec<f64>), RecoverError> {
    let (eng, rep) = recover(admission, journal_store(path), policy, gas, sink)?;
    let digest = eng.state_digest();
    let live = eng.engine().len();
    let loads = (0..eng.engine().platform().len())
        .map(|m| eng.engine().load_on(m))
        .collect();
    Ok((rep, digest, live, loads))
}

/// Rebuild a journaled engine from a (possibly crashed) journal file.
/// Exit 0 on success, 2 when the journal is unrecoverable (no intact
/// config record, wrong format, invalid records), 3 when `--budget-ms`
/// runs out mid-replay.
fn cmd_recover(c: &Common) -> Result<ExitCode, String> {
    let path = c
        .journal
        .as_ref()
        .or(c.file.as_ref())
        .ok_or("missing JOURNAL file argument")?
        .clone();
    let mut probe = FileStorage::new(path.as_str());
    let config = peek_config(&mut probe).map_err(|e| format!("{path}: {e}"))?;
    let mut gas = gas_for(c);
    let sink = MemorySink::new();
    let result = match config.policy.as_str() {
        "edf" => recover_summary(EdfAdmission, &path, "edf", &mut gas, &sink),
        "rms-ll" => recover_summary(RmsLlAdmission, &path, "rms-ll", &mut gas, &sink),
        "rms-hyp" => recover_summary(RmsHyperbolicAdmission, &path, "rms-hyp", &mut gas, &sink),
        other => return Err(format!("{path}: journal names unknown policy {other:?}")),
    };
    let (rep, digest, live, loads) = match result {
        Ok(v) => v,
        Err(RecoverError::Exhausted(x)) => {
            println!("UNDECIDED — recovery budget exhausted ({})", x.as_str());
            return Ok(ExitCode::from(3));
        }
        Err(e) => return Err(format!("{path}: {e}")),
    };
    println!(
        "recovered {} records ({} truncated, {} bytes dropped), policy {}, {} machines",
        rep.records_replayed,
        rep.truncated_records,
        rep.truncated_bytes,
        config.policy,
        config.machines.len()
    );
    println!("{live} live tasks");
    if c.verbose {
        for (m, load) in loads.iter().enumerate() {
            println!("  machine {m}: load {load:.6}");
        }
    }
    println!("state digest {digest:08x}");
    if let Some(out) = &c.report {
        let mut r = RunReport::new("hetfeas", "recover");
        r.set("input", Json::Str(path.clone()))
            .set("policy", Json::Str(config.policy.clone()))
            .set("records_replayed", Json::UInt(rep.records_replayed))
            .set("truncated_records", Json::UInt(rep.truncated_records))
            .set("truncated_bytes", Json::UInt(rep.truncated_bytes))
            .set("live", Json::UInt(live as u64))
            .set("digest", Json::Str(format!("{digest:08x}")))
            .set("verdict", Json::Str("recovered".into()));
        r.attach_metrics(&sink.snapshot());
        write_report(out, &r)?;
    }
    Ok(ExitCode::SUCCESS)
}

/// `hetfeas serve`: the supervised multi-tenant admission service.
///
/// Default mode reads length-prefixed command frames from stdin (or a
/// Unix socket with `--socket PATH`) and answers in submission order;
/// `--chaos` instead runs the in-process seeded fault storm and exits 0
/// only if every tenant satisfied the bulkhead/convergence contract.
fn cmd_serve(c: &Common) -> Result<ExitCode, String> {
    use hetfeas::service::{
        chaos::ChaosConfig, netchaos::NetStormConfig, run_net_storm, run_storm, serve_once,
        serve_tcp, serve_unix, ServerConfig, Service, ServiceConfig,
    };

    // Shard panics are contained by the firewall and handled by the
    // supervisor; the default hook would still print a full backtrace
    // per contained panic. One line each is enough for an operator.
    std::panic::set_hook(Box::new(|info| {
        eprintln!("shard panic contained: {info}");
    }));

    if c.chaos && c.net {
        let cfg = NetStormConfig {
            seed: c.seed,
            tenants: c.tenants,
            ops_per_tenant: c.ops.unwrap_or(32),
            machines: c.machines,
            workers: c.workers.unwrap_or(0),
            data_dir: std::path::PathBuf::from(
                c.data_dir
                    .clone()
                    .unwrap_or_else(|| format!("netchaos-{}", std::process::id())),
            ),
            net: hetfeas::service::netchaos::NetChaosConfig {
                seed: c.seed,
                ..Default::default()
            },
            ..NetStormConfig::default()
        };
        let report = run_net_storm(&cfg).map_err(|e| format!("net storm: {e}"))?;
        for line in report.summary_lines() {
            println!("{line}");
        }
        if let Some(out) = &c.report {
            let mut r = RunReport::new("hetfeas", "serve");
            r.set("mode", Json::Str("netchaos".into()))
                .set("seed", Json::UInt(report.seed))
                .set("tenants", Json::UInt(report.tenants.len() as u64))
                .set("proxied_conns", Json::UInt(report.proxied_conns))
                .set("duplicated", Json::UInt(report.duplicated))
                .set("torn", Json::UInt(report.torn))
                .set("resets", Json::UInt(report.resets))
                .set("dropped_replies", Json::UInt(report.dropped_replies))
                .set("dedup_hits", Json::UInt(report.dedup_hits))
                .set(
                    "ambiguous_tenants",
                    Json::UInt(report.ambiguous_tenants as u64),
                )
                .set(
                    "exactly_once",
                    Json::UInt(
                        report
                            .tenants
                            .iter()
                            .filter(|t| t.exactly_once == Some(true))
                            .count() as u64,
                    ),
                )
                .set(
                    "verdict",
                    Json::Str(if report.ok { "converged" } else { "diverged" }.into()),
                );
            write_report(out, &r)?;
        }
        return Ok(if report.ok {
            ExitCode::SUCCESS
        } else {
            ExitCode::from(1)
        });
    }

    if c.chaos {
        let cfg = ChaosConfig {
            seed: c.seed,
            tenants: c.tenants,
            ops_per_tenant: c.ops.unwrap_or(48),
            machines: c.machines,
            workers: c.workers.unwrap_or(0),
            shed_probe: true,
            ack_wait_ms: c.reply_wait_ms.unwrap_or(30_000),
        };
        let report = run_storm(&cfg);
        for line in report.summary_lines() {
            println!("{line}");
        }
        if let Some(out) = &c.report {
            let mut r = RunReport::new("hetfeas", "serve");
            r.set("mode", Json::Str("chaos".into()))
                .set("seed", Json::UInt(report.seed))
                .set("workers", Json::UInt(report.workers as u64))
                .set("tenants", Json::UInt(report.tenants.len() as u64))
                .set(
                    "quarantined",
                    Json::UInt(report.tenants.iter().filter(|t| t.quarantined).count() as u64),
                )
                .set(
                    "converged",
                    Json::UInt(report.tenants.iter().filter(|t| t.converged).count() as u64),
                )
                .set("shed", Json::UInt(report.shed))
                .set("quotes", Json::UInt(report.quotes))
                .set("journal_retries", Json::UInt(report.journal_retries))
                .set("panics", Json::UInt(report.panics))
                .set("restarts", Json::UInt(report.restarts))
                .set("quarantines", Json::UInt(report.quarantines))
                .set(
                    "verdict",
                    Json::Str(if report.ok { "converged" } else { "diverged" }.into()),
                );
            write_report(out, &r)?;
        }
        return Ok(if report.ok {
            ExitCode::SUCCESS
        } else {
            ExitCode::from(1)
        });
    }

    let mut svc_cfg = ServiceConfig::default();
    svc_cfg.seed = c.seed;
    svc_cfg.workers = c.workers.unwrap_or(0);
    if let Some(q) = c.queue_depth {
        svc_cfg.queue_depth = q.max(1);
    }
    if let Some(b) = c.batch_max {
        svc_cfg.batch_max = b.max(1);
    }
    if let Some(m) = c.max_restarts {
        svc_cfg.max_restarts = m;
    }
    if let Some(n) = c.compact_every {
        svc_cfg.opts.compact_every = n;
    }
    if let Some(b) = c.slice_bytes {
        svc_cfg.opts.slice_bytes = b;
    }
    let server_cfg = ServerConfig {
        data_dir: std::path::PathBuf::from(c.data_dir.as_deref().unwrap_or(".")),
        text: c.text_mode,
        stall_cap_ms: 1_000,
        reply_wait_ms: c.reply_wait_ms.unwrap_or(60_000),
        max_conns: c.max_conns.unwrap_or(64),
    };
    std::fs::create_dir_all(&server_cfg.data_dir)
        .map_err(|e| format!("create --data-dir {}: {e}", server_cfg.data_dir.display()))?;
    let svc = Service::new(svc_cfg);
    let workers = svc.workers();
    // The serve loops consume the service; keep a handle on its metrics
    // sink so the report can still read the final journal counters.
    let svc_sink = svc.sink_handle();
    eprintln!(
        "serving ({} workers, data dir {})",
        workers,
        server_cfg.data_dir.display()
    );
    let served = match (&c.tcp, &c.socket) {
        (Some(_), Some(_)) => {
            return Err("--tcp and --socket are mutually exclusive".into());
        }
        (Some(addr), None) => {
            let listener =
                std::net::TcpListener::bind(addr).map_err(|e| format!("bind --tcp {addr}: {e}"))?;
            eprintln!(
                "listening on tcp {}",
                listener
                    .local_addr()
                    .map_err(|e| format!("local_addr: {e}"))?
            );
            serve_tcp(listener, svc, &server_cfg)
        }
        (None, Some(path)) => serve_unix(std::path::Path::new(path), svc, &server_cfg),
        (None, None) => {
            // `Stdout` (not the lock) because the reply pump thread
            // shares the writer across threads.
            serve_once(std::io::stdin(), std::io::stdout(), svc, &server_cfg)
        }
    }
    .map_err(|e| format!("serve: {e}"))?;
    eprintln!(
        "served {} frames, {} responses over {} connections ({} shed), {} tenants; {}",
        served.frames,
        served.responses,
        served.conns,
        served.conns_shed,
        served.tenants.len(),
        if served.quit { "quit" } else { "eof" }
    );
    for (name, status) in &served.tenants {
        eprintln!(
            "  {name}: state={} restarts={} digest={}",
            status.state.as_str(),
            status.restarts,
            status
                .digest
                .map(|d| format!("{d:08x}"))
                .unwrap_or_else(|| "-".into())
        );
    }
    if let Some(out) = &c.report {
        let mut r = RunReport::new("hetfeas", "serve");
        r.set("mode", Json::Str("stream".into()))
            .set("workers", Json::UInt(workers as u64))
            .set("frames", Json::UInt(served.frames))
            .set("responses", Json::UInt(served.responses))
            .set("conns", Json::UInt(served.conns))
            .set("conns_shed", Json::UInt(served.conns_shed))
            .set("tenants", Json::UInt(served.tenants.len() as u64))
            .set(
                "quarantined",
                Json::UInt(
                    served
                        .tenants
                        .iter()
                        .filter(|(_, s)| s.state.as_str() == "quarantined")
                        .count() as u64,
                ),
            )
            .set("quit", Json::Bool(served.quit))
            .set(
                "journal_compact_slices",
                Json::UInt(svc_sink.counter(hetfeas::robust::metrics::JOURNAL_COMPACT_SLICES)),
            )
            .set(
                "journal_bytes_reclaimed",
                Json::UInt(svc_sink.counter(hetfeas::robust::metrics::JOURNAL_BYTES_RECLAIMED)),
            )
            .set("verdict", Json::Str("served".into()));
        r.attach_metrics(&svc_sink.snapshot());
        write_report(out, &r)?;
    }
    Ok(ExitCode::SUCCESS)
}

/// `hetfeas call`: one command line to a running server, with the full
/// client retry discipline (idempotency token, capped-jitter retries
/// under a deadline, circuit breaker).
///
/// Exit 0 on an `ok` reply, 1 on a definitive negative reply (`err` /
/// unretried `shed`), 2 on usage errors, 4 when no definitive reply was
/// obtained — for mutating commands the op may or may not have been
/// applied (rerun with the same journal digest check to resolve).
fn cmd_call(c: &Common) -> Result<ExitCode, String> {
    use hetfeas::service::{Client, ClientConfig, Endpoint, Reply};

    let line = c
        .file
        .as_deref()
        .ok_or("call needs a command line argument, e.g. 'add t 3 10'")?;
    let endpoint = match (&c.tcp, &c.socket) {
        (Some(addr), None) => Endpoint::Tcp(addr.clone()),
        (None, Some(path)) => Endpoint::Unix(std::path::PathBuf::from(path)),
        _ => return Err("call needs exactly one of --tcp ADDR or --socket PATH".into()),
    };
    let mut cfg = ClientConfig::default();
    if let Some(ms) = c.budget_ms {
        cfg.deadline_ms = ms;
    }
    if let Some(n) = c.attempts {
        cfg.max_attempts = n;
    }
    cfg.backoff = hetfeas::robust::Backoff::new(2, 256, c.seed);
    // The rid namespace must differ across `call` invocations — two
    // processes sharing a namespace would have their distinct requests
    // absorbed by the server's idempotency window as retries. Mix the
    // pid and clock in; `--seed` still controls the backoff schedule.
    let rid_seed = c.seed
        ^ u64::from(std::process::id())
        ^ std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.subsec_nanos() as u64 ^ d.as_secs())
            .unwrap_or(0);
    let mut client = Client::new(endpoint, cfg, rid_seed);
    let result = client.call(line);
    let (verdict, code) = match &result {
        Ok(Reply::Ok(body)) => {
            println!("ok {body}");
            ("ok", ExitCode::SUCCESS)
        }
        Ok(Reply::Err { kind, message }) => {
            println!("err {kind}: {message}");
            ("refused", ExitCode::from(1))
        }
        Ok(Reply::Shed(alpha)) => {
            match alpha {
                Some(a) => println!("shed alpha={a:.2}"),
                None => println!("shed alpha=none"),
            }
            ("shed", ExitCode::from(1))
        }
        Err(e) => {
            eprintln!("call failed: {e}");
            ("transport-failure", ExitCode::from(4))
        }
    };
    if let Some(out) = &c.report {
        let sink = client.sink();
        let mut r = RunReport::new("hetfeas", "call");
        r.set("verdict", Json::Str(verdict.into()))
            .set(
                "retries",
                Json::UInt(sink.counter(hetfeas::service::metrics::CLIENT_RETRIES)),
            )
            .set(
                "reconnects",
                Json::UInt(sink.counter(hetfeas::service::metrics::CLIENT_RECONNECTS)),
            )
            .set(
                "breaker_opens",
                Json::UInt(sink.counter(hetfeas::service::metrics::CLIENT_BREAKER_OPENS)),
            );
        r.attach_metrics(&sink.snapshot());
        write_report(out, &r)?;
    }
    Ok(code)
}

/// Build the synthesizer spec from the CLI knobs: seed, scale and the
/// adversarial mix; the shape knobs (waves, bursts, lifetimes) keep their
/// [`SynthSpec`] defaults, which is what the benchmarks pin.
fn synth_spec(c: &Common) -> SynthSpec {
    let mut spec = SynthSpec {
        seed: c.seed,
        instances: c.instances.unwrap_or(1),
        machines: c.machines,
        ..SynthSpec::default()
    };
    if let Some(n) = c.ops {
        spec.ops_per_instance = n as u64;
    }
    if let Some(n) = c.max_live {
        spec.max_live = n;
    }
    if let Some(per_mille) = c.adversarial {
        spec.adversarial_per_mille = per_mille;
        if per_mille > 0 {
            // Seed the adversarial template pool from the fault corpus —
            // the same huge-period / zero-slack / degenerate-speed task
            // sets `hetfeas faults` runs, so synthesized arrivals can hit
            // the admission tests' known weak spots.
            let mut pool = Vec::new();
            for case in FaultPlan::new(c.seed).cases() {
                pool.extend_from_slice(case.tasks.as_slice());
            }
            spec.adversarial = pool;
        }
    }
    spec
}

/// `trace synth`: deterministically synthesize an op-trace workload —
/// diurnal arrival waves, churn bursts, heavy-tailed lifetimes, optional
/// adversarial arrivals — and write it as a streaming binary `.hbt` trace
/// (or text with `--text`). The binary path never materializes the trace,
/// so million-op workloads synthesize in bounded RSS.
fn cmd_trace_synth(c: &Common) -> Result<ExitCode, String> {
    let out_path = c.out.as_ref().ok_or("trace synth needs --out FILE")?;
    let spec = synth_spec(c);
    let mut total_ops = 0u64;
    if c.text_mode {
        let mut instances = Vec::with_capacity(spec.instances);
        for i in 0..spec.instances {
            let platform = synth_platform(&spec, i);
            let mut synth = TraceSynth::new(&spec, i);
            let mut ops = Vec::new();
            while let Some(op) = synth.next_op() {
                ops.push(op);
            }
            total_ops += ops.len() as u64;
            instances.push(TraceInstance {
                name: format!("synth-{i}"),
                platform,
                ops,
            });
        }
        let text = render_op_trace(&OpTrace { instances });
        std::fs::write(out_path, &text).map_err(|e| format!("write {out_path}: {e}"))?;
    } else {
        let file =
            std::fs::File::create(out_path).map_err(|e| format!("create {out_path}: {e}"))?;
        let buf = std::io::BufWriter::with_capacity(1 << 20, file);
        let mut writer = TraceWriter::new(buf).map_err(|e| format!("write {out_path}: {e}"))?;
        for i in 0..spec.instances {
            let platform = synth_platform(&spec, i);
            writer
                .begin_instance(&format!("synth-{i}"), &platform)
                .map_err(|e| format!("write {out_path}: {e}"))?;
            let mut synth = TraceSynth::new(&spec, i);
            while let Some(op) = synth.next_op() {
                writer
                    .op(&op)
                    .map_err(|e| format!("write {out_path}: {e}"))?;
            }
            writer
                .end_instance()
                .map_err(|e| format!("write {out_path}: {e}"))?;
            total_ops += synth.emitted();
        }
        writer
            .finish()
            .map_err(|e| format!("write {out_path}: {e}"))?;
    }
    let bytes = std::fs::metadata(out_path).map(|m| m.len()).unwrap_or(0);
    println!(
        "synthesized {} instance{} ({} ops, seed {}, {} machines) → {} ({} bytes, {})",
        spec.instances,
        if spec.instances == 1 { "" } else { "s" },
        total_ops,
        spec.seed,
        spec.machines,
        out_path,
        bytes,
        if c.text_mode { "text" } else { "binary" }
    );
    if let Some(out) = &c.report {
        let mut r = RunReport::new("hetfeas", "trace-synth");
        r.set("output", Json::Str(out_path.clone()))
            .set("seed", Json::UInt(spec.seed))
            .set("instances", Json::UInt(spec.instances as u64))
            .set("machines", Json::UInt(spec.machines as u64))
            .set("max_live", Json::UInt(spec.max_live as u64))
            .set(
                "adversarial_per_mille",
                Json::UInt(spec.adversarial_per_mille),
            )
            .set("ops", Json::UInt(total_ops))
            .set("trace_bytes", Json::UInt(bytes))
            .set(
                "format",
                Json::Str(if c.text_mode { "text" } else { "binary" }.into()),
            )
            .set("verdict", Json::Str("synthesized".into()));
        write_report(out, &r)?;
    }
    Ok(ExitCode::SUCCESS)
}

/// `trace convert`: round-trip between the text and binary trace formats.
/// The direction is sniffed from the input's magic, so
/// `convert a.txt --out a.hbt` and `convert a.hbt --out a.txt` both just
/// work; a binary→text→binary round trip is byte-identical.
fn cmd_trace_convert(c: &Common) -> Result<ExitCode, String> {
    let in_path = c.file.as_ref().ok_or("trace convert needs an input FILE")?;
    let out_path = c.out.as_ref().ok_or("trace convert needs --out FILE")?;
    let bytes = std::fs::read(in_path).map_err(|e| format!("read {in_path}: {e}"))?;
    let (trace, direction) = if is_binary_trace(&bytes) {
        let trace = read_op_trace_bin(&bytes[..]).map_err(|e| format!("{in_path}: {e}"))?;
        let text = render_op_trace(&trace);
        std::fs::write(out_path, &text).map_err(|e| format!("write {out_path}: {e}"))?;
        (trace, "binary → text")
    } else {
        let text =
            String::from_utf8(bytes).map_err(|_| format!("{in_path}: not UTF-8 trace text"))?;
        let trace = parse_op_trace(&text).map_err(|e| format!("{in_path}: {e}"))?;
        let file =
            std::fs::File::create(out_path).map_err(|e| format!("create {out_path}: {e}"))?;
        let buf = std::io::BufWriter::with_capacity(1 << 20, file);
        let mut w =
            write_op_trace_bin(&trace, buf).map_err(|e| format!("write {out_path}: {e}"))?;
        std::io::Write::flush(&mut w).map_err(|e| format!("write {out_path}: {e}"))?;
        (trace, "text → binary")
    };
    let total_ops: usize = trace.instances.iter().map(|i| i.ops.len()).sum();
    let out_bytes = std::fs::metadata(out_path).map(|m| m.len()).unwrap_or(0);
    println!(
        "{direction}: {} instance{} ({} ops) → {} ({} bytes)",
        trace.instances.len(),
        if trace.instances.len() == 1 { "" } else { "s" },
        total_ops,
        out_path,
        out_bytes
    );
    Ok(ExitCode::SUCCESS)
}

const USAGE: &str =
    "usage: hetfeas <check|alpha|oracles|simulate|generate|faults|trace|ops|recover|serve|call> [ARGS]
  check    SYSTEM [--policy edf|rms|rms-hyp|rms-rta] [--alpha X] [--exact] [--workers N]
           [--report FILE] [-v]
  alpha    SYSTEM [--policy …] [--report FILE]
  oracles  SYSTEM
  simulate SYSTEM [--policy …] [--alpha X] [--jitter F] [--seed N] [--report FILE] [-v]
  generate --tasks N --machines M --util U [--platform identical|big-little|geometric|uniform]
           [--scenario automotive|avionics|media|server] [--seed N]
  faults   [--seed N] [--report FILE]
  trace synth --out FILE [--seed N] [--ops N] [--instances N] [--machines M]
           [--max-live N] [--adversarial PERMILLE] [--text] [--report FILE]
           deterministic workload synthesizer (diurnal waves, churn bursts,
           heavy-tailed lifetimes); binary .hbt by default, streamed in bounded RSS
  trace convert IN --out OUT   text <-> binary trace round-trip (format sniffed)
  ops      --trace TRACE [--mode incremental|from-scratch] [--policy edf|rms|rms-hyp]
           [--alpha X] [--workers N] [--report FILE] [-v]
           [--journal FILE [--compact-every N] [--slice-bytes B]]
           write-ahead journal (single instance); binary traces replay as a
           bounded-RSS stream (incremental only)
  recover  JOURNAL [--report FILE] [-v]   rebuild engine state from a journal
  serve    [--data-dir DIR] [--socket PATH | --tcp ADDR] [--text] [--workers N] [--seed N]
           [--queue-depth N] [--batch-max N] [--max-restarts N] [--compact-every N]
           [--slice-bytes B] [--max-conns N] [--reply-wait-ms N]
           [--report FILE]   supervised multi-tenant admission service (stdin frames,
           Unix socket, or TCP with concurrent connections); tenant crashes are
           bulkheaded, never fatal; requests may carry rid=<u64> idempotency tokens
           and dl=<ms> deadline budgets
  serve --chaos [--tenants N] [--ops N] [--machines M] [--seed N] [--workers N]
           [--report FILE]   seeded fault storm; exit 0 iff every tenant converged
  serve --chaos --net [--tenants N] [--ops N] [--seed N] [--data-dir DIR]
           [--report FILE]   network storm through the seeded chaos proxy; exit 0
           iff every acked op landed in the journal exactly once
  call     CMDLINE (--socket PATH | --tcp ADDR) [--attempts N] [--budget-ms N] [--seed N]
           [--report FILE]   one retrying client call; exit 0 ok, 1 refused,
           4 = no definitive reply (transport failure)
  --budget-ms N bounds the run by wall clock; exit 3 = undecided within budget
  --exact (check) runs exact branch-and-bound with graceful degradation to first-fit /
           utilization bound; --workers N parallelizes the search (same verdict for every N)
  --report FILE writes a JSON run report (verdict + work counters + phase timers)";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((cmd, rest)) = args.split_first() else {
        eprintln!("{USAGE}");
        return ExitCode::from(2);
    };
    // `trace` carries its own subcommand (`synth`/`convert`); split it off
    // before flag parsing so `convert`'s input file stays the positional.
    let (cmd, rest): (String, &[String]) = if cmd == "trace" {
        match rest.split_first() {
            Some((sub, tail)) if sub == "synth" || sub == "convert" => {
                (format!("trace-{sub}"), tail)
            }
            _ => {
                eprintln!("trace needs a subcommand: synth|convert\n{USAGE}");
                return ExitCode::from(2);
            }
        }
    } else {
        (cmd.clone(), rest)
    };
    let common = match parse_common(rest) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("{e}\n{USAGE}");
            return ExitCode::from(2);
        }
    };
    let result = match cmd.as_str() {
        "check" => cmd_check(&common),
        "alpha" => cmd_alpha(&common),
        "oracles" => cmd_oracles(&common),
        "simulate" => cmd_simulate(&common),
        "generate" => cmd_generate(&common),
        "faults" => cmd_faults(&common),
        "trace-synth" => cmd_trace_synth(&common),
        "trace-convert" => cmd_trace_convert(&common),
        "ops" => cmd_ops(&common),
        "recover" => cmd_recover(&common),
        "serve" => cmd_serve(&common),
        "call" => cmd_call(&common),
        other => Err(format!("unknown command {other:?}\n{USAGE}")),
    };
    match result {
        Ok(code) => code,
        Err(e) => {
            eprintln!("{e}");
            ExitCode::from(2)
        }
    }
}
