//! Offline stand-in for the `crossbeam` crate (scoped threads only), used
//! by `scripts/offline_check.sh` when the registry is unreachable.
//!
//! Runs spawned closures *sequentially at spawn time*. The workspace's only
//! consumer (`hetfeas_par::par_map`) distributes work through a shared
//! atomic cursor, so sequential execution yields identical results — the
//! first "worker" simply drains the cursor — and panics propagate out of
//! `scope` with their original payload, like a crossbeam join would.

/// Scoped-thread API surface.
pub mod thread {
    use std::any::Any;
    use std::marker::PhantomData;

    /// Sequential stand-in for `crossbeam::thread::Scope`.
    pub struct Scope<'env> {
        _env: PhantomData<&'env ()>,
    }

    /// Handle to a "thread" that already ran to completion at spawn time.
    pub struct ScopedJoinHandle<T> {
        result: T,
    }

    impl<T> ScopedJoinHandle<T> {
        /// The closure's result (it ran eagerly; joining cannot fail).
        pub fn join(self) -> Result<T, Box<dyn Any + Send + 'static>> {
            Ok(self.result)
        }
    }

    impl<'env> Scope<'env> {
        /// Run `f` immediately on the calling thread.
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<T>
        where
            F: FnOnce(&Scope<'env>) -> T,
        {
            ScopedJoinHandle { result: f(self) }
        }
    }

    /// Sequential stand-in for `crossbeam::thread::scope`: always `Ok`
    /// unless `f` (or a spawned closure, which runs inline) panics — and
    /// then the panic unwinds with its original payload.
    pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn Any + Send + 'static>>
    where
        F: FnOnce(&Scope<'env>) -> R,
    {
        Ok(f(&Scope { _env: PhantomData }))
    }
}
