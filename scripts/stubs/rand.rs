//! Offline stand-in for the `rand` crate, used only by
//! `scripts/offline_check.sh` when the registry is unreachable.
//!
//! Implements exactly the surface this workspace calls — `StdRng` via
//! `SeedableRng::seed_from_u64`, `Rng::{gen, gen_bool, gen_range}` over the
//! range types we use, and `SliceRandom::shuffle` — on a splitmix64/
//! xorshift64* generator. Streams differ from the real `rand::StdRng`, so
//! only seed-determinism and distribution *properties* carry over; that is
//! all the workspace's tests assert.

use std::ops::{Range, RangeInclusive};

/// Core generator interface: one 64-bit draw.
pub trait RngCore {
    /// Next raw 64-bit value.
    fn next_u64(&mut self) -> u64;
}

/// Seedable construction, mirroring `rand::SeedableRng::seed_from_u64`.
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types drawable uniformly by [`Rng::gen`].
pub trait Standard: Sized {
    /// Draw one value.
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

impl Standard for u64 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

/// Ranges samplable by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draw one value inside the range.
    fn draw_in<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

fn below<R: RngCore + ?Sized>(rng: &mut R, n: u64) -> u64 {
    // Modulo bias is ≤ 2⁻⁵³ for the small ranges this workspace draws.
    rng.next_u64() % n.max(1)
}

impl SampleRange<usize> for Range<usize> {
    fn draw_in<R: RngCore + ?Sized>(self, rng: &mut R) -> usize {
        assert!(self.start < self.end, "empty range");
        self.start + below(rng, (self.end - self.start) as u64) as usize
    }
}

impl SampleRange<u64> for Range<u64> {
    fn draw_in<R: RngCore + ?Sized>(self, rng: &mut R) -> u64 {
        assert!(self.start < self.end, "empty range");
        self.start + below(rng, self.end - self.start)
    }
}

impl SampleRange<usize> for RangeInclusive<usize> {
    fn draw_in<R: RngCore + ?Sized>(self, rng: &mut R) -> usize {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty range");
        lo + below(rng, (hi - lo) as u64 + 1) as usize
    }
}

impl SampleRange<u64> for RangeInclusive<u64> {
    fn draw_in<R: RngCore + ?Sized>(self, rng: &mut R) -> u64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty range");
        lo + below(rng, hi.wrapping_sub(lo).wrapping_add(1))
    }
}

impl SampleRange<f64> for Range<f64> {
    fn draw_in<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        self.start + f64::draw(rng) * (self.end - self.start)
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn draw_in<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        lo + f64::draw(rng) * (hi - lo)
    }
}

/// The user-facing sampling interface, blanket-implemented for every
/// [`RngCore`] so `&mut StdRng` and generic `R: Rng + ?Sized` both work.
pub trait Rng: RngCore {
    /// Uniform draw of `T` (f64 in [0, 1)).
    fn gen<T: Standard>(&mut self) -> T {
        T::draw(self)
    }

    /// Bernoulli draw with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }

    /// Uniform draw inside `range`.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.draw_in(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xorshift64* generator seeded via splitmix64 — the
    /// offline stand-in for `rand::rngs::StdRng`.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // splitmix64 scrambles low-entropy seeds (0, 1, 2, …).
            let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            StdRng { state: (z ^ (z >> 31)) | 1 }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let mut x = self.state;
            x ^= x >> 12;
            x ^= x << 25;
            x ^= x >> 27;
            self.state = x;
            x.wrapping_mul(0x2545_F491_4F6C_DD1D)
        }
    }
}

/// Sequence helpers.
pub mod seq {
    use super::{Rng, RngCore};

    /// Subset of `rand::seq::SliceRandom`: in-place Fisher–Yates shuffle.
    pub trait SliceRandom {
        /// Shuffle the slice uniformly.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..i + 1);
                self.swap(i, j);
            }
        }
    }
}
