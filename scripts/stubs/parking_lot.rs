//! Offline stand-in for the `parking_lot` crate (Mutex only), used by
//! `scripts/offline_check.sh` when the registry is unreachable. Wraps
//! `std::sync::Mutex` and panics on poisoning (parking_lot has no poison
//! concept; the workspace never locks across a panic).

use std::sync::{Mutex as StdMutex, MutexGuard as StdGuard};

/// `parking_lot::Mutex` stand-in over `std::sync::Mutex`.
#[derive(Debug, Default)]
pub struct Mutex<T> {
    inner: StdMutex<T>,
}

impl<T> Mutex<T> {
    /// Wrap `value`.
    pub fn new(value: T) -> Self {
        Mutex { inner: StdMutex::new(value) }
    }

    /// Lock, parking_lot-style (no `Result`).
    pub fn lock(&self) -> StdGuard<'_, T> {
        self.inner.lock().expect("mutex poisoned")
    }

    /// Consume and return the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().expect("mutex poisoned")
    }
}
