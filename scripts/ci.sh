#!/usr/bin/env bash
# Repository CI entry point: formatting, lints, tests, and a perf
# no-regression gate on the first-fit scan-vs-indexed smoke benchmark.
#
#   scripts/ci.sh             full run (needs a reachable cargo registry
#                             for clippy and the dev-dependency tests)
#   CI_OFFLINE=1 scripts/ci.sh
#                             sandboxed fallback: skips clippy and runs
#                             scripts/offline_check.sh (plain rustc, stub
#                             deps) instead of `cargo test`
#   BENCH_GATE_TOL=0.15       tighten the perf gate (default 0.25 = the
#                             fresh indexed-vs-scan speedup may be at most
#                             25% below the committed BENCH_ffd.json)
#   SKIP_BENCH_GATE=1         skip the benchmark gates entirely (e.g. on
#                             noisy shared runners)
#
# A second gate covers the incremental admission engine
# (BENCH_incremental.json): the steady-state churn speedup over
# from-scratch re-runs must stay >= INCR_GATE_MIN (default 5). The worker
# scaling ratio is gated only when the host has >= 8 CPUs — on smaller
# hosts (the sandbox has 1) it is reported but not enforced.
#
# A third gate covers the branch-and-bound exact solver (BENCH_bnb.json):
# the number of grid instances the solver decides within its node budget
# (`bnb_solved`) must not drop below the committed baseline. Solved-count
# is capability, not wall-clock, so this gate holds on noisy runners;
# nodes/sec figures are trajectory data only.
#
# A fourth gate covers the supervised admission service
# (BENCH_service.json): the 8-shard panic-recovery phase must stay
# bit-exact, and the batching speedup (pipelined over awaited ops/sec,
# machine-relative) must stay within SVC_GATE_TOL (default 0.5) of the
# committed baseline. On hosts with >= 8 CPUs the TCP connection
# concurrency ratio (8 conns over 1) must reach 2x; below that it is
# reported, not gated. Both smoke paths also run scripts/chaos_smoke.sh —
# the seeded fault storms, the network-chaos exactly-once matrix, and
# both cross-process kill -9 stages (stdin session and TCP with a
# retrying `call` client).
set -euo pipefail

repo="$(cd "$(dirname "$0")/.." && pwd)"
cd "$repo"

offline="${CI_OFFLINE:-}"
if [[ -z "$offline" ]] && ! cargo fetch --quiet 2>/dev/null; then
    echo "ci: cargo registry unreachable — falling back to offline mode" >&2
    offline=1
fi

echo "== cargo fmt --check" >&2
cargo fmt --all --check

if [[ -n "$offline" ]]; then
    # offline_check.sh ends with the fault-injection smoke stage against
    # the binaries it just built.
    echo "== offline build + test (scripts/offline_check.sh)" >&2
    bash scripts/offline_check.sh
else
    echo "== cargo clippy -D warnings" >&2
    cargo clippy --workspace --all-targets -- -D warnings
    echo "== cargo test -q (includes the prop_no_panic battery)" >&2
    cargo test -q
    echo "== fault-injection smoke (scripts/fault_smoke.sh)" >&2
    cargo build -q --bins
    HETFEAS_BIN=target/debug/hetfeas \
        RUN_EXPERIMENTS_BIN=target/debug/run-experiments \
        bash scripts/fault_smoke.sh
    echo "== crash-recovery smoke (scripts/crash_smoke.sh)" >&2
    HETFEAS_BIN=target/debug/hetfeas bash scripts/crash_smoke.sh
    echo "== chaos smoke (scripts/chaos_smoke.sh)" >&2
    HETFEAS_BIN=target/debug/hetfeas bash scripts/chaos_smoke.sh
fi

if [[ -n "${SKIP_BENCH_GATE:-}" ]]; then
    echo "== bench gate skipped (SKIP_BENCH_GATE set)" >&2
    exit 0
fi

echo "== bench smoke + no-regression gate" >&2
baseline="$repo/BENCH_ffd.json"
if [[ ! -f "$baseline" ]]; then
    echo "ci: no committed BENCH_ffd.json — nothing to gate against" >&2
    exit 0
fi
fresh="$(mktemp)"
fresh_incr="$(mktemp)"
fresh_bnb="$(mktemp)"
fresh_svc="$(mktemp)"
trap 'rm -f "$fresh" "$fresh_incr" "$fresh_bnb" "$fresh_svc"' EXIT
BENCH_OUT="$fresh" BENCH_INCR_OUT="$fresh_incr" BENCH_BNB_OUT="$fresh_bnb" \
    BENCH_SVC_OUT="$fresh_svc" \
    bash scripts/bench_smoke.sh

# One "m speedup" pair per result row (the row format is emitted by
# scripts/bench_ffd_smoke.rs and stable across PRs).
rows() {
    sed -n 's/.*"m": *\([0-9]*\),.*"speedup": *\([0-9.]*\).*/\1 \2/p' "$1"
}

rows "$baseline" | while read -r m base; do
    now="$(rows "$fresh" | awk -v m="$m" '$1 == m { print $2 }')"
    if [[ -z "$now" ]]; then
        echo "ci: FAIL — fresh benchmark lost the m=$m row" >&2
        exit 1
    fi
    awk -v m="$m" -v base="$base" -v now="$now" \
        -v tol="${BENCH_GATE_TOL:-0.25}" 'BEGIN {
        floor = base * (1 - tol)
        if (now < floor) {
            printf "ci: FAIL — m=%s speedup %.2f below gate %.2f (baseline %.2f)\n",
                m, now, floor, base > "/dev/stderr"
            exit 1
        }
        printf "ci: m=%s speedup %.2f vs baseline %.2f — ok\n",
            m, now, base > "/dev/stderr"
    }'
done

echo "== kernel-vs-indexed gate" >&2
# The SoA kernel's speedup over the indexed engine at the headline cell
# (n = 4096, m = 1024) must not regress below the committed baseline
# (modulo BENCH_GATE_TOL). `"kernel_speedup"` has no quote directly
# before the plain-speedup pattern's `s`, so the two fields cannot alias.
krows() {
    sed -n 's/.*"m": *\([0-9]*\),.*"kernel_speedup": *\([0-9.]*\).*/\1 \2/p' "$1"
}
base_kernel="$(krows "$baseline" | awk '$1 == 1024 { print $2 }')"
now_kernel="$(krows "$fresh" | awk '$1 == 1024 { print $2 }')"
if [[ -z "$base_kernel" ]]; then
    echo "ci: baseline has no m=1024 kernel_speedup — kernel gate skipped" >&2
elif [[ -z "$now_kernel" ]]; then
    echo "ci: FAIL — fresh benchmark lost the m=1024 kernel_speedup" >&2
    exit 1
else
    awk -v base="$base_kernel" -v now="$now_kernel" \
        -v tol="${BENCH_GATE_TOL:-0.25}" 'BEGIN {
        floor = base * (1 - tol)
        if (now < floor) {
            printf "ci: FAIL — kernel speedup %.2f at m=1024 below gate %.2f (baseline %.2f)\n",
                now, floor, base > "/dev/stderr"
            exit 1
        }
        printf "ci: kernel speedup %.2f at m=1024 vs baseline %.2f — ok\n",
            now, base > "/dev/stderr"
    }'
fi

echo "== incremental engine gate" >&2
# `"speedup"` only matches the single_thread field ("worker_speedup" has
# no quote directly before the s, so the pattern cannot alias it).
incr_speedup="$(sed -n 's/.*"speedup": *\([0-9.]*\).*/\1/p' "$fresh_incr" | head -n1)"
worker_speedup="$(sed -n 's/.*"worker_speedup": *\([0-9.]*\).*/\1/p' "$fresh_incr" | head -n1)"
host_cpus="$(sed -n 's/.*"host_cpus": *\([0-9]*\).*/\1/p' "$fresh_incr" | head -n1)"
if [[ -z "$incr_speedup" ]]; then
    echo "ci: FAIL — BENCH_incremental.json has no single_thread speedup" >&2
    exit 1
fi
awk -v s="$incr_speedup" -v min="${INCR_GATE_MIN:-5}" 'BEGIN {
    if (s < min) {
        printf "ci: FAIL — incremental churn only %.1fx over from-scratch (gate %sx)\n",
            s, min > "/dev/stderr"
        exit 1
    }
    printf "ci: incremental churn %.1fx over from-scratch (gate %sx) — ok\n",
        s, min > "/dev/stderr"
}'
if [[ -n "$host_cpus" && "$host_cpus" -ge 8 && -n "$worker_speedup" ]]; then
    awk -v s="$worker_speedup" -v cpus="$host_cpus" 'BEGIN {
        if (s < 3) {
            printf "ci: FAIL — ops sharding only %.2fx from 1 to 8 workers on %s cpus\n",
                s, cpus > "/dev/stderr"
            exit 1
        }
        printf "ci: ops sharding %.2fx from 1 to 8 workers on %s cpus — ok\n",
            s, cpus > "/dev/stderr"
    }'
else
    echo "ci: worker scaling ${worker_speedup:-?}x on ${host_cpus:-?} cpus — reported, not gated (< 8 cpus)" >&2
fi

echo "== streaming replay gate" >&2
# The million-op binary-trace replay must stay memory-bounded: the bench
# harness replays it through the pull-based OpStream path and reports the
# process peak RSS (VmHWM). A materialized replay would hold the whole
# decoded op vector and blow through the ceiling.
stream_rss="$(sed -n 's/.*"peak_rss_bytes": *\([0-9]*\).*/\1/p' "$fresh_incr" | head -n1)"
stream_ops_sec="$(sed -n 's/.*"replay_ops_per_sec": *\([0-9.]*\).*/\1/p' "$fresh_incr" | head -n1)"
compact_ns="$(sed -n 's/.*"compaction_amortized_ns_per_op": *\([0-9.]*\).*/\1/p' "$fresh_incr" | head -n1)"
if [[ -z "$stream_rss" || -z "$stream_ops_sec" ]]; then
    echo "ci: FAIL — BENCH_incremental.json has no streaming row (peak_rss_bytes / replay_ops_per_sec)" >&2
    exit 1
fi
if [[ "$stream_rss" == "0" ]]; then
    echo "ci: streaming replay ${stream_ops_sec} ops/s — RSS unreadable on this host, not gated" >&2
else
    awk -v rss="$stream_rss" -v max="${STREAM_RSS_MAX:-134217728}" -v ops="$stream_ops_sec" 'BEGIN {
        if (rss + 0 > max + 0) {
            printf "ci: FAIL — streaming replay peak RSS %d bytes exceeds %d ceiling\n",
                rss, max > "/dev/stderr"
            exit 1
        }
        printf "ci: streaming replay %.0f ops/s at %.1f MiB peak RSS (ceiling %.0f MiB) — ok\n",
            ops, rss / 1048576, max / 1048576 > "/dev/stderr"
    }'
fi
if [[ -n "$compact_ns" ]]; then
    echo "ci: sliced compaction amortized ${compact_ns} ns/op — reported" >&2
else
    echo "ci: FAIL — BENCH_incremental.json has no compaction_amortized_ns_per_op" >&2
    exit 1
fi
# Churn-throughput no-regression vs the committed baseline (same
# tolerance as the first-fit gate; absolute ops/sec, so only meaningful
# on comparable hosts — tune BENCH_GATE_TOL or SKIP_BENCH_GATE locally).
incr_baseline="$repo/BENCH_incremental.json"
churn_ops() {
    sed -n 's/.*"incremental_ops_per_sec": *\([0-9.]*\).*/\1/p' "$1" | head -n1
}
if [[ ! -f "$incr_baseline" ]]; then
    echo "ci: no committed BENCH_incremental.json — churn no-regression gate skipped" >&2
else
    base_churn="$(churn_ops "$incr_baseline")"
    now_churn="$(churn_ops "$fresh_incr")"
    if [[ -z "$now_churn" || -z "$base_churn" ]]; then
        echo "ci: FAIL — missing incremental_ops_per_sec (fresh '${now_churn:-}', baseline '${base_churn:-}')" >&2
        exit 1
    fi
    awk -v now="$now_churn" -v base="$base_churn" -v tol="${BENCH_GATE_TOL:-0.25}" 'BEGIN {
        if (now < base * (1 - tol)) {
            printf "ci: FAIL — incremental churn %.0f ops/s regressed below baseline %.0f (tol %.2f)\n",
                now, base, tol > "/dev/stderr"
            exit 1
        }
        printf "ci: incremental churn %.0f ops/s vs baseline %.0f (tol %.2f) — ok\n",
            now, base, tol > "/dev/stderr"
    }'
fi

echo "== branch-and-bound solved-count gate" >&2
bnb_baseline="$repo/BENCH_bnb.json"
solved() {
    sed -n 's/.*"bnb_solved": *\([0-9]*\).*/\1/p' "$1" | head -n1
}
if [[ ! -f "$bnb_baseline" ]]; then
    echo "ci: no committed BENCH_bnb.json — B&B gate skipped" >&2
else
    base_solved="$(solved "$bnb_baseline")"
    now_solved="$(solved "$fresh_bnb")"
    if [[ -z "$now_solved" ]]; then
        echo "ci: FAIL — fresh BENCH_bnb.json has no bnb_solved count" >&2
        exit 1
    fi
    if (( now_solved < base_solved )); then
        echo "ci: FAIL — B&B decides $now_solved/$(sed -n 's/.*\"grid_size\": *\([0-9]*\).*/\1/p' "$fresh_bnb" | head -n1) grid instances, baseline decided $base_solved" >&2
        exit 1
    fi
    echo "ci: B&B decides $now_solved grid instances (baseline $base_solved) — ok" >&2
fi

echo "== supervised-service gate" >&2
# The service benchmark gates on (a) recovery correctness — 8/8 shards
# must restart bit-exactly after an injected panic storm, the harness
# itself fails otherwise — and (b) the batching speedup (pipelined over
# awaited ops/sec). The speedup is machine-relative, so it holds on
# noisy 1-CPU runners where absolute ops/sec would not.
svc_baseline="$repo/BENCH_service.json"
batching() {
    sed -n 's/.*"batching_speedup": *\([0-9.]*\).*/\1/p' "$1" | head -n1
}
if [[ ! -f "$svc_baseline" ]]; then
    echo "ci: no committed BENCH_service.json — service gate skipped" >&2
else
    grep -q '"bit_exact": true' "$fresh_svc" || {
        echo "ci: FAIL — service recovery was not bit-exact" >&2
        cat "$fresh_svc" >&2
        exit 1
    }
    grep -q '"shards_recovered": 8' "$fresh_svc" || {
        echo "ci: FAIL — service bench recovered fewer than 8 shards" >&2
        cat "$fresh_svc" >&2
        exit 1
    }
    base_batch="$(batching "$svc_baseline")"
    now_batch="$(batching "$fresh_svc")"
    if [[ -z "$now_batch" ]]; then
        echo "ci: FAIL — fresh BENCH_service.json has no batching_speedup" >&2
        exit 1
    fi
    awk -v base="$base_batch" -v now="$now_batch" \
        -v tol="${SVC_GATE_TOL:-0.5}" 'BEGIN {
        floor = base * (1 - tol)
        if (now < floor) {
            printf "ci: FAIL — service batching speedup %.2f below gate %.2f (baseline %.2f)\n",
                now, floor, base > "/dev/stderr"
            exit 1
        }
        printf "ci: service batching speedup %.2f vs baseline %.2f — ok\n",
            now, base > "/dev/stderr"
    }'
    # Connection concurrency: 8 TCP connections must beat 1 by >= 2x —
    # but only where the hardware can overlap them. On a 1-CPU runner
    # the connections time-slice one core, so the ratio is reported
    # trajectory data, not a gate.
    svc_cpus="$(sed -n 's/.*"host_cpus": *\([0-9]*\).*/\1/p' "$fresh_svc" | head -n1)"
    conn_speedup="$(sed -n 's/.*"conn_speedup": *\([0-9.]*\).*/\1/p' "$fresh_svc" | head -n1)"
    if [[ -z "$conn_speedup" ]]; then
        echo "ci: FAIL — fresh BENCH_service.json has no conn_speedup" >&2
        exit 1
    fi
    if [[ -n "$svc_cpus" && "$svc_cpus" -ge 8 ]]; then
        awk -v s="$conn_speedup" -v cpus="$svc_cpus" 'BEGIN {
            if (s < 2.0) {
                printf "ci: FAIL — conn speedup %.2fx on %d cpus, gate needs >= 2x\n",
                    s, cpus > "/dev/stderr"
                exit 1
            }
            printf "ci: conn speedup %.2fx on %d cpus — ok\n", s, cpus > "/dev/stderr"
        }'
    else
        echo "ci: conn speedup ${conn_speedup}x on ${svc_cpus:-?} cpus — reported, not gated (< 8 cpus)" >&2
    fi
fi

echo "ci: all gates passed" >&2
