#!/usr/bin/env bash
# Crash-recovery smoke stage: drive the write-ahead journal through
# injected IO faults (the HETFEAS_JOURNAL_* failpoint knobs) and check
# that `hetfeas recover` rebuilds the engine bit-exactly — the
# cross-process half of the crash matrix in
# crates/partition/tests/prop_durable.rs.
#
#   HETFEAS_BIN=path          the `hetfeas` CLI binary (required)
#   CRASH_SMOKE_TIMEOUT=60    outer wall-clock cap per stage, seconds
#
# Asserts:
#   * a journaled ops run and a subsequent recover print the same digest;
#   * transient write errors are retried to success (exit 0);
#   * a crash at any of a spread of byte offsets exits 2, after which
#     recover either rebuilds a digest from the synced prefix (exit 0) or
#     reports the journal unrecoverable (exit 2, crash before the config
#     record ever synced) — never anything else, never a panic;
#   * recover on garbage exits 2; compaction keeps the journal
#     recoverable with an unchanged digest;
#   * a crash DURING a snapshot-compaction replace never destroys the
#     journal: the replace is all-or-nothing, so recover always rebuilds
#     a digest from whichever generation survived.
set -euo pipefail

hetfeas="${HETFEAS_BIN:?set HETFEAS_BIN to the hetfeas binary}"
cap="${CRASH_SMOKE_TIMEOUT:-60}"

work="$(mktemp -d)"
trap 'rm -rf "$work"' EXIT

cat >"$work/trace.ops" <<'EOF'
begin solo
machine 1
machine 2
add 1 1 2
add 2 1 4
query 1
snapshot
add 3 9 10
rollback
remove 2
repack
add 4 1 6
end
EOF

echo "== journaled run + recover round-trips the digest" >&2
timeout "$cap" "$hetfeas" ops --trace "$work/trace.ops" \
    --journal "$work/clean.journal" >"$work/clean.out"
ref_digest="$(grep -o 'journal digest [0-9a-f]*' "$work/clean.out" | awk '{print $3}')"
[[ -n "$ref_digest" ]] || {
    echo "crash_smoke: FAIL — no journal digest in ops output" >&2
    exit 1
}
timeout "$cap" "$hetfeas" recover "$work/clean.journal" >"$work/recover.out"
rec_digest="$(grep -o 'state digest [0-9a-f]*' "$work/recover.out" | awk '{print $3}')"
if [[ "$rec_digest" != "$ref_digest" ]]; then
    echo "crash_smoke: FAIL — digest mismatch ($ref_digest vs $rec_digest)" >&2
    exit 1
fi

echo "== transient IO errors are retried to success" >&2
HETFEAS_JOURNAL_TRANSIENT=2 timeout "$cap" "$hetfeas" ops \
    --trace "$work/trace.ops" --journal "$work/retry.journal" \
    >"$work/retry.out"
grep -q '2 retries' "$work/retry.out" || {
    echo "crash_smoke: FAIL — transient faults not visible in retry counter" >&2
    cat "$work/retry.out" >&2
    exit 1
}

echo "== crash matrix at seeded offsets" >&2
# Deterministic spread: inside the config record, on and around record
# boundaries, and beyond the journal's total length (no crash fires).
total=$(stat -c%s "$work/clean.journal" 2>/dev/null \
    || stat -f%z "$work/clean.journal")
for at in 1 40 90 120 140 "$((total / 2))" "$((total - 5))" "$((total + 50))"; do
    j="$work/crash_$at.journal"
    set +e
    HETFEAS_JOURNAL_CRASH_AT="$at" timeout "$cap" "$hetfeas" ops \
        --trace "$work/trace.ops" --journal "$j" >/dev/null 2>&1
    code=$?
    set -e
    if [[ "$at" -gt "$total" ]]; then
        # The crash point was never reached — the run must succeed.
        if [[ "$code" != 0 ]]; then
            echo "crash_smoke: FAIL — unreached crash point $at exited $code" >&2
            exit 1
        fi
        continue
    fi
    if [[ "$code" != 2 ]]; then
        echo "crash_smoke: FAIL — crash at $at exited $code, expected 2" >&2
        exit 1
    fi
    set +e
    timeout "$cap" "$hetfeas" recover "$j" >"$work/crash_$at.out" 2>&1
    rcode=$?
    set -e
    case "$rcode" in
        0)  # Synced prefix recovered: a digest must be printed.
            grep -q 'state digest [0-9a-f]*' "$work/crash_$at.out" || {
                echo "crash_smoke: FAIL — recover at $at printed no digest" >&2
                exit 1
            }
            ;;
        2)  # Crash before the config record synced (or the file never
            # appeared): unrecoverable is the correct verdict.
            ;;
        *)  echo "crash_smoke: FAIL — recover at $at exited $rcode" >&2
            cat "$work/crash_$at.out" >&2
            exit 1
            ;;
    esac
done

echo "== recover rejects garbage" >&2
printf 'this was never a journal' >"$work/garbage.journal"
set +e
timeout "$cap" "$hetfeas" recover "$work/garbage.journal" >/dev/null 2>&1
code=$?
set -e
if [[ "$code" != 2 ]]; then
    echo "crash_smoke: FAIL — garbage journal exited $code, expected 2" >&2
    exit 1
fi

echo "== compaction keeps the journal recoverable" >&2
timeout "$cap" "$hetfeas" ops --trace "$work/trace.ops" \
    --journal "$work/compact.journal" --compact-every 3 >"$work/compact.out"
if grep -q ' 0 compactions' "$work/compact.out"; then
    echo "crash_smoke: FAIL — --compact-every 3 never compacted" >&2
    exit 1
fi
cd="$(grep -o 'journal digest [0-9a-f]*' "$work/compact.out" | awk '{print $3}')"
timeout "$cap" "$hetfeas" recover "$work/compact.journal" >"$work/compact_rec.out"
rd="$(grep -o 'state digest [0-9a-f]*' "$work/compact_rec.out" | awk '{print $3}')"
if [[ "$cd" != "$rd" ]]; then
    echo "crash_smoke: FAIL — compacted digest mismatch ($cd vs $rd)" >&2
    exit 1
fi

echo "== crash matrix during snapshot compaction" >&2
# --compact-every 2 forces a compaction replace after every other op, so
# byte-counted crash points from this spread land inside replaces as well
# as appends. The replace is all-or-nothing (write is staged, the old
# contents survive a mid-replace crash), so once the config record has
# synced (well before offset 150 here) recover must ALWAYS rebuild a
# digest — exit 2 would mean a torn compaction destroyed the journal.
for at in 150 300 500 700 900 1100 1300; do
    j="$work/ccrash_$at.journal"
    set +e
    HETFEAS_JOURNAL_CRASH_AT="$at" timeout "$cap" "$hetfeas" ops \
        --trace "$work/trace.ops" --journal "$j" --compact-every 2 \
        >/dev/null 2>&1
    code=$?
    set -e
    if [[ "$code" != 2 ]]; then
        echo "crash_smoke: FAIL — compaction crash at $at exited $code, expected 2" >&2
        exit 1
    fi
    timeout "$cap" "$hetfeas" recover "$j" >"$work/ccrash_$at.out" 2>&1 || {
        echo "crash_smoke: FAIL — torn compaction at $at left journal unrecoverable" >&2
        cat "$work/ccrash_$at.out" >&2
        exit 1
    }
    grep -q 'state digest [0-9a-f]*' "$work/ccrash_$at.out" || {
        echo "crash_smoke: FAIL — recover after compaction crash at $at printed no digest" >&2
        exit 1
    }
done

echo "== synthesized binary trace: crash inside compaction slices" >&2
# A streamed journaled replay of a synthesized HBT1 trace, with a small
# compaction cadence and tiny slices so most bytes written are
# compaction-slice rewrites — the crash points below land inside active
# slices, not just between appends. The staged rewrite is invisible
# until its commit record, so recover must always rebuild a digest from
# whichever generation survived.
timeout "$cap" "$hetfeas" trace synth --out "$work/synth.hbt" \
    --ops 20000 --max-live 256 --machines 4 --seed 9 >/dev/null
timeout "$cap" "$hetfeas" ops --trace "$work/synth.hbt" \
    --journal "$work/synth.journal" --compact-every 16 --slice-bytes 512 \
    >"$work/synth.out"
if grep -q ' 0 compactions' "$work/synth.out"; then
    echo "crash_smoke: FAIL — streamed journaled run never compacted" >&2
    exit 1
fi
sd="$(grep -o 'journal digest [0-9a-f]*' "$work/synth.out" | awk '{print $3}')"
timeout "$cap" "$hetfeas" recover "$work/synth.journal" >"$work/synth_rec.out"
srd="$(grep -o 'state digest [0-9a-f]*' "$work/synth_rec.out" | awk '{print $3}')"
if [[ -z "$sd" || "$sd" != "$srd" ]]; then
    echo "crash_smoke: FAIL — streamed journal digest mismatch ($sd vs $srd)" >&2
    exit 1
fi
for at in 4000 9000 16000 30000 60000 120000; do
    j="$work/scrash_$at.journal"
    set +e
    HETFEAS_JOURNAL_CRASH_AT="$at" timeout "$cap" "$hetfeas" ops \
        --trace "$work/synth.hbt" --journal "$j" \
        --compact-every 16 --slice-bytes 512 >/dev/null 2>&1
    code=$?
    set -e
    if [[ "$code" == 0 ]]; then
        # Crash point beyond the bytes this run writes — nothing to check.
        continue
    fi
    if [[ "$code" != 2 ]]; then
        echo "crash_smoke: FAIL — slice crash at $at exited $code, expected 2" >&2
        exit 1
    fi
    timeout "$cap" "$hetfeas" recover "$j" >"$work/scrash_$at.out" 2>&1 || {
        echo "crash_smoke: FAIL — slice crash at $at left journal unrecoverable" >&2
        cat "$work/scrash_$at.out" >&2
        exit 1
    }
    grep -q 'state digest [0-9a-f]*' "$work/scrash_$at.out" || {
        echo "crash_smoke: FAIL — recover after slice crash at $at printed no digest" >&2
        exit 1
    }
done

echo "crash_smoke: all stages passed" >&2
