#!/usr/bin/env bash
# Fault-injection smoke stage: run the adversarial corpus and the
# checkpoint/resume cycle against freshly built binaries, under an outer
# `timeout` so a budget regression (a hang) fails CI instead of wedging it.
#
#   HETFEAS_BIN=path          the `hetfeas` CLI binary (required)
#   RUN_EXPERIMENTS_BIN=path  the `run-experiments` binary (required)
#   FAULT_SMOKE_TIMEOUT=60    outer wall-clock cap per stage, seconds
#
# Asserts:
#   * `hetfeas faults` exits 0 with zero panics across three seeds;
#   * a blowup instance under `--budget-ms 50` exits 3 (undecided) with
#     `robust.degraded >= 1` in the JSON report — degraded, not hung;
#   * a killed sweep resumes from its checkpoint without recomputing the
#     finished cell.
set -euo pipefail

hetfeas="${HETFEAS_BIN:?set HETFEAS_BIN to the hetfeas binary}"
runexp="${RUN_EXPERIMENTS_BIN:?set RUN_EXPERIMENTS_BIN to the run-experiments binary}"
cap="${FAULT_SMOKE_TIMEOUT:-60}"

work="$(mktemp -d)"
trap 'rm -rf "$work"' EXIT

echo "== fault corpus (3 seeds)" >&2
for seed in 0 1 42; do
    RUST_BACKTRACE=1 timeout "$cap" \
        "$hetfeas" faults --seed "$seed" --report "$work/faults_$seed.json" \
        >"$work/faults_$seed.out"
    if grep -q '✗panic' "$work/faults_$seed.out"; then
        echo "fault_smoke: FAIL — panic marker in seed $seed output" >&2
        exit 1
    fi
    grep -q '0 panics' "$work/faults_$seed.out" || {
        echo "fault_smoke: FAIL — nonzero robust.panics for seed $seed" >&2
        exit 1
    }
done

echo "== budgeted exact blowup degrades instead of hanging" >&2
{
    for i in $(seq 0 20); do echo "task $((451 + i)) 1000"; done
    for i in $(seq 1 10); do echo "machine 1"; done
} >"$work/blowup.txt"
set +e
timeout "$cap" "$hetfeas" check "$work/blowup.txt" --exact --budget-ms 50 \
    --report "$work/blowup.json" >/dev/null
code=$?
set -e
if [[ "$code" != 3 ]]; then
    echo "fault_smoke: FAIL — expected exit 3 (undecided), got $code" >&2
    exit 1
fi
grep -q '"robust.degraded": *[1-9]' "$work/blowup.json" || {
    echo "fault_smoke: FAIL — robust.degraded missing from report" >&2
    exit 1
}

echo "== sweep checkpoint/resume" >&2
cp="$work/sweep_cp.json"
timeout "$cap" "$runexp" e10 --quick --checkpoint "$cp" --resume "$cp" \
    >/dev/null 2>"$work/sweep1.err"
[[ -f "$cp" ]] || {
    echo "fault_smoke: FAIL — checkpoint file not written" >&2
    exit 1
}
timeout "$cap" "$runexp" e10 --quick --checkpoint "$cp" --resume "$cp" \
    >/dev/null 2>"$work/sweep2.err"
grep -q '1 resumed' "$work/sweep2.err" || {
    echo "fault_smoke: FAIL — second run did not resume from checkpoint" >&2
    cat "$work/sweep2.err" >&2
    exit 1
}

echo "fault_smoke: all stages passed" >&2
