#!/usr/bin/env bash
# Smoke-benchmark the first-fit scan / indexed-engine / SoA-kernel
# comparison and emit BENCH_ffd.json (n, m, median ns/iter plus per-op
# ns/placement for all three paths, and host_cpus) at the repo root, so
# successive PRs have a perf trajectory to compare against. The n/m grid
# can be overridden with HETFEAS_BENCH_GRID="n:m1,m2,..." (e.g.
# HETFEAS_BENCH_GRID=1024:16,64 for a quick local run — don't commit the
# resulting JSON, the ci.sh gates expect the default grid).
# Also runs the incremental-engine harness (scripts/bench_incr_smoke.rs)
# and emits BENCH_incremental.json (a streamed million-op binary-trace
# replay with trace_bytes / peak_rss_bytes, churn ops/sec incremental vs
# a probe-scaled from-scratch baseline, amortized sliced-compaction
# ns/op, plus worker scaling with host_cpus), and the
# branch-and-bound harness (scripts/bench_bnb_smoke.rs) which emits
# BENCH_bnb.json (per-instance nodes/sec and the solved-within-budget
# grid vs the plain-DFS baseline), and the supervised-service harness
# (scripts/bench_service_smoke.rs) which emits BENCH_service.json
# (pipelined vs awaited ops/sec across 8 shards, batching speedup, the
# 8-shard panic-recovery wall time, and TCP front-end throughput with
# 1 vs 8 concurrent connections — all with honest host_cpus /
# effective-workers reporting).
#
# Uses plain-rustc harnesses compiled against the workspace rlibs — no
# Criterion, no registry access — so they also run in sandboxed CI. When
# the cargo registry IS reachable, pass --criterion to additionally run
# the full Criterion groups at --sample-size 10.
set -euo pipefail

repo="$(cd "$(dirname "$0")/.." && pwd)"
out="${BENCH_OUT:-$repo/BENCH_ffd.json}"
incr_out="${BENCH_INCR_OUT:-$repo/BENCH_incremental.json}"
bnb_out="${BENCH_BNB_OUT:-$repo/BENCH_bnb.json}"
svc_out="${BENCH_SVC_OUT:-$repo/BENCH_service.json}"
build="$(mktemp -d)"
trap 'rm -rf "$build"' EXIT

echo "building workspace rlibs (release) ..." >&2
rustc --edition 2021 -O --crate-type rlib --crate-name hetfeas_model \
    "$repo/crates/model/src/lib.rs" -o "$build/libhetfeas_model.rlib"
rustc --edition 2021 -O --crate-type rlib --crate-name hetfeas_obs \
    "$repo/crates/obs/src/lib.rs" -o "$build/libhetfeas_obs.rlib"
rustc --edition 2021 -O --crate-type rlib --crate-name hetfeas_robust \
    "$repo/crates/robust/src/lib.rs" \
    --extern hetfeas_model="$build/libhetfeas_model.rlib" \
    --extern hetfeas_obs="$build/libhetfeas_obs.rlib" \
    -o "$build/libhetfeas_robust.rlib"
rustc --edition 2021 -O --crate-type rlib --crate-name hetfeas_analysis \
    "$repo/crates/analysis/src/lib.rs" -L "$build" \
    --extern hetfeas_model="$build/libhetfeas_model.rlib" \
    --extern hetfeas_obs="$build/libhetfeas_obs.rlib" \
    --extern hetfeas_robust="$build/libhetfeas_robust.rlib" \
    -o "$build/libhetfeas_analysis.rlib"
rustc --edition 2021 -O --crate-type rlib --crate-name hetfeas_lp \
    "$repo/crates/lp/src/lib.rs" -L "$build" \
    --extern hetfeas_model="$build/libhetfeas_model.rlib" \
    --extern hetfeas_obs="$build/libhetfeas_obs.rlib" \
    --extern hetfeas_robust="$build/libhetfeas_robust.rlib" \
    -o "$build/libhetfeas_lp.rlib"
rustc --edition 2021 -O --crate-type rlib --crate-name rand \
    "$repo/scripts/stubs/rand.rs" -o "$build/librand.rlib"
rustc --edition 2021 -O --crate-type rlib --crate-name crossbeam \
    "$repo/scripts/stubs/crossbeam.rs" -o "$build/libcrossbeam.rlib"
rustc --edition 2021 -O --crate-type rlib --crate-name parking_lot \
    "$repo/scripts/stubs/parking_lot.rs" -o "$build/libparking_lot.rlib"
rustc --edition 2021 -O --crate-type rlib --crate-name hetfeas_par \
    "$repo/crates/par/src/lib.rs" -L "$build" \
    --extern crossbeam="$build/libcrossbeam.rlib" \
    --extern parking_lot="$build/libparking_lot.rlib" \
    -o "$build/libhetfeas_par.rlib"
rustc --edition 2021 -O --crate-type rlib --crate-name hetfeas_partition \
    "$repo/crates/partition/src/lib.rs" -L "$build" \
    --extern hetfeas_model="$build/libhetfeas_model.rlib" \
    --extern hetfeas_analysis="$build/libhetfeas_analysis.rlib" \
    --extern hetfeas_lp="$build/libhetfeas_lp.rlib" \
    --extern hetfeas_obs="$build/libhetfeas_obs.rlib" \
    --extern hetfeas_robust="$build/libhetfeas_robust.rlib" \
    --extern hetfeas_par="$build/libhetfeas_par.rlib" \
    -o "$build/libhetfeas_partition.rlib"

echo "building + running the smoke harness ..." >&2
rustc --edition 2021 -O --crate-name bench_ffd_smoke \
    "$repo/scripts/bench_ffd_smoke.rs" -L "$build" \
    --extern hetfeas_model="$build/libhetfeas_model.rlib" \
    --extern hetfeas_partition="$build/libhetfeas_partition.rlib" \
    -o "$build/bench_ffd_smoke"
"$build/bench_ffd_smoke" > "$out"
echo "wrote $out" >&2

echo "building + running the incremental harness ..." >&2
# The streaming section needs the synth + replay layers too.
rustc --edition 2021 -O --crate-type rlib --crate-name hetfeas_workload \
    "$repo/crates/workload/src/lib.rs" -L "$build" \
    --extern hetfeas_model="$build/libhetfeas_model.rlib" \
    --extern rand="$build/librand.rlib" \
    -o "$build/libhetfeas_workload.rlib"
rustc --edition 2021 -O --crate-type rlib --crate-name hetfeas_sim \
    "$repo/crates/sim/src/lib.rs" -L "$build" \
    --extern hetfeas_model="$build/libhetfeas_model.rlib" \
    --extern hetfeas_obs="$build/libhetfeas_obs.rlib" \
    --extern hetfeas_robust="$build/libhetfeas_robust.rlib" \
    --extern rand="$build/librand.rlib" \
    --extern hetfeas_partition="$build/libhetfeas_partition.rlib" \
    -o "$build/libhetfeas_sim.rlib"
rustc --edition 2021 -O --crate-type rlib --crate-name hetfeas_experiments \
    "$repo/crates/experiments/src/lib.rs" -L "$build" \
    --extern hetfeas_model="$build/libhetfeas_model.rlib" \
    --extern hetfeas_obs="$build/libhetfeas_obs.rlib" \
    --extern hetfeas_robust="$build/libhetfeas_robust.rlib" \
    --extern hetfeas_analysis="$build/libhetfeas_analysis.rlib" \
    --extern hetfeas_lp="$build/libhetfeas_lp.rlib" \
    --extern rand="$build/librand.rlib" \
    --extern hetfeas_partition="$build/libhetfeas_partition.rlib" \
    --extern hetfeas_sim="$build/libhetfeas_sim.rlib" \
    --extern hetfeas_workload="$build/libhetfeas_workload.rlib" \
    --extern hetfeas_par="$build/libhetfeas_par.rlib" \
    -o "$build/libhetfeas_experiments.rlib"
rustc --edition 2021 -O --crate-name bench_incr_smoke \
    "$repo/scripts/bench_incr_smoke.rs" -L "$build" \
    --extern hetfeas_model="$build/libhetfeas_model.rlib" \
    --extern hetfeas_obs="$build/libhetfeas_obs.rlib" \
    --extern hetfeas_robust="$build/libhetfeas_robust.rlib" \
    --extern hetfeas_partition="$build/libhetfeas_partition.rlib" \
    --extern hetfeas_workload="$build/libhetfeas_workload.rlib" \
    --extern hetfeas_experiments="$build/libhetfeas_experiments.rlib" \
    -o "$build/bench_incr_smoke"
"$build/bench_incr_smoke" > "$incr_out"
echo "wrote $incr_out" >&2

echo "building + running the branch-and-bound harness ..." >&2
rustc --edition 2021 -O --crate-name bench_bnb_smoke \
    "$repo/scripts/bench_bnb_smoke.rs" -L "$build" \
    --extern hetfeas_model="$build/libhetfeas_model.rlib" \
    --extern hetfeas_obs="$build/libhetfeas_obs.rlib" \
    --extern hetfeas_robust="$build/libhetfeas_robust.rlib" \
    --extern hetfeas_partition="$build/libhetfeas_partition.rlib" \
    -o "$build/bench_bnb_smoke"
"$build/bench_bnb_smoke" > "$bnb_out"
echo "wrote $bnb_out" >&2

echo "building + running the supervised-service harness ..." >&2
rustc --edition 2021 -O --crate-type rlib --crate-name hetfeas_service \
    "$repo/crates/service/src/lib.rs" -L "$build" \
    --extern hetfeas_model="$build/libhetfeas_model.rlib" \
    --extern hetfeas_obs="$build/libhetfeas_obs.rlib" \
    --extern hetfeas_robust="$build/libhetfeas_robust.rlib" \
    --extern hetfeas_par="$build/libhetfeas_par.rlib" \
    --extern hetfeas_partition="$build/libhetfeas_partition.rlib" \
    -o "$build/libhetfeas_service.rlib"
rustc --edition 2021 -O --crate-name bench_service_smoke \
    "$repo/scripts/bench_service_smoke.rs" -L "$build" \
    --extern hetfeas_model="$build/libhetfeas_model.rlib" \
    --extern hetfeas_robust="$build/libhetfeas_robust.rlib" \
    --extern hetfeas_service="$build/libhetfeas_service.rlib" \
    -o "$build/bench_service_smoke"
"$build/bench_service_smoke" 2>/dev/null > "$svc_out"
echo "wrote $svc_out" >&2

if [[ "${1:-}" == "--criterion" ]]; then
    echo "running the Criterion groups (needs a reachable registry) ..." >&2
    cargo bench -p hetfeas-bench --bench ffd_scaling -- \
        ffd_scan_vs_indexed_n4096 --sample-size 10
    cargo bench -p hetfeas-bench --bench incremental -- --sample-size 10
fi
