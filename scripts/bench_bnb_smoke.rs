//! Smoke benchmark for the branch-and-bound exact solver — compiled by
//! `scripts/bench_smoke.sh` with plain `rustc` against the workspace
//! rlibs (no Criterion, no external crates), so it runs in sandboxed CI
//! and emits `BENCH_bnb.json`:
//!
//! * `grid` — a fixed set of refutation/packing instances, each solved by
//!   the B&B (`ExactSolver`) and by the preserved plain-DFS baseline
//!   (`exact_partition_dfs`) under the same node budget. Per row: the
//!   verdict each side reached, the B&B's explored node count (from the
//!   `bnb.nodes` counter) and its nodes/sec throughput.
//! * `summary` — `bnb_solved` / `dfs_solved`: how many rows each side
//!   decided within budget. The `scripts/ci.sh` gate reads `bnb_solved`
//!   and fails if a fresh run decides fewer rows than the committed
//!   baseline — capability, not wall-clock, so the gate is stable on
//!   noisy shared runners. Throughput numbers are trajectory data only.
//! * `workers` — wall-clock on the headline n=50/m=8 gate instance at 1
//!   vs 4 workers, with `host_cpus`. Reported, never gated: the sandbox
//!   host has a single CPU.

use hetfeas_model::{Platform, TaskSet};
use hetfeas_obs::MemorySink;
use hetfeas_partition::metrics as pm;
use hetfeas_partition::{exact_partition_dfs, EdfAdmission, ExactOutcome, ExactSolver};
use hetfeas_robust::Gas;
use std::time::Instant;

use hetfeas_model::Augmentation;

struct Row {
    name: &'static str,
    tasks: TaskSet,
    platform: Platform,
    node_budget: u64,
}

fn grid() -> Vec<Row> {
    let mut rows = Vec::new();

    // Identical-utilization refutation: 13 copies of u = 0.334 on six unit
    // machines. The classic DFS blowup; collapses under the visited filter.
    rows.push(Row {
        name: "identical-util-13x6",
        tasks: TaskSet::from_pairs(vec![(334u64, 1000u64); 13]).unwrap(),
        platform: Platform::identical(6).unwrap(),
        node_budget: 2_000_000,
    });

    // The acceptance-gate instance: 17 heavies + 33 light tasks, n = 50 on
    // eight unit machines. Infeasible by counting over the heavies alone;
    // the light tail buries that structure for the plain DFS.
    let mut pairs: Vec<(u64, u64)> = vec![(334, 1000); 17];
    pairs.extend(std::iter::repeat((5u64, 100u64)).take(33));
    rows.push(Row {
        name: "gate-n50-m8",
        tasks: TaskSet::from_pairs(pairs).unwrap(),
        platform: Platform::identical(8).unwrap(),
        node_budget: 2_000_000,
    });

    // Pairwise-distinct utilizations in (0.45, 0.5): no state collapse, so
    // this row exercises raw node throughput rather than pruning. Both
    // sides are expected to exhaust the (smaller) budget.
    rows.push(Row {
        name: "distinct-util-21x10",
        tasks: TaskSet::from_pairs((0..21u64).map(|i| (451 + i, 1000))).unwrap(),
        platform: Platform::identical(10).unwrap(),
        node_budget: 400_000,
    });

    // A feasible perfect packing (eight machines, each exactly filled by a
    // 0.42/0.30/0.28 triple) that first-fit misses: the search must find
    // the witness, not just refute.
    let mut triples = Vec::new();
    for _ in 0..8 {
        triples.extend_from_slice(&[(42u64, 100u64), (30, 100), (28, 100)]);
    }
    rows.push(Row {
        name: "feasible-triples-24x8",
        tasks: TaskSet::from_pairs(triples).unwrap(),
        platform: Platform::identical(8).unwrap(),
        node_budget: 2_000_000,
    });

    rows
}

fn verdict(out: &ExactOutcome) -> &'static str {
    match out {
        ExactOutcome::Feasible(_) => "feasible",
        ExactOutcome::Infeasible => "infeasible",
        ExactOutcome::Unknown => "unknown",
    }
}

fn main() {
    let host_cpus = std::thread::available_parallelism().map_or(1, |c| c.get());
    let rows = grid();
    let mut json_rows = Vec::new();
    let mut bnb_solved = 0usize;
    let mut dfs_solved = 0usize;

    for row in &rows {
        // B&B side, instrumented.
        let sink = MemorySink::new();
        let started = Instant::now();
        let bnb = ExactSolver::new(&row.tasks, &row.platform, &EdfAdmission)
            .node_budget(row.node_budget)
            .solve_with(&mut Gas::unlimited(), &sink);
        let bnb_secs = started.elapsed().as_secs_f64();
        let nodes = sink.counter(pm::BNB_NODES);
        let nps = if bnb_secs > 0.0 {
            nodes as f64 / bnb_secs
        } else {
            0.0
        };

        // Plain-DFS baseline, same node budget.
        let started = Instant::now();
        let dfs = exact_partition_dfs(
            &row.tasks,
            &row.platform,
            Augmentation::NONE,
            &EdfAdmission,
            row.node_budget,
        );
        let dfs_secs = started.elapsed().as_secs_f64();

        if bnb.is_decided() {
            bnb_solved += 1;
        }
        if dfs.is_decided() {
            dfs_solved += 1;
        }
        assert!(
            !(bnb.is_decided() && dfs.is_decided() && bnb.is_feasible() != dfs.is_feasible()),
            "{}: B&B and DFS disagree",
            row.name
        );

        eprintln!(
            "{}: bnb {} ({} nodes, {:.1} ms, {:.0} nodes/s) | dfs {} ({:.1} ms)",
            row.name,
            verdict(&bnb),
            nodes,
            bnb_secs * 1e3,
            nps,
            verdict(&dfs),
            dfs_secs * 1e3,
        );
        json_rows.push(format!(
            "    {{ \"name\": \"{}\", \"n\": {}, \"m\": {}, \"node_budget\": {},\n      \
             \"bnb_verdict\": \"{}\", \"bnb_nodes\": {}, \"bnb_secs\": {:.4}, \
             \"bnb_nodes_per_sec\": {:.0},\n      \
             \"dfs_verdict\": \"{}\", \"dfs_secs\": {:.4} }}",
            row.name,
            row.tasks.len(),
            row.platform.len(),
            row.node_budget,
            verdict(&bnb),
            nodes,
            bnb_secs,
            nps,
            verdict(&dfs),
            dfs_secs,
        ));
    }

    // Worker scaling on the gate instance — report-only.
    let gate = &rows[1];
    let time_with = |workers: usize| {
        let started = Instant::now();
        let out = ExactSolver::new(&gate.tasks, &gate.platform, &EdfAdmission)
            .node_budget(gate.node_budget)
            .workers(workers)
            .solve();
        (started.elapsed().as_secs_f64(), out)
    };
    let (secs_w1, out_w1) = time_with(1);
    let (secs_w4, out_w4) = time_with(4);
    assert_eq!(out_w1, out_w4, "worker count changed the gate outcome");
    let speedup = if secs_w4 > 0.0 { secs_w1 / secs_w4 } else { 1.0 };
    eprintln!(
        "workers on {}: 1 -> {:.1} ms, 4 -> {:.1} ms ({:.2}x, {} cpus)",
        gate.name,
        secs_w1 * 1e3,
        secs_w4 * 1e3,
        speedup,
        host_cpus
    );

    println!("{{");
    println!("  \"bench\": \"bnb_exact_solver\",");
    println!("  \"admission\": \"EDF\",");
    println!("  \"host_cpus\": {host_cpus},");
    println!("  \"grid\": [");
    println!("{}", json_rows.join(",\n"));
    println!("  ],");
    println!(
        "  \"summary\": {{ \"grid_size\": {}, \"bnb_solved\": {bnb_solved}, \
         \"dfs_solved\": {dfs_solved} }},",
        rows.len()
    );
    println!(
        "  \"workers\": {{ \"instance\": \"{}\", \"secs_w1\": {:.4}, \"secs_w4\": {:.4}, \
         \"worker_speedup\": {:.2} }}",
        gate.name, secs_w1, secs_w4, speedup
    );
    println!("}}");
}
