//! Smoke benchmark for the incremental admission engine — the offline
//! companion to `crates/bench/benches/incremental.rs`. Compiled by
//! `scripts/bench_smoke.sh` with plain `rustc` against the workspace rlibs
//! (no Criterion, no external crates), so it runs in sandboxed CI and
//! emits `BENCH_incremental.json`:
//!
//! * `streaming` — a synthesized million-op binary trace replayed through
//!   the pull-based [`replay_stream`] path, with the trace size on disk,
//!   the replay throughput and the process peak RSS (`VmHWM`). This
//!   section runs FIRST so the high-water mark reflects the streaming
//!   replay, not the later 4096×1024 churn engine; the harness itself
//!   asserts the ceiling (`scripts/ci.sh` gates `peak_rss_bytes` again);
//! * `single_thread` — steady-state churn ops/sec at n = 4096, m = 1024
//!   on the [`IncrementalEngine`] vs the honest from-scratch baseline (a
//!   full [`FirstFitEngine`] batch re-run after every mutation). The
//!   baseline op count is *scaled from a probe* of its measured per-op
//!   cost, so the ratio (`speedup` — the `scripts/ci.sh` gate reads this)
//!   is averaged over a fixed wall-clock budget instead of a fixed 64 ops;
//! * `compaction` — the amortized cost of incremental journal compaction:
//!   full sliced compactions driven at a fixed op cadence over a churned
//!   [`DurableEngine`], reported as ns per journaled op;
//! * `scaling` — independent instances sharded across OS threads
//!   (`std::thread::scope`, 1 vs 8 workers). Reported with `host_cpus`
//!   because the ratio is only meaningful on a multicore host; the CI gate
//!   checks it conditionally.
//!
//! Instances mirror `scripts/bench_ffd_smoke.rs`: uniform-random integer
//! speeds in 1..=8, UUniFast utilizations (capped at 0.95 per task),
//! periods from the standard menu.

use hetfeas_experiments::{combine_digests, replay_stream};
use hetfeas_model::{Augmentation, OpStream, Platform, Task, TaskSet, TraceWriter};
use hetfeas_obs::MemorySink;
use hetfeas_partition::{
    DurableEngine, DurableOptions, EdfAdmission, FirstFitEngine, IncrementalEngine,
    RmsLlAdmission, TaskId,
};
use hetfeas_robust::metrics as rmetrics;
use hetfeas_robust::{Gas, MemStorage};
use hetfeas_workload::{synth_platform, SynthSpec, TraceSynth};
use std::time::Instant;

/// Hard ceiling for the streaming replay's peak RSS: a million-op trace is
/// ~5 MB on disk and the replay holds one engine plus one decode frame, so
/// 128 MiB is an order of magnitude of slack — a materialized replay blows
/// straight through it.
const STREAM_RSS_CEILING: u64 = 128 << 20;

/// xorshift64* — deterministic, dependency-free.
struct Rng(u64);

impl Rng {
    fn next_u64(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniform in (0, 1).
    fn uniform(&mut self) -> f64 {
        ((self.next_u64() >> 11) as f64 + 1.0) / (1u64 << 53) as f64
    }
}

/// UUniFast (Bini & Buttazzo) with a per-task cap.
fn uunifast_capped(rng: &mut Rng, n: usize, total: f64, cap: f64) -> Vec<f64> {
    let mut utils = Vec::with_capacity(n);
    let mut sum = total;
    for i in 0..n {
        let remaining = (n - i - 1) as f64;
        let next = if remaining > 0.0 {
            sum * rng.uniform().powf(1.0 / remaining)
        } else {
            0.0
        };
        utils.push((sum - next).clamp(1e-4, cap));
        sum = next;
    }
    utils
}

fn instance(n: usize, m: usize, u_norm: f64, seed: u64) -> (Vec<Task>, Platform) {
    let mut rng = Rng(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1);
    let speeds: Vec<u64> = (0..m).map(|_| 1 + rng.next_u64() % 8).collect();
    let total_speed: u64 = speeds.iter().sum();
    let target = (u_norm * total_speed as f64).min(0.90 * n as f64);
    let periods = [100u64, 200, 250, 400, 500, 1000];
    let tasks: Vec<Task> = uunifast_capped(&mut rng, n, target, 0.95)
        .into_iter()
        .map(|u| {
            let p = periods[(rng.next_u64() % periods.len() as u64) as usize];
            Task::implicit(((u * p as f64).round() as u64).max(1), p).expect("c ≥ 1")
        })
        .collect();
    (tasks, Platform::from_int_speeds(speeds).expect("m ≥ 1"))
}

/// One unit of scaling work: build an engine over `tasks`, then churn it.
fn run_instance(tasks: &[Task], platform: &Platform, churn: usize, seed: u64) -> u64 {
    let mut eng = IncrementalEngine::new(EdfAdmission, platform, Augmentation::NONE);
    let mut live: Vec<TaskId> = Vec::new();
    for &t in tasks {
        if let Some(id) = eng.add(t).id() {
            live.push(id);
        }
    }
    let mut rng = Rng(seed | 1);
    let mut fresh = Rng(seed.wrapping_mul(31) | 1);
    for i in 0..churn {
        if i % 2 == 0 && !live.is_empty() {
            let victim = live.swap_remove((rng.next_u64() % live.len() as u64) as usize);
            eng.remove(victim);
        } else {
            let (extra, _) = instance(1, 1, 0.0, fresh.next_u64());
            if let Some(id) = eng.add(extra[0]).id() {
                live.push(id);
            }
        }
    }
    eng.len() as u64
}

/// Process peak RSS from `/proc/self/status` (`VmHWM`, kB → bytes); 0 when
/// unreadable (non-Linux hosts report instead of gate).
fn peak_rss_bytes() -> u64 {
    let Ok(status) = std::fs::read_to_string("/proc/self/status") else {
        return 0;
    };
    for line in status.lines() {
        if let Some(rest) = line.strip_prefix("VmHWM:") {
            let kb: u64 = rest
                .trim()
                .trim_end_matches("kB")
                .trim()
                .parse()
                .unwrap_or(0);
            return kb * 1024;
        }
    }
    0
}

/// The from-scratch churn protocol: `churn` alternating remove/re-add ops,
/// each followed by a full batch first-fit re-run. Returns wall seconds.
fn run_from_scratch(tasks: &[Task], platform: &Platform, churn: usize) -> f64 {
    let mut ff = FirstFitEngine::new(EdfAdmission);
    let mut live_tasks: Vec<Task> = tasks.to_vec();
    let mut rng = Rng(99);
    let mut spare: Vec<Task> = Vec::new();
    let started = Instant::now();
    for i in 0..churn {
        if i % 2 == 0 && !live_tasks.is_empty() {
            let pos = (rng.next_u64() % live_tasks.len() as u64) as usize;
            spare.push(live_tasks.swap_remove(pos));
        } else if let Some(t) = spare.pop() {
            live_tasks.push(t);
        }
        let ts: TaskSet = live_tasks.iter().copied().collect();
        std::hint::black_box(ff.run(&ts, platform, Augmentation::NONE));
    }
    started.elapsed().as_secs_f64()
}

fn main() {
    // ---- streaming: synthesize a million-op binary trace to disk, then
    // replay it through the pull-based stream path. Runs FIRST so VmHWM
    // is the streaming replay's high-water mark.
    let stream_ops_target = 1u64 << 20;
    let spec = SynthSpec {
        seed: 42,
        ops_per_instance: stream_ops_target,
        instances: 1,
        machines: 8,
        ..SynthSpec::default()
    };
    let trace_path = std::env::temp_dir().join(format!(
        "hetfeas_bench_stream_{}.hbt",
        std::process::id()
    ));
    let started = Instant::now();
    {
        let file = std::fs::File::create(&trace_path).expect("create trace file");
        let mut writer = TraceWriter::new(std::io::BufWriter::with_capacity(1 << 20, file))
            .expect("trace header");
        let platform = synth_platform(&spec, 0);
        writer.begin_instance("bench-stream", &platform).expect("begin");
        let mut synth = TraceSynth::new(&spec, 0);
        while let Some(op) = synth.next_op() {
            writer.op(&op).expect("op");
        }
        writer.end_instance().expect("end");
        writer.finish().expect("finish");
    }
    let synth_secs = started.elapsed().as_secs_f64();
    let trace_bytes = std::fs::metadata(&trace_path).expect("trace stat").len();

    let started = Instant::now();
    let file = std::fs::File::open(&trace_path).expect("open trace");
    let mut stream =
        OpStream::new(std::io::BufReader::with_capacity(1 << 20, file)).expect("trace header");
    let summaries = replay_stream(
        &mut stream,
        EdfAdmission,
        Augmentation::NONE,
        &mut Gas::unlimited(),
        &(),
    )
    .expect("streaming replay");
    let stream_secs = started.elapsed().as_secs_f64();
    let _ = std::fs::remove_file(&trace_path);
    let stream_ops: u64 = summaries.iter().map(|s| s.stats.ops).sum();
    assert_eq!(stream_ops, stream_ops_target, "synthesizer op count");
    let stream_digest = combine_digests(summaries.iter().map(|s| s.digest));
    let stream_ops_per_sec = stream_ops as f64 / stream_secs;
    let peak_rss = peak_rss_bytes();
    eprintln!(
        "streaming: {stream_ops} ops synthesized in {:.1} ms ({} bytes), replayed in {:.1} ms \
         ({:.0} ops/s, digest {stream_digest:08x}, peak RSS {} kB)",
        synth_secs * 1e3,
        trace_bytes,
        stream_secs * 1e3,
        stream_ops_per_sec,
        peak_rss / 1024
    );
    if peak_rss > 0 {
        assert!(
            peak_rss < STREAM_RSS_CEILING,
            "streaming replay peak RSS {peak_rss} exceeds the {STREAM_RSS_CEILING} ceiling — \
             the bounded-memory property regressed"
        );
    }

    // ---- single-thread: incremental vs from-scratch churn at 4096×1024.
    let (n, m) = (4096usize, 1024usize);
    let (tasks, platform) = instance(n, m, 0.6, 7);

    // Incremental: untimed build-up, then timed churn.
    let mut eng = IncrementalEngine::new(EdfAdmission, &platform, Augmentation::NONE);
    let mut live: Vec<TaskId> = Vec::new();
    for &t in &tasks {
        if let Some(id) = eng.add(t).id() {
            live.push(id);
        }
    }
    let incr_churn = 2048usize;
    let mut rng = Rng(99);
    let mut spare: Vec<Task> = Vec::new();
    let started = Instant::now();
    for i in 0..incr_churn {
        if i % 2 == 0 && !live.is_empty() {
            let pos = (rng.next_u64() % live.len() as u64) as usize;
            let victim = live.swap_remove(pos);
            if let Some(t) = eng.remove(victim) {
                spare.push(t);
            }
        } else if let Some(t) = spare.pop() {
            if let Some(id) = eng.add(t).id() {
                live.push(id);
            }
        }
    }
    let incr_secs = started.elapsed().as_secs_f64();
    let incr_ops_per_sec = incr_churn as f64 / incr_secs;
    eprintln!(
        "incremental: {incr_churn} churn ops in {:.1} ms ({:.0} ops/s, {} live, divergence {})",
        incr_secs * 1e3,
        incr_ops_per_sec,
        eng.len(),
        eng.divergence()
    );

    // From-scratch baseline: same churn protocol, full batch re-run per
    // op. A fixed 64-op run is dominated by cache warm-up and timer
    // granularity on fast hosts, so probe the per-op cost first and scale
    // the measured run to a ~0.75 s wall budget (clamped to 64..=4096).
    let probe_ops = 8usize;
    let probe_secs = run_from_scratch(&tasks, &platform, probe_ops);
    let per_op = probe_secs / probe_ops as f64;
    let scratch_churn = ((0.75 / per_op.max(1e-9)) as usize).clamp(64, 4096);
    let scratch_secs = run_from_scratch(&tasks, &platform, scratch_churn);
    let scratch_ops_per_sec = scratch_churn as f64 / scratch_secs;
    eprintln!(
        "from-scratch: {scratch_churn} churn ops in {:.1} ms ({:.0} ops/s; probe {:.2} ms/op)",
        scratch_secs * 1e3,
        scratch_ops_per_sec,
        per_op * 1e3
    );
    let speedup = incr_ops_per_sec / scratch_ops_per_sec;
    eprintln!("single-thread incremental vs from-scratch: {speedup:.1}x");

    // Cross-check on RMS-LL too (cheap, not part of the gate): the engine
    // must survive the same protocol under the other indexed admission.
    let (small_tasks, small_platform) = instance(512, 128, 0.5, 11);
    let mut rms = IncrementalEngine::new(RmsLlAdmission, &small_platform, Augmentation::NONE);
    let mut rms_live = Vec::new();
    for &t in &small_tasks {
        if let Some(id) = rms.add(t).id() {
            rms_live.push(id);
        }
    }
    for id in rms_live {
        rms.remove(id);
    }
    assert!(rms.is_empty(), "RMS-LL engine must drain cleanly");

    // ---- compaction: amortized cost of incremental journal compaction.
    // Churn a journaled engine for `cadence` ops, then drive one full
    // sliced compaction; repeat. Amortized ns/op = compaction wall time
    // over the ops each compaction covers — the price an op stream pays
    // for keeping the journal bounded.
    let (ctasks, cplatform) = instance(512, 64, 0.6, 21);
    let sink = MemorySink::new();
    let mem = MemStorage::new();
    let opts = DurableOptions {
        repack_after: 0,
        compact_every: 0, // compactions driven manually below
        slice_bytes: 4096,
        ..DurableOptions::default()
    };
    let mut gas = Gas::unlimited();
    let mut durable = DurableEngine::create(
        EdfAdmission,
        &cplatform,
        Augmentation::NONE,
        "edf",
        opts,
        Box::new(mem.clone()),
        &mut gas,
        &sink,
    )
    .expect("create journaled engine");
    let mut ids: Vec<TaskId> = Vec::new();
    for &t in &ctasks {
        if let Some(id) = durable
            .add(t, &mut gas, &sink)
            .expect("journaled add")
            .id()
        {
            ids.push(id);
        }
    }
    let cadence = 1024u64;
    let rounds = 4u32;
    let mut rng = Rng(7);
    let mut fresh = Rng(77);
    let mut compact_secs_total = 0.0f64;
    for _ in 0..rounds {
        for i in 0..cadence {
            if i % 2 == 0 && !ids.is_empty() {
                let pos = (rng.next_u64() % ids.len() as u64) as usize;
                let victim = ids.swap_remove(pos);
                durable
                    .remove(victim, &mut gas, &sink)
                    .expect("journaled remove");
            } else {
                let (extra, _) = instance(1, 1, 0.0, fresh.next_u64());
                if let Some(id) = durable
                    .add(extra[0], &mut gas, &sink)
                    .expect("journaled add")
                    .id()
                {
                    ids.push(id);
                }
            }
        }
        let started = Instant::now();
        durable.compact(&mut gas, &sink).expect("sliced compaction");
        compact_secs_total += started.elapsed().as_secs_f64();
    }
    let compaction_amortized_ns_per_op =
        compact_secs_total * 1e9 / (rounds as u64 * cadence) as f64;
    let compact_slices = sink.counter(rmetrics::JOURNAL_COMPACT_SLICES);
    let bytes_reclaimed = sink.counter(rmetrics::JOURNAL_BYTES_RECLAIMED);
    eprintln!(
        "compaction: {rounds} sliced compactions over {} ops ({compact_slices} slices, \
         {bytes_reclaimed} bytes reclaimed) — {compaction_amortized_ns_per_op:.0} ns/op amortized",
        rounds as u64 * cadence
    );
    assert!(compact_slices >= rounds as u64, "each compaction slices at least once");
    assert!(bytes_reclaimed > 0, "churned journals must shrink");

    // ---- scaling: independent instances across OS threads.
    let instances = 64usize;
    let (sn, sm, churn) = (512usize, 128usize, 512usize);
    let work: Vec<(Vec<Task>, Platform)> = (0..instances)
        .map(|i| instance(sn, sm, 0.6, 1000 + i as u64))
        .collect();
    let run_all = |workers: usize| -> f64 {
        let started = Instant::now();
        let chunk = instances.div_ceil(workers);
        std::thread::scope(|scope| {
            for shard in work.chunks(chunk) {
                scope.spawn(move || {
                    for (i, (tasks, platform)) in shard.iter().enumerate() {
                        std::hint::black_box(run_instance(tasks, platform, churn, i as u64));
                    }
                });
            }
        });
        started.elapsed().as_secs_f64()
    };
    let host_cpus = std::thread::available_parallelism().map_or(1, |p| p.get());
    let secs_w1 = run_all(1);
    let (workers_hi, secs_hi) = (8usize, run_all(8));
    let scaling = secs_w1 / secs_hi;
    eprintln!(
        "scaling: {instances} instances, 1 worker {:.1} ms vs {workers_hi} workers {:.1} ms \
         ({scaling:.2}x on {host_cpus} host cpus)",
        secs_w1 * 1e3,
        secs_hi * 1e3
    );

    println!(
        "{{\n  \"bench\": \"incremental_vs_from_scratch\",\n  \"admission\": \"EDF\",\n  \
         \"host_cpus\": {host_cpus},\n  \"streaming\": {{\n    \
         \"ops\": {stream_ops}, \"trace_bytes\": {trace_bytes},\n    \
         \"synth_secs\": {synth_secs:.3}, \"replay_secs\": {stream_secs:.3},\n    \
         \"replay_ops_per_sec\": {stream_ops_per_sec:.0},\n    \
         \"peak_rss_bytes\": {peak_rss},\n    \
         \"digest\": \"{stream_digest:08x}\"\n  }},\n  \"single_thread\": {{\n    \
         \"n\": {n}, \"m\": {m},\n    \
         \"incremental_churn_ops\": {incr_churn}, \"from_scratch_churn_ops\": {scratch_churn},\n    \
         \"incremental_ops_per_sec\": {incr_ops_per_sec:.0},\n    \
         \"from_scratch_ops_per_sec\": {scratch_ops_per_sec:.1},\n    \
         \"speedup\": {speedup:.1}\n  }},\n  \"compaction\": {{\n    \
         \"cadence_ops\": {cadence}, \"rounds\": {rounds},\n    \
         \"compact_slices\": {compact_slices}, \"bytes_reclaimed\": {bytes_reclaimed},\n    \
         \"compaction_amortized_ns_per_op\": {compaction_amortized_ns_per_op:.0}\n  }},\n  \
         \"scaling\": {{\n    \
         \"instances\": {instances}, \"n\": {sn}, \"m\": {sm}, \"churn\": {churn},\n    \
         \"workers_lo\": 1, \"workers_hi\": {workers_hi},\n    \
         \"secs_lo\": {secs_w1:.3}, \"secs_hi\": {secs_hi:.3},\n    \
         \"worker_speedup\": {scaling:.2}\n  }}\n}}"
    );
}
