//! Smoke benchmark for the incremental admission engine — the offline
//! companion to `crates/bench/benches/incremental.rs`. Compiled by
//! `scripts/bench_smoke.sh` with plain `rustc` against the workspace rlibs
//! (no Criterion, no external crates), so it runs in sandboxed CI and
//! emits `BENCH_incremental.json`:
//!
//! * `single_thread` — steady-state churn ops/sec at n = 4096, m = 1024
//!   on the [`IncrementalEngine`] vs the honest from-scratch baseline (a
//!   full [`FirstFitEngine`] batch re-run after every mutation), plus
//!   their ratio (`speedup` — the `scripts/ci.sh` gate reads this);
//! * `scaling` — independent instances sharded across OS threads
//!   (`std::thread::scope`, 1 vs 8 workers). Reported with `host_cpus`
//!   because the ratio is only meaningful on a multicore host; the CI gate
//!   checks it conditionally.
//!
//! Instances mirror `scripts/bench_ffd_smoke.rs`: uniform-random integer
//! speeds in 1..=8, UUniFast utilizations (capped at 0.95 per task),
//! periods from the standard menu.

use hetfeas_model::{Augmentation, Platform, Task, TaskSet};
use hetfeas_partition::{EdfAdmission, FirstFitEngine, IncrementalEngine, RmsLlAdmission, TaskId};
use std::time::Instant;

/// xorshift64* — deterministic, dependency-free.
struct Rng(u64);

impl Rng {
    fn next_u64(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniform in (0, 1).
    fn uniform(&mut self) -> f64 {
        ((self.next_u64() >> 11) as f64 + 1.0) / (1u64 << 53) as f64
    }
}

/// UUniFast (Bini & Buttazzo) with a per-task cap.
fn uunifast_capped(rng: &mut Rng, n: usize, total: f64, cap: f64) -> Vec<f64> {
    let mut utils = Vec::with_capacity(n);
    let mut sum = total;
    for i in 0..n {
        let remaining = (n - i - 1) as f64;
        let next = if remaining > 0.0 {
            sum * rng.uniform().powf(1.0 / remaining)
        } else {
            0.0
        };
        utils.push((sum - next).clamp(1e-4, cap));
        sum = next;
    }
    utils
}

fn instance(n: usize, m: usize, u_norm: f64, seed: u64) -> (Vec<Task>, Platform) {
    let mut rng = Rng(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1);
    let speeds: Vec<u64> = (0..m).map(|_| 1 + rng.next_u64() % 8).collect();
    let total_speed: u64 = speeds.iter().sum();
    let target = (u_norm * total_speed as f64).min(0.90 * n as f64);
    let periods = [100u64, 200, 250, 400, 500, 1000];
    let tasks: Vec<Task> = uunifast_capped(&mut rng, n, target, 0.95)
        .into_iter()
        .map(|u| {
            let p = periods[(rng.next_u64() % periods.len() as u64) as usize];
            Task::implicit(((u * p as f64).round() as u64).max(1), p).expect("c ≥ 1")
        })
        .collect();
    (tasks, Platform::from_int_speeds(speeds).expect("m ≥ 1"))
}

/// One unit of scaling work: build an engine over `tasks`, then churn it.
fn run_instance(tasks: &[Task], platform: &Platform, churn: usize, seed: u64) -> u64 {
    let mut eng = IncrementalEngine::new(EdfAdmission, platform, Augmentation::NONE);
    let mut live: Vec<TaskId> = Vec::new();
    for &t in tasks {
        if let Some(id) = eng.add(t).id() {
            live.push(id);
        }
    }
    let mut rng = Rng(seed | 1);
    let mut fresh = Rng(seed.wrapping_mul(31) | 1);
    for i in 0..churn {
        if i % 2 == 0 && !live.is_empty() {
            let victim = live.swap_remove((rng.next_u64() % live.len() as u64) as usize);
            eng.remove(victim);
        } else {
            let (extra, _) = instance(1, 1, 0.0, fresh.next_u64());
            if let Some(id) = eng.add(extra[0]).id() {
                live.push(id);
            }
        }
    }
    eng.len() as u64
}

fn main() {
    // ---- single-thread: incremental vs from-scratch churn at 4096×1024.
    let (n, m) = (4096usize, 1024usize);
    let (tasks, platform) = instance(n, m, 0.6, 7);

    // Incremental: untimed build-up, then timed churn.
    let mut eng = IncrementalEngine::new(EdfAdmission, &platform, Augmentation::NONE);
    let mut live: Vec<TaskId> = Vec::new();
    for &t in &tasks {
        if let Some(id) = eng.add(t).id() {
            live.push(id);
        }
    }
    let incr_churn = 2048usize;
    let mut rng = Rng(99);
    let mut spare: Vec<Task> = Vec::new();
    let started = Instant::now();
    for i in 0..incr_churn {
        if i % 2 == 0 && !live.is_empty() {
            let pos = (rng.next_u64() % live.len() as u64) as usize;
            let victim = live.swap_remove(pos);
            if let Some(t) = eng.remove(victim) {
                spare.push(t);
            }
        } else if let Some(t) = spare.pop() {
            if let Some(id) = eng.add(t).id() {
                live.push(id);
            }
        }
    }
    let incr_secs = started.elapsed().as_secs_f64();
    let incr_ops_per_sec = incr_churn as f64 / incr_secs;
    eprintln!(
        "incremental: {incr_churn} churn ops in {:.1} ms ({:.0} ops/s, {} live, divergence {})",
        incr_secs * 1e3,
        incr_ops_per_sec,
        eng.len(),
        eng.divergence()
    );

    // From-scratch baseline: same churn protocol, full batch re-run per op.
    let mut ff = FirstFitEngine::new(EdfAdmission);
    let mut live_tasks: Vec<Task> = tasks.clone();
    let scratch_churn = 64usize;
    let mut rng = Rng(99);
    let mut spare: Vec<Task> = Vec::new();
    let started = Instant::now();
    for i in 0..scratch_churn {
        if i % 2 == 0 && !live_tasks.is_empty() {
            let pos = (rng.next_u64() % live_tasks.len() as u64) as usize;
            spare.push(live_tasks.swap_remove(pos));
        } else if let Some(t) = spare.pop() {
            live_tasks.push(t);
        }
        let ts: TaskSet = live_tasks.iter().copied().collect();
        std::hint::black_box(ff.run(&ts, &platform, Augmentation::NONE));
    }
    let scratch_secs = started.elapsed().as_secs_f64();
    let scratch_ops_per_sec = scratch_churn as f64 / scratch_secs;
    eprintln!(
        "from-scratch: {scratch_churn} churn ops in {:.1} ms ({:.0} ops/s)",
        scratch_secs * 1e3,
        scratch_ops_per_sec
    );
    let speedup = incr_ops_per_sec / scratch_ops_per_sec;
    eprintln!("single-thread incremental vs from-scratch: {speedup:.1}x");

    // Cross-check on RMS-LL too (cheap, not part of the gate): the engine
    // must survive the same protocol under the other indexed admission.
    let (small_tasks, small_platform) = instance(512, 128, 0.5, 11);
    let mut rms = IncrementalEngine::new(RmsLlAdmission, &small_platform, Augmentation::NONE);
    let mut rms_live = Vec::new();
    for &t in &small_tasks {
        if let Some(id) = rms.add(t).id() {
            rms_live.push(id);
        }
    }
    for id in rms_live {
        rms.remove(id);
    }
    assert!(rms.is_empty(), "RMS-LL engine must drain cleanly");

    // ---- scaling: independent instances across OS threads.
    let instances = 64usize;
    let (sn, sm, churn) = (512usize, 128usize, 512usize);
    let work: Vec<(Vec<Task>, Platform)> = (0..instances)
        .map(|i| instance(sn, sm, 0.6, 1000 + i as u64))
        .collect();
    let run_all = |workers: usize| -> f64 {
        let started = Instant::now();
        let chunk = instances.div_ceil(workers);
        std::thread::scope(|scope| {
            for shard in work.chunks(chunk) {
                scope.spawn(move || {
                    for (i, (tasks, platform)) in shard.iter().enumerate() {
                        std::hint::black_box(run_instance(tasks, platform, churn, i as u64));
                    }
                });
            }
        });
        started.elapsed().as_secs_f64()
    };
    let host_cpus = std::thread::available_parallelism().map_or(1, |p| p.get());
    let secs_w1 = run_all(1);
    let (workers_hi, secs_hi) = (8usize, run_all(8));
    let scaling = secs_w1 / secs_hi;
    eprintln!(
        "scaling: {instances} instances, 1 worker {:.1} ms vs {workers_hi} workers {:.1} ms \
         ({scaling:.2}x on {host_cpus} host cpus)",
        secs_w1 * 1e3,
        secs_hi * 1e3
    );

    println!(
        "{{\n  \"bench\": \"incremental_vs_from_scratch\",\n  \"admission\": \"EDF\",\n  \
         \"host_cpus\": {host_cpus},\n  \"single_thread\": {{\n    \"n\": {n}, \"m\": {m},\n    \
         \"incremental_churn_ops\": {incr_churn}, \"from_scratch_churn_ops\": {scratch_churn},\n    \
         \"incremental_ops_per_sec\": {incr_ops_per_sec:.0},\n    \
         \"from_scratch_ops_per_sec\": {scratch_ops_per_sec:.1},\n    \
         \"speedup\": {speedup:.1}\n  }},\n  \"scaling\": {{\n    \
         \"instances\": {instances}, \"n\": {sn}, \"m\": {sm}, \"churn\": {churn},\n    \
         \"workers_lo\": 1, \"workers_hi\": {workers_hi},\n    \
         \"secs_lo\": {secs_w1:.3}, \"secs_hi\": {secs_hi:.3},\n    \
         \"worker_speedup\": {scaling:.2}\n  }}\n}}"
    );
}
