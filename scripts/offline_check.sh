#!/usr/bin/env bash
# Build and test the whole workspace with plain rustc — no cargo registry
# access. This is the sandboxed-CI fallback: cargo cannot resolve the
# external dev-dependencies (proptest, criterion, rand, …) without a
# network, so we compile the workspace crates as rlibs in dependency order
# against the tiny API-compatible stand-ins in scripts/stubs/ and run every
# unit-test binary plus the integration suites.
#
# Coverage notes vs `cargo test`:
#   * proptest-based suites (tests/prop_*.rs, proptest dev-deps) are
#     skipped — they need the real proptest crate;
#   * rand-backed tests run against the stub generator, so seed streams
#     differ from rand::StdRng (the suites assert properties, not exact
#     draws);
#   * doctests are not run.
set -euo pipefail

repo="$(cd "$(dirname "$0")/.." && pwd)"
build="${OFFLINE_BUILD_DIR:-$(mktemp -d)}"
[[ -n "${OFFLINE_BUILD_DIR:-}" ]] || trap 'rm -rf "$build"' EXIT
opt=(--edition 2021 -O)

lib() { # lib <crate_name> <src> [--extern ...]
    local name="$1" src="$2"
    shift 2
    rustc "${opt[@]}" --crate-type rlib --crate-name "$name" "$src" \
        -L "$build" "$@" -o "$build/lib$name.rlib"
}

testbin() { # testbin <crate_name> <src> [--extern ...]
    local name="$1" src="$2"
    shift 2
    rustc "${opt[@]}" --test --crate-name "${name}_tests" "$src" \
        -L "$build" "$@" -o "$build/${name}_tests"
    echo "--- $name unit tests" >&2
    "$build/${name}_tests" -q
}

echo "building stub crates (rand, crossbeam, parking_lot) ..." >&2
lib rand "$repo/scripts/stubs/rand.rs"
lib crossbeam "$repo/scripts/stubs/crossbeam.rs"
lib parking_lot "$repo/scripts/stubs/parking_lot.rs"

echo "building + testing workspace crates in dependency order ..." >&2
X_MODEL=(--extern hetfeas_model="$build/libhetfeas_model.rlib")
lib hetfeas_model "$repo/crates/model/src/lib.rs"
testbin hetfeas_model "$repo/crates/model/src/lib.rs"

# Binary op-trace format fuzz suite (dependency-free, no proptest).
testbin prop_trace_bin "$repo/crates/model/tests/prop_trace_bin.rs" "${X_MODEL[@]}"

lib hetfeas_obs "$repo/crates/obs/src/lib.rs"
testbin hetfeas_obs "$repo/crates/obs/src/lib.rs"

X_ROBUST=("${X_MODEL[@]}"
    --extern hetfeas_obs="$build/libhetfeas_obs.rlib"
    --extern hetfeas_robust="$build/libhetfeas_robust.rlib")
lib hetfeas_robust "$repo/crates/robust/src/lib.rs" "${X_MODEL[@]}" \
    --extern hetfeas_obs="$build/libhetfeas_obs.rlib"
testbin hetfeas_robust "$repo/crates/robust/src/lib.rs" "${X_MODEL[@]}" \
    --extern hetfeas_obs="$build/libhetfeas_obs.rlib"

lib hetfeas_analysis "$repo/crates/analysis/src/lib.rs" "${X_ROBUST[@]}"
testbin hetfeas_analysis "$repo/crates/analysis/src/lib.rs" "${X_ROBUST[@]}"

lib hetfeas_lp "$repo/crates/lp/src/lib.rs" "${X_ROBUST[@]}"
testbin hetfeas_lp "$repo/crates/lp/src/lib.rs" "${X_ROBUST[@]}"

X_PAR=(--extern crossbeam="$build/libcrossbeam.rlib"
       --extern parking_lot="$build/libparking_lot.rlib")
lib hetfeas_par "$repo/crates/par/src/lib.rs" "${X_PAR[@]}"
testbin hetfeas_par "$repo/crates/par/src/lib.rs" "${X_PAR[@]}"

# Chunking/scoped-map property suite (dependency-free, no proptest).
testbin prop_par "$repo/crates/par/tests/prop_par.rs" "${X_PAR[@]}" \
    --extern hetfeas_par="$build/libhetfeas_par.rlib"

X_PARTITION=("${X_ROBUST[@]}"
    --extern hetfeas_analysis="$build/libhetfeas_analysis.rlib"
    --extern hetfeas_lp="$build/libhetfeas_lp.rlib"
    --extern hetfeas_par="$build/libhetfeas_par.rlib")
lib hetfeas_partition "$repo/crates/partition/src/lib.rs" "${X_PARTITION[@]}"
testbin hetfeas_partition "$repo/crates/partition/src/lib.rs" "${X_PARTITION[@]}"

# The metamorphic suites are dependency-free (no proptest), so they run
# here alongside the unit tests; prop_engine.rs still needs cargo +
# proptest.
testbin prop_metamorphic "$repo/crates/partition/tests/prop_metamorphic.rs" \
    "${X_PARTITION[@]}" \
    --extern hetfeas_partition="$build/libhetfeas_partition.rlib"
testbin prop_incremental "$repo/crates/partition/tests/prop_incremental.rs" \
    "${X_PARTITION[@]}" \
    --extern hetfeas_partition="$build/libhetfeas_partition.rlib"
testbin prop_durable "$repo/crates/partition/tests/prop_durable.rs" \
    "${X_PARTITION[@]}" \
    --extern hetfeas_partition="$build/libhetfeas_partition.rlib"
testbin prop_bnb "$repo/crates/partition/tests/prop_bnb.rs" \
    "${X_PARTITION[@]}" \
    --extern hetfeas_partition="$build/libhetfeas_partition.rlib"

X_SERVICE=("${X_PARTITION[@]}"
    --extern hetfeas_partition="$build/libhetfeas_partition.rlib")
lib hetfeas_service "$repo/crates/service/src/lib.rs" "${X_SERVICE[@]}"
testbin hetfeas_service "$repo/crates/service/src/lib.rs" "${X_SERVICE[@]}"

# Bulkhead-isolation + framing-fuzz + idempotent-retry property suite
# (dependency-free, no proptest).
testbin prop_service "$repo/crates/service/tests/prop_service.rs" \
    "${X_SERVICE[@]}" \
    --extern hetfeas_service="$build/libhetfeas_service.rlib"

# Concurrent TCP front end + retrying client + network-chaos proxy
# property suite (dependency-free, no proptest).
testbin prop_net "$repo/crates/service/tests/prop_net.rs" \
    "${X_SERVICE[@]}" \
    --extern hetfeas_service="$build/libhetfeas_service.rlib"

X_RAND=(--extern rand="$build/librand.rlib")
lib hetfeas_workload "$repo/crates/workload/src/lib.rs" "${X_MODEL[@]}" "${X_RAND[@]}"
testbin hetfeas_workload "$repo/crates/workload/src/lib.rs" "${X_MODEL[@]}" "${X_RAND[@]}"

X_SIM=("${X_ROBUST[@]}" "${X_RAND[@]}"
    --extern hetfeas_partition="$build/libhetfeas_partition.rlib")
lib hetfeas_sim "$repo/crates/sim/src/lib.rs" "${X_SIM[@]}"
testbin hetfeas_sim "$repo/crates/sim/src/lib.rs" "${X_SIM[@]}" \
    --extern hetfeas_analysis="$build/libhetfeas_analysis.rlib" \
    --extern hetfeas_workload="$build/libhetfeas_workload.rlib" \
    --extern hetfeas_lp="$build/libhetfeas_lp.rlib"

X_EXPERIMENTS=("${X_PARTITION[@]}" "${X_RAND[@]}"
    --extern hetfeas_partition="$build/libhetfeas_partition.rlib"
    --extern hetfeas_sim="$build/libhetfeas_sim.rlib"
    --extern hetfeas_workload="$build/libhetfeas_workload.rlib"
    --extern hetfeas_par="$build/libhetfeas_par.rlib")
lib hetfeas_experiments "$repo/crates/experiments/src/lib.rs" "${X_EXPERIMENTS[@]}"
testbin hetfeas_experiments "$repo/crates/experiments/src/lib.rs" "${X_EXPERIMENTS[@]}"

# Checkpoint/resume integration suite (dependency-free, no proptest).
testbin checkpoint_resume "$repo/crates/experiments/tests/checkpoint_resume.rs" \
    "${X_EXPERIMENTS[@]}" \
    --extern hetfeas_experiments="$build/libhetfeas_experiments.rlib"

# Streaming-vs-materialized replay equivalence suite (dependency-free).
testbin prop_stream "$repo/crates/experiments/tests/prop_stream.rs" \
    "${X_EXPERIMENTS[@]}" \
    --extern hetfeas_experiments="$build/libhetfeas_experiments.rlib"

X_FACADE=("${X_EXPERIMENTS[@]}"
    --extern hetfeas_experiments="$build/libhetfeas_experiments.rlib"
    --extern hetfeas_service="$build/libhetfeas_service.rlib")
lib hetfeas "$repo/src/lib.rs" "${X_FACADE[@]}"

echo "building the hetfeas binary ..." >&2
rustc "${opt[@]}" --crate-name hetfeas "$repo/src/bin/hetfeas.rs" \
    -L "$build" --extern hetfeas="$build/libhetfeas.rlib" \
    -o "$build/hetfeas"

echo "building the run-experiments binary ..." >&2
rustc "${opt[@]}" --crate-name run_experiments \
    "$repo/crates/experiments/src/bin/run-experiments.rs" \
    -L "$build" "${X_EXPERIMENTS[@]}" \
    --extern hetfeas_experiments="$build/libhetfeas_experiments.rlib" \
    -o "$build/run-experiments"

echo "building + running integration tests ..." >&2
for t in integration_cli integration_exhaustive integration_ops \
         integration_pipeline integration_robust integration_splitting \
         integration_theorem_edges; do
    CARGO_BIN_EXE_hetfeas="$build/hetfeas" \
        rustc "${opt[@]}" --test --crate-name "$t" "$repo/tests/$t.rs" \
        -L "$build" --extern hetfeas="$build/libhetfeas.rlib" \
        -o "$build/$t"
    echo "--- $t" >&2
    "$build/$t" -q
done

echo "running the fault-injection smoke stage ..." >&2
HETFEAS_BIN="$build/hetfeas" RUN_EXPERIMENTS_BIN="$build/run-experiments" \
    bash "$repo/scripts/fault_smoke.sh"

echo "running the crash-recovery smoke stage ..." >&2
HETFEAS_BIN="$build/hetfeas" bash "$repo/scripts/crash_smoke.sh"

echo "running the chaos smoke stage ..." >&2
HETFEAS_BIN="$build/hetfeas" bash "$repo/scripts/chaos_smoke.sh"

echo "offline check passed" >&2
