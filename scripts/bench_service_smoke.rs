//! Smoke benchmark for the supervised multi-tenant admission service —
//! compiled by `scripts/bench_smoke.sh` with plain `rustc` against the
//! workspace rlibs (no Criterion, no external crates), so it runs in
//! sandboxed CI and emits `BENCH_service.json`:
//!
//! * `pipelined` — sustained admission ops/sec across 8 shards with a
//!   bounded in-flight window per shard (the service's intended load
//!   shape: the front end keeps queues fed, shards batch and coalesce);
//! * `awaited` — one-at-a-time round-trip ops/sec (latency-bound floor;
//!   every op pays a full channel + wakeup round trip);
//! * `batching_speedup` — pipelined over awaited. This is the ratio the
//!   `scripts/ci.sh` gate reads: it is machine-relative (both phases run
//!   on the same host seconds apart), so it holds on noisy 1-CPU runners
//!   where absolute ops/sec would not;
//! * `recovery` — panic every shard once at steady state and time the
//!   supervised restart + journal replay until all digests answer again;
//! * `connections` / `conn_speedup` — awaited round-trip throughput over
//!   the TCP front end with 1 vs 8 simultaneous connections (one tenant
//!   each). On a multi-core host the concurrent accept loop overlaps
//!   shard work across connections; the ratio is gated in `ci.sh` only
//!   when `host_cpus >= 8`.
//!
//! Honest reporting: `host_cpus` and the *effective* worker count are in
//! the JSON. On a 1-CPU host the shards time-slice one core, so
//! cross-shard scaling is not claimed anywhere — only the batching ratio
//! and the recovery wall time are gated trajectory data.

use hetfeas_model::{Augmentation, Platform, Task};
use hetfeas_robust::journal::{MemStorage, Storage};
use hetfeas_service::frame::{read_frame, write_frame};
use hetfeas_service::shard::{Op, Request, Response, TenantSpec};
use hetfeas_service::{serve_tcp, PolicyKind, ServerConfig, Service, ServiceConfig};
use std::io::BufReader;
use std::sync::mpsc::channel;
use std::sync::Arc;
use std::time::{Duration, Instant};

const SHARDS: usize = 8;
const LIVE_CAP: usize = 96;

fn splitmix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = splitmix(self.0);
        self.0
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n.max(1)
    }
}

/// Steady-state op mix: mostly adds, removals once the live set is full,
/// an occasional snapshot. Tasks are small so admission rarely rejects.
fn gen_op(rng: &mut Rng, live: &mut Vec<u64>) -> Op {
    if live.len() >= LIVE_CAP || (rng.below(10) < 2 && !live.is_empty()) {
        let idx = rng.below(live.len() as u64) as usize;
        return Op::Remove(live.swap_remove(idx));
    }
    if rng.below(50) == 0 {
        return Op::Snapshot;
    }
    let wcet = 1 + rng.below(3);
    let period = 50 + rng.below(200);
    Op::Add(Task::implicit(wcet, period).expect("task"))
}

fn open_service(seed: u64) -> (Service, Vec<String>) {
    let mut cfg = ServiceConfig::default();
    cfg.seed = seed;
    let mut svc = Service::new(cfg);
    let mut names = Vec::new();
    for i in 0..SHARDS {
        let store = MemStorage::new();
        let name = format!("b{i}");
        svc.open_tenant(TenantSpec {
            name: name.clone(),
            policy: [PolicyKind::Edf, PolicyKind::RmsLl, PolicyKind::RmsHyp][i % 3],
            platform: Platform::from_int_speeds([1, 2, 3, 4]).expect("platform"),
            alpha: Augmentation::NONE,
            factory: Arc::new(move |_inc| Box::new(store.clone()) as Box<dyn Storage>),
            op_gas: None,
            recover_gas: None,
        })
        .expect("open tenant");
        names.push(name);
    }
    (svc, names)
}

fn main() {
    // The recovery phase injects shard panics on purpose; one line each.
    std::panic::set_hook(Box::new(|info| {
        eprintln!("shard panic contained: {info}");
    }));
    let host_cpus = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let (svc, names) = open_service(0xbe_0c);
    let workers = svc.workers();
    let (tx, rx) = channel::<(u64, Response)>();
    let mut seq = 0u64;
    let mut rngs: Vec<Rng> = (0..SHARDS).map(|i| Rng(0x5eed + i as u64)).collect();
    let mut live: Vec<Vec<u64>> = vec![Vec::new(); SHARDS];

    // Track which shard each in-flight seq belongs to and whether it was
    // an Add, so acks can maintain the live sets.
    let mut inflight_meta: std::collections::HashMap<u64, usize> = std::collections::HashMap::new();

    let record = |shard: usize, resp: &Response, live: &mut [Vec<u64>]| match resp {
        Response::Admitted { id, .. } => live[shard].push(*id),
        Response::Shed { .. } => panic!("bench window overran the queue depth"),
        Response::Quarantined { reason } => panic!("bench shard quarantined: {reason}"),
        _ => {}
    };

    // Warm every shard to steady state (awaited, not timed).
    for shard in 0..SHARDS {
        for _ in 0..LIVE_CAP {
            let op = gen_op(&mut rngs[shard], &mut live[shard]);
            seq += 1;
            svc.submit(seq, &names[shard], Request::Op(op), &tx);
            let (_, resp) = rx.recv_timeout(Duration::from_secs(30)).expect("warm ack");
            record(shard, &resp, &mut live);
        }
    }

    // Phase 1: pipelined. A bounded window of in-flight ops per shard
    // (half the queue depth, so load shedding never triggers) keeps all
    // shards busy at once.
    let window = ServiceConfig::default().queue_depth / 2;
    let pipelined_per_shard = 4_000usize;
    let total_pipelined = pipelined_per_shard * SHARDS;
    let mut sent = vec![0usize; SHARDS];
    let mut acked = 0usize;
    let mut outstanding = vec![0usize; SHARDS];
    let t0 = Instant::now();
    while acked < total_pipelined {
        for shard in 0..SHARDS {
            while sent[shard] < pipelined_per_shard && outstanding[shard] < window {
                let op = gen_op(&mut rngs[shard], &mut live[shard]);
                seq += 1;
                inflight_meta.insert(seq, shard);
                svc.submit(seq, &names[shard], Request::Op(op), &tx);
                sent[shard] += 1;
                outstanding[shard] += 1;
            }
        }
        let (s, resp) = rx
            .recv_timeout(Duration::from_secs(60))
            .expect("pipelined ack");
        let shard = inflight_meta.remove(&s).expect("tracked seq");
        outstanding[shard] -= 1;
        record(shard, &resp, &mut live);
        acked += 1;
        while let Ok((s, resp)) = rx.try_recv() {
            let shard = inflight_meta.remove(&s).expect("tracked seq");
            outstanding[shard] -= 1;
            record(shard, &resp, &mut live);
            acked += 1;
        }
    }
    let pipelined_secs = t0.elapsed().as_secs_f64();
    let pipelined_ops_per_sec = total_pipelined as f64 / pipelined_secs;

    // Phase 2: awaited. One op at a time round-robin — the latency floor.
    let awaited_per_shard = 400usize;
    let total_awaited = awaited_per_shard * SHARDS;
    let t0 = Instant::now();
    for k in 0..total_awaited {
        let shard = k % SHARDS;
        let op = gen_op(&mut rngs[shard], &mut live[shard]);
        seq += 1;
        svc.submit(seq, &names[shard], Request::Op(op), &tx);
        let (_, resp) = rx
            .recv_timeout(Duration::from_secs(30))
            .expect("awaited ack");
        record(shard, &resp, &mut live);
    }
    let awaited_secs = t0.elapsed().as_secs_f64();
    let awaited_ops_per_sec = total_awaited as f64 / awaited_secs;

    // Phase 3: recovery. Panic every shard, then await a digest from
    // each — the elapsed time covers firewall containment, supervised
    // restart (backoff included) and full journal replay.
    let digests_before: Vec<u32> = (0..SHARDS)
        .map(|shard| {
            seq += 1;
            svc.submit(seq, &names[shard], Request::Digest, &tx);
            match rx.recv_timeout(Duration::from_secs(30)).expect("digest").1 {
                Response::Digest { digest, .. } => digest,
                other => panic!("digest expected, got {other:?}"),
            }
        })
        .collect();
    let t0 = Instant::now();
    for shard in 0..SHARDS {
        seq += 1;
        svc.submit(seq, &names[shard], Request::InjectPanic, &tx);
    }
    for _ in 0..SHARDS {
        rx.recv_timeout(Duration::from_secs(30)).expect("panic ack");
    }
    let digests_after: Vec<u32> = (0..SHARDS)
        .map(|shard| {
            seq += 1;
            svc.submit(seq, &names[shard], Request::Digest, &tx);
            match rx.recv_timeout(Duration::from_secs(60)).expect("digest").1 {
                Response::Digest { digest, state, .. } => {
                    assert_eq!(
                        state.as_str(),
                        "running",
                        "shard {shard} must recover, not quarantine"
                    );
                    digest
                }
                other => panic!("digest expected, got {other:?}"),
            }
        })
        .collect();
    let recovery_secs = t0.elapsed().as_secs_f64();
    assert_eq!(
        digests_before, digests_after,
        "recovery must be bit-exact on every shard"
    );

    svc.shutdown();

    // Phase 4: connection concurrency. A fresh service behind the TCP
    // front end; each connection drives its own tenant with awaited
    // round trips, so with N connections the accept loop can overlap N
    // shards' work.
    let conn_ops = 600usize;
    let run_conns = |n: usize| -> f64 {
        let dir = std::env::temp_dir().join(format!(
            "hetfeas-bench-conns-{}-{n}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("bench data dir");
        let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let cfg = ServerConfig {
            data_dir: dir.clone(),
            ..ServerConfig::default()
        };
        let mut svc_cfg = ServiceConfig::default();
        svc_cfg.seed = 0xc0_11;
        let server = std::thread::spawn(move || {
            serve_tcp(listener, Service::new(svc_cfg), &cfg)
        });
        let t0 = Instant::now();
        let clients: Vec<_> = (0..n)
            .map(|i| {
                std::thread::spawn(move || {
                    let mut conn =
                        std::net::TcpStream::connect(addr).expect("connect");
                    conn.set_nodelay(true).expect("nodelay");
                    let mut reader =
                        BufReader::new(conn.try_clone().expect("clone"));
                    let mut ask = |line: String| -> String {
                        write_frame(&mut conn, line.as_bytes()).expect("send");
                        let p = read_frame(&mut reader)
                            .expect("read")
                            .expect("reply");
                        String::from_utf8_lossy(&p).into_owned()
                    };
                    let opened = ask(format!("open c{i} edf 1.0 1,2"));
                    assert!(opened.contains("ok opened"), "{opened}");
                    let mut rng = Rng(0xc0_11 + i as u64);
                    let mut ids: Vec<u64> = Vec::new();
                    for _ in 0..conn_ops {
                        let reply = if ids.len() >= 64 {
                            let idx = rng.below(ids.len() as u64) as usize;
                            ask(format!("remove c{i} {}", ids.swap_remove(idx)))
                        } else {
                            let wcet = 1 + rng.below(3);
                            let period = 50 + rng.below(200);
                            ask(format!("add c{i} {wcet} {period}"))
                        };
                        assert!(reply.contains(" ok "), "{reply}");
                        if let Some(pos) = reply.find("admitted id=") {
                            let tail = &reply[pos + "admitted id=".len()..];
                            let id: u64 = tail
                                .split_whitespace()
                                .next()
                                .and_then(|t| t.parse().ok())
                                .expect("admitted id");
                            ids.push(id);
                        }
                    }
                })
            })
            .collect();
        for c in clients {
            c.join().expect("bench connection");
        }
        let secs = t0.elapsed().as_secs_f64();
        let mut quitter = std::net::TcpStream::connect(addr).expect("quit conn");
        write_frame(&mut quitter, b"quit").expect("quit");
        let _ = server.join().expect("server thread");
        let _ = std::fs::remove_dir_all(&dir);
        (n * conn_ops) as f64 / secs
    };
    let conns1_ops_per_sec = run_conns(1);
    let conns8_ops_per_sec = run_conns(8);
    let conn_speedup = conns8_ops_per_sec / conns1_ops_per_sec;

    let batching_speedup = pipelined_ops_per_sec / awaited_ops_per_sec;
    println!("{{");
    println!("  \"bench\": \"service_supervised_admission\",");
    println!("  \"host_cpus\": {host_cpus},");
    println!("  \"workers\": {workers},");
    println!("  \"shards\": {SHARDS},");
    println!("  \"pipelined\": {{");
    println!("    \"ops\": {total_pipelined}, \"window\": {window},");
    println!(
        "    \"secs\": {:.3}, \"ops_per_sec\": {:.0}",
        pipelined_secs, pipelined_ops_per_sec
    );
    println!("  }},");
    println!("  \"awaited\": {{");
    println!(
        "    \"ops\": {total_awaited}, \"secs\": {:.3}, \"ops_per_sec\": {:.0}",
        awaited_secs, awaited_ops_per_sec
    );
    println!("  }},");
    println!("  \"batching_speedup\": {batching_speedup:.2},");
    println!("  \"connections\": {{");
    println!("    \"ops_per_conn\": {conn_ops},");
    println!(
        "    \"single\": {{ \"conns\": 1, \"ops_per_sec\": {:.0} }},",
        conns1_ops_per_sec
    );
    println!(
        "    \"concurrent\": {{ \"conns\": 8, \"ops_per_sec\": {:.0} }}",
        conns8_ops_per_sec
    );
    println!("  }},");
    println!("  \"conn_speedup\": {conn_speedup:.2},");
    println!("  \"recovery\": {{");
    println!(
        "    \"shards_recovered\": {SHARDS}, \"secs\": {:.3}, \"bit_exact\": true",
        recovery_secs
    );
    println!("  }}");
    println!("}}");
}
