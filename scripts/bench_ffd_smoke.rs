//! Smoke benchmark for the scan-vs-indexed first-fit comparison — the
//! offline companion to `crates/bench/benches/ffd_scaling.rs`'s
//! `ffd_scan_vs_indexed_n4096` group. Compiled by `scripts/bench_smoke.sh`
//! with plain `rustc` against the workspace rlibs (no Criterion, no
//! external crates), so it runs in sandboxed CI and emits `BENCH_ffd.json`
//! with median ns/iter for the linear scan vs the indexed engine.
//!
//! Instances mirror `hetfeas_bench::bench_instance`: uniform-random integer
//! speeds in 1..=8, UUniFast utilizations (capped at 0.95 per task) at
//! normalized utilization 0.9, periods from the standard menu.

use hetfeas_model::{Augmentation, Platform, Task, TaskSet};
use hetfeas_partition::{first_fit, EdfAdmission, FirstFitEngine};
use std::time::Instant;

/// xorshift64* — deterministic, dependency-free.
struct Rng(u64);

impl Rng {
    fn next_u64(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniform in (0, 1).
    fn uniform(&mut self) -> f64 {
        ((self.next_u64() >> 11) as f64 + 1.0) / (1u64 << 53) as f64
    }
}

/// UUniFast (Bini & Buttazzo) with a per-task cap, as in the workload
/// crate's `UUniFastCapped`.
fn uunifast_capped(rng: &mut Rng, n: usize, total: f64, cap: f64) -> Vec<f64> {
    let mut utils = Vec::with_capacity(n);
    let mut sum = total;
    for i in 0..n {
        let remaining = (n - i - 1) as f64;
        let next = if remaining > 0.0 {
            sum * rng.uniform().powf(1.0 / remaining)
        } else {
            0.0
        };
        utils.push((sum - next).clamp(1e-4, cap));
        sum = next;
    }
    utils
}

fn instance(n: usize, m: usize, u_norm: f64, seed: u64) -> (TaskSet, Platform) {
    let mut rng = Rng(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1);
    let speeds: Vec<u64> = (0..m).map(|_| 1 + rng.next_u64() % 8).collect();
    let total_speed: u64 = speeds.iter().sum();
    // Cap the target so n capped tasks can actually carry it.
    let target = (u_norm * total_speed as f64).min(0.90 * n as f64);
    let periods = [100u64, 200, 250, 400, 500, 1000];
    let tasks: TaskSet = uunifast_capped(&mut rng, n, target, 0.95)
        .into_iter()
        .map(|u| {
            let p = periods[(rng.next_u64() % periods.len() as u64) as usize];
            Task::implicit(((u * p as f64).round() as u64).max(1), p).expect("c ≥ 1")
        })
        .collect();
    (tasks, Platform::from_int_speeds(speeds).expect("m ≥ 1"))
}

fn median_ns<F: FnMut() -> u128>(reps: usize, mut run: F) -> f64 {
    let mut times: Vec<u128> = (0..reps).map(|_| run()).collect();
    times.sort_unstable();
    times[times.len() / 2] as f64
}

fn main() {
    let n = 4096usize;
    let reps = 10usize;
    let ms = [64usize, 256, 1024, 4096];
    let mut rows = Vec::new();

    for (i, &m) in ms.iter().enumerate() {
        let (tasks, platform) = instance(n, m, 0.9, 45 + i as u64);
        let mut engine = FirstFitEngine::new(EdfAdmission);

        // Equivalence sanity before timing anything.
        let reference = first_fit(&tasks, &platform, Augmentation::NONE, &EdfAdmission);
        assert_eq!(
            engine.run(&tasks, &platform, Augmentation::NONE),
            reference,
            "engine diverged from reference at m = {m}"
        );

        let scan_ns = median_ns(reps, || {
            let start = Instant::now();
            std::hint::black_box(first_fit(
                &tasks,
                &platform,
                Augmentation::NONE,
                &EdfAdmission,
            ));
            start.elapsed().as_nanos()
        });
        let indexed_ns = median_ns(reps, || {
            let start = Instant::now();
            std::hint::black_box(engine.run(&tasks, &platform, Augmentation::NONE));
            start.elapsed().as_nanos()
        });
        eprintln!(
            "m = {m:4}: scan {:.1} µs, indexed {:.1} µs, speedup {:.2}x",
            scan_ns / 1e3,
            indexed_ns / 1e3,
            scan_ns / indexed_ns
        );
        rows.push((m, scan_ns, indexed_ns));
    }

    let entries: Vec<String> = rows
        .iter()
        .map(|&(m, scan, indexed)| {
            format!(
                "    {{\"m\": {m}, \"scan_ns\": {scan:.0}, \"indexed_ns\": {indexed:.0}, \
                 \"speedup\": {:.2}}}",
                scan / indexed
            )
        })
        .collect();
    println!(
        "{{\n  \"bench\": \"ffd_scan_vs_indexed\",\n  \"n\": {n},\n  \"admission\": \"EDF\",\n  \
         \"reps\": {reps},\n  \"unit\": \"ns/iter (median)\",\n  \"results\": [\n{}\n  ]\n}}",
        entries.join(",\n")
    );

    // The ISSUE's acceptance gate: indexed time at m = 1024 < 2× its time
    // at m = 64 (the linear scan is ≳ 8× there).
    let at = |m: usize| rows.iter().find(|r| r.0 == m).expect("swept");
    let ratio = at(1024).2 / at(64).2;
    eprintln!("indexed m=1024 / m=64 time ratio: {ratio:.2} (gate: < 2)");
    assert!(
        ratio < 2.0,
        "indexed engine is not sub-linear in m: ratio {ratio:.2}"
    );
}
