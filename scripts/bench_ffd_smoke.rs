//! Smoke benchmark for the scan / indexed-engine / SoA-kernel first-fit
//! comparison — the offline companion to `crates/bench/benches/
//! ffd_scaling.rs`'s `ffd_scan_vs_indexed_n4096` group. Compiled by
//! `scripts/bench_smoke.sh` with plain `rustc` against the workspace rlibs
//! (no Criterion, no external crates), so it runs in sandboxed CI and
//! emits `BENCH_ffd.json` with median ns/iter for the linear scan, the
//! indexed engine, and the struct-of-arrays kernel.
//!
//! Instances mirror `hetfeas_bench::bench_instance`: uniform-random integer
//! speeds in 1..=8, UUniFast utilizations (capped at 0.95 per task) at
//! normalized utilization 0.9, periods from the standard menu.
//!
//! The n/m grid defaults to n = 4096 over m ∈ {64, 256, 1024, 4096} and
//! can be overridden with `HETFEAS_BENCH_GRID="n:m1,m2,..."` (e.g.
//! `HETFEAS_BENCH_GRID=1024:16,64` for a quick run). The gates below only
//! fire for rows the grid actually contains.

use hetfeas_model::{Augmentation, Platform, Task, TaskSet};
use hetfeas_partition::{first_fit, EdfAdmission, FirstFitEngine, SoaKernel};
use std::time::Instant;

/// xorshift64* — deterministic, dependency-free.
struct Rng(u64);

impl Rng {
    fn next_u64(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniform in (0, 1).
    fn uniform(&mut self) -> f64 {
        ((self.next_u64() >> 11) as f64 + 1.0) / (1u64 << 53) as f64
    }
}

/// UUniFast (Bini & Buttazzo) with a per-task cap, as in the workload
/// crate's `UUniFastCapped`.
fn uunifast_capped(rng: &mut Rng, n: usize, total: f64, cap: f64) -> Vec<f64> {
    let mut utils = Vec::with_capacity(n);
    let mut sum = total;
    for i in 0..n {
        let remaining = (n - i - 1) as f64;
        let next = if remaining > 0.0 {
            sum * rng.uniform().powf(1.0 / remaining)
        } else {
            0.0
        };
        utils.push((sum - next).clamp(1e-4, cap));
        sum = next;
    }
    utils
}

fn instance(n: usize, m: usize, u_norm: f64, seed: u64) -> (TaskSet, Platform) {
    let mut rng = Rng(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1);
    let speeds: Vec<u64> = (0..m).map(|_| 1 + rng.next_u64() % 8).collect();
    let total_speed: u64 = speeds.iter().sum();
    // Cap the target so n capped tasks can actually carry it.
    let target = (u_norm * total_speed as f64).min(0.90 * n as f64);
    let periods = [100u64, 200, 250, 400, 500, 1000];
    let tasks: TaskSet = uunifast_capped(&mut rng, n, target, 0.95)
        .into_iter()
        .map(|u| {
            let p = periods[(rng.next_u64() % periods.len() as u64) as usize];
            Task::implicit(((u * p as f64).round() as u64).max(1), p).expect("c ≥ 1")
        })
        .collect();
    (tasks, Platform::from_int_speeds(speeds).expect("m ≥ 1"))
}

fn median_ns<F: FnMut() -> u128>(reps: usize, mut run: F) -> f64 {
    let mut times: Vec<u128> = (0..reps).map(|_| run()).collect();
    times.sort_unstable();
    times[times.len() / 2] as f64
}

/// `HETFEAS_BENCH_GRID="n:m1,m2,..."` → (n, ms); default 4096:64,256,1024,4096.
fn grid() -> (usize, Vec<usize>) {
    let default = (4096, vec![64, 256, 1024, 4096]);
    let Ok(spec) = std::env::var("HETFEAS_BENCH_GRID") else {
        return default;
    };
    let parse = |spec: &str| -> Option<(usize, Vec<usize>)> {
        let (n, ms) = spec.split_once(':')?;
        let n: usize = n.trim().parse().ok().filter(|&n| n > 0)?;
        let ms: Vec<usize> = ms
            .split(',')
            .map(|m| m.trim().parse().ok().filter(|&m| m > 0))
            .collect::<Option<_>>()?;
        (!ms.is_empty()).then_some((n, ms))
    };
    match parse(&spec) {
        Some(g) => g,
        None => {
            eprintln!("ignoring malformed HETFEAS_BENCH_GRID={spec:?} (want \"n:m1,m2,...\")");
            default
        }
    }
}

struct Row {
    m: usize,
    placed: usize,
    scan_ns: f64,
    indexed_ns: f64,
    kernel_ns: f64,
}

fn main() {
    let (n, ms) = grid();
    let reps = 10usize;
    let host_cpus = std::thread::available_parallelism().map_or(1, |p| p.get());
    let mut rows: Vec<Row> = Vec::new();

    for (i, &m) in ms.iter().enumerate() {
        let (tasks, platform) = instance(n, m, 0.9, 45 + i as u64);
        let mut engine = FirstFitEngine::new(EdfAdmission);
        let mut kernel = SoaKernel::new(EdfAdmission);

        // Equivalence sanity before timing anything.
        let reference = first_fit(&tasks, &platform, Augmentation::NONE, &EdfAdmission);
        assert_eq!(
            engine.run(&tasks, &platform, Augmentation::NONE),
            reference,
            "engine diverged from reference at m = {m}"
        );
        assert_eq!(
            kernel.run(&tasks, &platform, Augmentation::NONE),
            reference,
            "kernel diverged from reference at m = {m}"
        );
        let placed = reference.partial().assigned_count();

        let scan_ns = median_ns(reps, || {
            let start = Instant::now();
            std::hint::black_box(first_fit(
                &tasks,
                &platform,
                Augmentation::NONE,
                &EdfAdmission,
            ));
            start.elapsed().as_nanos()
        });
        let indexed_ns = median_ns(reps, || {
            let start = Instant::now();
            std::hint::black_box(engine.run(&tasks, &platform, Augmentation::NONE));
            start.elapsed().as_nanos()
        });
        let kernel_ns = median_ns(reps, || {
            let start = Instant::now();
            std::hint::black_box(kernel.run(&tasks, &platform, Augmentation::NONE));
            start.elapsed().as_nanos()
        });
        eprintln!(
            "m = {m:4}: scan {:.1} µs, indexed {:.1} µs, kernel {:.1} µs, \
             speedup {:.2}x, kernel speedup {:.2}x",
            scan_ns / 1e3,
            indexed_ns / 1e3,
            kernel_ns / 1e3,
            scan_ns / indexed_ns,
            indexed_ns / kernel_ns
        );
        rows.push(Row {
            m,
            placed,
            scan_ns,
            indexed_ns,
            kernel_ns,
        });
    }

    // Per-op (ns/placement) columns divide by the number of tasks actually
    // placed, so rows stay comparable even if a grid cell is infeasible
    // partway. "speedup" is scan/indexed (the PR-4 gate);
    // "kernel_speedup" is indexed/kernel (this PR's gate). The field
    // names are parsed by scripts/ci.sh — keep them stable.
    let entries: Vec<String> = rows
        .iter()
        .map(|r| {
            let per_op = |ns: f64| ns / r.placed.max(1) as f64;
            format!(
                "    {{\"m\": {}, \"scan_ns\": {:.0}, \"indexed_ns\": {:.0}, \
                 \"kernel_ns\": {:.0}, \"speedup\": {:.2}, \"kernel_speedup\": {:.2}, \
                 \"placements\": {}, \"scan_ns_per_placement\": {:.1}, \
                 \"indexed_ns_per_placement\": {:.1}, \"kernel_ns_per_placement\": {:.1}}}",
                r.m,
                r.scan_ns,
                r.indexed_ns,
                r.kernel_ns,
                r.scan_ns / r.indexed_ns,
                r.indexed_ns / r.kernel_ns,
                r.placed,
                per_op(r.scan_ns),
                per_op(r.indexed_ns),
                per_op(r.kernel_ns),
            )
        })
        .collect();
    println!(
        "{{\n  \"bench\": \"ffd_scan_vs_indexed\",\n  \"n\": {n},\n  \"admission\": \"EDF\",\n  \
         \"reps\": {reps},\n  \"host_cpus\": {host_cpus},\n  \"unit\": \"ns/iter (median)\",\n  \
         \"results\": [\n{}\n  ]\n}}",
        entries.join(",\n")
    );

    let at = |m: usize| rows.iter().find(|r| r.m == m);

    // The PR-4 acceptance gate: indexed time at m = 1024 < 2× its time
    // at m = 64 (the linear scan is ≳ 8× there).
    if let (Some(hi), Some(lo)) = (at(1024), at(64)) {
        let ratio = hi.indexed_ns / lo.indexed_ns;
        eprintln!("indexed m=1024 / m=64 time ratio: {ratio:.2} (gate: < 2)");
        assert!(
            ratio < 2.0,
            "indexed engine is not sub-linear in m: ratio {ratio:.2}"
        );
    }

    // This PR's acceptance gate: the SoA kernel ≥ 3× the indexed engine
    // at n = 4096, m = 1024.
    if n == 4096 {
        if let Some(r) = at(1024) {
            let speedup = r.indexed_ns / r.kernel_ns;
            eprintln!("kernel speedup over indexed at m=1024: {speedup:.2}x (gate: >= 3)");
            assert!(
                speedup >= 3.0,
                "SoA kernel below the 3x gate over the indexed engine: {speedup:.2}x"
            );
        }
    }
}
