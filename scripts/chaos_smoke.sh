#!/usr/bin/env bash
# Chaos smoke stage: drive the supervised multi-tenant admission service
# (`hetfeas serve`) through its failure modes and check the bulkhead
# contract from outside the process.
#
#   HETFEAS_BIN=path          the `hetfeas` CLI binary (required)
#   CHAOS_SMOKE_TIMEOUT=120   outer wall-clock cap per stage, seconds
#
# Stages:
#   1. in-process seeded fault storms (`serve --chaos`) across several
#      seeds — exit 0 means every surviving tenant's digest matched a
#      fault-free replay and the quarantine set was exactly the poisoned
#      roles; the report must show panics contained and restarts served;
#   2. a framed stdin session: mixed tenants, an injected shard panic
#      (recovers, digest unchanged), a poisoned tenant (quarantined,
#      neighbors untouched), malformed frames answered with errors — the
#      process always exits 0;
#   3. cross-process convergence: a served session is kill -9'd
#      mid-stream with aggressive compaction, then every tenant journal
#      must `hetfeas recover` cleanly and a restarted server must serve
#      the recovered state;
#   4. seeded network-chaos storms (`serve --chaos --net`) across seeds:
#      a frame-aware proxy injects delays, duplicate frames, torn
#      mid-frame writes, resets and swallowed replies between retrying
#      clients and the TCP server — every acked request must appear
#      exactly once in the replayed journal;
#   5. kill -9 of a TCP server mid-stream with a retrying `call` client:
#      the orphaned client fails with the transport exit code (4), and a
#      restarted server on the same data dir serves the recovered state.
set -euo pipefail

hetfeas="${HETFEAS_BIN:?set HETFEAS_BIN to the hetfeas binary}"
cap="${CHAOS_SMOKE_TIMEOUT:-120}"

work="$(mktemp -d)"
trap 'rm -rf "$work" || true' EXIT

echo "== seeded fault storms converge" >&2
for seed in 7 1013 57005; do
    report="$work/chaos_$seed.json"
    timeout "$cap" "$hetfeas" serve --chaos --seed "$seed" \
        --tenants 8 --ops 32 --report "$report" \
        >"$work/chaos_$seed.out" 2>"$work/chaos_$seed.err" || {
        echo "chaos_smoke: FAIL — storm seed=$seed did not converge" >&2
        cat "$work/chaos_$seed.out" "$work/chaos_$seed.err" >&2
        exit 1
    }
    grep -q '"verdict": "converged"' "$report" || {
        echo "chaos_smoke: FAIL — seed=$seed report verdict not converged" >&2
        cat "$report" >&2
        exit 1
    }
    # The storm must actually have hurt: panics contained, restarts
    # served, the three poisoned roles quarantined.
    grep -q '"quarantines": 3' "$report" || {
        echo "chaos_smoke: FAIL — seed=$seed expected 3 quarantines" >&2
        cat "$report" >&2
        exit 1
    }
    for key in panics restarts; do
        if grep -q "\"$key\": 0" "$report"; then
            echo "chaos_smoke: FAIL — seed=$seed storm had zero $key" >&2
            cat "$report" >&2
            exit 1
        fi
    done
done

echo "== framed session: panic recovery + quarantine bulkhead" >&2
data="$work/session_data"
session_out="$work/session.out"
{
    printf 'open alpha edf 1.0 1,2,3\n'
    printf 'open beta rms-ll 1.5 2,2\n'
    printf 'add alpha 3 10\n'
    printf 'add alpha 4 12\n'
    printf 'add beta 1 8\n'
    printf 'digest alpha\n'
    printf 'panic alpha\n'
    printf 'digest alpha\n'
    printf 'this is not a command\n'
    printf 'add nosuch 1 2\n'
    printf 'stats\n'
    printf 'quit\n'
} | timeout "$cap" "$hetfeas" serve --text --data-dir "$data" \
    >"$session_out" 2>"$work/session.err" || {
    echo "chaos_smoke: FAIL — framed session exited nonzero" >&2
    cat "$session_out" "$work/session.err" >&2
    exit 1
}
d_before="$(sed -n 's/^6 ok digest=\([0-9a-f]*\).*/\1/p' "$session_out")"
d_after="$(sed -n 's/^8 ok digest=\([0-9a-f]*\).*/\1/p' "$session_out")"
[[ -n "$d_before" && "$d_before" == "$d_after" ]] || {
    echo "chaos_smoke: FAIL — digest changed across panic ($d_before vs $d_after)" >&2
    cat "$session_out" >&2
    exit 1
}
grep -q '^7 err panic' "$session_out" || {
    echo "chaos_smoke: FAIL — injected panic not surfaced as an error ack" >&2
    cat "$session_out" >&2
    exit 1
}
grep -q '^9 err ' "$session_out" || {
    echo "chaos_smoke: FAIL — malformed frame not answered" >&2
    cat "$session_out" >&2
    exit 1
}
grep -q '^10 err ' "$session_out" || {
    echo "chaos_smoke: FAIL — unknown tenant not answered" >&2
    cat "$session_out" >&2
    exit 1
}

echo "== poisoned journal quarantines only its tenant across a restart" >&2
# Truncate alpha's journal to a torn header (no intact records), then
# reopen both tenants in a fresh process: alpha boots into quarantine,
# beta recovers and serves. `open` acks before the shard boots, so the
# fence shows on alpha's first op.
head -c 5 "$data/alpha.journal" >"$work/poison"
mv "$work/poison" "$data/alpha.journal"
{
    printf 'open alpha edf 1.0 1,2,3\n'
    printf 'open beta rms-ll 1.5 2,2\n'
    printf 'add alpha 1 30\n'
    printf 'add beta 1 30\n'
    printf 'quit\n'
} | timeout "$cap" "$hetfeas" serve --text --data-dir "$data" \
    >"$work/poisoned.out" 2>/dev/null || {
    echo "chaos_smoke: FAIL — poisoned tenant took the process down" >&2
    cat "$work/poisoned.out" >&2
    exit 1
}
grep -q '^3 err quarantined' "$work/poisoned.out" || {
    echo "chaos_smoke: FAIL — corrupt journal not fenced" >&2
    cat "$work/poisoned.out" >&2
    exit 1
}
grep -q '^4 ok admitted' "$work/poisoned.out" || {
    echo "chaos_smoke: FAIL — healthy neighbor stopped serving" >&2
    cat "$work/poisoned.out" >&2
    exit 1
}

echo "== kill -9 mid-stream, then recover every tenant journal" >&2
killdata="$work/kill_data"
mkfifo "$work/kill_pipe"
timeout "$cap" "$hetfeas" serve --text --data-dir "$killdata" \
    --compact-every 2 <"$work/kill_pipe" >"$work/kill.out" 2>/dev/null &
server=$!
disown "$server" # silence bash's job-status line when we SIGKILL it
exec 3>"$work/kill_pipe"
printf 'open t0 edf 1.0 1,2\nopen t1 rms-hyp 1.0 3\n' >&3
for i in $(seq 1 24); do
    printf 'add t0 1 %d\nadd t1 1 %d\n' "$((9 + i))" "$((9 + i))" >&3
done
# Wait until both journals exist and have absorbed writes, then SIGKILL
# the server mid-stream (compaction every 2 ops keeps replaces in play).
for _ in $(seq 1 100); do
    [[ -s "$killdata/t0.journal" && -s "$killdata/t1.journal" ]] && break
    sleep 0.1
done
# $server is the `timeout` wrapper — SIGKILL its hetfeas child FIRST
# (killing only the wrapper would orphan the server, which then races
# the recover checks below), then the wrapper itself.
pkill -KILL -P "$server" 2>/dev/null || true
kill -9 "$server" 2>/dev/null || true
exec 3>&-
while kill -0 "$server" 2>/dev/null; do sleep 0.05; done
while pgrep -f "serve --text --data-dir $killdata" >/dev/null 2>&1; do
    sleep 0.05
done
for t in t0 t1; do
    j="$killdata/$t.journal"
    [[ -s "$j" ]] || {
        echo "chaos_smoke: FAIL — $t journal missing after kill -9" >&2
        exit 1
    }
    timeout "$cap" "$hetfeas" recover "$j" >"$work/kill_$t.out" 2>&1 || {
        echo "chaos_smoke: FAIL — $t journal unrecoverable after kill -9" >&2
        cat "$work/kill_$t.out" >&2
        exit 1
    }
    grep -q 'state digest [0-9a-f]*' "$work/kill_$t.out" || {
        echo "chaos_smoke: FAIL — recover $t printed no digest" >&2
        exit 1
    }
done
# A restarted server serves the recovered state.
{
    printf 'open t0 edf 1.0 1,2\n'
    printf 'open t1 rms-hyp 1.0 3\n'
    printf 'digest t0\ndigest t1\nquit\n'
} | timeout "$cap" "$hetfeas" serve --text --data-dir "$killdata" \
    >"$work/kill_restart.out" 2>/dev/null || {
    echo "chaos_smoke: FAIL — restart after kill -9 failed" >&2
    cat "$work/kill_restart.out" >&2
    exit 1
}
for seq in 3 4; do
    grep -q "^$seq ok digest=" "$work/kill_restart.out" || {
        echo "chaos_smoke: FAIL — restarted server served no digest (seq $seq)" >&2
        cat "$work/kill_restart.out" >&2
        exit 1
    }
done

echo "== network-chaos storms are exactly-once" >&2
for seed in 3 911 48879; do
    report="$work/netchaos_$seed.json"
    timeout "$cap" "$hetfeas" serve --chaos --net --seed "$seed" \
        --tenants 4 --ops 24 --data-dir "$work/netchaos_data_$seed" \
        --report "$report" \
        >"$work/netchaos_$seed.out" 2>"$work/netchaos_$seed.err" || {
        echo "chaos_smoke: FAIL — net storm seed=$seed diverged" >&2
        cat "$work/netchaos_$seed.out" "$work/netchaos_$seed.err" >&2
        exit 1
    }
    grep -q '"verdict": "converged"' "$report" || {
        echo "chaos_smoke: FAIL — net seed=$seed verdict not converged" >&2
        cat "$report" >&2
        exit 1
    }
    if grep -q '"exactly_once": 0' "$report"; then
        echo "chaos_smoke: FAIL — net seed=$seed verified no tenant strictly" >&2
        cat "$report" >&2
        exit 1
    fi
done
# Across the seed matrix the proxy must actually have hurt: at least one
# duplicated frame and at least one torn/reset/swallowed exchange.
dup_total=0 harm_total=0
for seed in 3 911 48879; do
    report="$work/netchaos_$seed.json"
    dup="$(sed -n 's/.*"duplicated": \([0-9]*\).*/\1/p' "$report" | head -1)"
    for key in torn resets dropped_replies; do
        v="$(sed -n "s/.*\"$key\": \([0-9]*\).*/\1/p" "$report" | head -1)"
        harm_total=$((harm_total + ${v:-0}))
    done
    dup_total=$((dup_total + ${dup:-0}))
done
[[ "$dup_total" -ge 1 && "$harm_total" -ge 1 ]] || {
    echo "chaos_smoke: FAIL — net matrix injected no faults (dup=$dup_total harm=$harm_total)" >&2
    exit 1
}

echo "== kill -9 of the TCP server orphans the retrying client cleanly" >&2
tcpdata="$work/tcp_kill_data"
mkdir -p "$tcpdata"
# An ephemeral port in the dynamic range, seeded by PID to dodge collisions.
tcpport=$((20000 + $$ % 20000))
timeout "$cap" "$hetfeas" serve --tcp "127.0.0.1:$tcpport" \
    --data-dir "$tcpdata" >"$work/tcp_kill.out" 2>&1 &
tcpserver=$!
disown "$tcpserver"
for _ in $(seq 1 100); do
    "$hetfeas" call 'stats' --tcp "127.0.0.1:$tcpport" \
        >/dev/null 2>&1 && break
    sleep 0.1
done
"$hetfeas" call 'open k edf 1.0 1,2' --tcp "127.0.0.1:$tcpport" \
    >/dev/null 2>&1 || {
    echo "chaos_smoke: FAIL — could not open tenant over TCP" >&2
    exit 1
}
for i in $(seq 1 6); do
    "$hetfeas" call "add k 1 $((9 + i))" --tcp "127.0.0.1:$tcpport" \
        >/dev/null 2>&1 || {
        echo "chaos_smoke: FAIL — TCP add $i refused before the kill" >&2
        exit 1
    }
done
pkill -KILL -P "$tcpserver" 2>/dev/null || true
kill -9 "$tcpserver" 2>/dev/null || true
while kill -0 "$tcpserver" 2>/dev/null; do sleep 0.05; done
while pgrep -f "serve --tcp 127.0.0.1:$tcpport" >/dev/null 2>&1; do
    sleep 0.05
done
# The retrying client must give up with the transport exit code, not hang
# or misreport success.
set +e
timeout "$cap" "$hetfeas" call 'digest k' --tcp "127.0.0.1:$tcpport" \
    --budget-ms 2000 >/dev/null 2>&1
dead_rc=$?
set -e
[[ "$dead_rc" -eq 4 ]] || {
    echo "chaos_smoke: FAIL — call against killed server exited $dead_rc, want 4" >&2
    exit 1
}
# The journal survived the SIGKILL and a restarted server serves it.
timeout "$cap" "$hetfeas" recover "$tcpdata/k.journal" >/dev/null 2>&1 || {
    echo "chaos_smoke: FAIL — TCP tenant journal unrecoverable after kill -9" >&2
    exit 1
}
timeout "$cap" "$hetfeas" serve --tcp "127.0.0.1:$tcpport" \
    --data-dir "$tcpdata" >"$work/tcp_restart.out" 2>&1 &
tcpserver2=$!
for _ in $(seq 1 100); do
    "$hetfeas" call 'stats' --tcp "127.0.0.1:$tcpport" \
        >/dev/null 2>&1 && break
    sleep 0.1
done
"$hetfeas" call 'open k edf 1.0 1,2' --tcp "127.0.0.1:$tcpport" \
    >/dev/null 2>&1 || {
    echo "chaos_smoke: FAIL — reopen after restart refused" >&2
    exit 1
}
"$hetfeas" call 'digest k' --tcp "127.0.0.1:$tcpport" \
    >"$work/tcp_digest.out" 2>&1 || {
    echo "chaos_smoke: FAIL — restarted TCP server served no digest" >&2
    cat "$work/tcp_digest.out" >&2
    exit 1
}
grep -q 'live=6' "$work/tcp_digest.out" || {
    echo "chaos_smoke: FAIL — recovered state lost admissions" >&2
    cat "$work/tcp_digest.out" >&2
    exit 1
}
"$hetfeas" call 'quit' --tcp "127.0.0.1:$tcpport" >/dev/null 2>&1 || true
wait "$tcpserver2" 2>/dev/null || true

echo "chaos_smoke: all stages passed" >&2
