//! Static-priority (RMS) partitioning for an avionics-style workload.
//!
//! Certification-oriented domains prefer static priorities — the paper's
//! RMS variant. This example partitions a fixed avionics-flavoured task
//! table (harmonic-ish rates: 400 Hz inner loop down to 1 Hz telemetry,
//! modelled in 2.5 ms ticks) across a two-speed flight computer, compares
//! the Liu–Layland admission against exact response-time analysis, and
//! verifies the schedule with the simulator.
//!
//! ```text
//! cargo run --example avionics_rms
//! ```

use hetfeas::analysis::{rm_priority_order, rta_response_times};
use hetfeas::model::{Augmentation, Platform, Ratio, TaskSet};
use hetfeas::partition::{first_fit, RmsLlAdmission, RmsRtaAdmission};
use hetfeas::sim::{validate_assignment, SchedPolicy};

fn main() {
    // (name, WCET, period) in 2.5 ms ticks: period 1 tick = 400 Hz.
    let table: &[(&str, u64, u64)] = &[
        ("rate-gyro filter   (400 Hz)", 1, 4),
        ("inner control loop (200 Hz)", 2, 8),
        ("outer control loop (100 Hz)", 3, 16),
        ("nav fusion          (50 Hz)", 6, 32),
        ("guidance            (25 Hz)", 10, 64),
        ("actuator monitor    (50 Hz)", 4, 32),
        ("air data            (25 Hz)", 8, 64),
        ("telemetry frame     (12 Hz)", 20, 128),
        ("health logging       (3 Hz)", 60, 512),
    ];
    let tasks: TaskSet = table
        .iter()
        .map(|&(_, c, p)| hetfeas::model::Task::implicit(c, p).expect("valid"))
        .collect();
    // Flight computer: one fast primary core (speed 2) + one slow I/O core.
    let platform = Platform::from_int_speeds([1, 2]).expect("platform");

    println!("avionics task table (ticks of 2.5 ms):");
    for (i, &(name, c, p)) in table.iter().enumerate() {
        println!(
            "  τ{i}: {name:32} c={c:3} p={p:4} w={:.3}",
            tasks[i].utilization()
        );
    }
    println!(
        "total utilization {:.3} on speeds [1, 2]\n",
        tasks.total_utilization()
    );

    // Liu–Layland admission (the paper's test).
    let ll = first_fit(&tasks, &platform, Augmentation::NONE, &RmsLlAdmission);
    println!(
        "RMS first-fit with Liu–Layland admission: {}",
        if ll.is_feasible() {
            "FEASIBLE"
        } else {
            "infeasible"
        }
    );

    // Exact RTA admission (the E9 upgrade) — admits harmonic sets LL cannot.
    let rta = first_fit(&tasks, &platform, Augmentation::NONE, &RmsRtaAdmission);
    println!(
        "RMS first-fit with exact RTA admission:   {}",
        if rta.is_feasible() {
            "FEASIBLE"
        } else {
            "infeasible"
        }
    );
    let assignment = rta
        .assignment()
        .expect("harmonic avionics table fits with exact admission");

    // Worst-case response times per core, from exact analysis.
    println!("\nper-core response-time analysis (ticks):");
    for m in 0..platform.len() {
        let subset = assignment.taskset_on(m, &tasks);
        if subset.is_empty() {
            continue;
        }
        let order = rm_priority_order(&subset);
        let speed = platform.machine(m).speed();
        let responses = rta_response_times(&subset, &order, speed);
        println!("  core {m} (speed {speed}):");
        for (j, r) in responses.iter().enumerate() {
            let orig = assignment.tasks_on(m)[j];
            match r {
                Some(r) => println!(
                    "    {:32} R = {:>8} ≤ d = {}",
                    table[orig].0,
                    r.to_string(),
                    subset[j].deadline()
                ),
                None => println!("    {:32} MISSES", table[orig].0),
            }
        }
    }

    // End-to-end check in the simulator.
    let report = validate_assignment(
        &tasks,
        &platform,
        assignment,
        Ratio::ONE,
        SchedPolicy::RateMonotonic,
    )
    .expect("simulation");
    println!(
        "\nsimulator: {} jobs over 2 hyperperiods, {} misses, {} preemptions",
        report.jobs_completed, report.miss_count, report.preemptions
    );
    assert_eq!(
        report.miss_count, 0,
        "exact admission must be deadline-safe"
    );
}
