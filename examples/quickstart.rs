//! Quickstart: run the paper's feasibility test on a small heterogeneous
//! platform, inspect the assignment, and validate it in the simulator.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use hetfeas::model::{Augmentation, Platform, Ratio, TaskSet};
use hetfeas::partition::{first_fit, EdfAdmission, RmsLlAdmission};
use hetfeas::sim::{validate_assignment, SchedPolicy};

fn main() {
    // A task set: (WCET work units, period ticks). Utilizations:
    // 0.9, 0.5, 0.4, 0.3, 0.25.
    let tasks = TaskSet::from_pairs([(9, 10), (10, 20), (10, 25), (12, 40), (10, 40)])
        .expect("valid tasks");
    // A big.LITTLE-style platform: two slow cores and one 2× fast core.
    let platform = Platform::from_int_speeds([1, 1, 2]).expect("valid platform");

    println!("tasks     : {tasks}");
    println!("platform  : {platform}");
    println!(
        "total utilization {:.2} vs total speed {:.2}\n",
        tasks.total_utilization(),
        platform.total_speed()
    );

    // --- The paper's feasibility test with EDF on each machine ---
    let outcome = first_fit(&tasks, &platform, Augmentation::NONE, &EdfAdmission);
    match outcome.assignment() {
        Some(assignment) => {
            println!("EDF first-fit: FEASIBLE");
            for m in 0..platform.len() {
                println!(
                    "  machine {m} (speed {}): tasks {:?}, load {:.2}",
                    platform.machine(m).speed(),
                    assignment.tasks_on(m),
                    assignment.load_on(m, &tasks),
                );
            }
            // Replay the schedule in the exact simulator over two
            // hyperperiods — Theorem II.2 promises zero misses.
            let report =
                validate_assignment(&tasks, &platform, assignment, Ratio::ONE, SchedPolicy::Edf)
                    .expect("simulation");
            println!(
                "  simulator: {} jobs, {} deadline misses, {} preemptions\n",
                report.jobs_completed, report.miss_count, report.preemptions
            );
        }
        None => println!("EDF first-fit: infeasible\n"),
    }

    // --- The same with rate-monotonic scheduling per machine ---
    let outcome = first_fit(&tasks, &platform, Augmentation::NONE, &RmsLlAdmission);
    println!(
        "RMS first-fit at α=1: {}",
        if outcome.is_feasible() {
            "FEASIBLE"
        } else {
            "infeasible"
        }
    );
    // The Liu–Layland admission is conservative; Theorem I.2 says α = 2.414
    // suffices against any partitioned adversary.
    let outcome = first_fit(
        &tasks,
        &platform,
        Augmentation::RMS_VS_PARTITIONED,
        &RmsLlAdmission,
    );
    println!(
        "RMS first-fit at α=2.414: {}",
        if outcome.is_feasible() {
            "FEASIBLE"
        } else {
            "infeasible"
        }
    );
}
