//! Constrained deadlines: partitioning beyond the paper's model.
//!
//! The paper assumes implicit deadlines (`d = p`). Real control loops
//! often need the result well before the next activation — `d < p`. This
//! example takes a control workload with tight deadlines, shows that the
//! utilization-based EDF admission is no longer sound, and contrasts the
//! two constrained-deadline admissions shipped as extensions: the O(1)
//! density bound vs the exact QPA (processor-demand) test.
//!
//! ```text
//! cargo run --example constrained_deadlines
//! ```

use hetfeas::analysis::{edf_demand_schedulable, qpa_schedulable};
use hetfeas::model::{Augmentation, Platform, Ratio, Task, TaskSet};
use hetfeas::partition::{first_fit, DensityAdmission, EdfAdmission, EdfDemandAdmission};

fn main() {
    // (wcet, period, deadline): sensor-fusion-style chains whose outputs
    // feed actuators mid-period.
    let tasks: TaskSet = [
        (6u64, 40u64, 12u64), // burst job, tight deadline
        (5, 20, 13),          // control chain stage
        (2, 20, 3),           // sensor grab, very tight
        (2, 20, 9),           // actuator update
        (1, 40, 25),          // telemetry
        (1, 10, 7),           // watchdog
    ]
    .into_iter()
    .map(|(c, p, d)| Task::constrained(c, p, d).expect("valid"))
    .collect();
    let platform = Platform::from_int_speeds([1, 1]).expect("platform");

    println!(
        "constrained workload (utilization {:.2}, total density {:.2}) on {platform}\n",
        tasks.total_utilization(),
        tasks.iter().map(Task::density).sum::<f64>(),
    );

    // 1. The paper's implicit-deadline admission is NOT sound here: it
    //    only sees utilizations and would happily overload a deadline.
    let naive = first_fit(&tasks, &platform, Augmentation::NONE, &EdfAdmission);
    println!(
        "implicit-deadline EDF admission says: {} — but it ignores deadlines!",
        if naive.is_feasible() {
            "feasible"
        } else {
            "infeasible"
        }
    );
    if let Some(a) = naive.assignment() {
        // Check each machine against the true demand criterion.
        for m in 0..platform.len() {
            let subset = a.taskset_on(m, &tasks);
            let ok = qpa_schedulable(&subset, platform.machine(m).speed());
            println!(
                "  machine {m}: tasks {:?} → demand-criterion {}",
                a.tasks_on(m),
                if ok {
                    "OK"
                } else {
                    "VIOLATED (deadline would be missed)"
                }
            );
        }
    }

    // 2. Density admission: sound but conservative.
    let dens = first_fit(&tasks, &platform, Augmentation::NONE, &DensityAdmission);
    println!(
        "\ndensity admission (Σ c/d ≤ s): {}",
        if dens.is_feasible() {
            "feasible"
        } else {
            "infeasible — too conservative here"
        }
    );

    // 3. Exact QPA admission: sound and tight.
    let qpa = first_fit(&tasks, &platform, Augmentation::NONE, &EdfDemandAdmission);
    println!(
        "exact QPA admission:            {}",
        if qpa.is_feasible() {
            "FEASIBLE"
        } else {
            "infeasible"
        }
    );
    let a = qpa.assignment().expect("QPA finds the packing");
    for m in 0..platform.len() {
        let subset = a.taskset_on(m, &tasks);
        if subset.is_empty() {
            continue;
        }
        println!(
            "  machine {m}: tasks {:?} (util {:.2})",
            a.tasks_on(m),
            a.load_on(m, &tasks)
        );
        // Double-check with the naive processor-demand criterion over a
        // long horizon.
        let horizon = subset.hyperperiod().unwrap() as u64 * 2;
        assert!(edf_demand_schedulable(&subset, Ratio::ONE, horizon));
    }
    println!("\nevery machine passes the processor-demand criterion — the QPA");
    println!("packing is deadline-exact, where density refused and the paper's");
    println!("utilization test was blind.");
}
