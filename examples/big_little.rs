//! Admission control on a big.LITTLE chip.
//!
//! The paper's §I motivation: heterogeneous chips pair many low-power
//! cores with a few fast ones. This example plays the role of an admission
//! controller for such a chip: a stream of task submissions arrives, each
//! is admitted iff the paper's first-fit feasibility test still accepts the
//! grown set, and the final plan is cross-checked against the LP bound and
//! the simulator.
//!
//! ```text
//! cargo run --example big_little
//! ```

use hetfeas::lp::{level_scaling_factor, lp_feasible};
use hetfeas::model::{Augmentation, Platform, Ratio, Task, TaskSet};
use hetfeas::partition::{first_fit, EdfAdmission};
use hetfeas::sim::{validate_assignment, SchedPolicy};
use hetfeas::workload::{PeriodMenu, UtilizationSampler, WorkloadSpec};
use hetfeas_workload::PlatformSpec;

fn main() {
    // 4 LITTLE cores (speed 1) + 2 big cores (speed 3).
    let platform = Platform::from_int_speeds([1, 1, 1, 1, 3, 3]).expect("platform");
    println!(
        "platform: {platform} (total speed {})\n",
        platform.total_speed()
    );

    // A reproducible submission stream: 30 candidate tasks.
    let spec = WorkloadSpec {
        n_tasks: 30,
        normalized_utilization: 1.1, // oversubscribed on purpose
        platform: PlatformSpec::BigLittle {
            big: 2,
            little: 4,
            ratio: 3,
        },
        sampler: UtilizationSampler::UUniFastCapped,
        periods: PeriodMenu::standard(),
    };
    let submissions: Vec<Task> = spec
        .generate(2024, 0)
        .expect("generator parameters are loose")
        .tasks
        .iter()
        .copied()
        .collect();

    // Online admission: accept a task iff the feasibility test still
    // passes with it included.
    let mut admitted = TaskSet::empty();
    let mut rejected = 0usize;
    for (k, task) in submissions.iter().enumerate() {
        let mut candidate = admitted.clone();
        candidate.push(*task);
        if first_fit(&candidate, &platform, Augmentation::NONE, &EdfAdmission).is_feasible() {
            admitted = candidate;
        } else {
            rejected += 1;
            println!(
                "  submission {k:2} rejected (w = {:.2}, admitted load {:.2})",
                task.utilization(),
                admitted.total_utilization()
            );
        }
    }
    println!(
        "\nadmitted {} / {} tasks, total utilization {:.2} of {:.1} speed",
        admitted.len(),
        submissions.len(),
        admitted.total_utilization(),
        platform.total_speed()
    );

    // The final plan, validated three independent ways.
    let outcome = first_fit(&admitted, &platform, Augmentation::NONE, &EdfAdmission);
    let assignment = outcome.assignment().expect("admitted set is feasible");
    for m in 0..platform.len() {
        println!(
            "  core {m} (speed {}): {} tasks, load {:.2}",
            platform.machine(m).speed(),
            assignment.tasks_on(m).len(),
            assignment.load_on(m, &admitted),
        );
    }

    assert!(
        lp_feasible(&admitted, &platform),
        "LP must accept the admitted set"
    );
    let report = validate_assignment(
        &admitted,
        &platform,
        assignment,
        Ratio::ONE,
        SchedPolicy::Edf,
    )
    .expect("simulation");
    println!(
        "\nLP check: feasible; level scaling factor β = {:.3}",
        level_scaling_factor(&admitted, &platform)
    );
    println!(
        "simulator: {} jobs over 2 hyperperiods, {} misses",
        report.jobs_completed, report.miss_count
    );
    assert_eq!(report.miss_count, 0);
    println!("rejected {rejected} submissions — the chip is safely saturated");
}
