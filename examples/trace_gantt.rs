//! Visualize what the per-machine schedulers actually do: run the
//! partitioned feasibility test, simulate each machine with trace
//! recording, and print ASCII Gantt charts plus per-task execution stats.
//!
//! Also demonstrates the EDF-vs-RMS behavioural difference on the same
//! assignment: the famous full-utilization pair misses under RMS but not
//! under EDF.
//!
//! ```text
//! cargo run --example trace_gantt
//! ```

use hetfeas::model::{Augmentation, Platform, Ratio, TaskSet};
use hetfeas::partition::{first_fit, EdfAdmission};
use hetfeas::sim::{
    observed_utilization, per_task_stats, render_gantt, simulate_machine_traced, EngineConfig,
    ReleasePattern, SchedPolicy,
};

fn main() {
    // --- Part 1: a partitioned system, per-machine Gantt charts ---
    let tasks = TaskSet::from_pairs([(2, 8), (3, 12), (4, 24), (6, 12), (2, 6)]).unwrap();
    let platform = Platform::from_int_speeds([1, 2]).unwrap();
    let outcome = first_fit(&tasks, &platform, Augmentation::NONE, &EdfAdmission);
    let assignment = outcome.assignment().expect("feasible demo system");

    println!("system: {tasks} on {platform}\n");
    for m in 0..platform.len() {
        let subset = assignment.taskset_on(m, &tasks);
        if subset.is_empty() {
            continue;
        }
        let horizon = 24; // one hyperperiod of the demo set
        let (report, trace) = simulate_machine_traced(
            &subset,
            platform.machine(m).speed(),
            SchedPolicy::Edf,
            ReleasePattern::Periodic,
            horizon,
            EngineConfig {
                record_trace: true,
                max_recorded_misses: 16,
            },
        )
        .expect("simulate");
        // The engine works in scaled ticks: ticks × speed numerator.
        let scaled_horizon = horizon * platform.machine(m).speed().numer() as u64;
        println!(
            "machine {m} (speed {}): {} jobs, busy {:.0}%, {} preemptions",
            platform.machine(m).speed(),
            report.jobs_completed,
            100.0 * observed_utilization(&trace, scaled_horizon),
            report.preemptions,
        );
        print!("{}", render_gantt(&trace, scaled_horizon, 72));
        for (local, st) in per_task_stats(&trace).iter().enumerate() {
            let global = assignment.tasks_on(m)[local];
            println!(
                "    τ{global} ({}): ran {} scaled ticks in {} segments",
                tasks[global], st.execution, st.segments
            );
        }
        println!();
    }

    // --- Part 2: EDF vs RMS on the same overloaded-for-RM set ---
    let pair = TaskSet::from_pairs([(2, 4), (5, 10)]).unwrap(); // util exactly 1
    println!("EDF vs RMS on {} (utilization exactly 1.0):\n", pair);
    for policy in [SchedPolicy::Edf, SchedPolicy::RateMonotonic] {
        let (report, trace) = simulate_machine_traced(
            &pair,
            Ratio::ONE,
            policy,
            ReleasePattern::Periodic,
            20,
            EngineConfig {
                record_trace: true,
                max_recorded_misses: 16,
            },
        )
        .expect("simulate");
        println!(
            "{}: {} misses{}",
            policy.name(),
            report.miss_count,
            if report.miss_count > 0 {
                format!(
                    " (first: task {} due {} finished {})",
                    report.misses[0].task, report.misses[0].deadline, report.misses[0].completion
                )
            } else {
                String::new()
            }
        );
        println!("{}", render_gantt(&trace, 20, 60));
    }
    println!("EDF meets every deadline at full utilization; RMS gives the long task");
    println!("static low priority and overruns — exactly the Liu–Layland gap the");
    println!("paper's Theorem I.2 pays the extra √2+1 augmentation for.");
}
