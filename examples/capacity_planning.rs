//! Capacity planning with augmentation search: "how much faster must this
//! platform be?" and "which upgrade fixes it?".
//!
//! The speed-augmentation lens of the paper doubles as a capacity-planning
//! tool: the least α at which the feasibility test accepts a workload is
//! exactly the uniform speed-up the platform needs. This example takes an
//! overloaded platform, reports α* for EDF and RMS, compares against the
//! LP lower bound (the level scaling factor β — no scheduler can need
//! less), and then evaluates discrete upgrade options.
//!
//! ```text
//! cargo run --example capacity_planning
//! ```

use hetfeas::lp::level_scaling_factor;
use hetfeas::model::{Platform, TaskSet};
use hetfeas::partition::{min_feasible_alpha, EdfAdmission, RmsLlAdmission};

fn main() {
    // A workload that has outgrown its platform.
    let tasks = TaskSet::from_pairs([
        (9, 10),  // 0.90
        (8, 10),  // 0.80
        (7, 10),  // 0.70
        (13, 20), // 0.65
        (6, 10),  // 0.60
        (11, 20), // 0.55
        (4, 10),  // 0.40
        (3, 10),  // 0.30
        (5, 20),  // 0.25
        (2, 10),  // 0.20
    ])
    .expect("tasks");
    let platform = Platform::from_int_speeds([1, 1, 2]).expect("platform");

    println!(
        "workload: {} tasks, total utilization {:.2}",
        tasks.len(),
        tasks.total_utilization()
    );
    println!(
        "platform: {platform}, total speed {:.1}\n",
        platform.total_speed()
    );

    // Lower bound: even a migrative scheduler needs β× speed.
    let beta = level_scaling_factor(&tasks, &platform);
    println!("LP lower bound (level scaling factor) β = {:.3}", beta);

    // What the partitioned tests actually need.
    let a_edf = min_feasible_alpha(&tasks, &platform, &EdfAdmission, 4.0, 1e-6)
        .expect("within theorem bound");
    let a_rms = min_feasible_alpha(&tasks, &platform, &RmsLlAdmission, 5.0, 1e-6)
        .expect("within theorem bound");
    println!("first-fit EDF needs      α* = {a_edf:.3}  (theorem bound 2 vs partitioned OPT)");
    println!("first-fit RMS (LL) needs α* = {a_rms:.3}  (theorem bound 2.414)\n");

    // Discrete upgrade menu: evaluate each by whether EDF-FF accepts at α=1.
    let upgrades: &[(&str, Vec<u64>)] = &[
        ("add one LITTLE core   [1,1,1,2]", vec![1, 1, 1, 2]),
        ("add one big core      [1,1,2,2]", vec![1, 1, 2, 2]),
        ("replace big with 3×   [1,1,3]", vec![1, 1, 3]),
        ("double everything     [2,2,4]", vec![2, 2, 4]),
    ];
    println!("upgrade options:");
    for (label, speeds) in upgrades {
        let candidate = Platform::from_int_speeds(speeds.iter().copied()).expect("platform");
        let alpha = min_feasible_alpha(&tasks, &candidate, &EdfAdmission, 4.0, 1e-6);
        match alpha {
            Some(a) if a <= 1.0 => println!("  {label:36} → fits as-is (α* = 1.000)"),
            Some(a) => println!("  {label:36} → still needs α* = {a:.3}"),
            None => println!("  {label:36} → insufficient even at α = 4"),
        }
    }

    // Sanity: the partitioned requirement can never beat the LP bound.
    assert!(
        a_edf + 1e-9 >= beta,
        "partitioned EDF cannot need less than the LP"
    );
}
